// Reproduces Figure 14: range searches on DBLP, range in {1,2,3,4,5,7,10}.
// Same substituted dataset as Figure 13.
//
// Paper shape: BiBranch clearly beats Histo while the range stays below the
// average distance (~5); the gap narrows as the range approaches 10, where
// the result set is nearly the whole dataset.
#include <cstdio>

#include "bench_util.h"
#include "datagen/dblp_generator.h"

namespace treesim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const CommonFlags common = ParseCommonFlags(flags, 2000, 50);
  if (!ApplyQueryLogFlags(common)) return 1;
  BenchReport report("fig14_dblp_range");
  ReportCommonConfig(common, report);

  PrintFigureHeader("Figure 14", "range searches on DBLP(-like) data",
                    "range, tau in {1..10}, " + std::to_string(common.trees) +
                        " bibliographic records",
                    common.queries);
  auto labels = std::make_shared<LabelDictionary>();
  DblpGenerator gen(DblpParams{}, labels, common.seed);
  auto db = MakeDatabase(labels, gen.Generate(common.trees));

  for (const int tau : {1, 2, 3, 4, 5, 7, 10}) {
    WorkloadConfig config;
    config.threads = common.threads;
    config.kind = WorkloadKind::kRange;
    config.queries = common.queries;
    config.fixed_tau = tau;
    config.seed = 20050614 + static_cast<uint64_t>(tau);
    const WorkloadResult r = RunWorkload(*db, config);
    std::printf("tau=%-3d avgDist=%-6.2f result%%=%-8.3f BiBranch%%=%-8.3f "
                "Histo%%=%-8.3f BiBranchCPU=%-8.4fs SeqCPU=%-8.4fs\n",
                tau, r.avg_distance, r.result_pct, r.bibranch_pct,
                r.histo_pct, r.bibranch_cpu, r.sequential_cpu);
    ReportSweepPoint("tau", tau, WorkloadKind::kRange, config.queries, r,
                     report);
  }
  std::printf("expected shape: BiBranch%% < Histo%% for tau below the "
              "average distance; gap narrows as tau -> 10 (result set is "
              "nearly everything)\n\n");
  return report.WriteIfRequested(common.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
