// Ablation: the design choices inside the BiBranch filter.
//   (a) positional matching mode: exact maximum matching vs the linear
//       min-of-1-D greedy relaxation vs the auto policy (DESIGN.md §5);
//   (b) branch level q on deep vs shallow data (Section 3.4 predicts that
//       multi-level branches pay off only when trees are deep enough to
//       fill the taller perfect-binary window).
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/positional.h"

namespace treesim {
namespace bench {
namespace {

std::unique_ptr<TreeDatabase> DeepDataset(int trees, uint64_t seed) {
  // Fanout close to 1 yields deep, path-like trees.
  auto labels = std::make_shared<LabelDictionary>();
  SyntheticParams params;
  params.fanout_mean = 1.2;
  params.fanout_stddev = 0.4;
  params.size_mean = 40;
  params.size_stddev = 2;
  params.label_count = 8;
  SyntheticGenerator gen(params, labels, seed);
  return MakeDatabase(labels, gen.GenerateDataset(trees));
}

std::unique_ptr<TreeDatabase> BushyDataset(int trees, uint64_t seed) {
  auto labels = std::make_shared<LabelDictionary>();
  SyntheticParams params;  // paper default: fanout 4, size 50
  SyntheticGenerator gen(params, labels, seed);
  return MakeDatabase(labels, gen.GenerateDataset(trees));
}

void ReportAblationPoint(const char* group, const std::string& label,
                         const char* dataset, int queries, int tau,
                         const QueryStats& total, BenchReport& report) {
  report.AddPoint()
      .Str("label", group + (": " + label))
      .Str("dataset", dataset)
      .Int("queries", queries)
      .Int("tau", tau)
      .Double("accessed_pct", 100.0 * total.AccessedFraction())
      .Double("filter_cpu_seconds", total.filter_seconds)
      .Double("cpu_seconds", total.TotalSeconds())
      .Raw("stats", QueryStatsJson(total));
}

void RunMatchingModes(const TreeDatabase& db, int queries, int tau,
                      BenchReport& report) {
  std::printf("matching-mode ablation (range tau=%d):\n", tau);
  struct Mode {
    const char* label;
    MatchingMode mode;
  };
  for (const Mode& m : {Mode{"exact", MatchingMode::kExact},
                        Mode{"greedy", MatchingMode::kGreedy},
                        Mode{"auto", MatchingMode::kAuto}}) {
    BiBranchFilter::Options o;
    o.matching = m.mode;
    SimilaritySearch engine(&db, std::make_unique<BiBranchFilter>(o));
    Rng rng(777);
    QueryStats total;
    for (int qi = 0; qi < queries; ++qi) {
      const Tree& query = db.tree(
          static_cast<int>(rng.UniformIndex(static_cast<size_t>(db.size()))));
      total += engine.Range(query, tau).stats;
    }
    std::printf("  %-8s accessed%%=%-8.3f filterCPU=%-8.4fs "
                "totalCPU=%-8.4fs\n",
                m.label, 100.0 * total.AccessedFraction(),
                total.filter_seconds, total.TotalSeconds());
    ReportAblationPoint("matching", m.label, "bushy", queries, tau, total,
                        report);
  }
}

void RunQSweep(const char* name, const TreeDatabase& db, int queries,
               int tau, BenchReport& report) {
  std::printf("q sweep on %s data (range tau=%d):\n", name, tau);
  for (const int q : {2, 3, 4}) {
    BiBranchFilter::Options o;
    o.q = q;
    SimilaritySearch engine(&db, std::make_unique<BiBranchFilter>(o));
    Rng rng(888);
    QueryStats total;
    for (int qi = 0; qi < queries; ++qi) {
      const Tree& query = db.tree(
          static_cast<int>(rng.UniformIndex(static_cast<size_t>(db.size()))));
      total += engine.Range(query, tau).stats;
    }
    std::printf("  q=%d accessed%%=%-8.3f filterCPU=%-8.4fs "
                "totalCPU=%-8.4fs\n",
                q, 100.0 * total.AccessedFraction(), total.filter_seconds,
                total.TotalSeconds());
    ReportAblationPoint("q", "q=" + std::to_string(q), name, queries, tau,
                        total, report);
  }
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const CommonFlags common = ParseCommonFlags(flags, 600, 6);
  if (!ApplyQueryLogFlags(common)) return 1;
  const int trees = common.trees;
  const int queries = common.queries;
  BenchReport report("ablation_matching");
  ReportCommonConfig(common, report);
  std::printf("=== Ablation: positional matching modes and branch level q "
              "===\n");

  auto bushy = BushyDataset(trees, common.seed);
  {
    Rng rng(5);
    const int tau =
        static_cast<int>(bushy->EstimateAverageDistance(rng, 200) / 5);
    RunMatchingModes(*bushy, queries, tau, report);
    RunQSweep("bushy (fanout 4)", *bushy, queries, tau, report);
  }
  auto deep = DeepDataset(trees, common.seed);
  {
    Rng rng(5);
    const int tau =
        static_cast<int>(deep->EstimateAverageDistance(rng, 200) / 5);
    RunQSweep("deep (fanout 1.2)", *deep, queries, tau, report);
  }
  std::printf("expected: exact vs greedy accessed%% nearly identical (auto "
              "= exact on small occurrence lists) with greedy cheapest; "
              "larger q never helps on bushy data but can on deep data "
              "where the height-q window stays informative\n\n");
  return report.WriteIfRequested(common.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
