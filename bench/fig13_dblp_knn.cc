// Reproduces Figure 13: k-NN searches on DBLP, k in {5,7,10,12,15,17,20}.
// The paper samples 2000 records from the real DBLP (avg size 10.15, avg
// depth 2.902, avg pairwise distance 5.031) and 100 queries from that set;
// we substitute the calibrated DBLP-like generator (see DESIGN.md) and print
// the realized statistics alongside.
//
// Paper shape: BiBranch accesses 1-3x less data than Histo; BiBranch search
// time is about 1/6 of the sequential scan.
#include <cstdio>

#include "bench_util.h"
#include "datagen/dblp_generator.h"
#include "tree/traversal.h"

namespace treesim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int trees = static_cast<int>(flags.GetInt("trees", 2000));
  const int queries = static_cast<int>(flags.GetInt("queries", 50));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  PrintFigureHeader("Figure 13", "k-NN searches on DBLP(-like) data",
                    "k-NN, k in {5..20}, " + std::to_string(trees) +
                        " bibliographic records",
                    queries);
  auto labels = std::make_shared<LabelDictionary>();
  DblpGenerator gen(DblpParams{}, labels, seed);
  auto db = MakeDatabase(labels, gen.Generate(trees));

  double depth_total = 0;
  for (int i = 0; i < db->size(); ++i) {
    depth_total += TreeHeight(db->tree(i));
  }
  std::printf("realized: avg size %.2f (paper 10.15), avg depth %.3f "
              "(paper 2.902)\n",
              db->AverageTreeSize(), depth_total / db->size());

  for (const int k : {5, 7, 10, 12, 15, 17, 20}) {
    WorkloadConfig config;
    config.threads = static_cast<int>(flags.GetInt("threads", 1));
    config.kind = WorkloadKind::kKnn;
    config.queries = queries;
    config.fixed_k = k;
    config.seed = 20050614 + static_cast<uint64_t>(k);
    const WorkloadResult r = RunWorkload(*db, config);
    std::printf("k=%-3d avgDist=%-6.2f result%%=%-7.3f BiBranch%%=%-8.3f "
                "Histo%%=%-8.3f BiBranchCPU=%-8.4fs SeqCPU=%-8.4fs\n",
                k, r.avg_distance, r.result_pct, r.bibranch_pct, r.histo_pct,
                r.bibranch_cpu, r.sequential_cpu);
  }
  std::printf("expected shape: BiBranch%% 1-3x below Histo%%; BiBranchCPU "
              "around 1/6 of SeqCPU\n\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
