// Reproduces Figure 13: k-NN searches on DBLP, k in {5,7,10,12,15,17,20}.
// The paper samples 2000 records from the real DBLP (avg size 10.15, avg
// depth 2.902, avg pairwise distance 5.031) and 100 queries from that set;
// we substitute the calibrated DBLP-like generator (see DESIGN.md) and print
// the realized statistics alongside.
//
// Paper shape: BiBranch accesses 1-3x less data than Histo; BiBranch search
// time is about 1/6 of the sequential scan.
#include <cstdio>

#include "bench_util.h"
#include "datagen/dblp_generator.h"
#include "tree/traversal.h"

namespace treesim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const CommonFlags common = ParseCommonFlags(flags, 2000, 50);
  if (!ApplyQueryLogFlags(common)) return 1;
  BenchReport report("fig13_dblp_knn");
  ReportCommonConfig(common, report);

  PrintFigureHeader("Figure 13", "k-NN searches on DBLP(-like) data",
                    "k-NN, k in {5..20}, " + std::to_string(common.trees) +
                        " bibliographic records",
                    common.queries);
  auto labels = std::make_shared<LabelDictionary>();
  DblpGenerator gen(DblpParams{}, labels, common.seed);
  auto db = MakeDatabase(labels, gen.Generate(common.trees));

  double depth_total = 0;
  for (int i = 0; i < db->size(); ++i) {
    depth_total += TreeHeight(db->tree(i));
  }
  std::printf("realized: avg size %.2f (paper 10.15), avg depth %.3f "
              "(paper 2.902)\n",
              db->AverageTreeSize(), depth_total / db->size());

  for (const int k : {5, 7, 10, 12, 15, 17, 20}) {
    WorkloadConfig config;
    config.threads = common.threads;
    config.kind = WorkloadKind::kKnn;
    config.queries = common.queries;
    config.fixed_k = k;
    config.seed = 20050614 + static_cast<uint64_t>(k);
    const WorkloadResult r = RunWorkload(*db, config);
    std::printf("k=%-3d avgDist=%-6.2f result%%=%-7.3f BiBranch%%=%-8.3f "
                "Histo%%=%-8.3f BiBranchCPU=%-8.4fs SeqCPU=%-8.4fs\n",
                k, r.avg_distance, r.result_pct, r.bibranch_pct, r.histo_pct,
                r.bibranch_cpu, r.sequential_cpu);
    ReportSweepPoint("k", k, WorkloadKind::kKnn, config.queries, r, report);
  }
  std::printf("expected shape: BiBranch%% 1-3x below Histo%%; BiBranchCPU "
              "around 1/6 of SeqCPU\n\n");
  return report.WriteIfRequested(common.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
