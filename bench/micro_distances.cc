// Microbenchmark behind the paper's motivation (Sections 1 and 5): the
// exact tree edit distance costs O(|T1||T2| * kr^2) while the binary branch
// lower bound costs O(|T1| + |T2|) — the gap that makes filter-and-refine
// worthwhile grows quadratically with tree size.
#include <memory>

#include "benchmark/benchmark.h"
#include "micro_report.h"
#include "core/branch_profile.h"
#include "core/positional.h"
#include "datagen/synthetic_generator.h"
#include "filters/histogram_filter.h"
#include "ted/naive_ted.h"
#include "ted/zhang_shasha.h"

namespace treesim {
namespace {

SyntheticParams ParamsForSize(int size) {
  SyntheticParams p;
  p.size_mean = size;
  p.size_stddev = size / 25.0 + 1;
  p.label_count = 8;
  return p;
}

class TreePairFixture : public benchmark::Fixture {
 public:
  void SetUp(const ::benchmark::State& state) override {
    const int size = static_cast<int>(state.range(0));
    labels_ = std::make_shared<LabelDictionary>();
    SyntheticGenerator gen(ParamsForSize(size), labels_, 17);
    a_ = std::make_unique<Tree>(gen.GenerateSeedTree());
    b_ = std::make_unique<Tree>(gen.GenerateSeedTree());
    va_ = std::make_unique<TedTree>(TedTree::FromTree(*a_));
    vb_ = std::make_unique<TedTree>(TedTree::FromTree(*b_));
  }
  void TearDown(const ::benchmark::State&) override {
    va_.reset();
    vb_.reset();
    a_.reset();
    b_.reset();
    labels_.reset();
  }

 protected:
  std::shared_ptr<LabelDictionary> labels_;
  std::unique_ptr<Tree> a_, b_;
  std::unique_ptr<TedTree> va_, vb_;
};

BENCHMARK_DEFINE_F(TreePairFixture, ZhangShasha)(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(TreeEditDistance(*va_, *vb_));
  }
}
BENCHMARK_REGISTER_F(TreePairFixture, ZhangShasha)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Arg(125)
    ->Arg(250);

BENCHMARK_DEFINE_F(TreePairFixture, ZhangShashaWeighted)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TreeEditDistanceWeighted(*va_, *vb_, UnitCostModel::Get()));
  }
}
BENCHMARK_REGISTER_F(TreePairFixture, ZhangShashaWeighted)->Arg(50);

BENCHMARK_DEFINE_F(TreePairFixture, NaiveMemoizedTed)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveTreeEditDistance(*a_, *b_));
  }
}
BENCHMARK_REGISTER_F(TreePairFixture, NaiveMemoizedTed)->Arg(10)->Arg(25);

BENCHMARK_DEFINE_F(TreePairFixture, BranchLowerBoundEndToEnd)
(benchmark::State& state) {
  // Includes profile extraction — the cost a one-shot comparison pays.
  for (auto _ : state) {
    BranchDictionary dict(2);
    const BranchProfile pa = BranchProfile::FromTree(*a_, dict);
    const BranchProfile pb = BranchProfile::FromTree(*b_, dict);
    benchmark::DoNotOptimize(OptimisticBound(pa, pb));
  }
}
BENCHMARK_REGISTER_F(TreePairFixture, BranchLowerBoundEndToEnd)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Arg(125)
    ->Arg(250);

BENCHMARK_DEFINE_F(TreePairFixture, HistogramBoundEndToEnd)
(benchmark::State& state) {
  HistogramFilter filter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Bound(filter.ExtractFeatures(*a_),
                                          filter.ExtractFeatures(*b_)));
  }
}
BENCHMARK_REGISTER_F(TreePairFixture, HistogramBoundEndToEnd)
    ->Arg(50)
    ->Arg(250);

BENCHMARK_DEFINE_F(TreePairFixture, TedViewConstruction)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(TedTree::FromTree(*a_));
  }
}
BENCHMARK_REGISTER_F(TreePairFixture, TedViewConstruction)->Arg(50)->Arg(250);

}  // namespace
}  // namespace treesim

int main(int argc, char** argv) {
  return treesim::bench::MicroBenchMain(argc, argv, "micro_distances");
}
