// Reproduces Figure 11: range queries, sensitivity to the number of labels.
// Datasets: N{4,0.5} N{50,2} L{y} D0.05 with y in {8,16,32,64}, 2000 trees.
//
// Paper shape: BiBranch always wins (by >20x at 8 labels); Histo improves as
// labels grow to 32 (label histogram gains power), then degrades again at 64
// because distances grow while its vector budget stays fixed.
#include <cstdio>

#include "bench_util.h"

namespace treesim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const CommonFlags common = ParseCommonFlags(flags, 2000, 8);
  if (!ApplyQueryLogFlags(common)) return 1;
  BenchReport report("fig11_labels_range");
  ReportCommonConfig(common, report);

  PrintFigureHeader("Figure 11", "range queries, sensitivity to label count",
                    "range, tau = avgDist/5, dataset N{4,0.5}N{50,2}L{y}D0.05, " +
                        std::to_string(common.trees) + " trees",
                    common.queries);
  for (const int label_count : {8, 16, 32, 64}) {
    auto labels = std::make_shared<LabelDictionary>();
    SyntheticParams params;
    params.fanout_mean = 4;
    params.fanout_stddev = 0.5;
    params.size_mean = 50;
    params.size_stddev = 2;
    params.label_count = label_count;
    params.decay = 0.05;
    SyntheticGenerator gen(params, labels, common.seed);
    auto db = MakeDatabase(labels, gen.GenerateDataset(common.trees));

    WorkloadConfig config;
    config.threads = common.threads;
    config.kind = WorkloadKind::kRange;
    config.queries = common.queries;
    config.tau_fraction = 0.2;
    const WorkloadResult r = RunWorkload(*db, config);
    PrintSweepRow("labels", label_count, WorkloadKind::kRange, r);
    ReportSweepPoint("labels", label_count, WorkloadKind::kRange,
                     config.queries, r, report);
  }
  std::printf("expected shape: BiBranch%% << Histo%% everywhere; Histo "
              "narrows the gap as labels grow\n\n");
  return report.WriteIfRequested(common.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
