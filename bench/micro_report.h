#ifndef TREESIM_BENCH_MICRO_REPORT_H_
#define TREESIM_BENCH_MICRO_REPORT_H_

// `--json=FILE` support for the Google-Benchmark micro benches: the two
// micro binaries replace BENCHMARK_MAIN() with MicroBenchMain(), which
// strips the treesim-level flag before benchmark::Initialize() sees it,
// runs the suite through a collecting ConsoleReporter, and writes the same
// canonical BenchReport schema the figure benches emit (one point per
// benchmark run, label = the benchmark's full name).

#include <cstdint>
#include <string>
#include <vector>

#include "bench_report.h"
#include "benchmark/benchmark.h"

namespace treesim {
namespace bench {

/// Console output as usual, plus per-run aggregates for the report.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct CollectedRun {
    std::string name;
    int64_t iterations = 0;
    double real_time_ns = 0;
    double cpu_time_ns = 0;
    double items_per_second = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      CollectedRun out;
      out.name = run.benchmark_name();
      out.iterations = run.iterations;
      out.real_time_ns = run.GetAdjustedRealTime();
      out.cpu_time_ns = run.GetAdjustedCPUTime();
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        out.items_per_second = static_cast<double>(items->second);
      }
      collected_.push_back(out);
    }
  }

  const std::vector<CollectedRun>& collected() const { return collected_; }

 private:
  std::vector<CollectedRun> collected_;
};

inline int MicroBenchMain(int argc, char** argv, const char* name) {
  std::string json_path;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                             passthrough.data())) {
    return 1;
  }

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  BenchReport report(name);
  for (const CollectingReporter::CollectedRun& run : reporter.collected()) {
    report.AddPoint()
        .Str("label", run.name)
        .Int("iterations", run.iterations)
        .Double("real_time_ns", run.real_time_ns)
        .Double("cpu_time_ns", run.cpu_time_ns)
        .Double("items_per_second", run.items_per_second);
  }
  benchmark::Shutdown();
  return report.WriteIfRequested(json_path) ? 0 : 1;
}

}  // namespace bench
}  // namespace treesim

#endif  // TREESIM_BENCH_MICRO_REPORT_H_
