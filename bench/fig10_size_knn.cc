// Reproduces Figure 10: k-NN queries, sensitivity to tree size.
// Datasets as in Figure 9; k = 0.25% of the dataset.
//
// Paper shape: mirrors Figure 9 — BiBranch access stays low across sizes,
// Histo needs much more, and the sequential scan cost explodes with size.
#include <cstdio>

#include "bench_util.h"

namespace treesim {
namespace bench {
namespace {

int DefaultQueries(int size_mean) {
  if (size_mean <= 25) return 10;
  if (size_mean <= 50) return 8;
  if (size_mean <= 75) return 5;
  return 3;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  // -1 = per-size default (DefaultQueries above).
  const CommonFlags common = ParseCommonFlags(flags, 2000, -1);
  if (!ApplyQueryLogFlags(common)) return 1;
  BenchReport report("fig10_size_knn");
  ReportCommonConfig(common, report);

  PrintFigureHeader("Figure 10", "k-NN queries, sensitivity to tree size",
                    "k-NN, k = 0.25% of |D|, dataset N{4,0.5}N{s,2}L8D0.05, " +
                        std::to_string(common.trees) + " trees",
                    common.queries);
  for (const int size : {25, 50, 75, 125}) {
    auto labels = std::make_shared<LabelDictionary>();
    SyntheticParams params;
    params.fanout_mean = 4;
    params.fanout_stddev = 0.5;
    params.size_mean = size;
    params.size_stddev = 2;
    params.label_count = 8;
    params.decay = 0.05;
    SyntheticGenerator gen(params, labels, common.seed);
    auto db = MakeDatabase(labels, gen.GenerateDataset(common.trees));

    WorkloadConfig config;
    config.threads = common.threads;
    config.kind = WorkloadKind::kKnn;
    config.queries =
        common.queries > 0 ? common.queries : DefaultQueries(size);
    config.k_fraction = 0.0025;
    const WorkloadResult r = RunWorkload(*db, config);
    PrintSweepRow("size", size, WorkloadKind::kKnn, r);
    ReportSweepPoint("size", size, WorkloadKind::kKnn, config.queries, r,
                     report);
  }
  std::printf("expected shape: BiBranch%% << Histo%% for every size; "
              "SeqCPU grows quadratically with tree size\n\n");
  return report.WriteIfRequested(common.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
