#ifndef TREESIM_BENCH_BENCH_REPORT_H_
#define TREESIM_BENCH_BENCH_REPORT_H_

// Canonical machine-readable bench output. Every figure/ablation/micro
// binary accepts `--json=FILE` and writes one report in this schema:
//
//   {
//     "schema_version": 1,
//     "benchmark": "<binary name>",
//     "build": {"git_sha": "...", "git_dirty": false,
//               "build_type": "Release", "compiler": "GNU 13.2.0",
//               "metrics_enabled": true},
//     "config": { ...flag values the run used... },
//     "points": [ { "label": "...", "x": 2.0, ...measures... ,
//                   "stats": {...}, "metrics": {...} }, ... ]
//   }
//
// `tools/run_benchmarks.py` merges the per-binary reports into
// BENCH_treesim.json at the repo root; `tools/bench_compare.py` diffs two
// such files with per-metric noise thresholds (the regression gate).
//
// Values are rendered to JSON text on append (same approach as
// util/structured_log.h), so the builder needs no variant type and the
// schema is exactly what the call sites say, in call order.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "search/query_stats.h"
#include "util/metrics.h"
#include "util/status.h"

namespace treesim {
namespace bench {

/// Ordered key -> pre-rendered-JSON-value map; nests via Raw().
class JsonObject {
 public:
  JsonObject& Str(const std::string& key, std::string_view value);
  JsonObject& Int(const std::string& key, int64_t value);
  JsonObject& Double(const std::string& key, double value);
  JsonObject& Bool(const std::string& key, bool value);
  /// Embeds `json` verbatim — for pre-rendered values such as
  /// MetricsSnapshot::ToJson() or a nested JsonObject::Render().
  JsonObject& Raw(const std::string& key, std::string json);

  /// `{"k":v,...}` in append order. Appending the same key twice emits it
  /// twice — callers own key uniqueness.
  std::string Render() const;

  bool empty() const { return fields_.empty(); }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Canonical JSON encoding of one query workload's QueryStats.
std::string QueryStatsJson(const QueryStats& stats);

/// One benchmark run: build provenance is captured automatically
/// (bench_report.cc compiles in the CMake-generated util/build_info.h).
class BenchReport {
 public:
  explicit BenchReport(std::string benchmark_name);

  /// The flag/config values the run used (rendered under "config").
  JsonObject& config() { return config_; }

  /// Appends a sweep point and returns it for the caller to fill.
  JsonObject& AddPoint();

  /// The whole report as one JSON document.
  std::string Render() const;

  /// Writes Render() to `path` (truncating).
  Status WriteFile(const std::string& path) const;

  /// Convenience for the `--json=FILE` contract: no-op when `path` is
  /// empty; on failure prints the status to stderr and returns false.
  bool WriteIfRequested(const std::string& path) const;

 private:
  std::string name_;
  JsonObject config_;
  std::vector<JsonObject> points_;
};

}  // namespace bench
}  // namespace treesim

#endif  // TREESIM_BENCH_BENCH_REPORT_H_
