// Reproduces Figure 8: k-NN queries, sensitivity to node fanout.
// Datasets as in Figure 7; k = 0.25% of the dataset (5 for 2000 trees).
//
// Paper shape: BiBranch accesses at most ~23% of what Histo accesses; the
// filter step itself is a tiny fraction of the sequential CPU (~2%).
#include <cstdio>

#include "bench_util.h"

namespace treesim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const CommonFlags common = ParseCommonFlags(flags);
  if (!ApplyQueryLogFlags(common)) return 1;
  BenchReport report("fig08_fanout_knn");
  ReportCommonConfig(common, report);

  PrintFigureHeader("Figure 8", "k-NN queries, sensitivity to fanout",
                    "k-NN, k = 0.25% of |D|, dataset N{f,0.5}N{50,2}L8D0.05, " +
                        std::to_string(common.trees) + " trees",
                    common.queries);
  for (const double fanout : {2.0, 4.0, 6.0, 8.0}) {
    auto labels = std::make_shared<LabelDictionary>();
    SyntheticParams params;
    params.fanout_mean = fanout;
    params.fanout_stddev = 0.5;
    params.size_mean = 50;
    params.size_stddev = 2;
    params.label_count = 8;
    params.decay = 0.05;
    SyntheticGenerator gen(params, labels, common.seed);
    auto db = MakeDatabase(labels, gen.GenerateDataset(common.trees));

    WorkloadConfig config;
    config.threads = common.threads;
    config.kind = WorkloadKind::kKnn;
    config.queries = common.queries;
    config.k_fraction = 0.0025;
    const WorkloadResult r = RunWorkload(*db, config);
    PrintSweepRow("fanout", fanout, WorkloadKind::kKnn, r);
    ReportSweepPoint("fanout", fanout, WorkloadKind::kKnn, config.queries, r,
                     report);
  }
  std::printf("expected shape: BiBranch%% << Histo%% at every fanout; "
              "filter CPU is a small fraction of SeqCPU\n\n");
  return report.WriteIfRequested(common.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
