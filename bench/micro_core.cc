// Microbenchmarks for the core embedding machinery, checking the complexity
// claims of Section 4.4: vector construction is linear in the total number
// of nodes, the binary branch distance is linear in the profile sizes, and
// the optimistic bound search adds only a log factor.
#include <memory>
#include <vector>

#include "benchmark/benchmark.h"
#include "micro_report.h"
#include "core/branch_profile.h"
#include "core/inverted_file.h"
#include "core/positional.h"
#include "core/vptree.h"
#include "datagen/synthetic_generator.h"

namespace treesim {
namespace {

SyntheticParams ParamsForSize(int size) {
  SyntheticParams p;
  p.size_mean = size;
  p.size_stddev = size / 25.0 + 1;
  p.label_count = 8;
  return p;
}

void BM_ProfileConstruction(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  auto labels = std::make_shared<LabelDictionary>();
  SyntheticGenerator gen(ParamsForSize(size), labels, 7);
  const Tree t = gen.GenerateSeedTree();
  BranchDictionary dict(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BranchProfile::FromTree(t, dict));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_ProfileConstruction)->Arg(25)->Arg(50)->Arg(125)->Arg(500);

void BM_ProfileConstructionQ(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  auto labels = std::make_shared<LabelDictionary>();
  SyntheticGenerator gen(ParamsForSize(50), labels, 7);
  const Tree t = gen.GenerateSeedTree();
  BranchDictionary dict(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BranchProfile::FromTree(t, dict));
  }
}
BENCHMARK(BM_ProfileConstructionQ)->Arg(2)->Arg(3)->Arg(4);

void BM_InvertedFileBuild(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  auto labels = std::make_shared<LabelDictionary>();
  SyntheticGenerator gen(ParamsForSize(50), labels, 7);
  const std::vector<Tree> trees = gen.GenerateDataset(count);
  for (auto _ : state) {
    InvertedFileIndex index(2);
    for (const Tree& t : trees) index.Add(t);
    benchmark::DoNotOptimize(index.BuildProfiles());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_InvertedFileBuild)->Arg(100)->Arg(500)->Arg(2000);

class ProfilePairFixture : public benchmark::Fixture {
 public:
  void SetUp(const ::benchmark::State& state) override {
    const int size = static_cast<int>(state.range(0));
    auto labels = std::make_shared<LabelDictionary>();
    SyntheticGenerator gen(ParamsForSize(size), labels, 11);
    dict_ = std::make_unique<BranchDictionary>(2);
    a_ = std::make_unique<BranchProfile>(
        BranchProfile::FromTree(gen.GenerateSeedTree(), *dict_));
    b_ = std::make_unique<BranchProfile>(
        BranchProfile::FromTree(gen.GenerateSeedTree(), *dict_));
  }
  void TearDown(const ::benchmark::State&) override {
    a_.reset();
    b_.reset();
    dict_.reset();
  }

 protected:
  std::unique_ptr<BranchDictionary> dict_;
  std::unique_ptr<BranchProfile> a_, b_;
};

BENCHMARK_DEFINE_F(ProfilePairFixture, BranchDistance)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(BranchDistance(*a_, *b_));
  }
}
BENCHMARK_REGISTER_F(ProfilePairFixture, BranchDistance)
    ->Arg(25)
    ->Arg(50)
    ->Arg(125)
    ->Arg(500);

BENCHMARK_DEFINE_F(ProfilePairFixture, PositionalDistance)
(benchmark::State& state) {
  const int pr = static_cast<int>(state.range(0)) / 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PositionalBranchDistance(*a_, *b_, pr));
  }
}
BENCHMARK_REGISTER_F(ProfilePairFixture, PositionalDistance)
    ->Arg(25)
    ->Arg(50)
    ->Arg(125)
    ->Arg(500);

BENCHMARK_DEFINE_F(ProfilePairFixture, OptimisticBound)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimisticBound(*a_, *b_));
  }
}
BENCHMARK_REGISTER_F(ProfilePairFixture, OptimisticBound)
    ->Arg(25)
    ->Arg(50)
    ->Arg(125)
    ->Arg(500);

void BM_VpTreeRangeVsLinear(benchmark::State& state) {
  // Candidate retrieval for one range query: VP-tree ball search vs a
  // linear BDist scan, on size-spread data where metric pruning applies.
  const bool use_vptree = state.range(0) != 0;
  auto labels = std::make_shared<LabelDictionary>();
  std::vector<BranchProfile> profiles;
  BranchDictionary dict(2);
  {
    Rng rng(21);
    SyntheticParams params;
    params.seed_count = 50;
    for (int size = 10; size <= 150; size += 10) {
      params.size_mean = size;
      SyntheticGenerator gen(params, labels, 21 + static_cast<uint64_t>(size));
      for (Tree& t : gen.GenerateDataset(100)) {
        profiles.push_back(BranchProfile::FromTree(t, dict));
      }
    }
  }
  Rng tree_rng(23);
  const VpTree index(&profiles, tree_rng);
  const BranchProfile& query = profiles[777];
  const int64_t radius = 10;
  for (auto _ : state) {
    if (use_vptree) {
      benchmark::DoNotOptimize(index.RangeSearch(query, radius));
    } else {
      std::vector<int> hits;
      for (size_t i = 0; i < profiles.size(); ++i) {
        if (BranchDistance(query, profiles[i]) <= radius) {
          hits.push_back(static_cast<int>(i));
        }
      }
      benchmark::DoNotOptimize(hits);
    }
  }
}
BENCHMARK(BM_VpTreeRangeVsLinear)->Arg(0)->Arg(1);

void BM_OptimisticBoundGreedyVsExact(benchmark::State& state) {
  auto labels = std::make_shared<LabelDictionary>();
  SyntheticGenerator gen(ParamsForSize(100), labels, 13);
  BranchDictionary dict(2);
  const BranchProfile a = BranchProfile::FromTree(gen.GenerateSeedTree(), dict);
  const BranchProfile b = BranchProfile::FromTree(gen.GenerateSeedTree(), dict);
  const MatchingMode mode = static_cast<MatchingMode>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimisticBound(a, b, mode));
  }
}
BENCHMARK(BM_OptimisticBoundGreedyVsExact)
    ->Arg(static_cast<int>(MatchingMode::kExact))
    ->Arg(static_cast<int>(MatchingMode::kGreedy))
    ->Arg(static_cast<int>(MatchingMode::kAuto));

}  // namespace
}  // namespace treesim

int main(int argc, char** argv) {
  return treesim::bench::MicroBenchMain(argc, argv, "micro_core");
}
