// Ablation: every filter in the library against the same workloads — the
// paper's BiBranch (positional and plain, q=2/3), the histogram baseline
// (Kailing et al.), and the related-work sequence bounds of Section 2.2
// (Guha et al. exact SED, Ukkonen q-grams on traversal sequences).
// Reports accessed-data % and CPU split, for a range and a k-NN workload on
// a synthetic and a DBLP-like dataset.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "datagen/dblp_generator.h"
#include "filters/sequence_filter.h"

namespace treesim {
namespace bench {
namespace {

struct NamedFilter {
  const char* label;
  std::unique_ptr<FilterIndex> (*make)();
};

const NamedFilter kFilters[] = {
    {"BiBranch(2) positional",
     [] {
       return std::unique_ptr<FilterIndex>(new BiBranchFilter());
     }},
    {"BiBranch(2) plain",
     [] {
       BiBranchFilter::Options o;
       o.positional = false;
       return std::unique_ptr<FilterIndex>(new BiBranchFilter(o));
     }},
    {"BiBranch(2) + VP-tree",
     [] {
       BiBranchFilter::Options o;
       o.use_vptree = true;
       return std::unique_ptr<FilterIndex>(new BiBranchFilter(o));
     }},
    {"BiBranch(3) positional",
     [] {
       BiBranchFilter::Options o;
       o.q = 3;
       return std::unique_ptr<FilterIndex>(new BiBranchFilter(o));
     }},
    {"Histo (unbounded)",
     [] {
       return std::unique_ptr<FilterIndex>(new HistogramFilter());
     }},
    {"SeqED (Guha et al.)",
     [] {
       SequenceFilter::Options o;
       o.mode = SequenceFilter::Options::Mode::kEditDistance;
       return std::unique_ptr<FilterIndex>(new SequenceFilter(o));
     }},
    {"SeqQGram(2)",
     [] {
       return std::unique_ptr<FilterIndex>(new SequenceFilter());
     }},
};

void RunDataset(const char* dataset_name, const TreeDatabase& db,
                int queries, int tau, int k, BenchReport& report) {
  std::printf("--- %s: %d trees, avg size %.1f | range tau=%d, %d-NN, "
              "%d queries ---\n",
              dataset_name, db.size(), db.AverageTreeSize(), tau, k, queries);
  std::printf("%-26s %10s %10s %12s %12s\n", "filter", "range%", "knn%",
              "rangeCPU(s)", "knnCPU(s)");
  for (const NamedFilter& nf : kFilters) {
    SimilaritySearch engine(&db, nf.make());
    Rng rng(4242);
    QueryStats range_total;
    QueryStats knn_total;
    for (int qi = 0; qi < queries; ++qi) {
      const Tree& query = db.tree(
          static_cast<int>(rng.UniformIndex(static_cast<size_t>(db.size()))));
      range_total += engine.Range(query, tau).stats;
      knn_total += engine.Knn(query, k).stats;
    }
    std::printf("%-26s %10.3f %10.3f %12.3f %12.3f\n", nf.label,
                100.0 * range_total.AccessedFraction(),
                100.0 * knn_total.AccessedFraction(),
                range_total.TotalSeconds(), knn_total.TotalSeconds());
    JsonObject stats;
    stats.Raw("range", QueryStatsJson(range_total))
        .Raw("knn", QueryStatsJson(knn_total));
    report.AddPoint()
        .Str("label", nf.label)
        .Str("dataset", dataset_name)
        .Int("queries", queries)
        .Int("tau", tau)
        .Int("k", k)
        .Double("range_pct", 100.0 * range_total.AccessedFraction())
        .Double("knn_pct", 100.0 * knn_total.AccessedFraction())
        .Double("range_cpu_seconds", range_total.TotalSeconds())
        .Double("knn_cpu_seconds", knn_total.TotalSeconds())
        .Raw("stats", stats.Render());
  }
  std::printf("\n");
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const CommonFlags common = ParseCommonFlags(flags, 800, 8);
  if (!ApplyQueryLogFlags(common)) return 1;
  const int trees = common.trees;
  const int queries = common.queries;
  BenchReport report("ablation_filters");
  ReportCommonConfig(common, report);
  std::printf("=== Ablation: filter comparison (incl. related-work "
              "baselines) ===\n");

  {
    auto labels = std::make_shared<LabelDictionary>();
    SyntheticParams params;  // the paper's default N{4,0.5}N{50,2}L8D0.05
    SyntheticGenerator gen(params, labels, common.seed);
    auto db = MakeDatabase(labels, gen.GenerateDataset(trees));
    Rng rng(9);
    const int tau =
        static_cast<int>(db->EstimateAverageDistance(rng, 200) / 5);
    RunDataset("synthetic N{4,0.5}N{50,2}L8", *db, queries, tau,
               std::max(1, trees / 400), report);
  }
  {
    auto labels = std::make_shared<LabelDictionary>();
    DblpGenerator gen(DblpParams{}, labels, common.seed);
    auto db = MakeDatabase(labels, gen.Generate(trees));
    RunDataset("DBLP-like", *db, queries, /*tau=*/2,
               std::max(1, trees / 400), report);
  }
  std::printf("expected: positional BiBranch tightest overall; SeqED tight "
              "but with by far the largest filter CPU (quadratic per pair); "
              "SeqQGram cheap but loose\n\n");
  return report.WriteIfRequested(common.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
