#include "bench_report.h"

#include <cmath>
#include <cstdio>

#include "util/build_info.h"

namespace treesim {
namespace bench {
namespace {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string JsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  AppendJsonEscaped(out, s);
  out += '"';
  return out;
}

std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "null";  // NaN/inf are not JSON
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

JsonObject& JsonObject::Str(const std::string& key, std::string_view value) {
  fields_.emplace_back(key, JsonString(value));
  return *this;
}

JsonObject& JsonObject::Int(const std::string& key, int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::Double(const std::string& key, double value) {
  fields_.emplace_back(key, JsonDouble(value));
  return *this;
}

JsonObject& JsonObject::Bool(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::Raw(const std::string& key, std::string json) {
  fields_.emplace_back(key, std::move(json));
  return *this;
}

std::string JsonObject::Render() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ',';
    out += JsonString(fields_[i].first);
    out += ':';
    out += fields_[i].second;
  }
  out += '}';
  return out;
}

std::string QueryStatsJson(const QueryStats& stats) {
  JsonObject o;
  o.Int("database_size", stats.database_size)
      .Int("candidates", stats.candidates)
      .Int("edit_distance_calls", stats.edit_distance_calls)
      .Int("results", stats.results)
      .Double("filter_seconds", stats.filter_seconds)
      .Double("refine_seconds", stats.refine_seconds)
      .Double("accessed_fraction", stats.AccessedFraction());
  return o.Render();
}

BenchReport::BenchReport(std::string benchmark_name)
    : name_(std::move(benchmark_name)) {}

JsonObject& BenchReport::AddPoint() {
  points_.emplace_back();
  return points_.back();
}

std::string BenchReport::Render() const {
  JsonObject build;
  build.Str("git_sha", build_info::kGitSha)
      .Bool("git_dirty", build_info::kGitDirty)
      .Str("build_type", build_info::kBuildType)
      .Str("compiler", build_info::kCompiler)
      .Bool("metrics_enabled", kMetricsEnabled);

  std::string points = "[";
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) points += ',';
    points += points_[i].Render();
  }
  points += ']';

  JsonObject doc;
  doc.Int("schema_version", 1)
      .Str("benchmark", name_)
      .Raw("build", build.Render())
      .Raw("config", config_.Render())
      .Raw("points", std::move(points));
  return doc.Render();
}

Status BenchReport::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open bench report file " + path);
  }
  const std::string doc = Render();
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  const bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) return Status::Internal("short write to bench report " + path);
  return Status::Ok();
}

bool BenchReport::WriteIfRequested(const std::string& path) const {
  if (path.empty()) return true;
  const Status status = WriteFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "bench report: %s\n", status.ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "bench report written to %s\n", path.c_str());
  return true;
}

}  // namespace bench
}  // namespace treesim
