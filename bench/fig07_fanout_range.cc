// Reproduces Figure 7: range queries, sensitivity to node fanout.
// Datasets: N{f,0.5} N{50,2} L8 D0.05 with fanout mean f in {2,4,6,8},
// 2000 trees; range = 1/5 of the average pairwise distance.
//
// Paper shape: BiBranch accesses at most ~3.35% of what Histo accesses;
// both filters access the most data at fanout 2 (height variance dominates),
// and Histo improves with growing fanout while staying well above BiBranch.
#include <cstdio>

#include "bench_util.h"

namespace treesim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const CommonFlags common = ParseCommonFlags(flags);
  if (!ApplyQueryLogFlags(common)) return 1;
  BenchReport report("fig07_fanout_range");
  ReportCommonConfig(common, report);

  PrintFigureHeader("Figure 7", "range queries, sensitivity to fanout",
                    "range, tau = avgDist/5, dataset N{f,0.5}N{50,2}L8D0.05, " +
                        std::to_string(common.trees) + " trees",
                    common.queries);
  for (const double fanout : {2.0, 4.0, 6.0, 8.0}) {
    auto labels = std::make_shared<LabelDictionary>();
    SyntheticParams params;
    params.fanout_mean = fanout;
    params.fanout_stddev = 0.5;
    params.size_mean = 50;
    params.size_stddev = 2;
    params.label_count = 8;
    params.decay = 0.05;
    SyntheticGenerator gen(params, labels, common.seed);
    auto db = MakeDatabase(labels, gen.GenerateDataset(common.trees));

    WorkloadConfig config;
    config.threads = common.threads;
    config.kind = WorkloadKind::kRange;
    config.queries = common.queries;
    config.tau_fraction = 0.2;
    const WorkloadResult r = RunWorkload(*db, config);
    PrintSweepRow("fanout", fanout, WorkloadKind::kRange, r);
    ReportSweepPoint("fanout", fanout, WorkloadKind::kRange, config.queries,
                     r, report);
  }
  std::printf("expected shape: BiBranch%% << Histo%%, both peak at fanout 2; "
              "BiBranchCPU << SeqCPU\n\n");
  return report.WriteIfRequested(common.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
