#ifndef TREESIM_BENCH_BENCH_UTIL_H_
#define TREESIM_BENCH_BENCH_UTIL_H_

// Shared plumbing for the figure-reproduction binaries (Figures 7-15 of the
// paper): dataset construction, query sampling, the three engines
// (BiBranch filter, histogram filter, sequential scan) and paper-style
// table output. Each figure binary is a thin driver over RunWorkload().

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_report.h"
#include "datagen/synthetic_generator.h"
#include "filters/bibranch_filter.h"
#include "filters/histogram_filter.h"
#include "search/similarity_search.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/structured_log.h"
#include "util/thread_pool.h"

namespace treesim {
namespace bench {

/// One figure data point: averages over the query workload.
struct WorkloadResult {
  double result_pct = 0;         // |answers| / |D| * 100
  double bibranch_pct = 0;       // accessed data %, binary branch filter
  double histo_pct = 0;          // accessed data %, histogram filter
  double bibranch_cpu = 0;       // filter-and-refine seconds (BiBranch), total
  double histo_cpu = 0;          // filter-and-refine seconds (Histo), total
  double sequential_cpu = 0;     // sequential scan seconds, total
  double bibranch_filter_cpu = 0;  // filter step only (Section 5.1 remark)
  double avg_distance = 0;       // sampled average pairwise edit distance
  int tau = 0;                   // range used (range workloads)
  int k = 0;                     // k used (k-NN workloads)
  /// Registry delta over this workload (util/metrics.h) — per-stage
  /// attribution beyond the per-query QueryStats totals. Empty under
  /// TREESIM_METRICS=OFF.
  MetricsSnapshot metrics;
  /// Per-engine totals over the workload (summed QueryStats), for the
  /// canonical JSON report.
  QueryStats sequential_stats;
  QueryStats bibranch_stats;
  QueryStats histo_stats;
};

enum class WorkloadKind { kRange, kKnn };

/// The flags every bench driver shares (satellite of the telemetry layer:
/// one parser, nine drivers). Per-binary defaults come in as arguments;
/// the telemetry flags (--json, --query-log, --slow-query-ms) are uniform.
struct CommonFlags {
  int trees = 0;
  int queries = 0;
  int threads = 0;
  uint64_t seed = 0;
  /// `--json=FILE`: canonical BenchReport destination ("" = no report).
  std::string json_path;
  /// `--query-log=FILE`: JSON-lines query log ("" = disabled).
  std::string query_log;
  /// `--slow-query-ms=N`: only log queries at least this slow (0 = all).
  int64_t slow_query_ms = 0;
};

inline CommonFlags ParseCommonFlags(const FlagParser& flags,
                                    int default_trees = 2000,
                                    int default_queries = 10,
                                    uint64_t default_seed = 1) {
  CommonFlags out;
  out.trees = static_cast<int>(flags.GetInt("trees", default_trees));
  out.queries = static_cast<int>(flags.GetInt("queries", default_queries));
  out.threads = static_cast<int>(flags.GetInt("threads", 1));
  out.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<int64_t>(default_seed)));
  out.json_path = flags.GetString("json", "");
  out.query_log = flags.GetString("query-log", "");
  out.slow_query_ms = flags.GetInt("slow-query-ms", 0);
  return out;
}

/// Records the shared flags under the report's "config" object.
inline void ReportCommonConfig(const CommonFlags& f, BenchReport& report) {
  report.config()
      .Int("trees", f.trees)
      .Int("queries", f.queries)
      .Int("threads", f.threads)
      .Int("seed", static_cast<int64_t>(f.seed))
      .Int("slow_query_ms", f.slow_query_ms);
}

/// Opens the structured query log when requested. Returns false (with a
/// stderr diagnostic) when the file cannot be opened — or when logging was
/// requested in a TREESIM_METRICS=OFF build, where the sink is a stub.
inline bool ApplyQueryLogFlags(const CommonFlags& f) {
  if (f.query_log.empty()) return true;
  StructuredLog& qlog = StructuredLog::Global();
  const Status status = qlog.OpenFile(f.query_log);
  if (!status.ok()) {
    std::fprintf(stderr, "query log: %s\n", status.ToString().c_str());
    return false;
  }
  qlog.set_slow_query_micros(f.slow_query_ms * 1000);
  return true;
}

struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::kRange;
  /// Number of queries, sampled from the dataset itself (as in Section 5).
  int queries = 10;
  /// Range radius as a fraction of the sampled average distance (the paper
  /// uses 1/5); ignored when `fixed_tau` >= 0 or kind == kKnn.
  double tau_fraction = 0.2;
  int fixed_tau = -1;
  /// k as a fraction of the dataset (the paper retrieves 0.25%); ignored
  /// when `fixed_k` > 0 or kind == kRange.
  double k_fraction = 0.0025;
  int fixed_k = -1;
  /// Pairs sampled when estimating the average distance.
  int distance_sample_pairs = 300;
  uint64_t seed = 20050614;  // SIGMOD 2005 opening day
  /// Worker threads for candidate refinement (0 = every hardware thread).
  /// Results are identical for any value; only the CPU columns change.
  int threads = 1;
};

/// Builds a TreeDatabase from generated trees.
inline std::unique_ptr<TreeDatabase> MakeDatabase(
    const std::shared_ptr<LabelDictionary>& labels, std::vector<Tree> trees) {
  auto db = std::make_unique<TreeDatabase>(labels);
  db->AddAll(std::move(trees));
  return db;
}

/// The paper's equal-space normalization (Section 5): the histogram filter
/// may use as many dimensions per tree as the binary branch representation,
/// i.e. the average sparse vector size plus two average tree sizes (the
/// positional arrays). Three dimensions go to the scalar features; the rest
/// is split between the label and degree histograms. On label-rich data
/// (DBLP) this folds the label histogram hard — exactly the regime where the
/// paper observes the histogram filter blurring distances.
inline HistogramFilter::Options NormalizedHistogramOptions(
    const TreeDatabase& db) {
  InvertedFileIndex index(2);
  for (const Tree& t : db.trees()) index.Add(t);
  int64_t dims = 0;
  for (const BranchProfile& p : index.BuildProfiles()) {
    dims += static_cast<int64_t>(p.entries.size());
  }
  const double avg_dims =
      db.size() == 0 ? 0.0 : static_cast<double>(dims) / db.size();
  const int budget =
      static_cast<int>(avg_dims + 2.0 * db.AverageTreeSize());
  // One third per histogram family (height/degree/label), as in Kailing et
  // al.'s three-filter setup; our height third is the scalar features.
  HistogramFilter::Options options;
  options.degree_buckets = std::max(4, budget / 3);
  options.label_buckets = std::max(4, budget / 3);
  return options;
}

/// Runs the paper's measurement protocol on one dataset: every engine
/// answers the same queries; accessed-data percentages and CPU totals are
/// averaged/summed over the workload. Results of the filtered engines are
/// asserted equal to the sequential scan (exactness is part of the claim).
inline WorkloadResult RunWorkload(const TreeDatabase& db,
                                  const WorkloadConfig& config) {
  WorkloadResult out;
  const MetricsSnapshot metrics_before = MetricsRegistry::Global().Snapshot();
  Rng rng(config.seed);

  std::unique_ptr<ThreadPool> owned_pool;
  if (const int workers = ClampThreads(config.threads, db.size());
      workers > 1) {
    owned_pool = std::make_unique<ThreadPool>(workers);
  }
  ThreadPool* const pool = owned_pool.get();

  SimilaritySearch sequential(&db, nullptr);
  SimilaritySearch bibranch(&db, std::make_unique<BiBranchFilter>());
  SimilaritySearch histo(&db, std::make_unique<HistogramFilter>(
                                  NormalizedHistogramOptions(db)));

  out.avg_distance =
      db.EstimateAverageDistance(rng, config.distance_sample_pairs);
  out.tau = config.fixed_tau >= 0
                ? config.fixed_tau
                : static_cast<int>(out.avg_distance * config.tau_fraction);
  out.k = config.fixed_k > 0
              ? config.fixed_k
              : std::max(1, static_cast<int>(db.size() * config.k_fraction));

  QueryStats seq_total;
  QueryStats bb_total;
  QueryStats hi_total;
  for (int qi = 0; qi < config.queries; ++qi) {
    const Tree& query =
        db.tree(static_cast<int>(rng.UniformIndex(
            static_cast<size_t>(db.size()))));
    if (config.kind == WorkloadKind::kRange) {
      const RangeResult seq = sequential.Range(query, out.tau, pool);
      const RangeResult bb = bibranch.Range(query, out.tau, pool);
      const RangeResult hi = histo.Range(query, out.tau, pool);
      if (bb.matches != seq.matches || hi.matches != seq.matches) {
        std::fprintf(stderr, "FATAL: filtered result mismatch (query %d)\n",
                     qi);
        std::abort();
      }
      seq_total += seq.stats;
      bb_total += bb.stats;
      hi_total += hi.stats;
    } else {
      const KnnResult seq = sequential.Knn(query, out.k, pool);
      const KnnResult bb = bibranch.Knn(query, out.k, pool);
      const KnnResult hi = histo.Knn(query, out.k, pool);
      if (bb.neighbors != seq.neighbors || hi.neighbors != seq.neighbors) {
        std::fprintf(stderr, "FATAL: filtered k-NN mismatch (query %d)\n",
                     qi);
        std::abort();
      }
      seq_total += seq.stats;
      bb_total += bb.stats;
      hi_total += hi.stats;
    }
  }

  const double denom = static_cast<double>(seq_total.database_size);
  out.result_pct = 100.0 * static_cast<double>(seq_total.results) / denom;
  out.bibranch_pct =
      100.0 * static_cast<double>(bb_total.edit_distance_calls) / denom;
  out.histo_pct =
      100.0 * static_cast<double>(hi_total.edit_distance_calls) / denom;
  out.bibranch_cpu = bb_total.TotalSeconds();
  out.histo_cpu = hi_total.TotalSeconds();
  out.sequential_cpu = seq_total.TotalSeconds();
  out.bibranch_filter_cpu = bb_total.filter_seconds;
  out.sequential_stats = seq_total;
  out.bibranch_stats = bb_total;
  out.histo_stats = hi_total;
  out.metrics = MetricsRegistry::Global().Snapshot().DiffSince(metrics_before);
  return out;
}

/// One indented line attributing the sweep point's work to pipeline stages,
/// from the registry delta RunWorkload captured. Silent when the
/// observability layer is compiled out.
inline void PrintStageBreakdown(const MetricsSnapshot& d) {
  if (!kMetricsEnabled) return;
  const auto mean = [&d](const char* name) {
    const MetricsSnapshot::HistogramValue* h = d.histogram(name);
    return h == nullptr ? 0.0 : h->Mean();
  };
  std::printf(
      "    stages: ted_calls=%lld propt_calls=%lld propt_mean=%.1f "
      "knn(filter=%.0fus refine=%.0fus gap=%.1f) "
      "range(filter=%.0fus refine=%.0fus) saturations=%lld\n",
      static_cast<long long>(d.counter("ted.zhang_shasha_calls")),
      static_cast<long long>(d.counter("positional.searchlbound_calls")),
      mean("positional.propt"), mean("search.knn.filter_micros"),
      mean("search.knn.refine_micros"), mean("search.knn.bound_gap"),
      mean("search.range.filter_micros"), mean("search.range.refine_micros"),
      static_cast<long long>(d.counter("safe_math.saturations")));
  // Bounded-verifier telemetry: how much DP work the threshold pruned.
  // bounded_calls counts refine invocations; cells pruned/computed split
  // the forest-matrix work; early exits abandon whole keyroot pairs and
  // mirror counts the RTED-style orientation flips.
  const long long bounded_calls = d.counter("ted.bounded_calls") +
                                  d.counter("ted.bounded_weighted_calls");
  if (bounded_calls > 0) {
    const double computed =
        static_cast<double>(d.counter("ted.bounded_cells_computed"));
    const double pruned =
        static_cast<double>(d.counter("ted.bounded_cells_band_pruned"));
    const double total = computed + pruned;
    std::printf(
        "    bounded: calls=%lld cells_pruned=%.1f%% early_exits=%lld "
        "mirrored=%lld\n",
        bounded_calls, total > 0.0 ? 100.0 * pruned / total : 0.0,
        static_cast<long long>(d.counter("ted.bounded_keyroot_early_exits")),
        static_cast<long long>(d.counter("ted.bounded_mirror_strategy")));
  }
}

/// Canonical JSON encoding of one RunWorkload() sweep point — the unit the
/// regression gate (tools/bench_compare.py) diffs. Keys here are the
/// schema; renaming one orphans every recorded baseline.
inline void ReportSweepPoint(const std::string& x_label, double x,
                             WorkloadKind kind, int queries,
                             const WorkloadResult& r, BenchReport& report) {
  const double q = static_cast<double>(queries);
  JsonObject stats;
  stats.Raw("sequential", QueryStatsJson(r.sequential_stats))
      .Raw("bibranch", QueryStatsJson(r.bibranch_stats))
      .Raw("histo", QueryStatsJson(r.histo_stats));
  report.AddPoint()
      .Str("label", x_label)
      .Double("x", x)
      .Str("kind", kind == WorkloadKind::kRange ? "range" : "knn")
      .Int("queries", queries)
      .Int("tau", r.tau)
      .Int("k", r.k)
      .Double("avg_distance", r.avg_distance)
      .Double("result_pct", r.result_pct)
      .Double("bibranch_pct", r.bibranch_pct)
      .Double("histo_pct", r.histo_pct)
      .Double("sequential_cpu_seconds", r.sequential_cpu)
      .Double("bibranch_cpu_seconds", r.bibranch_cpu)
      .Double("histo_cpu_seconds", r.histo_cpu)
      .Double("bibranch_filter_cpu_seconds", r.bibranch_filter_cpu)
      .Double("sequential_queries_per_second",
              r.sequential_cpu > 0 ? q / r.sequential_cpu : 0.0)
      .Double("bibranch_queries_per_second",
              r.bibranch_cpu > 0 ? q / r.bibranch_cpu : 0.0)
      .Double("histo_queries_per_second",
              r.histo_cpu > 0 ? q / r.histo_cpu : 0.0)
      .Raw("stats", stats.Render())
      .Raw("metrics", r.metrics.ToJson());
}

/// Prints the header every figure binary starts with.
inline void PrintFigureHeader(const std::string& figure,
                              const std::string& description,
                              const std::string& workload,
                              int queries) {
  std::printf("=== %s: %s ===\n", figure.c_str(), description.c_str());
  std::printf("workload: %s | queries per dataset: %d "
              "(paper used 100; pass --queries=100 for paper scale)\n",
              workload.c_str(), queries);
}

/// Prints one table row shared by Figures 7-12.
inline void PrintSweepRow(const std::string& x_label, double x,
                          WorkloadKind kind, const WorkloadResult& r) {
  const std::string query_param =
      kind == WorkloadKind::kRange ? "tau=" + std::to_string(r.tau)
                                   : "k=" + std::to_string(r.k);
  std::printf(
      "%s=%-6.4g avgDist=%-7.2f %-8s result%%=%-7.3f BiBranch%%=%-8.3f "
      "Histo%%=%-8.3f BiBranchCPU=%-8.3fs (filter %.3fs) SeqCPU=%-8.3fs\n",
      x_label.c_str(), x, r.avg_distance, query_param.c_str(), r.result_pct,
      r.bibranch_pct, r.histo_pct, r.bibranch_cpu, r.bibranch_filter_cpu,
      r.sequential_cpu);
  PrintStageBreakdown(r.metrics);
}

}  // namespace bench
}  // namespace treesim

#endif  // TREESIM_BENCH_BENCH_UTIL_H_
