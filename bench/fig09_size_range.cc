// Reproduces Figure 9: range queries, sensitivity to tree size.
// Datasets: N{4,0.5} N{s,2} L8 D0.05 with size mean s in {25,50,75,125},
// 2000 trees; range = 1/5 of the average pairwise distance.
//
// Paper shape: BiBranch%% stays near the result size across all sizes while
// Histo%% is far larger (up to 70x at size 125); sequential CPU grows
// quadratically with tree size, so the filter's advantage widens.
#include <cstdio>

#include "bench_util.h"

namespace treesim {
namespace bench {
namespace {

// Exact-distance cost grows ~quadratically with tree size; scale the default
// query count down so the whole suite stays interactive.
int DefaultQueries(int size_mean) {
  if (size_mean <= 25) return 10;
  if (size_mean <= 50) return 8;
  if (size_mean <= 75) return 5;
  return 3;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int trees = static_cast<int>(flags.GetInt("trees", 2000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  PrintFigureHeader(
      "Figure 9", "range queries, sensitivity to tree size",
      "range, tau = avgDist/5, dataset N{4,0.5}N{s,2}L8D0.05, " +
          std::to_string(trees) + " trees",
      static_cast<int>(flags.GetInt("queries", -1)));
  for (const int size : {25, 50, 75, 125}) {
    auto labels = std::make_shared<LabelDictionary>();
    SyntheticParams params;
    params.fanout_mean = 4;
    params.fanout_stddev = 0.5;
    params.size_mean = size;
    params.size_stddev = 2;
    params.label_count = 8;
    params.decay = 0.05;
    SyntheticGenerator gen(params, labels, seed);
    auto db = MakeDatabase(labels, gen.GenerateDataset(trees));

    WorkloadConfig config;
    config.threads = static_cast<int>(flags.GetInt("threads", 1));
    config.kind = WorkloadKind::kRange;
    config.queries = static_cast<int>(
        flags.GetInt("queries", DefaultQueries(size)));
    config.tau_fraction = 0.2;
    const WorkloadResult r = RunWorkload(*db, config);
    PrintSweepRow("size", size, WorkloadKind::kRange, r);
  }
  std::printf("expected shape: BiBranch%% ~= result%% for every size; "
              "Histo%%/BiBranch%% grows with size (up to ~70x at 125); "
              "SeqCPU grows quadratically\n\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
