// Reproduces Figure 9: range queries, sensitivity to tree size.
// Datasets: N{4,0.5} N{s,2} L8 D0.05 with size mean s in {25,50,75,125},
// 2000 trees; range = 1/5 of the average pairwise distance.
//
// Paper shape: BiBranch%% stays near the result size across all sizes while
// Histo%% is far larger (up to 70x at size 125); sequential CPU grows
// quadratically with tree size, so the filter's advantage widens.
#include <cstdio>

#include "bench_util.h"

namespace treesim {
namespace bench {
namespace {

// Exact-distance cost grows ~quadratically with tree size; scale the default
// query count down so the whole suite stays interactive.
int DefaultQueries(int size_mean) {
  if (size_mean <= 25) return 10;
  if (size_mean <= 50) return 8;
  if (size_mean <= 75) return 5;
  return 3;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  // -1 = per-size default (DefaultQueries above).
  const CommonFlags common = ParseCommonFlags(flags, 2000, -1);
  if (!ApplyQueryLogFlags(common)) return 1;
  BenchReport report("fig09_size_range");
  ReportCommonConfig(common, report);

  PrintFigureHeader(
      "Figure 9", "range queries, sensitivity to tree size",
      "range, tau = avgDist/5, dataset N{4,0.5}N{s,2}L8D0.05, " +
          std::to_string(common.trees) + " trees",
      common.queries);
  for (const int size : {25, 50, 75, 125}) {
    auto labels = std::make_shared<LabelDictionary>();
    SyntheticParams params;
    params.fanout_mean = 4;
    params.fanout_stddev = 0.5;
    params.size_mean = size;
    params.size_stddev = 2;
    params.label_count = 8;
    params.decay = 0.05;
    SyntheticGenerator gen(params, labels, common.seed);
    auto db = MakeDatabase(labels, gen.GenerateDataset(common.trees));

    WorkloadConfig config;
    config.threads = common.threads;
    config.kind = WorkloadKind::kRange;
    config.queries =
        common.queries > 0 ? common.queries : DefaultQueries(size);
    config.tau_fraction = 0.2;
    const WorkloadResult r = RunWorkload(*db, config);
    PrintSweepRow("size", size, WorkloadKind::kRange, r);
    ReportSweepPoint("size", size, WorkloadKind::kRange, config.queries, r,
                     report);
  }
  std::printf("expected shape: BiBranch%% ~= result%% for every size; "
              "Histo%%/BiBranch%% grows with size (up to ~70x at 125); "
              "SeqCPU grows quadratically\n\n");
  return report.WriteIfRequested(common.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
