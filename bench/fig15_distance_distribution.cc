// Reproduces Figure 15: distribution of DBLP data over distances to the
// queries, for the exact edit distance and for each lower-bound distance —
// the histogram bound and the q-level binary branch bounds (q = 2, 3, 4).
// For every distance d the table reports the average percentage of the
// dataset whose (bound or exact) distance to the query is <= d; a tighter
// lower bound hugs the Edit column from above.
//
// Paper shape: BiBranch(2) is the best lower bound everywhere; BiBranch(3)
// and BiBranch(4) only beat Histo for d < 3 — multi-level branches are not
// effective on shallow, small DBLP trees (Section 5.3).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/positional.h"
#include "datagen/dblp_generator.h"
#include "filters/histogram_filter.h"
#include "ted/zhang_shasha.h"

namespace treesim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const CommonFlags common = ParseCommonFlags(flags, 2000, 40);
  if (!ApplyQueryLogFlags(common)) return 1;
  const int trees = common.trees;
  const int queries = common.queries;
  const int max_distance = static_cast<int>(flags.GetInt("max_distance", 12));
  BenchReport report("fig15_distance_distribution");
  ReportCommonConfig(common, report);
  report.config().Int("max_distance", max_distance);

  PrintFigureHeader("Figure 15",
                    "data distribution on distance (DBLP-like)",
                    "cumulative % of data within distance d per measure",
                    queries);
  auto labels = std::make_shared<LabelDictionary>();
  DblpGenerator gen(DblpParams{}, labels, common.seed);
  auto db = MakeDatabase(labels, gen.Generate(trees));

  HistogramFilter histo(NormalizedHistogramOptions(*db));
  histo.Build(db->trees());
  BranchDictionary branches2(2);
  BranchDictionary branches3(3);
  BranchDictionary branches4(4);
  std::vector<BranchProfile> p2, p3, p4;
  for (int i = 0; i < db->size(); ++i) {
    p2.push_back(BranchProfile::FromTree(db->tree(i), branches2));
    p3.push_back(BranchProfile::FromTree(db->tree(i), branches3));
    p4.push_back(BranchProfile::FromTree(db->tree(i), branches4));
  }

  // cumulative[measure][d] = count of (query, data) pairs with value <= d.
  enum { kEdit = 0, kHisto, kBB2, kBB3, kBB4, kMeasures };
  std::vector<std::vector<int64_t>> cumulative(
      kMeasures, std::vector<int64_t>(static_cast<size_t>(max_distance) + 1));
  auto bump = [&](int measure, int value) {
    for (int d = value; d <= max_distance; ++d) {
      if (d >= 0) ++cumulative[static_cast<size_t>(measure)]
                              [static_cast<size_t>(d)];
    }
  };

  Rng rng(20050614);
  for (int qi = 0; qi < queries; ++qi) {
    const int query_id =
        static_cast<int>(rng.UniformIndex(static_cast<size_t>(db->size())));
    const Tree& query = db->tree(query_id);
    auto histo_ctx = histo.PrepareQuery(query);
    const BranchProfile q2 = BranchProfile::FromTree(query, branches2);
    const BranchProfile q3 = BranchProfile::FromTree(query, branches3);
    const BranchProfile q4 = BranchProfile::FromTree(query, branches4);
    for (int id = 0; id < db->size(); ++id) {
      bump(kEdit, TreeEditDistance(db->ted_view(query_id), db->ted_view(id)));
      bump(kHisto, static_cast<int>(histo.LowerBound(*histo_ctx, id)));
      bump(kBB2, OptimisticBound(q2, p2[static_cast<size_t>(id)]));
      bump(kBB3, OptimisticBound(q3, p3[static_cast<size_t>(id)]));
      bump(kBB4, OptimisticBound(q4, p4[static_cast<size_t>(id)]));
    }
  }

  const double denom =
      static_cast<double>(queries) * static_cast<double>(db->size()) / 100.0;
  std::printf("%-9s %-8s %-8s %-12s %-12s %-12s\n", "distance", "Edit",
              "Histo", "BiBranch(2)", "BiBranch(3)", "BiBranch(4)");
  for (int d = 1; d <= max_distance; ++d) {
    std::printf("%-9d %-8.2f %-8.2f %-12.2f %-12.2f %-12.2f\n", d,
                cumulative[kEdit][static_cast<size_t>(d)] / denom,
                cumulative[kHisto][static_cast<size_t>(d)] / denom,
                cumulative[kBB2][static_cast<size_t>(d)] / denom,
                cumulative[kBB3][static_cast<size_t>(d)] / denom,
                cumulative[kBB4][static_cast<size_t>(d)] / denom);
    report.AddPoint()
        .Str("label", "distance")
        .Double("x", d)
        .Int("queries", queries)
        .Double("edit_pct", cumulative[kEdit][static_cast<size_t>(d)] / denom)
        .Double("histo_pct",
                cumulative[kHisto][static_cast<size_t>(d)] / denom)
        .Double("bibranch2_pct",
                cumulative[kBB2][static_cast<size_t>(d)] / denom)
        .Double("bibranch3_pct",
                cumulative[kBB3][static_cast<size_t>(d)] / denom)
        .Double("bibranch4_pct",
                cumulative[kBB4][static_cast<size_t>(d)] / denom);
  }
  std::printf("expected shape: every bound column >= Edit; BiBranch(2) is "
              "closest to Edit; BiBranch(3)/(4) beat Histo only at small "
              "distances on shallow DBLP trees\n\n");
  return report.WriteIfRequested(common.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
