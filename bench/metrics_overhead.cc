// Guard for the observability layer's two contracts (util/metrics.h):
//
//   * TREESIM_METRICS=ON  — the hot path must stay cheap (a relaxed atomic
//     RMW per counter increment, a binary search plus two RMWs per histogram
//     record). This binary measures and prints ns/op for both, plus the
//     cost of a disabled trace span.
//   * TREESIM_METRICS=OFF — the layer must compile out entirely: the
//     registry registers nothing even after instrumented code ran, the
//     snapshot is empty, and the tracer never records. These are hard
//     aborts, and the CI metrics-off job runs this binary to hold the
//     zero-overhead claim.
#include <cstdio>
#include <cstdlib>

#include "bench_report.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace treesim {
namespace bench {
namespace {

constexpr int64_t kIterations = 5'000'000;

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FATAL: compile-out guard violated (%s)\n", what);
    std::abort();
  }
}

double NanosPerOp(int64_t elapsed_micros) {
  return 1e3 * static_cast<double>(elapsed_micros) /
         static_cast<double>(kIterations);
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  BenchReport report("metrics_overhead");
  report.config().Int("iterations", kIterations);
  std::printf("=== metrics overhead (TREESIM_METRICS=%s) ===\n",
              kMetricsEnabled ? "ON" : "OFF");

  // Exercise every macro the way instrumented pipeline code does, so the
  // OFF assertions below check real call sites, not a toy.
  Stopwatch counter_timer;
  for (int64_t i = 0; i < kIterations; ++i) {
    TREESIM_COUNTER_INC("bench.overhead.counter");
  }
  const double counter_ns = NanosPerOp(counter_timer.ElapsedMicros());

  Stopwatch histogram_timer;
  for (int64_t i = 0; i < kIterations; ++i) {
    TREESIM_HISTOGRAM_RECORD("bench.overhead.histogram", CountBuckets(),
                             i & 1023);
  }
  const double histogram_ns = NanosPerOp(histogram_timer.ElapsedMicros());

  // Tracer disabled (the default): a span costs one relaxed atomic load.
  Stopwatch span_timer;
  for (int64_t i = 0; i < kIterations; ++i) {
    TREESIM_TRACE_SPAN("bench.overhead.span");
  }
  const double span_ns = NanosPerOp(span_timer.ElapsedMicros());

  std::printf("counter increment:    %6.2f ns/op\n", counter_ns);
  std::printf("histogram record:     %6.2f ns/op\n", histogram_ns);
  std::printf("disabled trace span:  %6.2f ns/op\n", span_ns);

  if (kMetricsEnabled) {
    const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    Require(snap.counter("bench.overhead.counter") == kIterations,
            "counter lost increments");
    const MetricsSnapshot::HistogramValue* h =
        snap.histogram("bench.overhead.histogram");
    Require(h != nullptr && h->count == kIterations,
            "histogram lost samples");
    Require(MetricsRegistry::Global().metric_count() >= 2,
            "metrics not registered under ON");
  } else {
    // The zero-overhead contract: after all of the above ran, nothing may
    // have been registered, snapshotted, or traced.
    Require(MetricsRegistry::Global().metric_count() == 0,
            "registry not empty under OFF");
    const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    Require(snap.counters.empty() && snap.gauges.empty() &&
                snap.histograms.empty(),
            "snapshot not empty under OFF");
    Tracer::Global().Enable();
    { TREESIM_TRACE_SPAN("bench.overhead.off_span"); }
    Tracer::Global().Disable();
    Require(Tracer::Global().Collect().empty(),
            "tracer recorded under OFF");
    std::printf("compile-out verified: empty registry, empty snapshot, "
                "silent tracer\n");
  }

  report.AddPoint()
      .Str("label", "counter_increment")
      .Double("ns_per_op", counter_ns);
  report.AddPoint()
      .Str("label", "histogram_record")
      .Double("ns_per_op", histogram_ns);
  report.AddPoint()
      .Str("label", "disabled_trace_span")
      .Double("ns_per_op", span_ns);
  return report.WriteIfRequested(flags.GetString("json", "")) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) {
  return treesim::bench::Main(argc, argv);
}
