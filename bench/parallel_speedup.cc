// Parallel scaling of the three pool-aware layers: the pairwise distance
// matrix, inverted-file (Algorithm 1) index construction, and batch k-NN
// over the filter-and-refine engine. Each layer runs sequentially and then
// over a worker pool; the binary prints wall-clock speedups and verifies
// that the parallel results are identical to the sequential ones (the
// determinism contract the unit tests pin down on small corpora).
//
// Expected shape: pairwise speedup approaches the worker count (rows are
// embarrassingly parallel); index build and batch k-NN scale sublinearly
// (both keep a sequential interning/preparation phase).
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_util.h"
#include "core/inverted_file.h"
#include "search/pairwise.h"
#include "search/similarity_join.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace treesim {
namespace bench {
namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FATAL: parallel result differs from sequential "
                         "(%s)\n", what);
    std::abort();
  }
}

/// Per-stage attribution of one parallel layer, from the registry delta:
/// how many pool tasks ran, their mean latency, and where the query engine
/// spent its time. Sequential/parallel diffs of the same layer make the
/// coordination overhead visible, not just the wall-clock ratio.
void PrintLayerBreakdown(const char* layer, const MetricsSnapshot& d) {
  if (!kMetricsEnabled) return;
  const MetricsSnapshot::HistogramValue* task = d.histogram(
      "threadpool.task_micros");
  std::printf("  %-11s tasks=%-5lld task_mean=%-7.0fus ted_calls=%-7lld "
              "knn_filter_mean=%.0fus knn_refine_mean=%.0fus\n",
              layer,
              static_cast<long long>(d.counter("threadpool.tasks_scheduled")),
              task == nullptr ? 0.0 : task->Mean(),
              static_cast<long long>(d.counter("ted.zhang_shasha_calls")),
              d.histogram("search.knn.filter_micros") == nullptr
                  ? 0.0
                  : d.histogram("search.knn.filter_micros")->Mean(),
              d.histogram("search.knn.refine_micros") == nullptr
                  ? 0.0
                  : d.histogram("search.knn.refine_micros")->Mean());
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const CommonFlags common = ParseCommonFlags(flags, 300, 20);
  if (!ApplyQueryLogFlags(common)) return 1;
  const int trees = common.trees;
  const int queries = common.queries;
  const int k = static_cast<int>(flags.GetInt("k", 5));
  const uint64_t seed = common.seed;
  // Unlike the figure drivers, threads=0 (all hardware threads) is the
  // interesting default here.
  const int workers = ClampThreads(
      static_cast<int>(flags.GetInt("threads", 0)), trees);
  BenchReport report("parallel_speedup");
  ReportCommonConfig(common, report);
  report.config().Int("k", k).Int("workers", workers);

  auto labels = std::make_shared<LabelDictionary>();
  SyntheticParams params;
  params.size_mean = 40;
  params.fanout_mean = 4;
  params.label_count = 8;
  SyntheticGenerator gen(params, labels, seed);
  auto db = MakeDatabase(labels, gen.GenerateDataset(trees));

  // One report point per layer: sequential/parallel wall seconds + speedup.
  const auto report_layer = [&report](const char* layer, double seq_seconds,
                                      double par_seconds,
                                      const MetricsSnapshot& delta) {
    report.AddPoint()
        .Str("label", layer)
        .Double("sequential_seconds", seq_seconds)
        .Double("parallel_seconds", par_seconds)
        .Double("speedup", par_seconds > 0 ? seq_seconds / par_seconds : 0.0)
        .Raw("metrics", delta.ToJson());
  };

  std::printf("=== parallel speedup: %d trees, %d workers ===\n", trees,
              workers);
  ThreadPool pool(workers);

  // Layer 1: pairwise distance matrix (rows fan out, disjoint slices).
  Stopwatch seq_timer;
  const PairwiseDistances seq_matrix = ComputePairwiseDistances(*db, nullptr);
  const double seq_pairwise = seq_timer.ElapsedSeconds();
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  Stopwatch par_timer;
  const PairwiseDistances par_matrix = ComputePairwiseDistances(*db, &pool);
  const double par_pairwise = par_timer.ElapsedSeconds();
  Require(seq_matrix.Mean() == par_matrix.Mean(), "pairwise matrix");
  std::printf("pairwise:    %8.3fs -> %8.3fs  speedup %.2fx\n", seq_pairwise,
              par_pairwise, seq_pairwise / par_pairwise);
  {
    const MetricsSnapshot delta =
        MetricsRegistry::Global().Snapshot().DiffSince(snap);
    PrintLayerBreakdown("pairwise", delta);
    report_layer("pairwise", seq_pairwise, par_pairwise, delta);
  }

  // Layer 2: inverted-file construction (parallel extraction, sequential
  // interning keeps BranchIds byte-identical).
  Stopwatch seq_build_timer;
  InvertedFileIndex seq_index(2);
  seq_index.AddAll(db->trees(), nullptr);
  const double seq_build = seq_build_timer.ElapsedSeconds();
  snap = MetricsRegistry::Global().Snapshot();
  Stopwatch par_build_timer;
  InvertedFileIndex par_index(2);
  par_index.AddAll(db->trees(), &pool);
  const double par_build = par_build_timer.ElapsedSeconds();
  Require(seq_index.branch_dict().size() == par_index.branch_dict().size(),
          "index build");
  std::printf("index build: %8.3fs -> %8.3fs  speedup %.2fx\n", seq_build,
              par_build, seq_build / par_build);
  {
    const MetricsSnapshot delta =
        MetricsRegistry::Global().Snapshot().DiffSince(snap);
    PrintLayerBreakdown("index build", delta);
    report_layer("index_build", seq_build, par_build, delta);
  }

  // Layer 3: batch k-NN through the filter-and-refine engine.
  std::vector<Tree> query_set;
  Rng rng(seed);
  for (int qi = 0; qi < queries; ++qi) {
    query_set.push_back(db->tree(
        static_cast<int>(rng.UniformIndex(static_cast<size_t>(db->size())))));
  }
  SimilaritySearch engine(db.get(), std::make_unique<BiBranchFilter>());
  Stopwatch seq_knn_timer;
  const BatchKnnResult seq_knn = engine.BatchKnn(query_set, k, nullptr);
  const double seq_batch = seq_knn_timer.ElapsedSeconds();
  snap = MetricsRegistry::Global().Snapshot();
  Stopwatch par_knn_timer;
  const BatchKnnResult par_knn = engine.BatchKnn(query_set, k, &pool);
  const double par_batch = par_knn_timer.ElapsedSeconds();
  for (size_t qi = 0; qi < query_set.size(); ++qi) {
    Require(seq_knn.per_query[qi].neighbors == par_knn.per_query[qi].neighbors,
            "batch k-NN neighbors");
  }
  std::printf("batch k-NN:  %8.3fs -> %8.3fs  speedup %.2fx\n", seq_batch,
              par_batch, seq_batch / par_batch);
  {
    const MetricsSnapshot delta =
        MetricsRegistry::Global().Snapshot().DiffSince(snap);
    PrintLayerBreakdown("batch k-NN", delta);
    report_layer("batch_knn", seq_batch, par_batch, delta);
  }

  std::printf("expected shape: pairwise speedup near the worker count; "
              "build and k-NN sublinear\n\n");
  return report.WriteIfRequested(common.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
