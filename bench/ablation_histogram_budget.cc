// Ablation: the histogram baseline's space budget. The paper gives the
// Kailing et al. filter the same per-tree footprint as the binary branch
// representation ("the sum of dimension of the three type histogram vectors
// ... the averaged vector size plus two averaged tree size"); on label-rich
// data the label histogram then has to fold many labels per bucket and
// loses power. This bench sweeps the bucket budget on the DBLP-like data to
// show how sensitive the baseline is — and that the BiBranch filter beats
// it at the equal-space point used in the figure benches.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "datagen/dblp_generator.h"

namespace treesim {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const CommonFlags common = ParseCommonFlags(flags, 800, 12);
  if (!ApplyQueryLogFlags(common)) return 1;
  const int trees = common.trees;
  const int queries = common.queries;
  const int k = static_cast<int>(flags.GetInt("k", 5));
  BenchReport report("ablation_histogram_budget");
  ReportCommonConfig(common, report);
  report.config().Int("k", k);
  std::printf("=== Ablation: histogram filter space budget (DBLP-like, "
              "%d-NN) ===\n",
              k);

  auto labels = std::make_shared<LabelDictionary>();
  DblpGenerator gen(DblpParams{}, labels, common.seed);
  auto db = MakeDatabase(labels, gen.Generate(trees));

  const HistogramFilter::Options equal_space =
      NormalizedHistogramOptions(*db);
  std::printf("equal-space point: %d label buckets, %d degree buckets "
              "(distinct labels in the dataset: %zu)\n",
              equal_space.label_buckets, equal_space.degree_buckets,
              labels->size());

  auto run = [&](const char* label, std::unique_ptr<FilterIndex> filter) {
    SimilaritySearch engine(db.get(), std::move(filter));
    Rng rng(31337);
    QueryStats total;
    for (int qi = 0; qi < queries; ++qi) {
      const Tree& query = db->tree(
          static_cast<int>(rng.UniformIndex(static_cast<size_t>(db->size()))));
      total += engine.Knn(query, k).stats;
    }
    std::printf("  %-28s accessed%%=%-8.3f\n", label,
                100.0 * total.AccessedFraction());
    report.AddPoint()
        .Str("label", label)
        .Int("queries", queries)
        .Int("k", k)
        .Double("accessed_pct", 100.0 * total.AccessedFraction())
        .Double("cpu_seconds", total.TotalSeconds())
        .Raw("stats", QueryStatsJson(total));
  };

  for (const int buckets : {4, 8, 16, 32, 64, 0}) {
    HistogramFilter::Options o;
    o.label_buckets = buckets;
    o.degree_buckets = buckets;
    char label[64];
    if (buckets == 0) {
      std::snprintf(label, sizeof(label), "Histo unbounded");
    } else {
      std::snprintf(label, sizeof(label), "Histo %d+%d buckets", buckets,
                    buckets);
    }
    run(label, std::make_unique<HistogramFilter>(o));
  }
  run("Histo equal-space (paper)",
      std::make_unique<HistogramFilter>(equal_space));
  run("BiBranch(2) positional", std::make_unique<BiBranchFilter>());
  std::printf("expected: Histo strengthens with budget; BiBranch beats the "
              "equal-space configuration the paper's comparison uses\n\n");
  return report.WriteIfRequested(common.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace treesim

int main(int argc, char** argv) { return treesim::bench::Main(argc, argv); }
