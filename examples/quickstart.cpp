// Quickstart: the binary branch embedding in five minutes.
//
// Builds the two trees from the paper's running example (Fig. 1), shows the
// normalized binary tree transform, the branch vectors, the lower bounds and
// a small filter-and-refine search.
//
//   ./quickstart
#include <cstdio>
#include <memory>

#include "treesim.h"

namespace {

using namespace treesim;  // example code; the library never does this

int Run() {
  // Every tree in a dataset shares one label dictionary.
  auto labels = std::make_shared<LabelDictionary>();

  // Bracket notation: children in braces, siblings separated by spaces.
  Tree t1 = *ParseBracket("a{b{c d} b{c d} e}", labels);
  Tree t2 = *ParseBracket("a{b{c d b{e}} c d e}", labels);
  std::printf("T1 = %s (%d nodes)\n", ToBracket(t1).c_str(), t1.size());
  std::printf("T2 = %s (%d nodes)\n\n", ToBracket(t2).c_str(), t2.size());

  // The exact tree edit distance (Zhang-Shasha) is the gold standard ...
  const int edist = TreeEditDistance(t1, t2);
  std::printf("exact edit distance EDist(T1,T2) = %d\n\n", edist);

  // ... and the binary branch transform gives a cheap lower bound: T is
  // normalized into a full binary tree B(T) (ε-padded left-child /
  // right-sibling form) ...
  const NormalizedBinaryTree b1 = NormalizedBinaryTree::FromTree(t1);
  std::printf("B(T1): %d original + %d epsilon nodes\n%s\n",
              b1.original_count(), b1.epsilon_count(),
              b1.ToString(*labels).c_str());

  // ... and every node contributes one binary branch (its one-level
  // neighborhood in B(T)) to a sparse count vector.
  BranchDictionary branches(/*q=*/2);
  const BranchProfile p1 = BranchProfile::FromTree(t1, branches);
  const BranchProfile p2 = BranchProfile::FromTree(t2, branches);
  std::printf("BRV(T1) non-zero dims:");
  for (const BranchEntry& e : p1.entries) {
    std::printf(" %s:%d", branches.Name(e.branch, *labels).c_str(),
                e.count());
  }
  std::printf("\n");

  // Theorem 3.2: L1(BRV(T1), BRV(T2)) <= 5 * EDist.
  const int64_t bdist = BranchDistance(p1, p2);
  std::printf("BDist = %lld  ->  lower bound ceil(BDist/5) = %d\n",
              static_cast<long long>(bdist), BranchDistanceLowerBound(p1, p2));

  // Positional branches tighten the bound (Section 4.2).
  std::printf("positional optimistic bound propt = %d (EDist = %d)\n\n",
              OptimisticBound(p1, p2), edist);

  // Filter-and-refine search over a small database.
  auto db = std::make_unique<TreeDatabase>(labels);
  db->Add(t1);
  db->Add(t2);
  db->Add(*ParseBracket("a{b{c d} b{c d} e f}", labels));
  db->Add(*ParseBracket("x{y z w v u t s r}", labels));
  SimilaritySearch engine(db.get(), std::make_unique<BiBranchFilter>());

  const RangeResult range = engine.Range(t1, /*tau=*/3);
  std::printf("range query (tau=3) around T1:\n");
  for (const auto& [id, dist] : range.matches) {
    std::printf("  tree %d at distance %d: %s\n", id, dist,
                ToBracket(db->tree(id)).c_str());
  }
  std::printf("  refined %lld of %lld trees (filter pruned the rest)\n",
              static_cast<long long>(range.stats.candidates),
              static_cast<long long>(range.stats.database_size));

  const KnnResult knn = engine.Knn(t2, /*k=*/2);
  std::printf("2-NN of T2: tree %d (d=%d), tree %d (d=%d)\n",
              knn.neighbors[0].first, knn.neighbors[0].second,
              knn.neighbors[1].first, knn.neighbors[1].second);
  return 0;
}

}  // namespace

int main() { return Run(); }
