// RNA secondary structure classification — the paper's computational
// biology motivation ("efficient prediction of the functions of RNA
// molecules"). RNA secondary structures are rooted ordered trees over
// structural elements (P = paired stem, H = hairpin loop, B = bulge,
// I = internal loop, M = multibranch loop). We synthesize three structural
// families (tRNA-like cloverleaf, miRNA-like long hairpin, rRNA-fragment-
// like multibranch), derive noisy members, and classify held-out structures
// by 1-NN tree edit distance — with the binary branch filter skipping most
// exact distance computations.
//
//   ./rna_classification [--train=60] [--test=30] [--noise=3] [--seed=5]
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "treesim.h"

namespace {

using namespace treesim;  // example code; the library never does this

struct Family {
  std::string name;
  std::string prototype;  // bracket notation
};

const Family kFamilies[] = {
    // Cloverleaf: multibranch loop with four stems, each ending in a
    // hairpin, like tRNA.
    {"tRNA-like",
     "M{P{P{P{H}}} P{P{H}} P{P{B{P{H}}}} P{P{P{H}}}}"},
    // One long interrupted stem ending in a hairpin, like a miRNA precursor.
    {"miRNA-like",
     "P{P{B{P{P{I{P{P{B{P{H}}}}}}}}}}"},
    // Nested multibranch of multibranches, like an rRNA domain fragment.
    {"rRNA-like",
     "M{P{M{P{H} P{B{P{H}}}}} P{I{P{M{P{H} P{H} P{H}}}}}}"},
};

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int train_per_family = static_cast<int>(flags.GetInt("train", 60));
  const int test_per_family = static_cast<int>(flags.GetInt("test", 30));
  const int noise = static_cast<int>(flags.GetInt("noise", 3));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 5));

  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> element_pool = {
      labels->Intern("P"), labels->Intern("H"), labels->Intern("B"),
      labels->Intern("I"), labels->Intern("M")};

  Rng rng(seed);
  auto db = std::make_unique<TreeDatabase>(labels);
  std::vector<int> family_of_tree;  // tree id -> family index
  std::vector<Tree> prototypes;
  for (const Family& family : kFamilies) {
    prototypes.push_back(*ParseBracket(family.prototype, labels));
  }

  for (size_t f = 0; f < std::size(kFamilies); ++f) {
    for (int i = 0; i < train_per_family; ++i) {
      const NoisyTree member = ApplyRandomEdits(
          prototypes[f], rng.UniformInt(0, noise), element_pool, rng);
      db->Add(member.tree);
      family_of_tree.push_back(static_cast<int>(f));
    }
  }
  std::printf("reference database: %d structures, 3 families "
              "(avg %.1f elements)\n",
              db->size(), db->AverageTreeSize());

  SimilaritySearch engine(db.get(), std::make_unique<BiBranchFilter>());

  int correct = 0;
  int total = 0;
  QueryStats stats;
  std::map<std::string, int> confusion;
  for (size_t f = 0; f < std::size(kFamilies); ++f) {
    for (int i = 0; i < test_per_family; ++i) {
      const NoisyTree query = ApplyRandomEdits(
          prototypes[f], rng.UniformInt(1, noise + 1), element_pool, rng);
      const KnnResult knn = engine.Knn(query.tree, 1);
      stats += knn.stats;
      const int predicted =
          family_of_tree[static_cast<size_t>(knn.neighbors[0].first)];
      ++total;
      if (predicted == static_cast<int>(f)) {
        ++correct;
      } else {
        ++confusion[kFamilies[f].name + " -> " +
                    kFamilies[static_cast<size_t>(predicted)].name];
      }
    }
  }

  std::printf("1-NN classification accuracy: %d/%d (%.1f%%)\n", correct,
              total, 100.0 * correct / total);
  for (const auto& [pair, count] : confusion) {
    std::printf("  confused %s x%d\n", pair.c_str(), count);
  }
  std::printf("exact edit distances computed per query: %.1f of %d "
              "(filter pruned %.1f%%)\n",
              static_cast<double>(stats.edit_distance_calls) / total,
              db->size(),
              100.0 * (1.0 - stats.AccessedFraction()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
