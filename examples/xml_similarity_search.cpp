// XML similarity search under spelling errors — the use case from the
// paper's introduction: "XML data searching under the presence of spelling
// errors". A small product catalog is indexed; a query with typos and a
// missing field still finds the right records via tree-edit-distance range
// search, accelerated by the binary branch filter.
//
//   ./xml_similarity_search [--tau=4]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "treesim.h"

namespace {

using namespace treesim;  // example code; the library never does this

const char* kCatalog[] = {
    R"(<product><name>ThinkPad X1</name><brand>Lenovo</brand>
       <specs><cpu>i7</cpu><ram>16GB</ram><disk>512GB</disk></specs>
       <price>1400</price></product>)",
    R"(<product><name>ThinkPad X2</name><brand>Lenovo</brand>
       <specs><cpu>i5</cpu><ram>16GB</ram><disk>512GB</disk></specs>
       <price>1200</price></product>)",
    R"(<product><name>MacBook Air</name><brand>Apple</brand>
       <specs><cpu>M2</cpu><ram>8GB</ram><disk>256GB</disk></specs>
       <price>1100</price></product>)",
    R"(<product><name>Pavilion 15</name><brand>HP</brand>
       <specs><cpu>i5</cpu><ram>8GB</ram></specs>
       <price>700</price></product>)",
    R"(<book><title>Database Systems</title><author>Ullman</author>
       <year>2002</year></book>)",
    R"(<book><title>Compilers</title><author>Aho</author>
       <year>1986</year></book>)",
};

// The user typed "ThinkPadX1" (typo) and omitted the price element entirely.
const char* kQuery =
    R"(<product><name>ThinkPadX1</name><brand>Lenovo</brand>
       <specs><cpu>i7</cpu><ram>16GB</ram><disk>512GB</disk></specs>
       </product>)";

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int tau = static_cast<int>(flags.GetInt("tau", 4));

  auto labels = std::make_shared<LabelDictionary>();
  auto db = std::make_unique<TreeDatabase>(labels);
  XmlParseOptions xml_options;  // text becomes leaf labels: content matters
  for (const char* xml : kCatalog) {
    StatusOr<Tree> tree = ParseXml(xml, labels, xml_options);
    if (!tree.ok()) {
      std::fprintf(stderr, "catalog parse error: %s\n",
                   tree.status().ToString().c_str());
      return 1;
    }
    db->Add(std::move(tree).value());
  }
  std::printf("indexed %d XML records (avg %.1f nodes)\n\n", db->size(),
              db->AverageTreeSize());

  StatusOr<Tree> query = ParseXml(kQuery, labels, xml_options);
  if (!query.ok()) {
    std::fprintf(stderr, "query parse error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("query (with typo, wrong memory of specs, missing price):\n%s\n",
              ToXml(*query).c_str());

  SimilaritySearch engine(db.get(), std::make_unique<BiBranchFilter>());
  const RangeResult result = engine.Range(*query, tau);
  std::printf("matches within edit distance %d:\n", tau);
  if (result.matches.empty()) {
    std::printf("  (none — try a larger --tau)\n");
  }
  for (const auto& [id, dist] : result.matches) {
    std::printf("--- record %d, distance %d ---\n%s", id, dist,
                ToXml(db->tree(id)).c_str());
  }
  std::printf(
      "\nfilter effectiveness: refined %lld/%d records "
      "(books were pruned without any edit distance computation)\n",
      static_cast<long long>(result.stats.candidates), db->size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
