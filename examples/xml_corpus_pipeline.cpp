// End-to-end corpus pipeline, shaped like the paper's DBLP experiment:
// a DBLP-style XML dump is written to disk, imported into a record forest
// (one tree per bibliographic entry), indexed, and queried — exactly the
// steps a user with the real dblp.xml would follow.
//
//   ./xml_corpus_pipeline [--records=300] [--k=5] [--seed=3]
#include <cstdio>
#include <memory>
#include <string>

#include "treesim.h"
#include "xml/xml_corpus.h"

namespace {

using namespace treesim;  // example code; the library never does this

/// Renders DBLP-like records (from the generator) as one corpus XML
/// document — the inverse of the import step, standing in for dblp.xml.
std::string MakeCorpusXml(const std::vector<Tree>& records) {
  std::string xml = "<?xml version=\"1.0\"?>\n<dblp>\n";
  for (const Tree& r : records) xml += ToXml(r);
  xml += "</dblp>\n";
  return xml;
}

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int records = static_cast<int>(flags.GetInt("records", 300));
  const int k = static_cast<int>(flags.GetInt("k", 5));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  const std::string corpus_path = "/tmp/treesim_example_corpus.xml";

  // 1. Produce a corpus file (a stand-in for the real dblp.xml).
  {
    auto gen_labels = std::make_shared<LabelDictionary>();
    DblpGenerator gen(DblpParams{}, gen_labels, seed);
    const Status saved =
        WriteStringToFile(MakeCorpusXml(gen.Generate(records)), corpus_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "write failed: %s\n", saved.ToString().c_str());
      return 1;
    }
  }
  std::printf("wrote %d records to %s\n", records, corpus_path.c_str());

  // 2. Import: parse the document, split one tree per record element.
  auto labels = std::make_shared<LabelDictionary>();
  StatusOr<std::vector<Tree>> imported = LoadXmlCorpus(corpus_path, labels);
  if (!imported.ok()) {
    std::fprintf(stderr, "import failed: %s\n",
                 imported.status().ToString().c_str());
    return 1;
  }
  auto db = std::make_unique<TreeDatabase>(labels);
  db->AddAll(std::move(imported).value());
  std::printf("imported %d records (avg %.1f nodes, %zu distinct labels)\n",
              db->size(), db->AverageTreeSize(), labels->size());

  // 3. Query: pick a record, corrupt it, and look for its neighborhood.
  Rng rng(seed + 1);
  std::vector<LabelId> pool;
  for (LabelId l = 1; l < labels->id_bound(); ++l) pool.push_back(l);
  const int victim = static_cast<int>(
      rng.UniformIndex(static_cast<size_t>(db->size())));
  const NoisyTree query = ApplyRandomEdits(db->tree(victim), 2, pool, rng);
  std::printf("\nquery = record #%d with 2 random edits:\n  %s\n", victim,
              ToBracket(query.tree).c_str());

  SimilaritySearch engine(db.get(), std::make_unique<BiBranchFilter>());
  const KnnResult knn = engine.Knn(query.tree, k);
  std::printf("%d-NN (refined %lld of %d records):\n", k,
              static_cast<long long>(knn.stats.edit_distance_calls),
              db->size());
  for (const auto& [id, dist] : knn.neighbors) {
    std::printf("  #%-4d d=%d%s %s\n", id, dist,
                id == victim ? " <- original" : "          ",
                ToBracket(db->tree(id)).c_str());
  }
  std::remove(corpus_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
