// Near-duplicate detection in bibliographic data (the paper's data
// cleansing / data integration motivation): generate a DBLP-like corpus,
// inject corrupted duplicates of some records (typo'd values, dropped or
// added fields), then recover them with k-NN queries — comparing how much
// of the corpus each filter has to verify with the exact edit distance.
//
//   ./dblp_dedup [--records=1000] [--duplicates=25] [--seed=7]
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "treesim.h"

namespace {

using namespace treesim;  // example code; the library never does this

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int records = static_cast<int>(flags.GetInt("records", 1000));
  const int duplicates = static_cast<int>(flags.GetInt("duplicates", 25));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  auto labels = std::make_shared<LabelDictionary>();
  DblpGenerator gen(DblpParams{}, labels, seed);
  std::vector<Tree> corpus = gen.Generate(records);

  // Corrupt `duplicates` random records with 1-2 random edits each and
  // append the corrupted copies (id >= records).
  Rng rng(seed + 1);
  std::vector<LabelId> pool;
  for (LabelId l = 1; l < labels->id_bound(); ++l) pool.push_back(l);
  std::vector<int> original_of;  // duplicate index -> original id
  for (int d = 0; d < duplicates; ++d) {
    const int victim = static_cast<int>(rng.UniformIndex(corpus.size()));
    const NoisyTree noisy =
        ApplyRandomEdits(corpus[static_cast<size_t>(victim)],
                         rng.UniformInt(1, 2), pool, rng);
    corpus.push_back(noisy.tree);
    original_of.push_back(victim);
  }

  auto db = std::make_unique<TreeDatabase>(labels);
  db->AddAll(std::move(corpus));
  std::printf("corpus: %d records + %d corrupted duplicates\n\n", records,
              duplicates);

  SimilaritySearch bibranch(db.get(), std::make_unique<BiBranchFilter>());
  SimilaritySearch histo(db.get(), std::make_unique<HistogramFilter>());

  // For every corrupted duplicate, ask for its nearest non-self neighbor;
  // dedup succeeds when that neighbor is the original record.
  int recovered = 0;
  QueryStats bb_stats;
  QueryStats hi_stats;
  for (int d = 0; d < duplicates; ++d) {
    const int dup_id = records + d;
    const KnnResult bb = bibranch.Knn(db->tree(dup_id), 2);
    bb_stats += bb.stats;
    hi_stats += histo.Knn(db->tree(dup_id), 2).stats;
    for (const auto& [id, dist] : bb.neighbors) {
      if (id == dup_id) continue;  // itself at distance 0
      if (id == original_of[static_cast<size_t>(d)]) ++recovered;
      std::printf("duplicate %2d -> nearest record %4d (distance %d)%s\n", d,
                  id, dist,
                  id == original_of[static_cast<size_t>(d)] ? "" : "  [MISS]");
      break;
    }
  }
  std::printf("\nrecovered %d/%d originals\n", recovered, duplicates);
  std::printf("exact-distance verifications per query: BiBranch %.1f, "
              "Histo %.1f (of %d records)\n",
              static_cast<double>(bb_stats.edit_distance_calls) / duplicates,
              static_cast<double>(hi_stats.edit_distance_calls) / duplicates,
              db->size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
