"""CLI for the astcheck static analyzers.

Usage (from the repo root):

    python3 tools/astcheck/__main__.py [--build-dir build] [options]
    python3 tools/astcheck/__main__.py --checks=perf
    python3 tools/astcheck/__main__.py --checks=lifetime
    python3 tools/astcheck/__main__.py --checks=all --format=sarif
    python3 tools/astcheck/__main__.py --unit-test
    python3 tools/astcheck/__main__.py --self-test

Exit codes:
    0   analysis ran, no unsuppressed findings
    1   unsuppressed findings reported
    2   usage or internal error (clang crashed, bad compile db, ...)
    77  clang or compile_commands.json unavailable (ctest SKIP)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from astcheck import checks, clang_driver, facts, report  # noqa: E402

EXIT_CLEAN = report.EXIT_CLEAN
EXIT_FINDINGS = report.EXIT_FINDINGS
EXIT_ERROR = report.EXIT_ERROR
EXIT_SKIP = report.EXIT_SKIP

DEFAULT_REPO_ROOT = os.path.dirname(_TOOLS_DIR)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="astcheck",
        description="AST-grade static analyzers: concurrency (lock-order, "
                    "capture-race, blocking-under-lock), perf "
                    "(alloc-in-hot-loop, heavy-copy, "
                    "indirect-call-in-inner-loop, hot-throw), and lifetime "
                    "(use-after-move, escaping-capture, "
                    "invalidated-reference)")
    p.add_argument("--repo-root", default=DEFAULT_REPO_ROOT,
                   help="source tree root (default: this checkout)")
    p.add_argument("--checks", default="concurrency",
                   choices=("concurrency", "perf", "lifetime", "all"),
                   help="check family to run (default: concurrency)")
    p.add_argument("--format", default="text", choices=("text", "sarif"),
                   help="stdout format: human text or SARIF 2.1.0 "
                        "(default: text)")
    p.add_argument("--report-out", default=None,
                   help="write the canonical JSON findings report here")
    p.add_argument("--stats", action="store_true",
                   help="print fact-cache warm/cold counts and evict "
                        "cache entries whose sources no longer exist")
    p.add_argument("--build-dir", default=None,
                   help="CMake build dir holding compile_commands.json "
                        "(default: <repo-root>/build)")
    p.add_argument("--compile-commands", default=None,
                   help="explicit compile_commands.json path")
    p.add_argument("--cache-dir", default=None,
                   help="per-TU fact cache (default: "
                        "<build-dir>/astcheck_cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the fact cache")
    p.add_argument("--jobs", type=int, default=min(4, os.cpu_count() or 1),
                   help="parallel clang/extraction workers")
    p.add_argument("--clang", default=None,
                   help="clang driver to use (default: auto-discover)")
    p.add_argument("--facts-out", default=None,
                   help="write the merged fact database JSON here")
    p.add_argument("--suppressions", default=None,
                   help="suppressions TOML (default: "
                        "<repo-root>/tools/astcheck_suppressions.toml; "
                        "'none' disables)")
    p.add_argument("--verbose", action="store_true")
    p.add_argument("--unit-test", action="store_true",
                   help="run the clang-free unit tests and exit")
    p.add_argument("--self-test", action="store_true",
                   help="run the fixture-corpus selftest (needs clang)")
    return p


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)

    if args.unit_test:
        from astcheck import unittests
        return unittests.main()
    if args.self_test:
        from astcheck import selftest
        return selftest.main(args)

    log = print if args.verbose else (lambda *_: None)

    clang = clang_driver.find_clang(args.clang)
    if clang is None:
        print("astcheck: SKIP: no clang >= "
              f"{clang_driver.MIN_CLANG_MAJOR} found on PATH "
              "(set --clang or ASTCHECK_CLANG)")
        return EXIT_SKIP

    repo_root = os.path.abspath(args.repo_root)
    build_dir = args.build_dir or os.path.join(repo_root, "build")
    compile_db = args.compile_commands or os.path.join(
        build_dir, "compile_commands.json")
    if not os.path.isfile(compile_db):
        print(f"astcheck: SKIP: {compile_db} not found "
              "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
        return EXIT_SKIP

    cache_dir = args.cache_dir or os.path.join(build_dir, "astcheck_cache")

    try:
        db, stats = clang_driver.analyze_all(
            compile_db, repo_root, clang, cache_dir, args.jobs,
            use_cache=not args.no_cache, log=log)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"astcheck: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if stats["errors"]:
        for err in stats["errors"]:
            print(f"astcheck: error: {err}", file=sys.stderr)
        return EXIT_ERROR

    if args.facts_out:
        with open(args.facts_out, "w", encoding="utf-8") as fh:
            json.dump(db.to_json(), fh, indent=1)
        log(f"astcheck: fact database written to {args.facts_out}")

    sups: list[checks.Suppression] = []
    sup_path = args.suppressions
    if sup_path != "none":
        if sup_path is None:
            sup_path = os.path.join(repo_root, "tools",
                                    "astcheck_suppressions.toml")
            if not os.path.isfile(sup_path):
                sup_path = None
        if sup_path is not None:
            try:
                sups = checks.load_suppressions(sup_path)
            except (OSError, ValueError) as exc:
                print(f"astcheck: error: {exc}", file=sys.stderr)
                return EXIT_ERROR

    families = (("concurrency", "perf", "lifetime") if args.checks == "all"
                else (args.checks,))
    ranks = checks.load_lock_ranks(db, repo_root)
    kept, suppressed, warnings = checks.run_all(db, ranks, sups,
                                                families=families,
                                                repo_root=repo_root)

    doc = report.build_report(families, kept, suppressed, warnings, stats)
    if args.report_out:
        report.write_json(args.report_out, doc)
        log(f"astcheck: findings report written to {args.report_out}")

    # SARIF mode keeps stdout valid JSON; human chatter moves to stderr.
    info = sys.stderr if args.format == "sarif" else sys.stdout
    for w in warnings:
        print(f"astcheck: warning: {w}", file=info)
    if args.format == "sarif":
        json.dump(report.to_sarif(doc, repo_root), sys.stdout, indent=1)
        sys.stdout.write("\n")
    else:
        for line in report.render_text(doc):
            print(line)

    if args.stats and not args.no_cache:
        evicted, kept_entries = clang_driver.FactCache(
            cache_dir).evict_stale()
        print(f"astcheck: cache: {stats['cache_hits']} warm hits, "
              f"{stats['analyzed']} cold analyses | "
              f"{kept_entries} entries kept, {evicted} stale evicted",
              file=info)

    extra = (f" | {len(db.functions)} functions | "
             f"{len(db.mutex_fields)} mutexes ({len(ranks)} ranked)")
    if "perf" in families:
        hot = checks.derive_hot_set(db, repo_root)
        extra += f" | {len(hot)} hot functions"
    print(report.summary_line(doc, extra), file=info)
    return report.exit_code(doc)


if __name__ == "__main__":
    sys.exit(main())
