"""Shared findings report for every astcheck family.

One report schema serves the concurrency, perf, and lifetime families: the
CLI assembles a single canonical JSON document (published as the CI
artifact), renders the same findings as plain text for terminals, or
converts them to SARIF 2.1.0 for code-scanning upload. Exit-code policy
lives here too, so every family agrees on what "clean" means.
"""

from __future__ import annotations

import json
from typing import Any

from . import SCHEMA_VERSION, __version__
from .checks import FAMILIES, Finding

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2
EXIT_SKIP = 77

_INFO_URI = "https://github.com/treesim/treesim/blob/main/DESIGN.md"

# One-line rule descriptions, keyed by check id, rendered both into the
# SARIF rule table and the JSON report's `checks` section.
RULE_DESCRIPTIONS = {
    "lock-order": "Lock acquisition cycle or TREESIM_LOCK_RANK inversion "
                  "across the whole-program acquisition graph.",
    "capture-race": "ThreadPool lambda mutates a by-reference capture "
                    "without a lock, an atomic, or per-index slots.",
    "blocking-under-lock": "I/O, pool submission, or a free wait while a "
                           "treesim::Mutex is held.",
    "alloc-in-hot-loop": "Allocation or unreserved container growth inside "
                         "a hot-path loop.",
    "heavy-copy": "By-value parameter, implicit copy, or by-value lambda "
                  "capture of a heavy type on the hot path.",
    "indirect-call-in-inner-loop": "Virtual dispatch or std::function "
                                   "invocation inside a hot inner loop.",
    "hot-throw": "Throw-expression or throwing API call on the hot path, "
                 "which must stay Status-based.",
    "use-after-move": "Moved-from local or parameter is read, method-"
                      "called, or re-moved before reinitialization.",
    "escaping-capture": "Lambda with by-reference captures is returned, "
                        "stored into outliving storage, or deferred to the "
                        "ThreadPool.",
    "invalidated-reference": "Element reference/pointer/iterator used "
                             "after growth may reallocate its container.",
}


def _finding_json(f: Finding) -> dict[str, Any]:
    d = {"check": f.check, "file": f.file, "line": f.line,
         "function": f.function, "message": f.message}
    if f.callee:
        d["callee"] = f.callee
    if f.lock:
        d["lock"] = f.lock
    return d


def build_report(families: tuple[str, ...], kept: list[Finding],
                 suppressed: list[Finding], warnings: list[str],
                 stats: dict[str, Any]) -> dict[str, Any]:
    """The canonical JSON report document (the published CI artifact)."""
    chks = [c for fam in families for c in FAMILIES[fam]]
    return {
        "tool": "astcheck",
        "version": __version__,
        "schema_version": SCHEMA_VERSION,
        "families": list(families),
        "checks": {c: RULE_DESCRIPTIONS.get(c, "") for c in chks},
        "summary": {
            "tus": stats.get("tus", 0),
            "cache_hits": stats.get("cache_hits", 0),
            "analyzed": stats.get("analyzed", 0),
            "seconds": stats.get("seconds", 0),
            "findings": len(kept),
            "suppressed": len(suppressed),
        },
        "findings": [_finding_json(f) for f in kept],
        "suppressed": [_finding_json(f) for f in suppressed],
        "warnings": list(warnings),
    }


def _relative_uri(path: str, repo_root: str) -> str:
    root = repo_root.rstrip("/") + "/"
    if path.startswith(root):
        return path[len(root):]
    return path.lstrip("/")


def to_sarif(report: dict[str, Any], repo_root: str) -> dict[str, Any]:
    """SARIF 2.1.0 conversion of a canonical report document.

    Suppressed findings are carried with `suppressions` entries (SARIF's
    native mechanism) so code scanning shows them as reviewed, not open.
    """
    rules = [
        {
            "id": check,
            "name": "".join(w.capitalize() for w in check.split("-")),
            "shortDescription": {"text": desc or check},
            "helpUri": _INFO_URI,
            "defaultConfiguration": {"level": "warning"},
        }
        for check, desc in report["checks"].items()
    ]

    def result(d: dict[str, Any], suppressed: bool) -> dict[str, Any]:
        message = d["message"]
        if d.get("function"):
            message = f"{message} [in {d['function']}]"
        r: dict[str, Any] = {
            "ruleId": d["check"],
            "level": "warning",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _relative_uri(d["file"], repo_root),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, int(d.get("line", 1)))},
                },
            }],
        }
        if suppressed:
            r["suppressions"] = [{
                "kind": "inSource",
                "justification": "listed in "
                                 "tools/astcheck_suppressions.toml",
            }]
        return r

    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "astcheck",
                    "version": report["version"],
                    "informationUri": _INFO_URI,
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file://" + repo_root.rstrip("/") + "/"},
            },
            "results": (
                [result(d, suppressed=False) for d in report["findings"]]
                + [result(d, suppressed=True)
                   for d in report["suppressed"]]),
        }],
    }


def render_text(report: dict[str, Any]) -> list[str]:
    """Plain-text lines for every kept finding (the terminal format)."""
    return [
        f"{d['file']}:{d['line']}: [{d['check']}] in `{d['function']}`: "
        f"{d['message']}"
        for d in report["findings"]
    ]


def summary_line(report: dict[str, Any], extra: str = "") -> str:
    s = report["summary"]
    return (f"astcheck[{','.join(report['families'])}]: {s['tus']} TUs "
            f"({s['cache_hits']} cached){extra} | {s['findings']} findings, "
            f"{s['suppressed']} suppressed | {s['seconds']}s")


def write_json(path: str, doc: dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=False)
        fh.write("\n")


def exit_code(report: dict[str, Any]) -> int:
    return EXIT_FINDINGS if report["summary"]["findings"] else EXIT_CLEAN
