"""Fact extraction from clang JSON AST dumps.

The dumper emits nodes in serialization order and omits the ``file`` /
``line`` fields of a source location whenever they match the previously
emitted location, so extraction is a single depth-first walk over the whole
tree (including system-header subtrees, which must be visited to keep the
location state correct) that records facts only for nodes whose current
file lies under the repo root.

Fidelity notes (deliberate approximations, see DESIGN.md section 13):

  * A ``MutexLock`` RAII acquisition is held from its declaration to the
    end of the enclosing compound statement; a manual ``Mutex::Lock()`` is
    held until the matching ``Unlock()`` in the same function, else to the
    end of the function. ``TryLock()`` never blocks and is ignored for
    lock ordering.
  * Lock identity is canonicalized to ``Record::field`` when the mutex is
    a member of a known record (all instances of a field collapse to one
    graph node), and to ``function::var[.field]`` for locals. Expressions
    the canonicalizer cannot follow get a per-site opaque identity, which
    can never create a cross-function edge (conservative on the
    false-positive side).
  * Lambda bodies are separate call-graph nodes: scheduling a lambda does
    not execute it at the submission site. ``ParallelFor(nullptr, ...)``
    runs the lambda inline by contract, and is modeled as a direct call.
"""

from __future__ import annotations

import dataclasses
import json
import re
from typing import Any, Iterable

from . import SCHEMA_VERSION

# ---------------------------------------------------------------------------
# Fact model
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Acquisition:
    lock: str
    file: str
    line: int
    begin: int  # file offset where the lock becomes held
    end: int  # file offset where it is released (scope end)
    kind: str  # "raii" | "manual"

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(d: dict[str, Any]) -> "Acquisition":
        return Acquisition(**d)


@dataclasses.dataclass
class CallSite:
    callee: str  # best-effort qualified name ("Class::method" or bare)
    file: str
    line: int
    offset: int
    submits: list[str] = dataclasses.field(default_factory=list)
    # lambda qnames submitted through this call (Schedule/ParallelFor)
    static_init: bool = False  # inside a function-local static initializer

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(d: dict[str, Any]) -> "CallSite":
        return CallSite(**d)


@dataclasses.dataclass
class LoopSpan:
    """Source extent of one loop statement, for hot-loop membership tests."""

    file: str
    line: int
    begin: int  # file offset of the loop keyword
    end: int  # file offset of the loop's last token
    depth: int  # 1 = outermost loop of the enclosing function

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(d: dict[str, Any]) -> "LoopSpan":
        return LoopSpan(**d)


@dataclasses.dataclass
class AllocSite:
    """One allocation-relevant expression.

    kind:
      new       operator new / new[]
      make      std::make_unique / std::make_shared call
      construct record-type construction with arguments (inside a loop
                only; default construction allocates nothing and is
                skipped)
      growth    a growth-prone container call (push_back, insert, resize,
                ...) with its receiver identity
      reserve   a reserve call, recorded so checks can test dominance by
                preceding-statement order
    """

    kind: str
    what: str  # allocated type, helper name, or container method
    file: str
    line: int
    offset: int
    receiver: str = ""  # dotted receiver path for growth/reserve
    receiver_type: str = ""  # qualType of the receiver expression
    receiver_is_ref_param: bool = False  # receiver roots at a & parameter
    copy: bool = False  # construct whose single argument is a same-type lvalue

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(d: dict[str, Any]) -> "AllocSite":
        return AllocSite(**d)


@dataclasses.dataclass
class ParamFact:
    """A function parameter, for the heavy-copy pass-by-value check."""

    name: str
    qual: str  # declared type as written
    file: str
    line: int
    moved: bool = False  # std::move(param) appears in the body / init list

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(d: dict[str, Any]) -> "ParamFact":
        return ParamFact(**d)


@dataclasses.dataclass
class IndirectCall:
    """A virtual dispatch or std::function invocation site."""

    kind: str  # "virtual" | "functor"
    callee: str
    file: str
    line: int
    offset: int

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(d: dict[str, Any]) -> "IndirectCall":
        return IndirectCall(**d)


@dataclasses.dataclass
class ThrowSite:
    file: str
    line: int
    offset: int

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(d: dict[str, Any]) -> "ThrowSite":
        return ThrowSite(**d)


@dataclasses.dataclass
class VarEvent:
    """One lifetime-relevant event on a local/parameter path.

    kind:
      move    the path is the argument of ``std::move``
      use     a read, member call, or compound assignment on the path
      reinit  plain assignment to the path, or ``.clear()`` / ``.reset()``
              / ``.assign(...)`` on it — the moved-from state ends here

    Only events whose root was moved or reference-bound somewhere in the
    function survive frame close; everything else is transient walk state.
    """

    kind: str
    path: str  # dotted path from the root ("v", "sweep.heap")
    root: str  # root variable name
    root_id: str  # clang decl id of the root (per-function grouping key)
    root_kind: str  # "local" | "param"
    file: str
    line: int
    offset: int
    detail: str = ""  # method name or operator, for diagnostics/exemptions
    decl_offset: int = 0  # declaration offset of the root variable

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(d: dict[str, Any]) -> "VarEvent":
        return VarEvent(**d)


@dataclasses.dataclass
class RefBind:
    """A reference/pointer/iterator bound to a container element."""

    name: str  # bound variable
    var_id: str  # clang decl id (matches VarEvent.root_id)
    receiver: str  # dotted container path ("this.nodes_", "out")
    method: str  # operator[] | front | back | begin | data
    file: str
    line: int
    offset: int  # declaration offset of the binding
    is_pointer: bool = False  # pointer/iterator rather than a reference

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(d: dict[str, Any]) -> "RefBind":
        return RefBind(**d)


@dataclasses.dataclass
class LambdaEscape:
    """A lambda leaving the enclosing full-expression.

    kind:
      return  the lambda appears inside a return statement
      store   assigned or initialized into named storage (``target``)
      submit  handed to ThreadPool::Schedule/Submit/ParallelFor; only
              Schedule/Submit set ``deferred`` (ParallelFor joins before
              returning by contract)
    """

    lam: str  # lambda qname (joins against FunctionFact.captures)
    kind: str
    target: str  # storage path, "(return)", or the submit method
    file: str
    line: int
    offset: int
    deferred: bool = False
    storage_offset: int = -1  # decl offset of local storage (-1: none)
    storage_is_member: bool = False
    storage_is_static: bool = False

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(d: dict[str, Any]) -> "LambdaEscape":
        return LambdaEscape(**d)


@dataclasses.dataclass
class BranchSpan:
    """Offsets of an if/else pair, for sibling-arm divergence exemptions."""

    then_begin: int
    then_end: int
    else_begin: int
    else_end: int

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(d: dict[str, Any]) -> "BranchSpan":
        return BranchSpan(**d)


@dataclasses.dataclass
class Capture:
    name: str
    by_ref: bool
    mode_known: bool  # False when the closure-field zip failed


@dataclasses.dataclass
class Mutation:
    root: str  # captured variable name
    file: str
    line: int
    offset: int
    expr: str  # short description for diagnostics
    per_slot: bool  # subscripted by the lambda's index parameter
    atomic: bool  # std::atomic access or atomic RMW method
    root_type: str = ""  # qualType of the captured variable

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(d: dict[str, Any]) -> "Mutation":
        return Mutation(**d)


@dataclasses.dataclass
class FunctionFact:
    qname: str
    file: str
    line: int
    body_end: int = 0
    is_lambda: bool = False
    lambda_mutable: bool = False
    submitted: bool = False  # lambda handed to ThreadPool::Schedule/ParallelFor
    acquisitions: list[Acquisition] = dataclasses.field(default_factory=list)
    calls: list[CallSite] = dataclasses.field(default_factory=list)
    captures: dict[str, dict[str, Any]] = dataclasses.field(
        default_factory=dict)  # name -> {by_ref, mode_known[, type]}
    mutations: list[Mutation] = dataclasses.field(default_factory=list)
    loops: list[LoopSpan] = dataclasses.field(default_factory=list)
    allocs: list[AllocSite] = dataclasses.field(default_factory=list)
    params: list[ParamFact] = dataclasses.field(default_factory=list)
    indirect_calls: list[IndirectCall] = dataclasses.field(
        default_factory=list)
    throws: list[ThrowSite] = dataclasses.field(default_factory=list)
    var_events: list[VarEvent] = dataclasses.field(default_factory=list)
    ref_binds: list[RefBind] = dataclasses.field(default_factory=list)
    escapes: list[LambdaEscape] = dataclasses.field(default_factory=list)
    branches: list[BranchSpan] = dataclasses.field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "qname": self.qname,
            "file": self.file,
            "line": self.line,
            "body_end": self.body_end,
            "is_lambda": self.is_lambda,
            "lambda_mutable": self.lambda_mutable,
            "submitted": self.submitted,
            "acquisitions": [a.to_json() for a in self.acquisitions],
            "calls": [c.to_json() for c in self.calls],
            "captures": self.captures,
            "mutations": [m.to_json() for m in self.mutations],
            "loops": [x.to_json() for x in self.loops],
            "allocs": [x.to_json() for x in self.allocs],
            "params": [x.to_json() for x in self.params],
            "indirect_calls": [x.to_json() for x in self.indirect_calls],
            "throws": [x.to_json() for x in self.throws],
            "var_events": [x.to_json() for x in self.var_events],
            "ref_binds": [x.to_json() for x in self.ref_binds],
            "escapes": [x.to_json() for x in self.escapes],
            "branches": [x.to_json() for x in self.branches],
        }

    @staticmethod
    def from_json(d: dict[str, Any]) -> "FunctionFact":
        f = FunctionFact(qname=d["qname"], file=d["file"], line=d["line"],
                         body_end=d.get("body_end", 0),
                         is_lambda=d.get("is_lambda", False),
                         lambda_mutable=d.get("lambda_mutable", False),
                         submitted=d.get("submitted", False))
        f.acquisitions = [Acquisition.from_json(a) for a in d["acquisitions"]]
        f.calls = [CallSite.from_json(c) for c in d["calls"]]
        f.captures = d.get("captures", {})
        f.mutations = [Mutation.from_json(m) for m in d.get("mutations", [])]
        f.loops = [LoopSpan.from_json(x) for x in d.get("loops", [])]
        f.allocs = [AllocSite.from_json(x) for x in d.get("allocs", [])]
        f.params = [ParamFact.from_json(x) for x in d.get("params", [])]
        f.indirect_calls = [IndirectCall.from_json(x)
                            for x in d.get("indirect_calls", [])]
        f.throws = [ThrowSite.from_json(x) for x in d.get("throws", [])]
        f.var_events = [VarEvent.from_json(x) for x in d.get("var_events", [])]
        f.ref_binds = [RefBind.from_json(x) for x in d.get("ref_binds", [])]
        f.escapes = [LambdaEscape.from_json(x) for x in d.get("escapes", [])]
        f.branches = [BranchSpan.from_json(x) for x in d.get("branches", [])]
        return f


@dataclasses.dataclass
class TUFacts:
    """Facts extracted from one translation unit."""

    main_file: str = ""
    functions: list[FunctionFact] = dataclasses.field(default_factory=list)
    # Mutex-typed fields: "Record::field" -> {"file": ..., "line": ...}
    mutex_fields: dict[str, dict[str, Any]] = dataclasses.field(
        default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "main_file": self.main_file,
            "functions": [f.to_json() for f in self.functions],
            "mutex_fields": self.mutex_fields,
        }

    @staticmethod
    def from_json(d: dict[str, Any]) -> "TUFacts":
        tu = TUFacts(main_file=d.get("main_file", ""))
        tu.functions = [FunctionFact.from_json(f) for f in d["functions"]]
        tu.mutex_fields = d.get("mutex_fields", {})
        return tu


class FactDB:
    """Whole-program merge of per-TU facts."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionFact] = {}
        self.mutex_fields: dict[str, dict[str, Any]] = {}
        self.tu_files: list[str] = []

    def add_tu(self, tu: TUFacts) -> None:
        self.tu_files.append(tu.main_file)
        self.mutex_fields.update(tu.mutex_fields)
        for fn in tu.functions:
            prev = self.functions.get(fn.qname)
            if prev is None:
                self.functions[fn.qname] = fn
                continue
            # Header-inline functions and template instantiations appear in
            # several TUs; keep the richer variant, but never lose a
            # submitted flag observed in any TU.
            if self._richness(fn) > self._richness(prev):
                fn.submitted = fn.submitted or prev.submitted
                self.functions[fn.qname] = fn
            else:
                prev.submitted = prev.submitted or fn.submitted

    @staticmethod
    def _richness(fn: FunctionFact) -> int:
        return (len(fn.acquisitions) + len(fn.calls) + len(fn.mutations)
                + len(fn.loops) + len(fn.allocs) + len(fn.params)
                + len(fn.indirect_calls) + len(fn.throws)
                + len(fn.var_events) + len(fn.ref_binds) + len(fn.escapes))

    def resolve(self, callee: str) -> list[FunctionFact]:
        """Best-effort name linking: exact qname, then suffix match."""
        hit = self.functions.get(callee)
        if hit is not None:
            return [hit]
        suffix = "::" + callee
        return [f for q, f in self.functions.items() if q.endswith(suffix)]

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "tu_files": self.tu_files,
            "mutex_fields": self.mutex_fields,
            "functions": [f.to_json() for f in self.functions.values()],
        }


# ---------------------------------------------------------------------------
# Tolerant loading of dumper output
# ---------------------------------------------------------------------------


def load_ast_roots(text: str) -> list[dict[str, Any]]:
    """Parses one or more concatenated JSON objects.

    ``-ast-dump-filter`` makes clang emit several JSON documents (sometimes
    interleaved with ``Dumping <name>:`` banner lines); a plain dump is a
    single object. Both shapes land here.
    """
    roots: list[dict[str, Any]] = []
    decoder = json.JSONDecoder()
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c.isspace():
            i += 1
            continue
        if c != "{":
            nl = text.find("\n", i)  # skip banner / diagnostic lines
            if nl == -1:
                break
            i = nl + 1
            continue
        obj, end = decoder.raw_decode(text, i)
        roots.append(obj)
        i = end
    return roots


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------

_FUNCTION_KINDS = {
    "FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
    "CXXDestructorDecl", "CXXConversionDecl",
}

_TRANSPARENT_KINDS = {
    "LinkageSpecDecl", "ClassTemplateDecl", "FunctionTemplateDecl",
    "ClassTemplateSpecializationDecl", "ClassTemplatePartialSpecializationDecl",
    "ExportDecl",
}

# Member functions of the annotated sync primitives are modeled natively by
# the checks (MutexLock scoping, CondVar::Wait being a sanctioned wait), so
# their bodies are excluded from the call-graph facts.
_SYNC_PRIMITIVE_RE = re.compile(
    r"(^|::)treesim::(Mutex|MutexLock|CondVar)(::|$)")

_SUBMIT_METHODS = {"Schedule", "Submit", "ParallelFor"}

_MUTATING_METHOD_NAMES = {
    "push_back", "pop_back", "emplace_back", "emplace", "push", "pop",
    "insert", "erase", "clear", "resize", "reserve", "assign", "append",
    "swap", "emplace_front", "push_front", "pop_front",
}

_LOOP_KINDS = {"ForStmt", "WhileStmt", "DoStmt", "CXXForRangeStmt"}

# Container calls that may (re)allocate when the container grows; `resize`
# appears on both sides — inside a loop it is growth, before one it
# preallocates like `reserve` does.
_GROWTH_METHOD_NAMES = {
    "push_back", "emplace_back", "push_front", "emplace_front", "insert",
    "emplace", "append", "assign", "resize",
}

_RESERVE_METHOD_NAMES = {"reserve", "resize"}

# Member calls that end a moved-from state by giving the object a fresh
# value wholesale.
_REINIT_METHODS = {"clear", "reset", "assign"}

# Member calls whose result aliases container storage (the element-reference
# sources of the invalidated-reference check).
_ELEM_REF_METHODS = {"front", "back", "begin", "data"}

_MAKE_ALLOC_FUNCS = {"make_unique", "make_shared"}

# Longest string literal guaranteed to fit every mainstream SSO buffer
# (libstdc++ and libc++ both hold 15 chars + NUL inline).
_SSO_SAFE_LEN = 15

_ATOMIC_METHOD_NAMES = {
    "store", "exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
    "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
}

_ASSIGN_OPERATORS = {
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
}

_WRAPPER_EXPR_KINDS = {
    "ImplicitCastExpr", "ParenExpr", "ExprWithCleanups", "ConstantExpr",
    "MaterializeTemporaryExpr", "CXXBindTemporaryExpr", "FullExpr",
    "CStyleCastExpr", "CXXStaticCastExpr", "CXXConstCastExpr",
    "CXXFunctionalCastExpr",
}


def _type_of(node: dict[str, Any]) -> str:
    t = node.get("type")
    if isinstance(t, dict):
        return str(t.get("qualType", ""))
    return ""


def _strip_type(qual: str) -> str:
    """``const std::shared_ptr<ThreadBuffer> &`` -> identifier tokens."""
    return re.findall(r"[A-Za-z_][A-Za-z0-9_]*", qual)


class _Frame:
    """Per-function (or per-lambda) extraction state."""

    def __init__(self, fact: FunctionFact, parent: "_Frame | None") -> None:
        self.fact = fact
        self.parent = parent
        self.param_ids: set[str] = set()
        self.param_names: set[str] = set()
        self.local_ids: set[str] = set()
        self.derived_ids: set[str] = set()  # locals derived from a param
        self.derived_names: set[str] = set()
        self.open_manual: list[Acquisition] = []
        self.loop_stack: list[LoopSpan] = []
        self.param_facts: dict[str, ParamFact] = {}  # decl id -> fact
        # Lifetime events are recorded for every local/param during the walk
        # and filtered at frame close to the roots that were moved or
        # reference-bound (the only ones the checks can act on).
        self.var_events: list[VarEvent] = []
        self.moved_roots: set[str] = set()
        self.refbound_ids: set[str] = set()


class Extractor:
    """One pass over one TU's AST JSON."""

    def __init__(self, repo_root: str, source_lines: "dict[str, list[str]] | None" = None) -> None:
        self.repo_root = repo_root.rstrip("/") + "/"
        self.cur_file = ""
        self.cur_line = 0
        # (name, kind) with kind in {"ns", "record", "fn"} — the kind lets
        # `this->field` resolve to the innermost *record* even when the
        # field declaration has not been visited yet (fields declared after
        # inline methods).
        self.ctx: list[tuple[str, str]] = []
        self.frames: list[_Frame] = []
        self.tu = TUFacts()
        # var id -> (frame-or-None for globals, name, qualType)
        self.vars: dict[str, tuple[_Frame | None, str, str]] = {}
        # method decl id -> (name, qualType, is_virtual) for constness and
        # dispatch-kind resolution
        self.methods: dict[str, tuple[str, str, bool]] = {}
        self.compound_ends: list[int] = []
        self._lambda_counter = 0
        # var decl id -> declaration offset (storage-lifetime comparisons)
        self.var_offsets: dict[str, int] = {}
        # decl ids with static/extern storage (they outlive every frame)
        self.static_var_ids: set[str] = set()
        # Active lambda-escape sinks: a return statement or a resolvable
        # assignment/initialization target currently being walked. A lambda
        # encountered while the innermost sink belongs to the same frame
        # depth is recorded as escaping into it.
        self._lambda_sinks: list[dict[str, Any]] = []
        # > 0 while inside a function-local static variable's initializer:
        # the init runs once per process, so its allocations and calls are
        # off the hot path by construction (the metrics macros rely on
        # exactly this pattern).
        self._static_init_depth = 0

    # -- location state ----------------------------------------------------

    def _note_loc(self, loc: Any) -> None:
        if not isinstance(loc, dict):
            return
        # Macro locations nest the interesting position one level down; the
        # expansion side is where the code executes.
        if "expansionLoc" in loc or "spellingLoc" in loc:
            self._note_loc(loc.get("spellingLoc"))
            self._note_loc(loc.get("expansionLoc"))
            return
        f = loc.get("file")
        if f is not None:
            self.cur_file = f
        ln = loc.get("line")
        if ln is not None:
            self.cur_line = ln

    def _note_range(self, rng: Any) -> None:
        if not isinstance(rng, dict):
            return
        self._note_loc(rng.get("begin"))
        self._note_loc(rng.get("end"))

    def in_repo(self) -> bool:
        f = self.cur_file
        if "/_deps/" in f:
            return False  # FetchContent checkouts live under the build dir
        return f.startswith(self.repo_root) or (bool(f) and
                                                not f.startswith("/"))

    @staticmethod
    def _offset(loc: Any) -> int | None:
        if not isinstance(loc, dict):
            return None
        if "expansionLoc" in loc:
            return Extractor._offset(loc["expansionLoc"])
        off = loc.get("offset")
        return off if isinstance(off, int) else None

    @staticmethod
    def _range_end_offset(node: dict[str, Any]) -> int | None:
        rng = node.get("range")
        if isinstance(rng, dict):
            return Extractor._offset(rng.get("end"))
        return None

    @staticmethod
    def _node_offset(node: dict[str, Any]) -> int | None:
        off = Extractor._offset(node.get("loc"))
        if off is not None:
            return off
        rng = node.get("range")
        if isinstance(rng, dict):
            return Extractor._offset(rng.get("begin"))
        return None

    # -- entry point -------------------------------------------------------

    def extract(self, root: dict[str, Any], main_file: str) -> TUFacts:
        self.tu.main_file = main_file
        self._walk(root)
        return self.tu

    # -- generic walk ------------------------------------------------------

    def _walk(self, node: Any) -> None:
        if isinstance(node, list):
            for child in node:
                self._walk(child)
            return
        if not isinstance(node, dict):
            return
        kind = node.get("kind", "")

        # Location keys are emitted before "inner", so noting them first
        # reproduces the dumper's serialization order exactly.
        self._note_loc(node.get("loc"))
        self._note_range(node.get("range"))

        if kind == "NamespaceDecl":
            self.ctx.append((node.get("name") or "(anonymous)", "ns"))
            self._walk_inner(node)
            self.ctx.pop()
            return
        if kind in _TRANSPARENT_KINDS:
            self._walk_inner(node)
            return
        if kind == "CXXRecordDecl":
            name = node.get("name")
            if name:
                self.ctx.append((name, "record"))
                self._walk_inner(node)
                self.ctx.pop()
            else:
                self._walk_inner(node)
            return
        if kind == "FieldDecl":
            self._visit_field(node)
            self._walk_inner(node)
            return
        if kind in _FUNCTION_KINDS:
            self._visit_function(node)
            return
        if kind in ("VarDecl", "ParmVarDecl"):
            sink_pushed = self._visit_var(node)
            static_local = (kind == "VarDecl" and self.frames
                            and node.get("storageClass") == "static")
            if static_local:
                self._static_init_depth += 1
            self._walk_inner(node)
            if static_local:
                self._static_init_depth -= 1
            if sink_pushed:
                self._lambda_sinks.pop()
            return
        if kind in _LOOP_KINDS:
            self._visit_loop(node)
            return
        if kind == "CXXNewExpr":
            self._record_alloc("new", _type_of(node), node)
            self._walk_inner(node)
            return
        if kind == "CXXThrowExpr":
            self._record_throw(node)
            self._walk_inner(node)
            return
        if kind == "CompoundStmt":
            end = self._range_end_offset(node)
            self.compound_ends.append(end if end is not None else -1)
            self._walk_inner(node)
            self.compound_ends.pop()
            return
        if kind == "LambdaExpr":
            self._visit_lambda(node)
            return
        if kind == "CXXMemberCallExpr":
            self._visit_member_call(node)
            self._walk_inner(node)
            return
        if kind == "CallExpr":
            self._visit_call(node)
            self._walk_inner(node)
            return
        if kind == "CXXConstructExpr":
            self._visit_construct(node)
            self._walk_inner(node)
            return
        if kind in ("BinaryOperator", "CompoundAssignOperator"):
            op = node.get("opcode", "")
            sink_pushed = False
            if op in _ASSIGN_OPERATORS:
                inner = node.get("inner") or []
                if inner:
                    self._record_mutation(inner[0], f"operator{op}", node)
                    if op == "=":
                        self._record_assign_reinit(inner[0], node)
                        sink_pushed = self._push_lambda_sink(inner[0])
            self._walk_inner(node)
            if sink_pushed:
                self._lambda_sinks.pop()
            return
        if kind == "UnaryOperator":
            if node.get("opcode") in ("++", "--"):
                inner = node.get("inner") or []
                if inner:
                    self._record_mutation(inner[0],
                                          f"operator{node.get('opcode')}",
                                          node)
            self._walk_inner(node)
            return
        if kind == "CXXOperatorCallExpr":
            sink_pushed = self._visit_operator_call(node)
            self._walk_inner(node)
            if sink_pushed:
                self._lambda_sinks.pop()
            return
        if kind == "DeclRefExpr":
            self._visit_decl_ref_use(node)
            self._walk_inner(node)
            return
        if kind == "ReturnStmt":
            pushed = False
            if self.frames and self.in_repo():
                self._lambda_sinks.append({
                    "kind": "return", "target": "(return)",
                    "storage_offset": -1, "is_member": False,
                    "is_static": False, "frame_depth": len(self.frames)})
                pushed = True
            self._walk_inner(node)
            if pushed:
                self._lambda_sinks.pop()
            return
        if kind == "IfStmt":
            self._visit_if(node)
            self._walk_inner(node)
            return
        self._walk_inner(node)

    def _walk_inner(self, node: dict[str, Any]) -> None:
        inner = node.get("inner")
        if inner:
            self._walk(inner)

    # -- declarations ------------------------------------------------------

    def _ctx_names(self) -> list[str]:
        return [n for n, _ in self.ctx]

    def _qname(self, name: str) -> str:
        names = self._ctx_names()
        return "::".join(names + [name]) if names else name

    def _visit_field(self, node: dict[str, Any]) -> None:
        qual = _type_of(node)
        if not self.in_repo():
            return
        name = node.get("name")
        if not name:
            return
        tokens = _strip_type(qual)
        if "Mutex" in tokens and "MutexLock" not in tokens:
            record = "::".join(self._ctx_names()) if self.ctx else "(file scope)"
            self.tu.mutex_fields[f"{record}::{name}"] = {
                "file": self.cur_file,
                "line": self.cur_line,
                "record": record,
                "field": name,
            }

    def _visit_function(self, node: dict[str, Any]) -> None:
        if node.get("isImplicit"):
            self._walk_inner(node)  # keep location state moving
            return
        name = node.get("name") or "(unnamed)"
        qname = self._qname(name)
        has_body = any(
            isinstance(c, dict) and c.get("kind") == "CompoundStmt"
            for c in node.get("inner") or [])
        record = (has_body and self.in_repo()
                  and not _SYNC_PRIMITIVE_RE.search(qname))
        if not record:
            # Still walk for location state and method registration.
            self._register_method(node)
            self.ctx.append((name, "fn"))
            self._walk_inner(node)
            self.ctx.pop()
            return
        self._register_method(node)
        fact = FunctionFact(qname=qname, file=self.cur_file,
                            line=self.cur_line)
        end = self._range_end_offset(node)
        fact.body_end = end if end is not None else 1 << 60
        frame = _Frame(fact, self.frames[-1] if self.frames else None)
        self.frames.append(frame)
        self.ctx.append((name, "fn"))
        self._walk_inner(node)
        self.ctx.pop()
        self._close_frame(frame)
        self.frames.pop()
        self.tu.functions.append(fact)

    def _register_method(self, node: dict[str, Any]) -> None:
        nid = node.get("id")
        if nid:
            self.methods[nid] = (node.get("name") or "", _type_of(node),
                                 bool(node.get("virtual")
                                      or node.get("pure")))

    def _close_frame(self, frame: _Frame) -> None:
        for acq in frame.open_manual:
            acq.end = frame.fact.body_end
            frame.fact.acquisitions.append(acq)
        frame.open_manual.clear()
        keep = frame.moved_roots | frame.refbound_ids
        if keep:
            frame.fact.var_events = sorted(
                (e for e in frame.var_events if e.root_id in keep),
                key=lambda e: (e.offset, e.kind != "move"))
        frame.var_events = []

    def _visit_var(self, node: dict[str, Any]) -> bool:
        """Returns True when a lambda-store sink was pushed (caller pops)."""
        name = node.get("name") or ""
        nid = node.get("id") or ""
        qual = _type_of(node)
        frame = self.frames[-1] if self.frames else None
        if nid:
            self.vars[nid] = (frame, name, qual)
            off = self._node_offset(node)
            if off is not None:
                self.var_offsets[nid] = off
            if frame is None or node.get("storageClass") in ("static",
                                                             "extern"):
                self.static_var_ids.add(nid)
        if frame is None:
            return False
        if node.get("kind") == "ParmVarDecl":
            frame.param_ids.add(nid)
            frame.param_names.add(name)
            if name and self.in_repo():
                pf = ParamFact(name=name, qual=qual, file=self.cur_file,
                               line=self.cur_line)
                frame.fact.params.append(pf)
                if nid:
                    frame.param_facts[nid] = pf
            return False
        frame.local_ids.add(nid)
        # Param-derived locals extend the per-index slot rule through
        # intermediates like `const int id = candidates[c];`.
        init = node.get("inner") or []
        if init and self._mentions_derived(init, frame):
            frame.derived_ids.add(nid)
            frame.derived_names.add(name)
        tokens = _strip_type(qual)
        if "MutexLock" in tokens:
            self._record_raii_acquisition(node, frame)
        if nid and name and self.in_repo():
            self._record_ref_bind(node, name, nid, qual, frame)
        if "function" in tokens and name and self.in_repo():
            # A std::function local is outliving storage for any lambda in
            # its initializer; whether the capture dies first is decided by
            # the check from the recorded offsets.
            self._lambda_sinks.append({
                "kind": "store", "target": name,
                "storage_offset": self._node_offset(node) or 0,
                "is_member": False,
                "is_static": nid in self.static_var_ids,
                "frame_depth": len(self.frames)})
            return True
        return False

    def _mentions_derived(self, subtree: Any, frame: _Frame) -> bool:
        for ref in self._iter_decl_refs(subtree):
            rid = ref.get("id", "")
            rname = ref.get("name", "")
            if rid in frame.param_ids or rid in frame.derived_ids:
                return True
            if rname and (rname in frame.param_names
                          or rname in frame.derived_names):
                return True
        return False

    @staticmethod
    def _iter_decl_refs(subtree: Any) -> Iterable[dict[str, Any]]:
        stack = [subtree]
        while stack:
            n = stack.pop()
            if isinstance(n, list):
                stack.extend(n)
            elif isinstance(n, dict):
                if n.get("kind") == "DeclRefExpr":
                    rd = n.get("referencedDecl")
                    if isinstance(rd, dict):
                        yield rd
                stack.extend(v for v in n.values()
                             if isinstance(v, (dict, list)))

    # -- acquisitions ------------------------------------------------------

    def _record_raii_acquisition(self, var_node: dict[str, Any],
                                 frame: _Frame) -> None:
        lock = self._lock_id_from_subtree(var_node.get("inner") or [])
        begin = self._node_offset(var_node)
        scope_end = next((e for e in reversed(self.compound_ends) if e >= 0),
                        frame.fact.body_end)
        frame.fact.acquisitions.append(
            Acquisition(lock=lock, file=self.cur_file, line=self.cur_line,
                        begin=begin if begin is not None else 0,
                        end=scope_end, kind="raii"))

    def _lock_id_from_subtree(self, subtree: Any) -> str:
        expr = self._first_lockable_expr(subtree)
        if expr is None:
            return self._opaque_lock_id()
        return self._lock_id(expr)

    def _first_lockable_expr(self, subtree: Any) -> dict[str, Any] | None:
        stack = [subtree]
        while stack:
            n = stack.pop(0)
            if isinstance(n, list):
                stack = list(n) + stack
            elif isinstance(n, dict):
                if n.get("kind") in ("MemberExpr", "DeclRefExpr"):
                    return n
                inner = n.get("inner")
                if inner:
                    stack = list(inner) + stack
        return None

    def _opaque_lock_id(self) -> str:
        fn = self.frames[-1].fact.qname if self.frames else "(global)"
        return f"{fn}::<lock@{self.cur_file}:{self.cur_line}>"

    def _lock_id(self, expr: dict[str, Any]) -> str:
        """Canonical identity for the mutex denoted by `expr`."""
        members: list[str] = []
        node: Any = expr
        while isinstance(node, dict):
            kind = node.get("kind", "")
            if kind == "MemberExpr":
                members.insert(0, node.get("name", "?"))
                inner = node.get("inner") or []
                node = inner[0] if inner else None
                continue
            if kind in _WRAPPER_EXPR_KINDS or kind == "UnaryOperator":
                inner = node.get("inner") or []
                node = inner[0] if inner else None
                continue
            if kind == "CXXOperatorCallExpr":
                # operator-> / operator* / operator[] chains: the object is
                # the first argument after the callee.
                inner = node.get("inner") or []
                node = inner[1] if len(inner) > 1 else None
                continue
            if kind == "ArraySubscriptExpr":
                inner = node.get("inner") or []
                node = inner[0] if inner else None
                continue
            break
        if isinstance(node, dict) and node.get("kind") == "CXXThisExpr":
            # this->mu_ : identity is the enclosing record's field. The
            # context stack still holds the record (function name was pushed
            # after it), so drop trailing function-ish entries by matching
            # against known records via the member name.
            record = self._record_context()
            return f"{record}::{'.'.join(members)}"
        if isinstance(node, dict) and node.get("kind") == "DeclRefExpr":
            rd = node.get("referencedDecl") or {}
            vid = rd.get("id", "")
            vname = rd.get("name", "?")
            known = self.vars.get(vid)
            vqual = known[2] if known else str(
                rd.get("type", {}).get("qualType", "")
                if isinstance(rd.get("type"), dict) else "")
            if members:
                # var.field / var->field: prefer a class-field identity when
                # the variable's type names a record with that mutex field.
                field = members[-1]
                rec = self._match_mutex_record(vqual, field)
                if rec is not None:
                    return f"{rec}::{field}"
            owner = known[0] if known else None
            if owner is not None:
                base = f"{owner.fact.qname}::{vname}"
            elif known is not None:
                base = vname  # global registered at file scope
            else:
                base = vname  # namespace-scope variable: bare name
            return base + ("." + ".".join(members) if members else "")
        return self._opaque_lock_id()

    def _record_context(self) -> str:
        # `this->field`: the owning record is the innermost record context,
        # independent of whether its FieldDecls were visited yet (inline
        # methods commonly precede the private field section).
        names = self._ctx_names()
        for depth in range(len(self.ctx), 0, -1):
            if self.ctx[depth - 1][1] == "record":
                return "::".join(names[:depth])
        return "::".join(names) if names else "(file scope)"

    def _match_mutex_record(self, var_qual: str, field: str) -> str | None:
        tokens = set(_strip_type(var_qual))
        candidates = [
            v["record"] for v in self.tu.mutex_fields.values()
            if v["field"] == field and v["record"].split("::")[-1] in tokens
        ]
        if not candidates:
            return None
        if len(candidates) > 1 and self.frames:
            fn = self.frames[-1].fact.qname
            scoped = [c for c in candidates if c.startswith(fn)]
            if len(scoped) == 1:
                return scoped[0]
        return candidates[0]

    # -- perf facts --------------------------------------------------------

    def _visit_loop(self, node: dict[str, Any]) -> None:
        frame = self.frames[-1] if self.frames else None
        rng = node.get("range")
        begin = self._offset(rng.get("begin")) if isinstance(rng, dict) \
            else None
        end = self._offset(rng.get("end")) if isinstance(rng, dict) else None
        if (frame is None or not self.in_repo() or begin is None
                or end is None):
            self._walk_inner(node)
            return
        span = LoopSpan(file=self.cur_file, line=self.cur_line, begin=begin,
                        end=end, depth=len(frame.loop_stack) + 1)
        frame.fact.loops.append(span)
        frame.loop_stack.append(span)
        self._walk_inner(node)
        frame.loop_stack.pop()

    def _record_alloc(self, kind: str, what: str, node: dict[str, Any],
                      receiver: str = "", receiver_type: str = "",
                      receiver_is_ref_param: bool = False,
                      copy: bool = False) -> None:
        frame = self.frames[-1] if self.frames else None
        if frame is None or not self.in_repo() or self._static_init_depth:
            return
        frame.fact.allocs.append(AllocSite(
            kind=kind, what=what, file=self.cur_file, line=self.cur_line,
            offset=self._node_offset(node) or 0, receiver=receiver,
            receiver_type=receiver_type,
            receiver_is_ref_param=receiver_is_ref_param, copy=copy))

    def _record_throw(self, node: dict[str, Any]) -> None:
        frame = self.frames[-1] if self.frames else None
        if frame is None or not self.in_repo() or self._static_init_depth:
            return
        frame.fact.throws.append(ThrowSite(
            file=self.cur_file, line=self.cur_line,
            offset=self._node_offset(node) or 0))

    def _record_growth(self, node: dict[str, Any], method: str,
                       base: Any, frame: _Frame) -> None:
        path, ref_param = self._receiver_root(base, frame)
        kinds = []
        if method in _GROWTH_METHOD_NAMES:
            kinds.append("growth")
        if method in _RESERVE_METHOD_NAMES:
            kinds.append("reserve")
        for kind in kinds:
            self._record_alloc(kind, method, node, receiver=path,
                               receiver_type=self._expr_type(base),
                               receiver_is_ref_param=ref_param)

    def _receiver_root(self, node: Any,
                       frame: _Frame) -> tuple[str, bool]:
        """Dotted receiver path + whether it roots at a `&` parameter.

        Follows the member/subscript chain of a container receiver down to
        its root variable; an unresolvable receiver returns ("", False) so
        the checks stay conservative (no dominance match, no finding on an
        identity that cannot be named in a fix).
        """
        members: list[str] = []
        guard = 0
        while isinstance(node, dict) and guard < 64:
            guard += 1
            kind = node.get("kind", "")
            if kind == "MemberExpr":
                members.insert(0, node.get("name", "?"))
                inner = node.get("inner") or []
                node = inner[0] if inner else None
                continue
            if kind in _WRAPPER_EXPR_KINDS or kind == "UnaryOperator":
                inner = node.get("inner") or []
                node = inner[0] if inner else None
                continue
            if kind == "ArraySubscriptExpr":
                inner = node.get("inner") or []
                node = inner[0] if inner else None
                continue
            if kind == "CXXOperatorCallExpr":
                inner = node.get("inner") or []
                node = inner[1] if len(inner) > 1 else None
                continue
            break
        if isinstance(node, dict) and node.get("kind") == "CXXThisExpr":
            return ".".join(["this"] + members), False
        if isinstance(node, dict) and node.get("kind") == "DeclRefExpr":
            rd = node.get("referencedDecl") or {}
            vname = str(rd.get("name", ""))
            if not vname:
                return "", False
            vid = str(rd.get("id", ""))
            t = rd.get("type")
            vqual = t.get("qualType", "") if isinstance(t, dict) else ""
            ref_param = (vid in frame.param_ids
                         and vqual.rstrip().endswith("&"))
            return ".".join([vname] + members), ref_param
        return "", False

    @staticmethod
    def _string_literal_len(subtree: Any) -> "int | None":
        """Length of the first string literal in the subtree, if any."""
        stack = [subtree]
        while stack:
            n = stack.pop()
            if isinstance(n, list):
                stack.extend(n)
            elif isinstance(n, dict):
                if n.get("kind") == "StringLiteral":
                    val = str(n.get("value", ""))
                    # The dumper quotes the literal and escapes specials;
                    # the quoted length over-counts escapes, which only
                    # errs on the conservative (non-SSO) side.
                    return max(0, len(val) - 2)
                inner = n.get("inner")
                if inner:
                    stack.extend(inner)
        return None

    # -- lifetime facts ----------------------------------------------------

    @staticmethod
    def _iter_decl_ref_nodes(subtree: Any) -> Iterable[dict[str, Any]]:
        """Like _iter_decl_refs, but yields the DeclRefExpr nodes."""
        stack = [subtree]
        while stack:
            n = stack.pop()
            if isinstance(n, list):
                stack.extend(n)
            elif isinstance(n, dict):
                if n.get("kind") == "DeclRefExpr":
                    yield n
                stack.extend(v for v in n.values()
                             if isinstance(v, (dict, list)))

    def _lifetime_path(self, node: Any, frame: _Frame):
        """(dotted path, root id, root kind, root node) for a frame-local
        expression, or None.

        Follows only member chains and transparent wrappers; calls,
        subscripts, and dereferences make the identity unresolvable and the
        caller records no event (conservative: never guess a lifetime).
        The root must be a local or parameter of the *current* frame —
        captures and this-rooted members have their own lifetimes.
        """
        members: list[str] = []
        guard = 0
        while isinstance(node, dict) and guard < 64:
            guard += 1
            kind = node.get("kind", "")
            if kind == "MemberExpr":
                members.insert(0, node.get("name", "?"))
                inner = node.get("inner") or []
                node = inner[0] if inner else None
                continue
            if kind in _WRAPPER_EXPR_KINDS:
                inner = node.get("inner") or []
                node = inner[0] if inner else None
                continue
            break
        if not (isinstance(node, dict)
                and node.get("kind") == "DeclRefExpr"):
            return None
        rd = node.get("referencedDecl") or {}
        vid = str(rd.get("id", ""))
        vname = str(rd.get("name", ""))
        if not vid or not vname:
            return None
        if vid in frame.param_ids:
            root_kind = "param"
        elif vid in frame.local_ids:
            root_kind = "local"
        else:
            return None
        return ".".join([vname] + members), vid, root_kind, node

    def _record_var_event(self, frame: _Frame, kind: str, path: str,
                          root_id: str, root_kind: str,
                          site: dict[str, Any], detail: str = "") -> None:
        if not self.in_repo():
            return
        frame.var_events.append(VarEvent(
            kind=kind, path=path, root=path.split(".")[0], root_id=root_id,
            root_kind=root_kind, file=self.cur_file, line=self.cur_line,
            offset=self._node_offset(site) or 0, detail=detail,
            decl_offset=self.var_offsets.get(root_id, 0)))
        if kind == "move":
            frame.moved_roots.add(root_id)

    def _visit_decl_ref_use(self, node: dict[str, Any]) -> None:
        if node.get("__astcheck_lifetime_consumed"):
            return
        frame = self.frames[-1] if self.frames else None
        if frame is None or not self.in_repo():
            return
        rd = node.get("referencedDecl") or {}
        vid = str(rd.get("id", ""))
        name = str(rd.get("name", ""))
        if not vid or not name:
            return
        if vid in frame.param_ids:
            root_kind = "param"
        elif vid in frame.local_ids:
            root_kind = "local"
        else:
            return
        self._record_var_event(frame, "use", name, vid, root_kind, node)

    def _record_receiver_event(self, node: dict[str, Any], method: str,
                               base: Any, frame: _Frame) -> None:
        """Member call on a resolvable receiver: one use (or reinit) event
        on the receiver path instead of a bare read of its root."""
        info = self._lifetime_path(base, frame)
        if info is None:
            return
        path, vid, root_kind, root_node = info
        kind = "reinit" if method in _REINIT_METHODS else "use"
        self._record_var_event(frame, kind, path, vid, root_kind, node,
                               detail=f"{method}()")
        root_node["__astcheck_lifetime_consumed"] = True

    def _record_assign_reinit(self, lhs: Any, site: dict[str, Any]) -> None:
        """Plain assignment gives the LHS a fresh value. The event carries
        the assignment's begin offset, which precedes every read inside the
        RHS — `tok = tok.substr(2)` reinitializes before it reads."""
        frame = self.frames[-1] if self.frames else None
        if frame is None or not self.in_repo():
            return
        info = self._lifetime_path(lhs, frame)
        if info is None:
            return
        path, vid, root_kind, root_node = info
        self._record_var_event(frame, "reinit", path, vid, root_kind, site,
                               detail="operator=")
        root_node["__astcheck_lifetime_consumed"] = True

    def _record_ref_bind(self, node: dict[str, Any], name: str, nid: str,
                         qual: str, frame: _Frame) -> None:
        q = qual.rstrip()
        is_ptr = q.endswith("*") or "iterator" in qual
        if not (q.endswith("&") or is_ptr):
            return
        hit = self._find_elem_ref_source(node.get("inner") or [])
        if hit is None:
            return
        method, base = hit
        receiver, _ = self._receiver_root(base, frame)
        if not receiver:
            return
        frame.fact.ref_binds.append(RefBind(
            name=name, var_id=nid, receiver=receiver, method=method,
            file=self.cur_file, line=self.cur_line,
            offset=self._node_offset(node) or 0, is_pointer=is_ptr))
        frame.refbound_ids.add(nid)

    def _find_elem_ref_source(self, subtree: Any):
        """First element-aliasing source in an initializer: (method, base)."""
        stack = [subtree]
        while stack:
            n = stack.pop(0)
            if isinstance(n, list):
                stack = list(n) + stack
                continue
            if not isinstance(n, dict):
                continue
            kind = n.get("kind", "")
            if kind == "LambdaExpr":
                continue
            if kind == "CXXMemberCallExpr":
                member = self._find_member_expr((n.get("inner")
                                                 or [None])[0])
                if (member is not None
                        and member.get("name") in _ELEM_REF_METHODS):
                    return (str(member.get("name")),
                            (member.get("inner") or [None])[0])
            elif kind == "ArraySubscriptExpr":
                inner = n.get("inner") or []
                return "operator[]", (inner[0] if inner else None)
            elif kind == "CXXOperatorCallExpr":
                inner = n.get("inner") or []
                cname = self._callee_name(inner[0]) if inner else ""
                if cname.split("::")[-1] == "operator[]":
                    return "operator[]", (inner[1] if len(inner) > 1
                                          else None)
            inner = n.get("inner")
            if inner:
                stack = list(inner) + stack
        return None

    def _push_lambda_sink(self, lhs: Any) -> bool:
        """Assignment LHS as a lambda-escape sink; True when pushed."""
        frame = self.frames[-1] if self.frames else None
        if frame is None or not self.in_repo():
            return False
        info = self._storage_info(lhs)
        if info is None:
            return False
        info["frame_depth"] = len(self.frames)
        self._lambda_sinks.append(info)
        return True

    def _storage_info(self, lhs: Any) -> "dict[str, Any] | None":
        """Resolves an assignment target to named storage with a lifetime.

        Unresolvable targets return None and record no sink — the check can
        only exempt or flag storage it can reason about.
        """
        members: list[str] = []
        node = lhs
        guard = 0
        while isinstance(node, dict) and guard < 64:
            guard += 1
            kind = node.get("kind", "")
            if kind == "MemberExpr":
                members.insert(0, node.get("name", "?"))
            elif kind not in _WRAPPER_EXPR_KINDS and kind not in (
                    "UnaryOperator", "ArraySubscriptExpr"):
                break
            inner = node.get("inner") or []
            node = inner[0] if inner else None
        if isinstance(node, dict) and node.get("kind") == "CXXThisExpr":
            return {"kind": "store",
                    "target": ".".join(["this"] + members),
                    "storage_offset": -1, "is_member": True,
                    "is_static": False}
        if isinstance(node, dict) and node.get("kind") == "DeclRefExpr":
            rd = node.get("referencedDecl") or {}
            vid = str(rd.get("id", ""))
            vname = str(rd.get("name", ""))
            known = self.vars.get(vid)
            if not vid or not vname or known is None:
                return None
            return {"kind": "store",
                    "target": ".".join([vname] + members),
                    "storage_offset": self.var_offsets.get(vid, -1),
                    "is_member": False,
                    "is_static": known[0] is None
                    or vid in self.static_var_ids}
        return None

    def _visit_if(self, node: dict[str, Any]) -> None:
        """Records then/else arm extents so a move in one arm does not
        poison a use in the sibling arm (they never execute together)."""
        frame = self.frames[-1] if self.frames else None
        if (frame is None or not node.get("hasElse")
                or not self.in_repo()):
            return
        inner = [c for c in node.get("inner") or [] if isinstance(c, dict)]
        if len(inner) < 2:
            return
        spans = []
        for arm in (inner[-2], inner[-1]):
            rng = arm.get("range")
            if not isinstance(rng, dict):
                return
            b = self._offset(rng.get("begin"))
            e = self._offset(rng.get("end"))
            if b is None or e is None:
                return
            spans.append((b, e))
        frame.fact.branches.append(BranchSpan(
            then_begin=spans[0][0], then_end=spans[0][1],
            else_begin=spans[1][0], else_end=spans[1][1]))

    @staticmethod
    def _is_addr_of(init: Any) -> bool:
        node = init
        guard = 0
        while isinstance(node, dict) and guard < 16:
            guard += 1
            if node.get("kind") == "UnaryOperator":
                return node.get("opcode") == "&"
            if node.get("kind") not in _WRAPPER_EXPR_KINDS:
                return False
            inner = node.get("inner") or []
            node = inner[0] if inner else None
        return False

    @staticmethod
    def _contains_this(subtree: Any) -> bool:
        stack = [subtree]
        while stack:
            n = stack.pop()
            if isinstance(n, list):
                stack.extend(n)
            elif isinstance(n, dict):
                if n.get("kind") == "CXXThisExpr":
                    return True
                inner = n.get("inner")
                if inner:
                    stack.extend(inner)
        return False

    # -- calls -------------------------------------------------------------

    def _visit_member_call(self, node: dict[str, Any]) -> None:
        inner = node.get("inner") or []
        if not inner:
            return
        member = self._find_member_expr(inner[0])
        if member is None:
            return
        method = member.get("name", "")
        base = (member.get("inner") or [None])[0]
        base_type = self._expr_type(base)
        cls = self._class_of(base_type)
        frame = self.frames[-1] if self.frames else None
        if frame is None or not self.in_repo():
            return
        self._record_receiver_event(node, method, base, frame)

        base_tokens = _strip_type(base_type)
        is_mutex = "Mutex" in base_tokens and "MutexLock" not in base_tokens
        if is_mutex and method == "Lock":
            lock = self._lock_id_from_subtree([base] if base else [])
            off = self._node_offset(node) or 0
            frame.open_manual.append(
                Acquisition(lock=lock, file=self.cur_file, line=self.cur_line,
                            begin=off, end=frame.fact.body_end,
                            kind="manual"))
            return
        if is_mutex and method == "Unlock":
            lock = self._lock_id_from_subtree([base] if base else [])
            off = self._node_offset(node) or 0
            for i in range(len(frame.open_manual) - 1, -1, -1):
                if frame.open_manual[i].lock == lock:
                    acq = frame.open_manual.pop(i)
                    acq.end = off
                    frame.fact.acquisitions.append(acq)
                    break
            return
        if is_mutex and method == "TryLock":
            return  # cannot block; irrelevant to lock ordering
        if "CondVar" in base_tokens and method in ("Wait", "NotifyOne",
                                                   "NotifyAll"):
            return  # sanctioned primitives, modeled natively

        callee = f"{cls}::{method}" if cls else method
        call = CallSite(callee=callee, file=self.cur_file, line=self.cur_line,
                        offset=self._node_offset(node) or 0,
                        static_init=self._static_init_depth > 0)
        if method in _SUBMIT_METHODS and "ThreadPool" in base_tokens:
            call.submits = self._collect_lambda_args(inner[1:], frame,
                                                     submitted=True,
                                                     method=method)
        frame.fact.calls.append(call)
        if method in _GROWTH_METHOD_NAMES or method in _RESERVE_METHOD_NAMES:
            self._record_growth(node, method, base, frame)
        rid = member.get("referencedMemberDecl")
        if rid and rid in self.methods and self.methods[rid][2] \
                and not self._static_init_depth:
            frame.fact.indirect_calls.append(IndirectCall(
                kind="virtual", callee=callee, file=self.cur_file,
                line=self.cur_line, offset=call.offset))
        # A non-const method on a captured variable is a mutation.
        self._record_member_call_mutation(node, member, base, frame)

    def _visit_call(self, node: dict[str, Any]) -> None:
        frame = self.frames[-1] if self.frames else None
        if frame is None or not self.in_repo():
            return
        inner = node.get("inner") or []
        if not inner:
            return
        callee_name = self._callee_name(inner[0])
        if not callee_name:
            return
        basename = callee_name.split("::")[-1]
        if basename in _MAKE_ALLOC_FUNCS:
            self._record_alloc("make", basename, node)
        elif basename == "move":
            # std::move(param): the by-value parameter is a sink, which the
            # heavy-copy check must not flag (Status factories etc.).
            for ref in self._iter_decl_refs(inner[1:]):
                pf = frame.param_facts.get(str(ref.get("id", "")))
                if pf is not None:
                    pf.moved = True
            info = self._lifetime_path(inner[1] if len(inner) > 1 else None,
                                       frame)
            if info is not None:
                path, vid, root_kind, _root = info
                # A move inside a return statement ends the frame: nothing
                # reachable afterwards can read the moved-from value.
                in_return = any(
                    s["kind"] == "return"
                    and s["frame_depth"] == len(self.frames)
                    for s in self._lambda_sinks)
                self._record_var_event(
                    frame, "move", path, vid, root_kind, node,
                    detail="return std::move" if in_return else "std::move")
            # Anything read inside the move argument is the move itself, not
            # a use of the moved-from value.
            for ref_node in self._iter_decl_ref_nodes(inner[1:]):
                ref_node["__astcheck_lifetime_consumed"] = True
        call = CallSite(callee=callee_name, file=self.cur_file,
                        line=self.cur_line,
                        offset=self._node_offset(node) or 0,
                        static_init=self._static_init_depth > 0)
        if callee_name.split("::")[-1] == "ParallelFor":
            args = inner[1:]
            if args and self._is_nullptr(args[0]):
                # ParallelFor(nullptr, n, fn) runs fn inline by contract:
                # model it as a direct call so the lambda's own facts
                # propagate to the caller instead of a pool submission.
                lambdas = self._collect_lambda_args(args, frame,
                                                    submitted=False)
                for lam in lambdas:
                    frame.fact.calls.append(
                        CallSite(callee=lam, file=self.cur_file,
                                 line=self.cur_line, offset=call.offset))
                return
            call.submits = self._collect_lambda_args(args, frame,
                                                     submitted=True,
                                                     method="ParallelFor")
        frame.fact.calls.append(call)

    def _visit_construct(self, node: dict[str, Any]) -> None:
        frame = self.frames[-1] if self.frames else None
        if frame is None or not self.in_repo():
            return
        qual = _type_of(node)
        tokens = _strip_type(qual)
        if "MutexLock" in tokens:
            return  # handled at the VarDecl
        cls = self._class_of(qual)
        if not cls:
            return
        ctor = cls.split("::")[-1]
        frame.fact.calls.append(
            CallSite(callee=f"{cls}::{ctor}", file=self.cur_file,
                     line=self.cur_line, offset=self._node_offset(node) or 0,
                     static_init=self._static_init_depth > 0))
        self._record_construct_alloc(node, qual, frame)

    def _record_construct_alloc(self, node: dict[str, Any], qual: str,
                                frame: _Frame) -> None:
        args = [c for c in node.get("inner") or [] if isinstance(c, dict)]
        if not args:
            return  # default construction allocates nothing
        copy = False
        if len(args) == 1:
            peeled: Any = args[0]
            while (isinstance(peeled, dict)
                   and peeled.get("kind") in ("ImplicitCastExpr",
                                              "ParenExpr")):
                inner = peeled.get("inner") or []
                peeled = inner[0] if inner else None
            if (isinstance(peeled, dict)
                    and peeled.get("kind") in ("DeclRefExpr", "MemberExpr")
                    and self._class_of(self._expr_type(peeled))
                    == self._class_of(qual)):
                copy = True
        if copy:
            # Implicit copy-constructions matter wherever they occur (a
            # by-value call argument copies once per call, loop or not).
            self._record_alloc("construct", qual, node, copy=True)
            return
        if not frame.loop_stack:
            return
        if "string" in qual:
            lit = self._string_literal_len(args)
            if lit is not None and lit <= _SSO_SAFE_LEN:
                return  # fits the inline buffer; no heap traffic
        self._record_alloc("construct", qual, node)

    def _visit_operator_call(self, node: dict[str, Any]) -> bool:
        """Returns True when a lambda-store sink was pushed (caller pops)."""
        sink_pushed = False
        frame = self.frames[-1] if self.frames else None
        if frame is None:
            return sink_pushed
        inner = node.get("inner") or []
        name = self._callee_name(inner[0]) if inner else ""
        op = name.split("::")[-1] if name else ""
        if op.startswith("operator") and (
                op[len("operator"):] in _ASSIGN_OPERATORS):
            if len(inner) > 1:
                self._record_mutation(inner[1], op, node)
                if op == "operator=":
                    self._record_assign_reinit(inner[1], node)
                    sink_pushed = self._push_lambda_sink(inner[1])
        if (op == "operator()" and len(inner) > 1 and self.in_repo()
                and not self._static_init_depth):
            obj_type = self._expr_type(inner[1])
            if "function" in _strip_type(obj_type):
                frame.fact.indirect_calls.append(IndirectCall(
                    kind="functor", callee=obj_type, file=self.cur_file,
                    line=self.cur_line,
                    offset=self._node_offset(node) or 0))
        return sink_pushed

    def _find_member_expr(self, node: Any) -> dict[str, Any] | None:
        while isinstance(node, dict):
            if node.get("kind") == "MemberExpr":
                return node
            inner = node.get("inner") or []
            node = inner[0] if inner else None
        return None

    def _callee_name(self, node: Any) -> str:
        while isinstance(node, dict):
            if node.get("kind") == "DeclRefExpr":
                rd = node.get("referencedDecl") or {}
                return str(rd.get("name", ""))
            if node.get("kind") == "MemberExpr":
                return str(node.get("name", ""))
            inner = node.get("inner") or []
            node = inner[0] if inner else None
        return ""

    def _expr_type(self, node: Any) -> str:
        while isinstance(node, dict):
            t = _type_of(node)
            if t:
                return t
            inner = node.get("inner") or []
            node = inner[0] if inner else None
        return ""

    @staticmethod
    def _class_of(qual: str) -> str:
        qual = qual.strip()
        qual = re.sub(r"\b(const|volatile|struct|class)\b", "", qual)
        qual = qual.replace("&", "").replace("*", "").strip()
        m = re.match(r"^([A-Za-z_][A-Za-z0-9_:<>, ]*?)\s*$", qual)
        if not m:
            return ""
        name = m.group(1).split("<")[0].strip().rstrip(":")
        return name

    @staticmethod
    def _is_nullptr(subtree: Any) -> bool:
        stack = [subtree]
        while stack:
            n = stack.pop()
            if isinstance(n, list):
                stack.extend(n)
            elif isinstance(n, dict):
                if n.get("kind") in ("CXXNullPtrLiteralExpr", "GNUNullExpr"):
                    return True
                inner = n.get("inner")
                if inner:
                    stack.extend(inner)
        return False

    def _collect_lambda_args(self, args: list[Any], frame: _Frame,
                             submitted: bool, method: str = "") -> list[str]:
        """Extracts lambda expressions among call arguments.

        The lambdas are visited here (creating their own facts) and removed
        from the caller's pending walk by marking them consumed. Pool
        submissions also record an escape on the enclosing function; only
        Schedule/Submit are deferred — ParallelFor joins before returning.
        """
        names: list[str] = []
        deferred = method in ("Schedule", "Submit")
        for arg in args:
            for lam in self._iter_lambdas(arg):
                site_file, site_line = self.cur_file, self.cur_line
                site_off = self._node_offset(lam) or 0
                qname = self._visit_lambda(lam, submitted=submitted)
                names.append(qname)
                lam["__astcheck_consumed"] = True
                if submitted and qname and method:
                    frame.fact.escapes.append(LambdaEscape(
                        lam=qname, kind="submit", target=method,
                        file=site_file, line=site_line, offset=site_off,
                        deferred=deferred))
        return names

    @staticmethod
    def _iter_lambdas(subtree: Any) -> Iterable[dict[str, Any]]:
        stack = [subtree]
        while stack:
            n = stack.pop()
            if isinstance(n, list):
                stack.extend(reversed(n))
            elif isinstance(n, dict):
                if n.get("kind") == "LambdaExpr":
                    yield n
                    continue  # nested lambdas belong to this one's walk
                inner = n.get("inner")
                if inner:
                    stack.extend(reversed(inner))

    # -- lambdas -----------------------------------------------------------

    def _visit_lambda(self, node: dict[str, Any],
                      submitted: bool = False) -> str:
        if node.get("__astcheck_consumed"):
            return ""
        node["__astcheck_consumed"] = True
        self._note_range(node.get("range"))
        enclosing = (self.frames[-1].fact.qname if self.frames
                     else "::".join(self._ctx_names()) or "(file scope)")
        self._lambda_counter += 1
        qname = (f"{enclosing}::<lambda@"
                 f"{self.cur_file.rsplit('/', 1)[-1]}:{self.cur_line}"
                 f"#{self._lambda_counter}>")
        fact = FunctionFact(qname=qname, file=self.cur_file,
                            line=self.cur_line, is_lambda=True,
                            submitted=submitted)
        end = self._range_end_offset(node)
        fact.body_end = end if end is not None else 1 << 60
        enclosing_frame = self.frames[-1] if self.frames else None
        if (enclosing_frame is not None and not submitted
                and self._lambda_sinks and self.in_repo()
                and self._lambda_sinks[-1]["frame_depth"]
                == len(self.frames)):
            # The frame-depth match keeps lambdas nested inside another
            # lambda's body from being attributed to the outer sink.
            sink = self._lambda_sinks[-1]
            enclosing_frame.fact.escapes.append(LambdaEscape(
                lam=qname, kind=sink["kind"], target=sink["target"],
                file=self.cur_file, line=self.cur_line,
                offset=self._node_offset(node) or 0, deferred=False,
                storage_offset=sink["storage_offset"],
                storage_is_member=sink["is_member"],
                storage_is_static=sink["is_static"]))
        frame = _Frame(fact, self.frames[-1] if self.frames else None)

        inner = node.get("inner") or []
        closure = next((c for c in inner if isinstance(c, dict)
                        and c.get("kind") == "CXXRecordDecl"), None)
        fields: list[dict[str, Any]] = []
        call_op: dict[str, Any] | None = None
        if closure is not None:
            for c in closure.get("inner") or []:
                if not isinstance(c, dict):
                    continue
                if c.get("kind") == "FieldDecl":
                    fields.append(c)
                if (c.get("kind") == "CXXMethodDecl"
                        and c.get("name") == "operator()"):
                    call_op = c
        if call_op is not None:
            fact.lambda_mutable = not _type_of(call_op).rstrip().endswith(
                "const")
            for p in call_op.get("inner") or []:
                if isinstance(p, dict) and p.get("kind") == "ParmVarDecl":
                    pid = p.get("id") or ""
                    pname = p.get("name") or ""
                    if pid:
                        self.vars[pid] = (frame, pname, _type_of(p))
                    frame.param_ids.add(pid)
                    frame.param_names.add(pname)
                    if pname and self.in_repo():
                        pf = ParamFact(name=pname, qual=_type_of(p),
                                       file=self.cur_file,
                                       line=self.cur_line)
                        fact.params.append(pf)
                        if pid:
                            frame.param_facts[pid] = pf

        # Capture-init expressions sit between the closure record and the
        # body; zip them with the closure's fields (by-ref captures have
        # reference-typed fields) to recover the capture list.
        init_exprs = [c for c in inner if isinstance(c, dict)
                      and c is not closure
                      and c.get("kind") != "CompoundStmt"]
        captures: dict[str, dict[str, Any]] = {}
        if fields and len(fields) == len(init_exprs):
            for fld, init in zip(fields, init_exprs):
                ftype = _type_of(fld)
                by_ref = ftype.rstrip().endswith("&")
                ref = next(iter(self._iter_decl_refs(init)), None)
                if ref is not None and ref.get("name"):
                    rid = str(ref.get("id", ""))
                    known = self.vars.get(rid)
                    owner = known[0] if known else None
                    captures[str(ref["name"])] = {
                        "by_ref": by_ref, "mode_known": True,
                        "type": ftype,
                        "decl_offset": self.var_offsets.get(rid, -1),
                        "is_param": owner is not None
                        and rid in owner.param_ids,
                        "is_static": (known is not None and owner is None)
                        or rid in self.static_var_ids,
                        "addr_of_local": not by_ref
                        and ftype.rstrip().endswith("*")
                        and owner is not None and self._is_addr_of(init),
                    }
                elif self._contains_this(init):
                    captures["this"] = {
                        "by_ref": False, "mode_known": True, "type": ftype,
                        "is_this": True, "decl_offset": -1,
                        "is_param": False, "is_static": False,
                        "addr_of_local": False}
        fact.captures = captures

        body = None
        if call_op is not None:
            body = next((c for c in call_op.get("inner") or []
                         if isinstance(c, dict)
                         and c.get("kind") == "CompoundStmt"), None)
        if body is None:
            body = next((c for c in reversed(inner) if isinstance(c, dict)
                         and c.get("kind") == "CompoundStmt"), None)

        self.frames.append(frame)
        if body is not None:
            self._walk(body)
        self._close_frame(frame)
        self.frames.pop()
        self.tu.functions.append(fact)
        return qname

    # -- mutations ---------------------------------------------------------

    def _record_member_call_mutation(self, call_node: dict[str, Any],
                                     member: dict[str, Any], base: Any,
                                     frame: _Frame) -> None:
        if not frame.fact.is_lambda:
            return
        method = member.get("name", "")
        rid = member.get("referencedMemberDecl")
        mutating = False
        if rid and rid in self.methods:
            qual = self.methods[rid][1]
            mutating = not qual.rstrip().endswith("const")
        elif method in _MUTATING_METHOD_NAMES:
            mutating = True
        off = self._node_offset(call_node) or 0
        if method in _ATOMIC_METHOD_NAMES:
            self._classify_and_record(base, f"{method}()", frame, off,
                                      force_atomic=True)
            return
        if mutating:
            self._classify_and_record(base, f"{method}()", frame, off)

    def _record_mutation(self, lhs: Any, desc: str,
                         site: "dict[str, Any] | None" = None) -> None:
        frame = self.frames[-1] if self.frames else None
        if frame is None or not frame.fact.is_lambda:
            return
        off = self._node_offset(site) if site is not None else None
        if off is None:
            off = self._node_offset(lhs) if isinstance(lhs, dict) else None
        self._classify_and_record(lhs, desc, frame, off or 0)

    def _classify_and_record(self, target: Any, desc: str, frame: _Frame,
                             offset: int,
                             force_atomic: bool = False) -> None:
        root, per_slot, atomic, root_qual = self._analyze_target(target, frame)
        if root is None:
            return
        rid, rname = root
        if rid in frame.param_ids or rid in frame.local_ids:
            return  # the lambda's own state
        if rname in frame.param_names and not rid:
            return
        owner = self.vars.get(rid, (None, rname, root_qual))[0]
        if owner is frame:
            return
        if owner is None and rid:
            return  # namespace-scope object, outside this check's scope
        # The variable lives in an enclosing function frame: a capture.
        frame.fact.mutations.append(
            Mutation(root=rname, file=self.cur_file, line=self.cur_line,
                     offset=offset, expr=desc,
                     per_slot=per_slot, atomic=atomic or force_atomic,
                     root_type=root_qual))

    def _analyze_target(self, node: Any, frame: _Frame):
        """Returns ((id, name) | None, per_slot, atomic, root_qualtype)."""
        per_slot = False
        atomic = False
        root_qual = ""
        guard = 0
        while isinstance(node, dict) and guard < 64:
            guard += 1
            kind = node.get("kind", "")
            if kind == "MemberExpr":
                if "atomic" in _type_of(node):
                    atomic = True
                inner = node.get("inner") or []
                node = inner[0] if inner else None
                continue
            if kind == "ArraySubscriptExpr":
                inner = node.get("inner") or []
                if len(inner) > 1 and self._mentions_derived([inner[1]],
                                                             frame):
                    per_slot = True
                node = inner[0] if inner else None
                continue
            if kind == "CXXOperatorCallExpr":
                inner = node.get("inner") or []
                name = self._callee_name(inner[0]) if inner else ""
                if name.endswith("operator[]") or name == "operator[]":
                    if len(inner) > 2 and self._mentions_derived([inner[2]],
                                                                 frame):
                        per_slot = True
                node = inner[1] if len(inner) > 1 else None
                continue
            if kind in _WRAPPER_EXPR_KINDS or kind == "UnaryOperator":
                inner = node.get("inner") or []
                node = inner[0] if inner else None
                continue
            if kind == "DeclRefExpr":
                rd = node.get("referencedDecl") or {}
                t = rd.get("type")
                root_qual = (t.get("qualType", "")
                             if isinstance(t, dict) else "")
                if "atomic" in root_qual:
                    atomic = True
                return ((str(rd.get("id", "")), str(rd.get("name", "?"))),
                        per_slot, atomic, root_qual)
            if kind == "CXXThisExpr":
                return None, per_slot, atomic, root_qual
            inner = node.get("inner") or []
            node = inner[0] if inner else None
        return None, per_slot, atomic, root_qual


def extract_tu(ast_text_or_roots, main_file: str,
               repo_root: str) -> TUFacts:
    """Convenience wrapper: text or pre-parsed roots -> TUFacts."""
    if isinstance(ast_text_or_roots, str):
        roots = load_ast_roots(ast_text_or_roots)
    elif isinstance(ast_text_or_roots, dict):
        roots = [ast_text_or_roots]
    else:
        roots = list(ast_text_or_roots)
    ex = Extractor(repo_root)
    ex.tu.main_file = main_file
    for root in roots:
        ex._walk(root)
    return ex.tu
