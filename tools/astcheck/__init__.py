"""AST-grade static analyzers for the treesim codebase.

Drives ``clang -Xclang -ast-dump=json`` over every translation unit in a
CMake ``compile_commands.json``, extracts a whole-program fact database
(functions, call graph, ``treesim::Mutex`` acquisition sites with scopes,
lambda capture lists with mutation classification, submissions to the
``ThreadPool``, loop spans, allocation/copy/indirect-call/throw records),
and runs two check families over the merged facts.

Concurrency family (``--checks=concurrency``, the default):

  lock-order          cross-TU lock acquisition graph: deadlock cycles
                      (including acquisitions reached transitively through
                      the call graph) and TREESIM_LOCK_RANK violations.
  capture-race        lambdas submitted to ThreadPool::Schedule /
                      ParallelFor that capture non-const locals by
                      reference and mutate them without a MutexLock guard,
                      an atomic type, or per-index slot indexing.
  blocking-under-lock I/O, ThreadPool submission, and condition-variable-
                      free waits while a treesim::Mutex is held, directly
                      or through any chain of repo-local calls.

Perf family (``--checks=perf``): hot set = call-graph closure of the
Range/Knn/BatchKnn/Join/pairwise entry points and ParallelFor bodies,
seeded/overridden by TREESIM_HOT / TREESIM_COLD (src/util/hot.h).

  alloc-in-hot-loop         operator new, make_unique/make_shared, heavy
                            construction, and growth-prone container calls
                            inside hot-function loops without a dominating
                            reserve.
  heavy-copy                by-value parameters, implicit copies, and
                            by-value lambda captures of registry heavy
                            types (Tree, BranchProfile, vectors, ...).
  indirect-call-in-inner-loop  virtual dispatch / std::function invocation
                            in hot inner loops (nesting depth >= 2).
  hot-throw                 throw-expressions and throwing-API calls on
                            the hot path, which must stay Status-based.

Lifetime family (``--checks=lifetime``): textual-order dataflow over
per-function move/use/reinit events, lambda escape sites, and element
reference bindings.

  use-after-move          a moved-from local or parameter is read, method-
                          called, or re-moved before a reinitializing
                          assignment / clear() / reset(); loop-carried
                          moves (variable declared outside the loop, moved
                          inside, never reinitialized in the loop) flag
                          the next iteration's read.
  escaping-capture        a lambda with by-reference (or address-of-local)
                          captures is returned, stored into an outliving
                          std::function / member, or queued through
                          ThreadPool::Schedule/Submit; value captures,
                          `this`, statics, and storage that provably dies
                          before its captures are exempt. ParallelFor joins
                          before returning and does not count as deferred.
  invalidated-reference   a reference/pointer/iterator obtained from
                          operator[]/front()/back()/begin()/data() is used
                          after a growth call on the same receiver, unless
                          a reserve precedes the binding (same dominance
                          approximation as the perf family).

The package degrades gracefully: without a clang binary the entry points
exit 77 (ctest SKIP), and the pure-Python core stays covered by
``unittests.py`` which feeds hand-written clang-schema JSON through the
same extraction and check paths.

See DESIGN.md sections 13-15 for the fact-database schema and the exact
check semantics, and tools/astcheck_suppressions.toml for the allowlist
format.
"""

__version__ = "3.0"

SCHEMA_VERSION = 3
