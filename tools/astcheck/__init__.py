"""AST-grade concurrency analyzer for the treesim codebase.

Drives ``clang -Xclang -ast-dump=json`` over every translation unit in a
CMake ``compile_commands.json``, extracts a whole-program fact database
(functions, call graph, ``treesim::Mutex`` acquisition sites with scopes,
lambda capture lists with mutation classification, submissions to the
``ThreadPool``), and runs three checks over the merged facts:

  lock-order          cross-TU lock acquisition graph: deadlock cycles
                      (including acquisitions reached transitively through
                      the call graph) and TREESIM_LOCK_RANK violations.
  capture-race        lambdas submitted to ThreadPool::Schedule /
                      ParallelFor that capture non-const locals by
                      reference and mutate them without a MutexLock guard,
                      an atomic type, or per-index slot indexing.
  blocking-under-lock I/O, ThreadPool submission, and condition-variable-
                      free waits while a treesim::Mutex is held, directly
                      or through any chain of repo-local calls.

The package degrades gracefully: without a clang binary the entry points
exit 77 (ctest SKIP), and the pure-Python core stays covered by
``unittests.py`` which feeds hand-written clang-schema JSON through the
same extraction and check paths.

See DESIGN.md section 13 for the fact-database schema and the exact check
semantics, and tools/astcheck_suppressions.toml for the allowlist format.
"""

__version__ = "1.0"

SCHEMA_VERSION = 1
