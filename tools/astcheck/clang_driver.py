"""Runs clang over a compile database and caches per-TU fact extraction.

The expensive step is ``clang -Xclang -ast-dump=json -fsyntax-only`` (the
JSON for a test TU that pulls in gtest easily exceeds 100 MB), so facts are
cached per TU under a content hash covering:

  * the clang version string,
  * the exact rewritten command line,
  * the TU source bytes, and
  * every repo-local header reachable from the TU through a ``#include``
    scan against the repo-internal ``-I`` directories.

System headers are deliberately outside the key: they change only with the
toolchain, which the clang version string already covers. A cache hit skips
clang, the JSON parse, and the extraction walk entirely, which is what
keeps warm reruns in the seconds range.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import os
import re
import shlex
import shutil
import subprocess
import sys
import time
from typing import Any

from . import SCHEMA_VERSION
from . import facts

# ---------------------------------------------------------------------------
# clang discovery
# ---------------------------------------------------------------------------

_CLANG_CANDIDATES = [
    "clang++", "clang",
    "clang++-20", "clang++-19", "clang++-18", "clang++-17", "clang++-16",
    "clang++-15", "clang++-14",
    "clang-20", "clang-19", "clang-18", "clang-17", "clang-16",
    "clang-15", "clang-14",
]

MIN_CLANG_MAJOR = 14  # first release with a stable -ast-dump=json schema


def find_clang(explicit: "str | None" = None) -> "str | None":
    """Locates a usable clang driver, newest candidate first."""
    candidates: list[str] = []
    if explicit:
        candidates.append(explicit)
    env = os.environ.get("ASTCHECK_CLANG")
    if env:
        candidates.append(env)
    candidates.extend(_CLANG_CANDIDATES)
    for cand in candidates:
        path = shutil.which(cand)
        if path is None:
            continue
        ver = clang_version(path)
        if ver is None:
            continue
        m = re.search(r"clang version (\d+)", ver)
        if m and int(m.group(1)) >= MIN_CLANG_MAJOR:
            return path
    return None


def clang_version(clang: str) -> "str | None":
    try:
        out = subprocess.run([clang, "--version"], capture_output=True,
                             text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0 or "clang" not in out.stdout:
        return None
    return out.stdout.splitlines()[0].strip()


# ---------------------------------------------------------------------------
# Compile database
# ---------------------------------------------------------------------------


def load_compile_db(path: str) -> list[dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def rewrite_command(entry: dict[str, Any], clang: str) -> list[str]:
    """Original compile command -> clang AST-dump command."""
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        args = shlex.split(entry["command"])
    src = entry["file"]
    out: list[str] = [clang]
    skip_next = False
    for a in args[1:]:
        if skip_next:
            skip_next = False
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if a in ("-c", "-MD", "-MMD", "-MP"):
            continue
        if os.path.basename(a) == os.path.basename(src) and a.endswith(
                os.path.splitext(src)[1]):
            continue  # the source file; re-appended last
        out.append(a)
    out += [
        "-fsyntax-only",
        "-Wno-everything",  # diagnostics are cmake/clang-tidy's job
        "-Xclang", "-ast-dump=json",
        src,
    ]
    return out


# ---------------------------------------------------------------------------
# Include-closure hashing
# ---------------------------------------------------------------------------

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^">]+)[">]',
                         re.MULTILINE)


class _IncludeScanner:
    def __init__(self, repo_root: str) -> None:
        self.repo_root = os.path.abspath(repo_root).rstrip("/") + "/"
        self._direct: dict[str, list[str]] = {}
        self._hash: dict[str, str] = {}

    def file_hash(self, path: str) -> str:
        h = self._hash.get(path)
        if h is None:
            try:
                with open(path, "rb") as fh:
                    h = hashlib.sha256(fh.read()).hexdigest()
            except OSError:
                h = "missing"
            self._hash[path] = h
        return h

    def _direct_includes(self, path: str,
                         include_dirs: tuple[str, ...]) -> list[str]:
        cached = self._direct.get(path)
        if cached is not None:
            return cached
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError:
            self._direct[path] = []
            return []
        found: list[str] = []
        search = [os.path.dirname(path)] + list(include_dirs)
        for name in _INCLUDE_RE.findall(text):
            for base in search:
                cand = os.path.abspath(os.path.join(base, name))
                # Only repo-local headers enter the cache key; toolchain
                # headers are covered by the clang version component.
                if cand.startswith(self.repo_root) and os.path.isfile(cand):
                    found.append(cand)
                    break
        self._direct[path] = found
        return found

    def closure(self, src: str,
                include_dirs: tuple[str, ...]) -> list[tuple[str, str]]:
        """[(path, sha256)] of src plus reachable repo-local headers."""
        seen: set[str] = set()
        order: list[str] = []
        stack = [os.path.abspath(src)]
        while stack:
            p = stack.pop()
            if p in seen:
                continue
            seen.add(p)
            order.append(p)
            stack.extend(self._direct_includes(p, include_dirs))
        return [(p, self.file_hash(p)) for p in sorted(order)]


def _include_dirs_of(cmd: list[str]) -> tuple[str, ...]:
    dirs: list[str] = []
    i = 0
    while i < len(cmd):
        a = cmd[i]
        if a in ("-I", "-isystem", "-iquote") and i + 1 < len(cmd):
            dirs.append(cmd[i + 1])
            i += 2
            continue
        if a.startswith("-I") and len(a) > 2:
            dirs.append(a[2:])
        i += 1
    return tuple(dirs)


def tu_cache_key(clang_ver: str, cmd: list[str],
                 closure: list[tuple[str, str]]) -> str:
    h = hashlib.sha256()
    h.update(f"schema={SCHEMA_VERSION}\n".encode())
    h.update((clang_ver + "\n").encode())
    h.update(("\x1f".join(cmd) + "\n").encode())
    for path, digest in closure:
        h.update(f"{path}={digest}\n".encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


class FactCache:
    def __init__(self, cache_dir: str) -> None:
        self.dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.dir, key[:32] + ".json")

    def get(self, key: str) -> "facts.TUFacts | None":
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if doc.get("schema") != SCHEMA_VERSION or doc.get("key") != key:
            return None
        try:
            return facts.TUFacts.from_json(doc["facts"])
        except (KeyError, TypeError):
            return None

    def put(self, key: str, tu: facts.TUFacts, source: str = "") -> None:
        path = self._path(key)
        tmp = path + f".tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"schema": SCHEMA_VERSION, "key": key,
                       "source": source, "facts": tu.to_json()}, fh)
        os.replace(tmp, path)

    def evict_stale(self) -> tuple[int, int]:
        """Drops entries whose TU no longer exists (or predates the schema).

        Branch switches leave behind cache entries keyed on deleted or
        renamed sources; nothing ever hits those keys again, so the
        directory grows without bound unless they are reaped.

        Returns (evicted, kept).
        """
        evicted = kept = 0
        try:
            names = os.listdir(self.dir)
        except OSError:
            return 0, 0
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.dir, name)
            stale = False
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
            except (OSError, json.JSONDecodeError):
                stale = True
                doc = {}
            if not stale and doc.get("schema") != SCHEMA_VERSION:
                stale = True
            source = doc.get("source", "")
            if not stale and source and not os.path.isfile(source):
                stale = True
            if stale:
                try:
                    os.remove(path)
                    evicted += 1
                except OSError:
                    pass
            else:
                kept += 1
        return evicted, kept


# ---------------------------------------------------------------------------
# Per-TU work (runs in a worker process: clang + parse + extract)
# ---------------------------------------------------------------------------


def _extract_one(cmd: list[str], src: str, cwd: str,
                 repo_root: str) -> dict[str, Any]:
    sys.setrecursionlimit(200000)
    proc = subprocess.run(cmd, cwd=cwd, capture_output=True, text=True)
    if proc.returncode != 0 or not proc.stdout.lstrip().startswith("{"):
        tail = (proc.stderr or proc.stdout).strip().splitlines()[-8:]
        raise RuntimeError(
            f"clang failed on {src} (exit {proc.returncode}):\n" +
            "\n".join(tail))
    tu = facts.extract_tu(proc.stdout, src, repo_root)
    return tu.to_json()


# ---------------------------------------------------------------------------
# Whole-program analysis
# ---------------------------------------------------------------------------


def analyze_all(compile_db_path: str, repo_root: str, clang: str,
                cache_dir: "str | None", jobs: int,
                use_cache: bool = True,
                log=lambda msg: None) -> tuple[facts.FactDB, dict[str, Any]]:
    t0 = time.monotonic()
    entries = load_compile_db(compile_db_path)
    ver = clang_version(clang) or "unknown"
    cache = FactCache(cache_dir) if (cache_dir and use_cache) else None
    scanner = _IncludeScanner(repo_root)

    plan: list[tuple[dict[str, Any], list[str], str]] = []
    hits: list[facts.TUFacts] = []
    skipped = 0
    for entry in entries:
        src = os.path.join(entry.get("directory", ""), entry["file"])
        if "/_deps/" in os.path.abspath(src):
            skipped += 1  # third-party FetchContent TU (e.g. googletest)
            continue
        cmd = rewrite_command(entry, clang)
        closure = scanner.closure(entry["file"], _include_dirs_of(cmd))
        key = tu_cache_key(ver, cmd, closure)
        if cache is not None:
            tu = cache.get(key)
            if tu is not None:
                hits.append(tu)
                continue
        plan.append((entry, cmd, key))

    log(f"astcheck: {len(entries)} TUs ({skipped} third-party skipped), "
        f"{len(hits)} cached, {len(plan)} to analyze (clang: {ver})")

    db = facts.FactDB()
    for tu in hits:
        db.add_tu(tu)

    errors: list[str] = []
    if plan:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=max(1, jobs)) as pool:
            futures = {
                pool.submit(_extract_one, cmd, entry["file"],
                            entry.get("directory", repo_root), repo_root):
                (entry, key)
                for entry, cmd, key in plan
            }
            done = 0
            for fut in concurrent.futures.as_completed(futures):
                entry, key = futures[fut]
                done += 1
                try:
                    tu = facts.TUFacts.from_json(fut.result())
                except (RuntimeError, OSError) as exc:
                    errors.append(str(exc))
                    continue
                db.add_tu(tu)
                if cache is not None:
                    cache.put(key, tu, source=os.path.abspath(os.path.join(
                        entry.get("directory", ""), entry["file"])))
                if done % 10 == 0 or done == len(plan):
                    log(f"astcheck: analyzed {done}/{len(plan)} TUs")

    stats = {
        "tus": len(hits) + len(plan),
        "skipped": skipped,
        "cache_hits": len(hits),
        "analyzed": len(plan),
        "errors": errors,
        "clang": ver,
        "seconds": round(time.monotonic() - t0, 2),
    }
    return db, stats
