"""Whole-program checks over the merged fact database.

Concurrency family:

  lock-order           builds the lock acquisition graph (edge A -> B when B
                       is acquired while A is held, directly or through any
                       chain of repo-local calls), reports every cycle and
                       every TREESIM_LOCK_RANK inversion.
  capture-race         lambdas handed to the ThreadPool that mutate a
                       by-reference capture without a MutexLock guard, an
                       atomic, per-index slot addressing, or an internally
                       synchronized type.
  blocking-under-lock  I/O, pool submission, or sleeping while a
                       treesim::Mutex is held (CondVar::Wait is the one
                       sanctioned wait and is modeled natively).

Perf family (see DESIGN.md section 14). The *hot set* is the call-graph
closure of the similarity-search entry points (Range/Knn/BatchKnn/Join/
pairwise) plus every lambda submitted through ``ThreadPool::ParallelFor``,
seeded by ``TREESIM_HOT`` and pruned by ``TREESIM_COLD`` annotations
(src/util/hot.h); files under tests/bench/fuzz/tools are out of scope.

  alloc-in-hot-loop            operator new, make_unique/make_shared, heavy
                               construction, or growth-prone container calls
                               inside a loop of a hot function without a
                               dominating ``reserve`` (dominance is
                               approximated by preceding-statement order on
                               the same receiver; growth through a
                               by-reference parameter is the caller's
                               responsibility and exempt).
  heavy-copy                   by-value parameters (unless consumed by
                               ``std::move`` — the sink idiom), implicit
                               copy-constructions, and by-value lambda
                               captures of registry heavy types.
  indirect-call-in-inner-loop  virtual dispatch or ``std::function``
                               invocation inside a hot *inner* loop
                               (nesting depth >= 2; a single per-candidate
                               probe loop is accepted).
  hot-throw                    throw-expressions and calls to throwing
                               standard APIs (``at``, ``stoi``, ...) on the
                               hot path, which must stay Status-based.

Lifetime family (see DESIGN.md section 15). Textual-order dataflow over the
per-function lifetime facts; files under tests/bench/fuzz/tools are out of
scope, like the perf family.

  use-after-move         a moved-from local/parameter path is read, method-
                         called, or re-moved with no reinitializing
                         assignment / clear() / reset() / assign() in
                         between. Validity-probing methods (empty, size,
                         ok, ...), sibling if/else arms, and moves inside
                         return statements are exempt; a move inside a loop
                         of a variable declared outside it with no reinit
                         in the loop body flags the move site (the next
                         iteration moves a moved-from value).
  escaping-capture       a lambda with by-reference or address-of-local
                         captures escapes the enclosing full-expression: it
                         is returned, stored into an outliving target, or
                         deferred via ThreadPool::Schedule/Submit
                         (ParallelFor joins before returning and is not
                         deferred). `this` and static captures are exempt,
                         as is storage that provably dies no later than
                         every risky capture (declaration-order proof).
  invalidated-reference  a reference/pointer/iterator obtained from
                         operator[]/front()/back()/begin()/data() on a
                         contiguous container is used after a growth call
                         on the same receiver; a reserve preceding the
                         binding exempts (the same dominance approximation
                         as alloc-in-hot-loop).

All checks are conservative in the same direction: an identity or call the
extractor could not resolve produces *no* edge, never a guessed one, so a
finding always corresponds to something actually visible in the AST.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import os
import re
from typing import Any

from . import facts

# ---------------------------------------------------------------------------
# Findings and suppressions
# ---------------------------------------------------------------------------

CONCURRENCY_CHECKS = ("lock-order", "capture-race", "blocking-under-lock")
PERF_CHECKS = ("alloc-in-hot-loop", "heavy-copy",
               "indirect-call-in-inner-loop", "hot-throw")
LIFETIME_CHECKS = ("use-after-move", "escaping-capture",
                   "invalidated-reference")
CHECKS = CONCURRENCY_CHECKS + PERF_CHECKS + LIFETIME_CHECKS

FAMILIES = {
    "concurrency": CONCURRENCY_CHECKS,
    "perf": PERF_CHECKS,
    "lifetime": LIFETIME_CHECKS,
}


@dataclasses.dataclass
class Finding:
    check: str
    file: str
    line: int
    function: str
    message: str
    lock: str = ""
    callee: str = ""

    def render(self) -> str:
        loc = f"{self.file}:{self.line}"
        return f"{loc}: [{self.check}] in `{self.function}`: {self.message}"

    def sort_key(self) -> tuple:
        return (self.check, self.file, self.line, self.message)


@dataclasses.dataclass
class Suppression:
    check: str
    reason: str
    file: str = "*"
    function: str = "*"
    callee: str = "*"
    lock: str = "*"
    used: bool = False

    def matches(self, f: Finding) -> bool:
        if self.check != f.check:
            return False
        return (fnmatch.fnmatch(f.file, self.file)
                and fnmatch.fnmatch(f.function, self.function)
                and fnmatch.fnmatch(f.callee, self.callee)
                and fnmatch.fnmatch(f.lock, self.lock))


def load_suppressions(path: str) -> list[Suppression]:
    import tomllib
    with open(path, "rb") as fh:
        doc = tomllib.load(fh)
    out: list[Suppression] = []
    for i, entry in enumerate(doc.get("suppress", [])):
        check = entry.get("check", "")
        if check not in CHECKS:
            raise ValueError(
                f"{path}: suppress[{i}]: unknown check {check!r} "
                f"(expected one of {', '.join(CHECKS)})")
        reason = entry.get("reason", "").strip()
        if not reason:
            raise ValueError(f"{path}: suppress[{i}]: a non-empty 'reason' "
                             "is required for every suppression")
        out.append(Suppression(
            check=check, reason=reason,
            file=entry.get("file", "*"),
            function=entry.get("function", "*"),
            callee=entry.get("callee", "*"),
            lock=entry.get("lock", "*")))
    return out


def apply_suppressions(findings: list[Finding],
                       sups: list[Suppression]
                       ) -> tuple[list[Finding], list[Finding], list[str]]:
    """Returns (kept, suppressed, warnings-for-unused-entries)."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for f in findings:
        hit = next((s for s in sups if s.matches(f)), None)
        if hit is not None:
            hit.used = True
            suppressed.append(f)
        else:
            kept.append(f)
    warnings = [
        f"unused suppression: check={s.check} function={s.function} "
        f"callee={s.callee} file={s.file} lock={s.lock} ({s.reason})"
        for s in sups if not s.used
    ]
    return kept, suppressed, warnings


# ---------------------------------------------------------------------------
# Lock ranks
# ---------------------------------------------------------------------------

_RANK_RE = re.compile(r"TREESIM_LOCK_RANK\((\d+)\)")


def load_lock_ranks(db: facts.FactDB, repo_root: str) -> dict[str, int]:
    """Reads TREESIM_LOCK_RANK(n) annotations from the source lines of the
    registered Mutex fields.

    clang-14 does not serialize ``annotate`` attribute payloads into the
    JSON dump, so the rank is read from the declaration's source text — the
    fact database already pins down exactly which file:line to look at.
    """
    ranks: dict[str, int] = {}
    line_cache: dict[str, list[str]] = {}
    for lock_id, info in db.mutex_fields.items():
        path = info.get("file", "")
        if not path:
            continue
        if not os.path.isabs(path):
            path = os.path.join(repo_root, path)
        if path not in line_cache:
            try:
                with open(path, "r", encoding="utf-8",
                          errors="replace") as fh:
                    line_cache[path] = fh.readlines()
            except OSError:
                line_cache[path] = []
        lines = line_cache[path]
        ln = info.get("line", 0)
        if 1 <= ln <= len(lines):
            m = _RANK_RE.search(lines[ln - 1])
            if m:
                ranks[lock_id] = int(m.group(1))
    return ranks


# ---------------------------------------------------------------------------
# Shared call-graph helpers
# ---------------------------------------------------------------------------

# Calls on the TREESIM_CHECK failure path: FatalMessage's destructor aborts
# the process, so "blocking" work there can never deadlock a healthy run.
_EXEMPT_CALLEE_SUBSTRINGS = ("internal_logging", "FatalMessage", "Voidify")


def _exempt_callee(callee: str) -> bool:
    return any(s in callee for s in _EXEMPT_CALLEE_SUBSTRINGS)


def _calls_in_scope(fn: facts.FunctionFact,
                    acq: facts.Acquisition) -> list[facts.CallSite]:
    return [c for c in fn.calls if acq.begin < c.offset <= acq.end]


def _acquisitions_in_scope(fn: facts.FunctionFact,
                           acq: facts.Acquisition) -> list[facts.Acquisition]:
    return [b for b in fn.acquisitions
            if b is not acq and acq.begin < b.begin < acq.end]


class _TransitiveAcquires:
    """ACQ*(f): every lock f may acquire, directly or through calls."""

    def __init__(self, db: facts.FactDB) -> None:
        self.db = db
        self.memo: dict[str, dict[str, tuple[str, ...]]] = {}

    def get(self, qname: str,
            _stack: "frozenset[str]" = frozenset()) -> dict[str, tuple[str, ...]]:
        """lock id -> call path (qnames) by which it is reached."""
        if qname in self.memo:
            return self.memo[qname]
        if qname in _stack:
            return {}
        fn = self.db.functions.get(qname)
        if fn is None:
            return {}
        stack = _stack | {qname}
        acc: dict[str, tuple[str, ...]] = {}
        for acq in fn.acquisitions:
            acc.setdefault(acq.lock, (qname,))
        for call in fn.calls:
            if _exempt_callee(call.callee):
                continue
            for callee in self.db.resolve(call.callee):
                for lock, path in self.get(callee.qname, stack).items():
                    acc.setdefault(lock, (qname,) + path)
        if not _stack:  # only memoize complete (non-cycle-truncated) results
            self.memo[qname] = acc
        return acc


# ---------------------------------------------------------------------------
# Check 1: lock-order
# ---------------------------------------------------------------------------


def check_lock_order(db: facts.FactDB,
                     ranks: dict[str, int]) -> list[Finding]:
    findings: list[Finding] = []
    # (src lock, dst lock) -> example site description
    edges: dict[tuple[str, str], dict[str, Any]] = {}
    acq_star = _TransitiveAcquires(db)

    for fn in db.functions.values():
        for acq in fn.acquisitions:
            for inner in _acquisitions_in_scope(fn, acq):
                if inner.lock == acq.lock:
                    continue  # same canonical lock, distinct instances
                edges.setdefault((acq.lock, inner.lock), {
                    "file": inner.file, "line": inner.line,
                    "function": fn.qname, "via": ()})
            for call in _calls_in_scope(fn, acq):
                if _exempt_callee(call.callee):
                    continue
                for callee in db.resolve(call.callee):
                    for lock, path in acq_star.get(callee.qname).items():
                        if lock == acq.lock:
                            continue
                        edges.setdefault((acq.lock, lock), {
                            "file": call.file, "line": call.line,
                            "function": fn.qname, "via": path})

    # Rank inversions: while holding a ranked lock, only strictly greater
    # ranks may be acquired.
    for (src, dst), site in sorted(edges.items()):
        rs, rd = ranks.get(src), ranks.get(dst)
        if rs is not None and rd is not None and rd <= rs:
            via = (" via " + " -> ".join(site["via"])) if site["via"] else ""
            findings.append(Finding(
                check="lock-order", file=site["file"], line=site["line"],
                function=site["function"], lock=dst,
                message=(f"acquires `{dst}` (rank {rd}) while holding "
                         f"`{src}` (rank {rs}); ranks must strictly "
                         f"increase{via}")))

    # Deadlock cycles: any strongly connected component with >= 2 locks.
    for scc in _sccs({s for s, _ in edges} | {d for _, d in edges},
                     edges.keys()):
        if len(scc) < 2:
            continue
        cycle = _example_cycle(scc, edges.keys())
        site = edges[(cycle[0], cycle[1])]
        pretty = " -> ".join(cycle + [cycle[0]])
        legs = []
        for a, b in zip(cycle, cycle[1:] + [cycle[0]]):
            e = edges[(a, b)]
            legs.append(f"`{a}` then `{b}` at {e['file']}:{e['line']} "
                        f"(in {e['function']})")
        findings.append(Finding(
            check="lock-order", file=site["file"], line=site["line"],
            function=site["function"], lock=cycle[0],
            message=(f"lock-order cycle {pretty}: " + "; ".join(legs))))
    return findings


def _sccs(nodes: set[str], edge_keys) -> list[list[str]]:
    """Iterative Tarjan strongly-connected components."""
    adj: dict[str, list[str]] = {n: [] for n in nodes}
    for s, d in edge_keys:
        adj[s].append(d)
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = 0

    for root in sorted(nodes):
        if root in index:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work = [(root, iter(adj[root]))]
        while work:
            node, it = work[-1]
            child = next(it, None)
            if child is not None:
                if child not in index:
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(adj[child])))
                elif child in on_stack:
                    low[node] = min(low[node], index[child])
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                out.append(sorted(comp))
    return out


def _example_cycle(scc: list[str], edge_keys) -> list[str]:
    """Shortest concrete cycle through the SCC, for the diagnostic."""
    import collections
    members = set(scc)
    adj = {n: sorted(d for s, d in edge_keys if s == n and d in members)
           for n in scc}
    start = scc[0]
    queue = collections.deque((n, [start, n]) for n in adj[start])
    seen: set[str] = set()
    while queue:
        node, path = queue.popleft()
        if node == start:
            return path[:-1]
        if node in seen:
            continue
        seen.add(node)
        for d in adj[node]:
            queue.append((d, path + [d]))
    return [start]  # unreachable for an SCC of size >= 2


# ---------------------------------------------------------------------------
# Check 2: capture-race
# ---------------------------------------------------------------------------

# Types that synchronize internally: mutating them from several workers is
# their documented contract.
THREADSAFE_TYPE_TOKENS = {
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "StructuredLog",
    "Tracer", "ThreadPool", "Mutex", "CondVar", "atomic", "atomic_bool",
    "atomic_int", "Latch", "Barrier",
}


def _is_threadsafe_type(qual: str) -> bool:
    return any(tok in THREADSAFE_TYPE_TOKENS
               for tok in facts._strip_type(qual))


def check_capture_race(db: facts.FactDB) -> list[Finding]:
    findings: list[Finding] = []
    for fn in db.functions.values():
        if not (fn.is_lambda and fn.submitted):
            continue
        guard_scopes = [(a.begin, a.end) for a in fn.acquisitions]
        seen: set[tuple[str, int]] = set()
        for m in fn.mutations:
            if m.atomic or m.per_slot:
                continue
            if _is_threadsafe_type(m.root_type):
                continue
            cap = fn.captures.get(m.root)
            if cap is not None and not cap.get("by_ref", True):
                continue  # by-value copy: mutation stays thread-local
            if cap is None and fn.lambda_mutable:
                # Capture list unrecoverable and the lambda is mutable, so
                # this may be a by-value member mutation; stay silent.
                continue
            if any(b <= m.offset <= e for b, e in guard_scopes):
                continue  # mutation under a MutexLock held by the lambda
            key = (m.root, m.line)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                check="capture-race", file=m.file, line=m.line,
                function=fn.qname, callee=m.root,
                message=(f"lambda submitted to the thread pool mutates "
                         f"by-reference capture `{m.root}` "
                         f"({m.expr}) without a MutexLock guard, atomic, "
                         f"or per-index slot")))
    return findings


# ---------------------------------------------------------------------------
# Check 3: blocking-under-lock
# ---------------------------------------------------------------------------

IO_FUNCS = {
    "fprintf", "printf", "vfprintf", "fputs", "puts", "fwrite", "fputc",
    "putc", "putchar", "fopen", "fclose", "freopen", "fflush", "fread",
    "fgets", "fgetc", "getline", "scanf", "fscanf", "write", "read",
    "open", "close", "fsync",
}

WAIT_FUNCS = {
    "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until", "join",
    "wait", "yield",
}

_SUBMIT_BASENAMES = {"Schedule", "Submit", "ParallelFor"}


def _blocking_reason(call: facts.CallSite) -> str | None:
    base = call.callee.split("::")[-1]
    if base in IO_FUNCS:
        return f"I/O call `{call.callee}`"
    if base in WAIT_FUNCS:
        return f"wait call `{call.callee}`"
    if call.submits or (base in _SUBMIT_BASENAMES
                        and "ThreadPool" in call.callee):
        return f"thread-pool submission `{call.callee}`"
    return None


class _TransitiveBlocks:
    """BLOCK*(f): first blocking operation reachable from f, with path."""

    def __init__(self, db: facts.FactDB) -> None:
        self.db = db
        self.memo: dict[str, "tuple[str, tuple[str, ...]] | None"] = {}

    def get(self, qname: str,
            _stack: "frozenset[str]" = frozenset()
            ) -> "tuple[str, tuple[str, ...]] | None":
        if qname in self.memo:
            return self.memo[qname]
        if qname in _stack:
            return None
        fn = self.db.functions.get(qname)
        if fn is None:
            return None
        stack = _stack | {qname}
        result: "tuple[str, tuple[str, ...]] | None" = None
        for call in fn.calls:
            if _exempt_callee(call.callee):
                continue
            reason = _blocking_reason(call)
            if reason is not None:
                result = (reason, (qname,))
                break
            for callee in self.db.resolve(call.callee):
                sub = self.get(callee.qname, stack)
                if sub is not None:
                    result = (sub[0], (qname,) + sub[1])
                    break
            if result is not None:
                break
        if not _stack:
            self.memo[qname] = result
        return result


def check_blocking_under_lock(db: facts.FactDB) -> list[Finding]:
    findings: list[Finding] = []
    blocks = _TransitiveBlocks(db)
    for fn in db.functions.values():
        for acq in fn.acquisitions:
            for call in _calls_in_scope(fn, acq):
                if _exempt_callee(call.callee):
                    continue
                reason = _blocking_reason(call)
                if reason is not None:
                    findings.append(Finding(
                        check="blocking-under-lock", file=call.file,
                        line=call.line, function=fn.qname,
                        lock=acq.lock, callee=call.callee,
                        message=f"{reason} while holding `{acq.lock}`"))
                    continue
                for callee in db.resolve(call.callee):
                    sub = blocks.get(callee.qname)
                    if sub is not None:
                        reason_str, path = sub
                        chain = " -> ".join(path)
                        findings.append(Finding(
                            check="blocking-under-lock", file=call.file,
                            line=call.line, function=fn.qname,
                            lock=acq.lock, callee=call.callee,
                            message=(f"{reason_str} reached via {chain} "
                                     f"while holding `{acq.lock}`")))
                        break
    return findings


# ---------------------------------------------------------------------------
# Hot-set derivation (perf family)
# ---------------------------------------------------------------------------

# Query-path entry points by basename; everything they reach is hot.
HOT_ENTRY_BASENAMES = {
    "Range", "Knn", "BatchKnn", "RangeWeighted", "KnnWeighted",
    "Join", "SelfJoin", "JoinImpl", "ComputePairwiseDistances",
}

# Files whose functions are never part of the measured hot path.
_EXCLUDED_PATH_SEGMENTS = {
    "tests", "test", "bench", "benchmarks", "fuzz", "tools", "third_party",
}

_HOT_RE = re.compile(r"\bTREESIM_HOT\b(?!_)")
_COLD_RE = re.compile(r"\bTREESIM_COLD\b(?!_)")


def _in_scope(fn: facts.FunctionFact, repo_root: str) -> bool:
    f = fn.file
    root = repo_root.rstrip("/") + "/"
    if f.startswith(root):
        rel = f[len(root):]
    elif not os.path.isabs(f):
        rel = f
    else:
        return False
    return not (set(rel.split("/")[:-1]) & _EXCLUDED_PATH_SEGMENTS)


def load_hot_annotations(db: facts.FactDB,
                         repo_root: str) -> tuple[set[str], set[str]]:
    """Reads TREESIM_HOT / TREESIM_COLD markers from function decl lines.

    Same mechanism as ``load_lock_ranks``: clang-14 does not serialize
    ``annotate`` payloads into the JSON dump, so the marker is read from
    the declaration's source line (the macro must share the line with the
    function name — documented in src/util/hot.h).
    """
    hot: set[str] = set()
    cold: set[str] = set()
    line_cache: dict[str, list[str]] = {}
    for fn in db.functions.values():
        path = fn.file
        if not path:
            continue
        if not os.path.isabs(path):
            path = os.path.join(repo_root, path)
        if path not in line_cache:
            try:
                with open(path, "r", encoding="utf-8",
                          errors="replace") as fh:
                    line_cache[path] = fh.readlines()
            except OSError:
                line_cache[path] = []
        lines = line_cache[path]
        if 1 <= fn.line <= len(lines):
            text = lines[fn.line - 1]
            if _HOT_RE.search(text):
                hot.add(fn.qname)
            if _COLD_RE.search(text):
                cold.add(fn.qname)
    return hot, cold


def derive_hot_set(db: facts.FactDB,
                   repo_root: str) -> dict[str, tuple[str, ...]]:
    """qname -> seed-to-function call path, for every hot function.

    Seeds: in-scope functions whose basename is a query entry point, every
    lambda submitted through ParallelFor from an in-scope function, and
    everything marked TREESIM_HOT. TREESIM_COLD removes a function and
    stops traversal through it. Calls inside function-local static
    initializers run once per process and do not propagate hotness.
    """
    hot_marks, cold_marks = load_hot_annotations(db, repo_root)
    seeds: dict[str, tuple[str, ...]] = {}
    for fn in db.functions.values():
        if fn.qname in cold_marks or not _in_scope(fn, repo_root):
            continue
        base = fn.qname.split("::")[-1]
        if base in HOT_ENTRY_BASENAMES or fn.qname in hot_marks:
            seeds[fn.qname] = (fn.qname,)
    for fn in db.functions.values():
        if not _in_scope(fn, repo_root):
            continue
        for call in fn.calls:
            if call.callee.split("::")[-1] != "ParallelFor":
                continue
            for lam in call.submits:
                lfn = db.functions.get(lam)
                if lfn is not None and lam not in cold_marks:
                    seeds.setdefault(lam, (fn.qname, lam))

    hot = dict(seeds)
    queue = list(seeds)
    while queue:
        qname = queue.pop(0)
        fn = db.functions.get(qname)
        if fn is None:
            continue
        for call in fn.calls:
            if call.static_init or _exempt_callee(call.callee):
                continue
            targets = list(db.resolve(call.callee)) + [
                db.functions[s] for s in call.submits
                if s in db.functions]
            for callee in targets:
                cq = callee.qname
                if cq in hot or cq in cold_marks:
                    continue
                if not _in_scope(callee, repo_root):
                    continue
                hot[cq] = hot[qname] + (cq,)
                queue.append(cq)
    return hot


def _hot_suffix(path: tuple[str, ...]) -> str:
    if len(path) <= 1:
        return ""
    return f" [hot via {' -> '.join(path)}]"


# ---------------------------------------------------------------------------
# Perf checks
# ---------------------------------------------------------------------------

# Types whose copies/constructions move real memory around. Token-matched
# against the written type, so `TreeDatabase` does not match `Tree`.
HEAVY_TYPE_TOKENS = {
    "Tree", "NormalizedBinaryTree", "BranchProfile", "TedTree",
    "vector", "string", "basic_string", "deque",
}

# Containers where a missing reserve turns N pushes into O(log N)
# reallocations; node-based containers cannot preallocate and are exempt.
_RESERVABLE_TOKENS = {"vector", "string", "basic_string"}

# By-value semantics these wrappers make cheap or mandatory.
_BY_VALUE_EXEMPT_TOKENS = {
    "unique_ptr", "shared_ptr", "weak_ptr", "iterator", "const_iterator",
    "reference_wrapper", "span", "string_view", "initializer_list",
}

# Standard APIs whose failure mode is an exception; the hot path must use
# the Status-based equivalents instead.
_THROWING_API_BASENAMES = {"at", "stoi", "stol", "stoll", "stod", "stof"}


def _is_by_value_heavy(qual: str) -> bool:
    q = qual.strip()
    if q.endswith("&") or "*" in q:
        return False
    toks = set(facts._strip_type(q))
    if toks & _BY_VALUE_EXEMPT_TOKENS:
        return False
    return bool(toks & HEAVY_TYPE_TOKENS)


def _max_loop_depth_at(fn: facts.FunctionFact, offset: int) -> int:
    depth = 0
    for lp in fn.loops:
        if lp.begin <= offset <= lp.end:
            depth = max(depth, lp.depth)
    return depth


def check_alloc_in_hot_loop(db: facts.FactDB,
                            hot: dict[str, tuple[str, ...]]
                            ) -> list[Finding]:
    findings: list[Finding] = []
    for qname, path in hot.items():
        fn = db.functions[qname]
        for a in fn.allocs:
            if _max_loop_depth_at(fn, a.offset) < 1:
                continue
            if a.kind == "new":
                msg = f"operator new of `{a.what}` inside a hot loop"
            elif a.kind == "make":
                msg = f"`{a.what}` allocation inside a hot loop"
            elif a.kind == "construct" and not a.copy:
                if not _is_by_value_heavy(a.what):
                    continue
                msg = (f"constructs `{a.what}` inside a hot loop; hoist "
                       f"the object out of the loop and reuse it")
            elif a.kind == "growth":
                if a.receiver_is_ref_param:
                    continue  # the caller owns the reservation
                if not a.receiver:
                    continue  # unresolvable receiver: stay conservative
                if a.receiver_type and not (
                        set(facts._strip_type(a.receiver_type))
                        & _RESERVABLE_TOKENS):
                    continue
                dominated = any(
                    r.kind == "reserve" and r.receiver == a.receiver
                    and r.offset < a.offset
                    for r in fn.allocs)
                if dominated:
                    continue
                msg = (f"`{a.receiver}.{a.what}(...)` grows inside a hot "
                       f"loop without a dominating reserve")
            else:
                continue
            findings.append(Finding(
                check="alloc-in-hot-loop", file=a.file, line=a.line,
                function=qname, callee=a.what or a.kind,
                message=msg + _hot_suffix(path)))
    return findings


def check_heavy_copy(db: facts.FactDB,
                     hot: dict[str, tuple[str, ...]]) -> list[Finding]:
    findings: list[Finding] = []
    for qname, path in hot.items():
        fn = db.functions[qname]
        for p in fn.params:
            if p.moved:
                continue  # sink parameter: one move, no copy
            if _is_by_value_heavy(p.qual):
                findings.append(Finding(
                    check="heavy-copy", file=p.file, line=p.line,
                    function=qname, callee=p.name,
                    message=(f"parameter `{p.name}` takes heavy type "
                             f"`{p.qual}` by value on the hot path; pass "
                             f"by const reference or std::move it into "
                             f"place" + _hot_suffix(path))))
        for a in fn.allocs:
            if a.kind == "construct" and a.copy and _is_by_value_heavy(
                    a.what):
                findings.append(Finding(
                    check="heavy-copy", file=a.file, line=a.line,
                    function=qname, callee=a.what,
                    message=(f"implicit copy-construction of `{a.what}` "
                             f"on the hot path" + _hot_suffix(path))))
        if fn.is_lambda:
            for name, cap in fn.captures.items():
                if cap.get("by_ref", True):
                    continue
                ctype = str(cap.get("type", ""))
                if _is_by_value_heavy(ctype):
                    findings.append(Finding(
                        check="heavy-copy", file=fn.file, line=fn.line,
                        function=qname, callee=name,
                        message=(f"lambda captures `{name}` (`{ctype}`) "
                                 f"by value on the hot path; capture by "
                                 f"reference" + _hot_suffix(path))))
    return findings


def check_indirect_call_in_inner_loop(db: facts.FactDB,
                                      hot: dict[str, tuple[str, ...]]
                                      ) -> list[Finding]:
    findings: list[Finding] = []
    for qname, path in hot.items():
        fn = db.functions[qname]
        for ic in fn.indirect_calls:
            if _max_loop_depth_at(fn, ic.offset) < 2:
                continue
            kind = ("virtual dispatch" if ic.kind == "virtual"
                    else "std::function invocation")
            findings.append(Finding(
                check="indirect-call-in-inner-loop", file=ic.file,
                line=ic.line, function=qname, callee=ic.callee,
                message=(f"{kind} (`{ic.callee}`) inside a hot inner "
                         f"loop; devirtualize, batch, or hoist the call"
                         + _hot_suffix(path))))
    return findings


def check_hot_throw(db: facts.FactDB,
                    hot: dict[str, tuple[str, ...]]) -> list[Finding]:
    findings: list[Finding] = []
    for qname, path in hot.items():
        fn = db.functions[qname]
        for t in fn.throws:
            findings.append(Finding(
                check="hot-throw", file=t.file, line=t.line,
                function=qname,
                message=("throw-expression on the hot path; return a "
                         "Status instead" + _hot_suffix(path))))
        for c in fn.calls:
            if c.static_init:
                continue
            if c.callee.split("::")[-1] in _THROWING_API_BASENAMES:
                findings.append(Finding(
                    check="hot-throw", file=c.file, line=c.line,
                    function=qname, callee=c.callee,
                    message=(f"call to throwing API `{c.callee}` on the "
                             f"hot path; use the Status-based accessor"
                             + _hot_suffix(path))))
    return findings


# ---------------------------------------------------------------------------
# Lifetime checks
# ---------------------------------------------------------------------------

# Methods that are defined on a moved-from object in its valid-but-
# unspecified state and are how code legitimately probes or recycles one.
_MOVED_SAFE_METHODS = {
    "empty", "size", "capacity", "length", "ok", "has_value", "valid",
    "swap", "get",
}

# Contiguous containers whose growth reallocates and invalidates element
# references; node-based containers keep elements pinned and are exempt.
_CONTIGUOUS_TOKENS = {"vector", "string", "basic_string", "deque"}


def _path_covers(base_path: str, sub_path: str) -> bool:
    """True when an event on `base_path` affects `sub_path` (same object or
    an enclosing subobject: moving `sweep` moves `sweep.heap`, but moving
    `sweep.heap` leaves `sweep.calls` alone)."""
    return sub_path == base_path or sub_path.startswith(base_path + ".")


def _reinit_between(evs: list, move, lo: int, hi: int) -> bool:
    """A reinit of the moved path (or an enclosing subobject) in (lo, hi]."""
    return any(
        r.kind == "reinit" and _path_covers(r.path, move.path)
        and lo < r.offset <= hi
        for r in evs)


def _diverging(fn: facts.FunctionFact, a: int, b: int) -> bool:
    """True when offsets a and b sit in sibling arms of one if/else — the
    two sites never execute in the same pass through the statement."""
    for br in fn.branches:
        for x, y in ((a, b), (b, a)):
            if (br.then_begin <= x <= br.then_end
                    and br.else_begin <= y <= br.else_end):
                return True
    return False


def check_use_after_move(db: facts.FactDB,
                         repo_root: str) -> list[Finding]:
    findings: list[Finding] = []
    for fn in db.functions.values():
        if not fn.var_events or not _in_scope(fn, repo_root):
            continue
        by_root: dict[str, list] = {}
        for e in fn.var_events:
            by_root.setdefault(e.root_id, []).append(e)
        for evs in by_root.values():
            moves = [e for e in evs
                     if e.kind == "move" and e.detail != "return std::move"]
            if not moves:
                continue
            flagged = False
            for use in evs:
                if flagged:
                    break
                if use.kind == "reinit":
                    continue
                if (use.kind == "use" and use.detail.endswith("()")
                        and use.detail[:-2] in _MOVED_SAFE_METHODS):
                    continue
                for m in moves:
                    # Strict ordering: every token of one macro expansion
                    # shares the expansion offset, so a macro that both
                    # moves and reads in a single expansion stays silent
                    # rather than guessing the inner order.
                    if use is m or use.offset <= m.offset:
                        continue
                    if not _path_covers(m.path, use.path):
                        continue
                    if _reinit_between(evs, m, m.offset, use.offset):
                        continue
                    if _diverging(fn, m.offset, use.offset):
                        continue
                    what = ("moved from again" if use.kind == "move"
                            else f"used ({use.detail})" if use.detail
                            else "read")
                    findings.append(Finding(
                        check="use-after-move", file=use.file,
                        line=use.line, function=fn.qname, callee=m.path,
                        message=(f"`{use.path}` is {what} after "
                                 f"`std::move({m.path})` at line {m.line} "
                                 f"with no reinitialization in between")))
                    flagged = True
                    break
            if flagged:
                continue
            # Loop-carried: moved inside a loop, declared outside it, and
            # never reinitialized in the loop body — the next iteration
            # moves from (or reads) a moved-from value.
            for m in moves:
                if flagged or m.decl_offset <= 0:
                    break
                for lp in fn.loops:
                    if not (lp.begin <= m.offset <= lp.end):
                        continue
                    if m.decl_offset >= lp.begin:
                        continue  # declared inside the loop: fresh each pass
                    if _reinit_between(evs, m, lp.begin - 1, lp.end):
                        continue
                    findings.append(Finding(
                        check="use-after-move", file=m.file, line=m.line,
                        function=fn.qname, callee=m.path,
                        message=(f"`{m.path}` is declared outside this "
                                 f"loop but moved from inside it with no "
                                 f"reinitialization in the loop body; the "
                                 f"next iteration moves a moved-from "
                                 f"value")))
                    flagged = True
                    break
    return findings


def check_escaping_capture(db: facts.FactDB,
                           repo_root: str) -> list[Finding]:
    findings: list[Finding] = []
    for fn in db.functions.values():
        if not fn.escapes or not _in_scope(fn, repo_root):
            continue
        for e in fn.escapes:
            if e.kind == "submit" and not e.deferred:
                continue  # ParallelFor joins before returning
            lam = db.functions.get(e.lam)
            if lam is None:
                continue
            risky = []
            for name, cap in lam.captures.items():
                if cap.get("is_this") or cap.get("is_static"):
                    continue  # object-managed / immortal storage
                if cap.get("by_ref") or cap.get("addr_of_local"):
                    risky.append((name, cap))
            if not risky:
                continue
            if (e.kind == "store" and not e.storage_is_member
                    and not e.storage_is_static and e.storage_offset >= 0
                    and all(cap.get("decl_offset", -1) >= 0
                            and cap["decl_offset"] <= e.storage_offset
                            for _, cap in risky)):
                # Every risky capture is declared at or before the storage,
                # so the storage dies first (or with it, for the recursive
                # `std::function f = [&f]...` self-capture idiom).
                continue
            names = ", ".join(f"`{n}`" for n, _ in risky)
            if e.kind == "return":
                how = "is returned"
            elif e.kind == "submit":
                how = f"is deferred via ThreadPool::{e.target}"
            else:
                how = f"is stored into `{e.target}`"
            findings.append(Finding(
                check="escaping-capture", file=e.file, line=e.line,
                function=fn.qname, callee=e.lam,
                message=(f"lambda capturing {names} by reference {how} "
                         f"and can outlive the captured frame; capture by "
                         f"value or bound the lambda's lifetime")))
    return findings


def check_invalidated_reference(db: facts.FactDB,
                                repo_root: str) -> list[Finding]:
    findings: list[Finding] = []
    for fn in db.functions.values():
        if not fn.ref_binds or not _in_scope(fn, repo_root):
            continue
        uses: dict[str, list] = {}
        for ev in fn.var_events:
            if ev.kind == "use":
                uses.setdefault(ev.root_id, []).append(ev)
        for rb in fn.ref_binds:
            if any(a.kind == "reserve" and a.receiver == rb.receiver
                   and a.offset < rb.offset
                   for a in fn.allocs):
                continue  # capacity settled before the reference was taken
            growths = sorted(
                (a for a in fn.allocs
                 if a.kind == "growth" and a.receiver == rb.receiver
                 and a.offset > rb.offset
                 and (not a.receiver_type
                      or set(facts._strip_type(a.receiver_type))
                      & _CONTIGUOUS_TOKENS)),
                key=lambda a: a.offset)
            hit = None
            for g in growths:
                if _diverging(fn, rb.offset, g.offset):
                    continue
                use = next(
                    (u for u in uses.get(rb.var_id, [])
                     if u.offset > g.offset
                     and not _diverging(fn, g.offset, u.offset)), None)
                if use is not None:
                    hit = (g, use)
                    break
            if hit is None:
                continue
            g, use = hit
            kind = "pointer/iterator" if rb.is_pointer else "reference"
            findings.append(Finding(
                check="invalidated-reference", file=use.file,
                line=use.line, function=fn.qname, callee=rb.name,
                message=(f"`{rb.name}` ({kind} into `{rb.receiver}` from "
                         f"`{rb.method}`) is used after "
                         f"`{rb.receiver}.{g.what}(...)` at line {g.line} "
                         f"may reallocate; re-take it after growth or "
                         f"reserve capacity before binding")))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_all(db: facts.FactDB, ranks: dict[str, int],
            sups: list[Suppression],
            families: tuple[str, ...] = ("concurrency",),
            repo_root: str = "."
            ) -> tuple[list[Finding], list[Finding], list[str]]:
    findings: list[Finding] = []
    if "concurrency" in families:
        findings += check_lock_order(db, ranks)
        findings += check_capture_race(db)
        findings += check_blocking_under_lock(db)
    if "perf" in families:
        hot = derive_hot_set(db, repo_root)
        findings += check_alloc_in_hot_loop(db, hot)
        findings += check_heavy_copy(db, hot)
        findings += check_indirect_call_in_inner_loop(db, hot)
        findings += check_hot_throw(db, hot)
    if "lifetime" in families:
        findings += check_use_after_move(db, repo_root)
        findings += check_escaping_capture(db, repo_root)
        findings += check_invalidated_reference(db, repo_root)
    # Deduplicate identical findings arising from functions merged across
    # TUs (header-inline bodies seen many times).
    unique: dict[tuple, Finding] = {}
    for f in findings:
        unique.setdefault(f.sort_key(), f)
    ordered = sorted(unique.values(), key=Finding.sort_key)
    return apply_suppressions(ordered, sups)
