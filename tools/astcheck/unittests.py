"""Clang-free unit tests for the astcheck core.

These feed hand-written JSON in the clang-14 ``-ast-dump=json`` schema
(including its quirk of omitting file/line on locations that repeat the
previously emitted value) through the same extraction and check code the
real driver uses, so the analyzer's logic stays tested on machines and CI
legs that have no clang toolchain.

Run: python3 tools/astcheck/__main__.py --unit-test
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import traceback

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from astcheck import checks, clang_driver, facts  # noqa: E402

REPO = "/repo"
SRC = "/repo/src/t.cc"


# ---------------------------------------------------------------------------
# Tiny builders for clang-schema JSON
# ---------------------------------------------------------------------------


def d(kind: str, **kw):
    n = {"kind": kind}
    n.update(kw)
    return n


def ref(vid: str, name: str, qual: str):
    return d("DeclRefExpr", type={"qualType": qual},
             referencedDecl={"id": vid, "kind": "VarDecl", "name": name,
                             "type": {"qualType": qual}})


def fnref(fid: str, name: str):
    return d("DeclRefExpr",
             referencedDecl={"id": fid, "kind": "FunctionDecl",
                             "name": name})


def compound(begin: int, end: int, *children):
    return d("CompoundStmt",
             range={"begin": {"offset": begin}, "end": {"offset": end}},
             inner=list(children))


def var(vid: str, name: str, qual: str, offset: int, line: int, *init):
    return d("DeclStmt", inner=[
        d("VarDecl", id=vid, name=name,
          loc={"offset": offset, "line": line},
          type={"qualType": qual}, inner=list(init))])


def raii_lock(vid: str, offset: int, line: int, lock_expr):
    return var(vid, "l", "treesim::MutexLock", offset, line,
               d("CXXConstructExpr", type={"qualType": "treesim::MutexLock"},
                 inner=[lock_expr]))


def call(fid: str, name: str, offset: int, line: int, *args):
    return d("CallExpr",
             range={"begin": {"offset": offset, "line": line},
                    "end": {"offset": offset + 5}},
             inner=[d("ImplicitCastExpr", inner=[fnref(fid, name)])]
                   + list(args))


def member_call(method: str, base, offset: int, line: int, *args,
                ref_decl: "str | None" = None):
    member = d("MemberExpr", name=method, inner=[base])
    if ref_decl is not None:
        member["referencedMemberDecl"] = ref_decl
    return d("CXXMemberCallExpr",
             range={"begin": {"offset": offset, "line": line},
                    "end": {"offset": offset + 5}},
             inner=[member] + list(args))


def func(fid: str, name: str, line: int, body, file: str = SRC):
    return d("FunctionDecl", id=fid, name=name,
             loc={"file": file, "line": line, "offset": body["range"]
                  ["begin"]["offset"] - 10},
             range={"begin": {"offset": body["range"]["begin"]["offset"]
                              - 10},
                    "end": body["range"]["end"]},
             inner=[body])


def lam(begin: int, end: int, line: int, captures, params, body_children,
        mutable: bool = False):
    """captures: [(vid, name, qual, by_ref)]; params: [(pid, name)]."""
    fields = [d("FieldDecl", name=name,
                type={"qualType": qual + (" &" if by_ref else "")})
              for _, name, qual, by_ref in captures]
    inits = [ref(vid, name, qual) for vid, name, qual, _ in captures]
    callop = d("CXXMethodDecl", name="operator()",
               type={"qualType":
                     "void (long)" + ("" if mutable else " const")},
               inner=[d("ParmVarDecl", id=pid, name=pname,
                        type={"qualType": "long"})
                      for pid, pname in params])
    closure = d("CXXRecordDecl", tagUsed="class", inner=fields + [callop])
    body = compound(begin + 5, end - 1, *body_children)
    return d("LambdaExpr", loc={"offset": begin, "line": line},
             range={"begin": {"offset": begin}, "end": {"offset": end}},
             inner=[closure] + inits + [body])


def tu(*decls):
    return d("TranslationUnitDecl",
             inner=[d("NamespaceDecl", name="treesim", inner=list(decls))])


def extract(*decls) -> facts.FactDB:
    tu_facts = facts.extract_tu(tu(*decls), SRC, REPO)
    db = facts.FactDB()
    db.add_tu(tu_facts)
    return db


def run_checks(db, ranks=None, sups=None):
    return checks.run_all(db, ranks or {}, sups or [])


def fn(db: facts.FactDB, suffix: str) -> facts.FunctionFact:
    if suffix in db.functions:
        return db.functions[suffix]
    hits = [f for q, f in db.functions.items() if suffix in q]
    assert len(hits) == 1, f"{suffix}: {list(db.functions)}"
    return hits[0]


# ---------------------------------------------------------------------------
# Tests
# ---------------------------------------------------------------------------


def test_tolerant_loader():
    text = ('Dumping treesim::Foo:\n{"kind": "FunctionDecl", "name": "a"}\n'
            'Dumping treesim::Bar:\n   {"kind": "FunctionDecl", '
            '"name": "b"}  \n')
    roots = facts.load_ast_roots(text)
    assert [r["name"] for r in roots] == ["a", "b"], roots
    single = facts.load_ast_roots(json.dumps(tu()))
    assert len(single) == 1


def test_location_state_tracking():
    # "file"/"line" omitted => same as previously emitted: a node after a
    # system-header excursion must not inherit the repo file.
    body = compound(100, 500, raii_lock("0xl", 120, 12,
                                        ref("0xm", "mu", "treesim::Mutex")))
    root = tu(var("0xm", "mu", "treesim::Mutex", 90, 9),
              func("0xf", "f", 10, body),
              d("FunctionDecl", id="0xsys", name="sysfn",
                loc={"file": "/usr/include/x.h", "line": 3, "offset": 7},
                inner=[compound(8, 9,
                                raii_lock("0xl2", 8, 3,
                                          ref("0xm", "mu",
                                              "treesim::Mutex")))]))
    db = facts.FactDB()
    db.add_tu(facts.extract_tu(root, SRC, REPO))
    f = fn(db, "treesim::f")
    assert len(f.acquisitions) == 1
    acq = f.acquisitions[0]
    assert acq.file == SRC and acq.line == 12
    assert (acq.begin, acq.end) == (120, 500), acq
    assert "sysfn" not in "".join(db.functions)  # out-of-repo body dropped


def test_manual_lock_unlock_pairing_and_trylock():
    mu = lambda: ref("0xm", "mu", "treesim::Mutex")  # noqa: E731
    body = compound(100, 500,
                    member_call("Lock", mu(), 150, 15),
                    member_call("TryLock", mu(), 200, 20),
                    member_call("Unlock", mu(), 300, 30))
    db = extract(var("0xm", "mu", "treesim::Mutex", 90, 9),
                 func("0xf", "f", 10, body))
    f = fn(db, "treesim::f")
    assert len(f.acquisitions) == 1, f.acquisitions
    acq = f.acquisitions[0]
    assert acq.kind == "manual" and (acq.begin, acq.end) == (150, 300)
    assert acq.lock == "mu"


def test_member_lock_canonicalization():
    # this->mu_ inside an inline method collapses to Record::field.
    field = d("FieldDecl", name="mu_",
              loc={"file": SRC, "line": 5, "offset": 50},
              type={"qualType": "treesim::Mutex"})
    body = compound(100, 500,
                    raii_lock("0xl", 120, 12,
                              d("MemberExpr", name="mu_",
                                inner=[d("CXXThisExpr")])))
    method = d("CXXMethodDecl", id="0xf", name="Get",
               loc={"offset": 90, "line": 10},
               range={"begin": {"offset": 90}, "end": {"offset": 500}},
               inner=[body])
    db = extract(d("CXXRecordDecl", name="Widget", inner=[field, method]))
    assert "treesim::Widget::mu_" in db.mutex_fields
    f = fn(db, "Widget::Get")
    assert f.acquisitions[0].lock == "treesim::Widget::mu_"


def test_var_field_lock_matches_record():
    # other.mu on a Widget-typed reference unifies with Widget::mu.
    field = d("FieldDecl", name="mu",
              loc={"file": SRC, "line": 5, "offset": 50},
              type={"qualType": "treesim::Mutex"})
    body = compound(100, 500,
                    raii_lock("0xl", 120, 12,
                              d("MemberExpr", name="mu",
                                inner=[ref("0xo", "other",
                                           "treesim::Widget &")])))
    db = extract(d("CXXRecordDecl", name="Widget", inner=[field]),
                 func("0xf", "f", 10, body))
    f = fn(db, "treesim::f")
    assert f.acquisitions[0].lock == "treesim::Widget::mu"


def _ab_ba_db():
    a = lambda: ref("0xa", "A", "treesim::Mutex")  # noqa: E731
    b = lambda: ref("0xb", "B", "treesim::Mutex")  # noqa: E731
    f_body = compound(100, 500, raii_lock("0xl1", 110, 11, a()),
                      compound(190, 400,
                               raii_lock("0xl2", 200, 20, b())))
    g_body = compound(600, 900, raii_lock("0xl3", 610, 61, b()),
                      compound(690, 880,
                               raii_lock("0xl4", 700, 70, a())))
    return extract(var("0xa", "A", "treesim::Mutex", 90, 9),
                   var("0xb", "B", "treesim::Mutex", 91, 9),
                   func("0xf", "f", 10, f_body),
                   func("0xg", "g", 60, g_body))


def test_ab_ba_cycle():
    kept, _, _ = run_checks(_ab_ba_db())
    cyc = [f for f in kept if f.check == "lock-order"]
    assert len(cyc) == 1, kept
    assert "cycle" in cyc[0].message
    assert "A" in cyc[0].message and "B" in cyc[0].message


def test_consistent_order_is_clean():
    a = lambda: ref("0xa", "A", "treesim::Mutex")  # noqa: E731
    b = lambda: ref("0xb", "B", "treesim::Mutex")  # noqa: E731
    f_body = compound(100, 500, raii_lock("0xl1", 110, 11, a()),
                      compound(190, 400,
                               raii_lock("0xl2", 200, 20, b())))
    g_body = compound(600, 900, raii_lock("0xl3", 610, 61, a()),
                      compound(690, 880,
                               raii_lock("0xl4", 700, 70, b())))
    db = extract(var("0xa", "A", "treesim::Mutex", 90, 9),
                 var("0xb", "B", "treesim::Mutex", 91, 9),
                 func("0xf", "f", 10, f_body),
                 func("0xg", "g", 60, g_body))
    kept, _, _ = run_checks(db)
    assert not kept, kept


def test_transitive_cycle_through_calls():
    # f1: lock L1, call f2; f2: lock L2, call f3; f3: lock L3, call f1.
    decls = [var(f"0x{i}", f"L{i}", "treesim::Mutex", 80 + i, 8)
             for i in (1, 2, 3)]
    for i, nxt in ((1, 2), (2, 3), (3, 1)):
        base = 1000 * i
        body = compound(base, base + 400,
                        raii_lock(f"0xl{i}", base + 10, i * 10,
                                  ref(f"0x{i}", f"L{i}", "treesim::Mutex")),
                        call(f"0xf{nxt}", f"f{nxt}", base + 100, i * 10 + 2))
        decls.append(func(f"0xf{i}", f"f{i}", i * 10, body))
    kept, _, _ = run_checks(extract(*decls))
    cyc = [f for f in kept if "cycle" in f.message]
    assert len(cyc) == 1, kept
    # The reported example is the *shortest* cycle in the SCC, which with
    # transitive edges may use only two of the three locks.
    named = sum(name in cyc[0].message for name in ("L1", "L2", "L3"))
    assert named >= 2, cyc[0].message


def test_rank_inversion():
    db = _ab_ba_db()
    # Drop g (the BA side) so only the A->B edge remains, then invert ranks.
    del db.functions["treesim::g"]
    kept, _, _ = run_checks(db, ranks={"A": 20, "B": 10})
    rank = [f for f in kept if "rank" in f.message]
    assert len(rank) == 1, kept
    assert "ranks must strictly increase" in rank[0].message
    kept_ok, _, _ = run_checks(db, ranks={"A": 10, "B": 20})
    assert not [f for f in kept_ok if "rank" in f.message]


def _submitting_func(lam_node, extra=(), fid="0xf", name="f", base=100):
    body = compound(base, base + 900, *extra,
                    member_call("Schedule",
                                ref("0xpool", "pool",
                                    "treesim::ThreadPool &"),
                                base + 100, 20, lam_node))
    return func(fid, name, 10, body)


def test_capture_race_flagged():
    mut = d("UnaryOperator", opcode="++",
            range={"begin": {"offset": 260, "line": 26}},
            inner=[ref("0xc", "counter", "int")])
    lam_node = lam(250, 350, 25, [("0xc", "counter", "int", True)],
                   [("0xp", "i")], [mut])
    db = extract(func("0xdecl", "decl", 5,
                      compound(50, 60)),  # unrelated function
                 _submitting_func(lam_node,
                                  extra=[var("0xc", "counter", "int",
                                             110, 11)]))
    lam_fact = fn(db, "<lambda@")
    assert lam_fact.submitted and lam_fact.captures["counter"]["by_ref"]
    kept, _, _ = run_checks(db)
    races = [f for f in kept if f.check == "capture-race"]
    assert len(races) == 1, kept
    assert "counter" in races[0].message


def test_capture_by_value_not_flagged():
    mut = d("UnaryOperator", opcode="++",
            range={"begin": {"offset": 260, "line": 26}},
            inner=[ref("0xc", "counter", "int")])
    lam_node = lam(250, 350, 25, [("0xc", "counter", "int", False)],
                   [("0xp", "i")], [mut], mutable=True)
    db = extract(_submitting_func(lam_node,
                                  extra=[var("0xc", "counter", "int",
                                             110, 11)]))
    kept, _, _ = run_checks(db)
    assert not [f for f in kept if f.check == "capture-race"], kept


def test_per_slot_exemption():
    mut = d("BinaryOperator", opcode="=",
            range={"begin": {"offset": 260, "line": 26}},
            inner=[d("ArraySubscriptExpr",
                     inner=[ref("0xout", "out", "double *"),
                            ref("0xp", "i", "long")]),
                   d("FloatingLiteral")])
    lam_node = lam(250, 350, 25, [("0xout", "out", "double *", True)],
                   [("0xp", "i")], [mut])
    db = extract(_submitting_func(lam_node,
                                  extra=[var("0xout", "out", "double *",
                                             110, 11)]))
    kept, _, _ = run_checks(db)
    assert not [f for f in kept if f.check == "capture-race"], kept
    lam_fact = fn(db, "<lambda@")
    assert lam_fact.mutations and lam_fact.mutations[0].per_slot


def test_param_derived_subscript_is_per_slot():
    # const long id = idx[i]; out[id] = ...; -- still per-slot.
    deriv = var("0xid", "id", "long", 255, 25,
                d("ArraySubscriptExpr",
                  inner=[ref("0xidx", "idx", "const long *"),
                         ref("0xp", "i", "long")]))
    mut = d("BinaryOperator", opcode="=",
            range={"begin": {"offset": 280, "line": 28}},
            inner=[d("ArraySubscriptExpr",
                     inner=[ref("0xout", "out", "double *"),
                            ref("0xid", "id", "long")]),
                   d("FloatingLiteral")])
    lam_node = lam(250, 350, 25,
                   [("0xout", "out", "double *", True),
                    ("0xidx", "idx", "const long *", False)],
                   [("0xp", "i")], [deriv, mut])
    db = extract(_submitting_func(lam_node,
                                  extra=[var("0xout", "out", "double *",
                                             110, 11),
                                         var("0xidx", "idx", "const long *",
                                             112, 11)]))
    kept, _, _ = run_checks(db)
    assert not [f for f in kept if f.check == "capture-race"], kept


def test_atomic_exemption():
    mut = member_call("fetch_add",
                      ref("0xa", "hits", "std::atomic<long>"), 260, 26,
                      d("IntegerLiteral"))
    lam_node = lam(250, 350, 25,
                   [("0xa", "hits", "std::atomic<long>", True)],
                   [("0xp", "i")], [mut])
    db = extract(_submitting_func(lam_node,
                                  extra=[var("0xa", "hits",
                                             "std::atomic<long>", 110,
                                             11)]))
    kept, _, _ = run_checks(db)
    assert not [f for f in kept if f.check == "capture-race"], kept


def test_guarded_mutation_exemption():
    mu_ref = ref("0xmu", "mu", "treesim::Mutex")
    guard = raii_lock("0xl", 258, 25, mu_ref)
    mut = d("UnaryOperator", opcode="++",
            range={"begin": {"offset": 270, "line": 27}},
            inner=[ref("0xc", "counter", "int")])
    lam_node = lam(250, 350, 25,
                   [("0xc", "counter", "int", True),
                    ("0xmu", "mu", "treesim::Mutex", True)],
                   [("0xp", "i")], [guard, mut])
    db = extract(_submitting_func(lam_node,
                                  extra=[var("0xc", "counter", "int",
                                             110, 11),
                                         var("0xmu", "mu", "treesim::Mutex",
                                             112, 11)]))
    kept, _, _ = run_checks(db)
    assert not [f for f in kept if f.check == "capture-race"], kept


def test_threadsafe_type_exemption():
    mut = member_call("Increment",
                      ref("0xc", "c", "treesim::Counter &"), 260, 26)
    lam_node = lam(250, 350, 25,
                   [("0xc", "c", "treesim::Counter &", True)],
                   [("0xp", "i")], [mut])
    db = extract(_submitting_func(lam_node,
                                  extra=[var("0xc", "c",
                                             "treesim::Counter &", 110,
                                             11)]))
    kept, _, _ = run_checks(db)
    assert not [f for f in kept if f.check == "capture-race"], kept


def test_io_under_lock():
    body = compound(100, 500,
                    raii_lock("0xl", 110, 11,
                              ref("0xm", "mu", "treesim::Mutex")),
                    call("0xio", "fprintf", 200, 20))
    db = extract(var("0xm", "mu", "treesim::Mutex", 90, 9),
                 func("0xf", "f", 10, body))
    kept, _, _ = run_checks(db)
    blk = [f for f in kept if f.check == "blocking-under-lock"]
    assert len(blk) == 1 and "fprintf" in blk[0].message, kept


def test_io_outside_lock_clean():
    body = compound(100, 500,
                    compound(105, 180,
                             raii_lock("0xl", 110, 11,
                                       ref("0xm", "mu", "treesim::Mutex"))),
                    call("0xio", "fprintf", 200, 20))
    db = extract(var("0xm", "mu", "treesim::Mutex", 90, 9),
                 func("0xf", "f", 10, body))
    kept, _, _ = run_checks(db)
    assert not kept, kept


def test_transitive_blocking_under_lock():
    g_body = compound(600, 900, call("0xio", "fprintf", 700, 70))
    f_body = compound(100, 500,
                      raii_lock("0xl", 110, 11,
                                ref("0xm", "mu", "treesim::Mutex")),
                      call("0xg", "g", 200, 20))
    db = extract(var("0xm", "mu", "treesim::Mutex", 90, 9),
                 func("0xg", "g", 60, g_body),
                 func("0xf", "f", 10, f_body))
    kept, _, _ = run_checks(db)
    blk = [f for f in kept if f.check == "blocking-under-lock"]
    assert len(blk) == 1, kept
    assert "via treesim::g" in blk[0].message and "fprintf" in blk[0].message


def test_submit_under_lock():
    lam_node = lam(250, 350, 25, [], [("0xp", "i")], [])
    body = compound(100, 500,
                    raii_lock("0xl", 110, 11,
                              ref("0xm", "mu", "treesim::Mutex")),
                    member_call("Schedule",
                                ref("0xpool", "pool",
                                    "treesim::ThreadPool &"),
                                200, 20, lam_node))
    db = extract(var("0xm", "mu", "treesim::Mutex", 90, 9),
                 func("0xf", "f", 10, body))
    kept, _, _ = run_checks(db)
    blk = [f for f in kept if f.check == "blocking-under-lock"]
    assert len(blk) == 1 and "submission" in blk[0].message, kept


def test_condvar_wait_is_sanctioned():
    body = compound(100, 500,
                    raii_lock("0xl", 110, 11,
                              ref("0xm", "mu", "treesim::Mutex")),
                    member_call("Wait",
                                ref("0xcv", "cv", "treesim::CondVar"),
                                200, 20))
    db = extract(var("0xm", "mu", "treesim::Mutex", 90, 9),
                 func("0xf", "f", 10, body))
    kept, _, _ = run_checks(db)
    assert not kept, kept
    assert not fn(db, "treesim::f").calls  # modeled natively, not a call


def test_parallel_for_nullptr_is_inline_call():
    mut = d("UnaryOperator", opcode="++",
            range={"begin": {"offset": 260, "line": 26}},
            inner=[ref("0xc", "counter", "int")])
    lam_node = lam(250, 350, 25, [("0xc", "counter", "int", True)],
                   [("0xp", "i")], [mut])
    body = compound(100, 500,
                    var("0xc", "counter", "int", 110, 11),
                    call("0xpf", "ParallelFor", 200, 20,
                         d("CXXNullPtrLiteralExpr"), d("IntegerLiteral"),
                         lam_node))
    db = extract(func("0xf", "f", 10, body))
    lam_fact = fn(db, "<lambda@")
    assert not lam_fact.submitted
    caller = fn(db, "treesim::f")
    assert any(c.callee == lam_fact.qname for c in caller.calls)
    kept, _, _ = run_checks(db)
    assert not [f for f in kept if f.check == "capture-race"], kept


def test_pool_parallel_for_submits():
    mut = d("UnaryOperator", opcode="++",
            range={"begin": {"offset": 260, "line": 26}},
            inner=[ref("0xc", "counter", "int")])
    lam_node = lam(250, 350, 25, [("0xc", "counter", "int", True)],
                   [("0xp", "i")], [mut])
    body = compound(100, 500,
                    var("0xc", "counter", "int", 110, 11),
                    member_call("ParallelFor",
                                ref("0xpool", "pool",
                                    "treesim::ThreadPool &"),
                                200, 20, d("IntegerLiteral"), lam_node))
    db = extract(func("0xf", "f", 10, body))
    assert fn(db, "<lambda@").submitted
    kept, _, _ = run_checks(db)
    assert [f for f in kept if f.check == "capture-race"], kept


def test_suppressions():
    finding = checks.Finding(check="blocking-under-lock", file="src/a.cc",
                             line=3, function="treesim::StructuredLog::Write",
                             message="x", callee="fwrite")
    sup = checks.Suppression(check="blocking-under-lock",
                             function="treesim::StructuredLog::*",
                             callee="fwrite", reason="flush-per-record")
    unused = checks.Suppression(check="capture-race", reason="stale")
    kept, suppressed, warnings = checks.apply_suppressions(
        [finding], [sup, unused])
    assert not kept and len(suppressed) == 1
    assert len(warnings) == 1 and "capture-race" in warnings[0]


def test_suppression_file_validation():
    with tempfile.TemporaryDirectory() as tmp:
        good = os.path.join(tmp, "s.toml")
        with open(good, "w") as fh:
            fh.write('[[suppress]]\ncheck = "capture-race"\n'
                     'function = "f"\nreason = "why"\n')
        sups = checks.load_suppressions(good)
        assert len(sups) == 1 and sups[0].reason == "why"
        bad = os.path.join(tmp, "bad.toml")
        with open(bad, "w") as fh:
            fh.write('[[suppress]]\ncheck = "capture-race"\n')
        try:
            checks.load_suppressions(bad)
            raise AssertionError("missing reason accepted")
        except ValueError as exc:
            assert "reason" in str(exc)
        with open(bad, "w") as fh:
            fh.write('[[suppress]]\ncheck = "nope"\nreason = "x"\n')
        try:
            checks.load_suppressions(bad)
            raise AssertionError("unknown check accepted")
        except ValueError as exc:
            assert "unknown check" in str(exc)


def test_lock_ranks_from_source():
    with tempfile.TemporaryDirectory() as tmp:
        hdr = os.path.join(tmp, "x.h")
        with open(hdr, "w") as fh:
            fh.write("struct S {\n  Mutex mu TREESIM_LOCK_RANK(20);\n"
                     "  Mutex other;\n};\n")
        db = facts.FactDB()
        db.mutex_fields = {
            "S::mu": {"file": hdr, "line": 2, "record": "S", "field": "mu"},
            "S::other": {"file": hdr, "line": 3, "record": "S",
                         "field": "other"},
        }
        ranks = checks.load_lock_ranks(db, tmp)
        assert ranks == {"S::mu": 20}, ranks


def test_cache_roundtrip_and_key():
    with tempfile.TemporaryDirectory() as tmp:
        cache = clang_driver.FactCache(os.path.join(tmp, "cache"))
        tu_facts = facts.extract_tu(
            tu(func("0xf", "f", 10, compound(100, 500))), SRC, REPO)
        key = clang_driver.tu_cache_key("clang 14", ["clang", "a.cc"],
                                        [("a.cc", "h1")])
        assert cache.get(key) is None
        cache.put(key, tu_facts)
        back = cache.get(key)
        assert back is not None
        assert [f.qname for f in back.functions] == ["treesim::f"]
        # Any component change must change the key.
        k2 = clang_driver.tu_cache_key("clang 15", ["clang", "a.cc"],
                                       [("a.cc", "h1")])
        k3 = clang_driver.tu_cache_key("clang 14", ["clang", "a.cc"],
                                       [("a.cc", "h2")])
        k4 = clang_driver.tu_cache_key("clang 14", ["clang", "-O2", "a.cc"],
                                       [("a.cc", "h1")])
        assert len({key, k2, k3, k4}) == 4


def test_include_closure_scan():
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src"))
        a = os.path.join(tmp, "src", "a.h")
        b = os.path.join(tmp, "src", "b.h")
        c = os.path.join(tmp, "main.cc")
        with open(a, "w") as fh:
            fh.write('#include "b.h"\n#include <vector>\n')
        with open(b, "w") as fh:
            fh.write("int x;\n")
        with open(c, "w") as fh:
            fh.write('#include "src/a.h"\n')
        scanner = clang_driver._IncludeScanner(tmp)
        closure = scanner.closure(c, (tmp,))
        paths = {p for p, _ in closure}
        assert paths == {os.path.abspath(p) for p in (a, b, c)}, closure


def test_rewrite_command():
    entry = {"directory": "/b",
             "command": "/usr/bin/c++ -I/r/src -std=c++20 -O2 -MD -MF x.d "
                        "-o x.o -c /r/src/a.cc",
             "file": "/r/src/a.cc"}
    cmd = clang_driver.rewrite_command(entry, "/usr/bin/clang++")
    assert cmd[0] == "/usr/bin/clang++"
    assert cmd[-1] == "/r/src/a.cc"
    assert "-c" not in cmd and "-o" not in cmd and "x.o" not in cmd
    assert "-ast-dump=json" in cmd and "-fsyntax-only" in cmd
    assert "-I/r/src" in cmd and "-std=c++20" in cmd
    assert clang_driver._include_dirs_of(cmd) == ("/r/src",)


def test_db_merge_prefers_richer_and_keeps_submitted():
    body = compound(100, 500, call("0xg", "g", 200, 20))
    rich = facts.extract_tu(tu(func("0xf", "f", 10, body)), SRC, REPO)
    poor = facts.extract_tu(tu(func("0xf", "f", 10, compound(100, 500))),
                            "/repo/src/u.cc", REPO)
    poor.functions[0].submitted = True
    db = facts.FactDB()
    db.add_tu(rich)
    db.add_tu(poor)
    merged = db.functions["treesim::f"]
    assert merged.calls and merged.submitted


# ---------------------------------------------------------------------------
# Perf family: builders
# ---------------------------------------------------------------------------


def loop(begin: int, end: int, line: int, *children):
    return d("ForStmt",
             range={"begin": {"offset": begin, "line": line},
                    "end": {"offset": end}},
             inner=list(children))


def new_expr(qual: str, offset: int, line: int):
    return d("CXXNewExpr", type={"qualType": qual},
             loc={"offset": offset, "line": line},
             range={"begin": {"offset": offset, "line": line},
                    "end": {"offset": offset + 3}})


def construct(qual: str, offset: int, line: int, *args):
    return d("CXXConstructExpr", type={"qualType": qual},
             loc={"offset": offset, "line": line},
             range={"begin": {"offset": offset, "line": line},
                    "end": {"offset": offset + 3}},
             inner=list(args))


def func_p(fid: str, name: str, line: int, params, body, file: str = SRC):
    """func() plus ParmVarDecls: params = [(pid, pname, qual)]."""
    n = func(fid, name, line, body, file=file)
    n["inner"] = [d("ParmVarDecl", id=pid, name=pname,
                    type={"qualType": qual})
                  for pid, pname, qual in params] + n["inner"]
    return n


def run_perf(db, sups=None, repo_root=REPO):
    return checks.run_all(db, {}, sups or [], families=("perf",),
                          repo_root=repo_root)


def kept_checks(kept):
    return {(f.function, f.check) for f in kept}


# ---------------------------------------------------------------------------
# Perf family: extractor facts
# ---------------------------------------------------------------------------


def test_perf_loop_spans_and_nesting_depth():
    body = compound(100, 500,
                    loop(200, 400, 20,
                         loop(250, 350, 25)))
    db = extract(func("0xf", "Helper", 10, body))
    f = fn(db, "treesim::Helper")
    spans = {(lp.begin, lp.end, lp.depth) for lp in f.loops}
    assert spans == {(200, 400, 1), (250, 350, 2)}, f.loops
    # A depth probe inside both loops sees 2, between them 1, outside 0.
    assert checks._max_loop_depth_at(f, 300) == 2
    assert checks._max_loop_depth_at(f, 210) == 1
    assert checks._max_loop_depth_at(f, 450) == 0


def test_perf_growth_receiver_paths_recorded():
    vec = lambda vid="0xv": ref(vid, "out", "std::vector<int>")  # noqa: E731
    nested = d("MemberExpr", name="pairs",
               inner=[ref("0xr", "result", "treesim::JoinResult")])
    body = compound(100, 500,
                    member_call("push_back", vec(), 200, 20),
                    member_call("emplace_back", nested, 250, 25),
                    member_call("reserve", vec(), 150, 15))
    db = extract(func("0xf", "Helper", 10, body))
    f = fn(db, "treesim::Helper")
    got = {(a.kind, a.what, a.receiver, a.offset) for a in f.allocs}
    assert got == {("growth", "push_back", "out", 200),
                   ("growth", "emplace_back", "result.pairs", 250),
                   ("reserve", "reserve", "out", 150)}, f.allocs


def test_perf_static_init_alloc_exempt():
    # A function-local static's initializer runs once per process; allocs
    # inside it must not be recorded at all.
    static_tbl = d("DeclStmt", inner=[
        d("VarDecl", id="0xs", name="tbl", storageClass="static",
          type={"qualType": "int *"},
          inner=[new_expr("int[256]", 250, 25)])])
    body = compound(100, 500, loop(200, 400, 20, static_tbl))
    db = extract(func("0xf", "Range", 10, body))
    assert fn(db, "treesim::Range").allocs == []
    kept, _, _ = run_perf(db)
    assert kept == [], kept


# ---------------------------------------------------------------------------
# Perf family: hot-set derivation
# ---------------------------------------------------------------------------


def test_perf_hot_set_entries_and_call_propagation():
    entry_body = compound(100, 500, call("0xg", "Score", 200, 20))
    helper_body = compound(600, 900)
    bystander = compound(1000, 1300, call("0xg", "Score", 1100, 110))
    db = extract(func("0xe", "Range", 10, entry_body),
                 func("0xg", "Score", 60, helper_body),
                 func("0xb", "Helper", 100, bystander))
    hot = checks.derive_hot_set(db, REPO)
    assert set(hot) == {"treesim::Range", "treesim::Score"}, hot
    # The path records how hotness was inherited.
    assert hot["treesim::Score"] == ("treesim::Range", "treesim::Score")


def test_perf_hot_set_ignores_out_of_scope_entries():
    # Entry-named functions in tests/ or tools/ never seed the hot set.
    body = compound(100, 500, loop(200, 400, 20, new_expr("int", 250, 25)))
    root = tu(func("0xf", "Range", 10, body, file="/repo/tests/t_test.cc"))
    db = facts.FactDB()
    db.add_tu(facts.extract_tu(root, "/repo/tests/t_test.cc", REPO))
    assert checks.derive_hot_set(db, REPO) == {}
    kept, _, _ = run_perf(db)
    assert kept == [], kept


def test_perf_hot_cold_annotations_from_source_lines():
    # TREESIM_HOT/TREESIM_COLD are read off the declaration's source line;
    # COLD excludes an entry point and stops traversal through it.
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src"))
        path = os.path.join(tmp, "src", "x.cc")
        with open(path, "w") as fh:
            fh.write("int TREESIM_HOT Warm(int n) {\n"        # line 1
                     "void TREESIM_COLD Range() {\n"          # line 2
                     "void Sub() {\n"                         # line 3
                     "void Sub2() {\n")                       # line 4
        decls = [
            func("0xw", "Warm", 1,
                 compound(100, 300, call("0x2", "Sub2", 150, 1)),
                 file=path),
            func("0xr", "Range", 2,
                 compound(400, 600, call("0x1", "Sub", 450, 2)),
                 file=path),
            func("0x1", "Sub", 3, compound(700, 800), file=path),
            func("0x2", "Sub2", 4, compound(900, 1000), file=path),
        ]
        db = facts.FactDB()
        db.add_tu(facts.extract_tu(tu(*decls), path, tmp))
        hot_marks, cold_marks = checks.load_hot_annotations(db, tmp)
        assert hot_marks == {"treesim::Warm"}, hot_marks
        assert cold_marks == {"treesim::Range"}, cold_marks
        hot = checks.derive_hot_set(db, tmp)
        assert set(hot) == {"treesim::Warm", "treesim::Sub2"}, hot


def test_perf_parallel_for_lambda_seeded_and_checked():
    # The enclosing function is NOT an entry point, but the lambda it
    # submits through ParallelFor is hot: its unreserved growth fires and
    # its by-value heavy capture fires.
    growth = member_call("push_back",
                         ref("0xsc", "scratch", "std::vector<int>"),
                         1300, 130)
    body_lam = lam(1200, 1500, 120,
                   captures=[("0xb", "big", "std::vector<int>", False)],
                   params=[("0xp", "i")],
                   body_children=[loop(1250, 1450, 125, growth)])
    body = compound(1000, 2000,
                    call("0xpf", "ParallelFor", 1100, 110,
                         ref("0xpool", "pool", "treesim::ThreadPool &"),
                         body_lam))
    db = extract(func("0xf", "FillAll", 100, body))
    hot = checks.derive_hot_set(db, REPO)
    lam_q = [q for q in hot if "<lambda@" in q]
    assert len(lam_q) == 1 and "treesim::FillAll" not in hot, hot
    kept, _, _ = run_perf(db)
    got = {(f.check, f.callee) for f in kept}
    assert got == {("alloc-in-hot-loop", "push_back"),
                   ("heavy-copy", "big")}, kept


# ---------------------------------------------------------------------------
# Perf family: alloc-in-hot-loop
# ---------------------------------------------------------------------------


def test_perf_new_and_make_in_hot_loop_flagged():
    body = compound(100, 500,
                    new_expr("double", 120, 12),  # outside any loop: clean
                    loop(200, 400, 20,
                         new_expr("int", 250, 25),
                         call("0xmk", "make_unique", 300, 30)))
    db = extract(func("0xf", "Knn", 10, body))
    kept, _, _ = run_perf(db)
    got = {(f.check, f.callee, f.line) for f in kept}
    assert got == {("alloc-in-hot-loop", "int", 25),
                   ("alloc-in-hot-loop", "make_unique", 30)}, kept


def test_perf_growth_flagged_unless_reserve_dominates():
    vec = lambda: ref("0xv", "out", "std::vector<int>")  # noqa: E731
    bad = compound(100, 500,
                   loop(200, 400, 20, member_call("push_back", vec(),
                                                  260, 26)))
    good = compound(600, 1000,
                    member_call("reserve", vec(), 650, 65),
                    loop(700, 900, 70, member_call("push_back", vec(),
                                                   760, 76)))
    db = extract(func("0xa", "Range", 10, bad),
                 func("0xb", "Knn", 60, good))
    kept, _, _ = run_perf(db)
    assert kept_checks(kept) == {("treesim::Range",
                                  "alloc-in-hot-loop")}, kept
    assert "dominating reserve" in kept[0].message


def test_perf_growth_exemptions():
    # (a) receiver rooted at a `&` parameter: the caller reserves;
    # (b) node-based container: nothing to reserve;
    # (c) unresolvable receiver (chained call): stay conservative.
    by_ref = func_p(
        "0xa", "Range", 10, [("0xp", "out", "std::vector<int> &")],
        compound(100, 500, loop(200, 400, 20, member_call(
            "push_back", ref("0xp", "out", "std::vector<int> &"),
            260, 26))))
    node_based = func(
        "0xb", "Knn", 60,
        compound(600, 900, loop(700, 880, 70, member_call(
            "push_back", ref("0xq", "q", "std::deque<int>"), 760, 76))))
    chained = func(
        "0xc", "SelfJoin", 100,
        compound(1000, 1300, loop(1100, 1280, 110, member_call(
            "push_back",
            member_call("back", ref("0xs", "slots",
                                    "std::vector<std::vector<int>>"),
                        1150, 115),
            1160, 116))))
    db = extract(by_ref, node_based, chained)
    f = fn(db, "treesim::Range")
    assert any(a.kind == "growth" and a.receiver_is_ref_param
               for a in f.allocs), f.allocs
    kept, _, _ = run_perf(db)
    assert kept == [], kept


def test_perf_heavy_construct_in_loop_and_sso():
    short_lit = d("StringLiteral", value='"tiny"')
    long_lit = d("StringLiteral",
                 value='"a-literal-well-beyond-sso-capacity"')
    body = compound(100, 900, loop(
        200, 800, 20,
        construct("treesim::BranchProfile", 250, 25,
                  d("IntegerLiteral", value="7")),
        construct("std::string", 300, 30, short_lit),   # SSO: clean
        construct("std::string", 400, 40, long_lit),    # heap: flagged
        construct("treesim::QueryContext", 500, 50,     # not heavy: clean
                  d("IntegerLiteral", value="1"))))
    db = extract(func("0xf", "Range", 10, body))
    kept, _, _ = run_perf(db)
    got = {(f.check, f.line) for f in kept}
    assert got == {("alloc-in-hot-loop", 25),
                   ("alloc-in-hot-loop", 40)}, kept


# ---------------------------------------------------------------------------
# Perf family: heavy-copy
# ---------------------------------------------------------------------------


def test_perf_heavy_param_flagged_sink_and_light_clean():
    bad = func_p("0xa", "Join", 10,
                 [("0xp1", "ids", "std::vector<int>")],
                 compound(100, 400))
    # Same heavy by-value param, but std::move()d into place: a sink.
    sink = func_p("0xb", "SelfJoin", 50,
                  [("0xp2", "ids", "std::vector<int>")],
                  compound(500, 800,
                           call("0xmv", "move", 600, 60,
                                ref("0xp2", "ids", "std::vector<int>"))))
    light = func_p("0xc", "Knn", 90,
                   [("0xp3", "k", "int"),
                    ("0xp4", "t", "const treesim::Tree &"),
                    ("0xp5", "p", "std::unique_ptr<treesim::Tree>")],
                   compound(900, 1200))
    db = extract(bad, sink, light)
    assert fn(db, "treesim::SelfJoin").params[0].moved
    kept, _, _ = run_perf(db)
    assert kept_checks(kept) == {("treesim::Join", "heavy-copy")}, kept
    assert kept[0].callee == "ids"


def test_perf_copy_construct_flagged_even_outside_loops():
    # A by-value argument copy happens once per call — loop or not.
    copy = construct("treesim::Tree", 250, 25,
                     ref("0xt", "t", "treesim::Tree"))
    db = extract(func("0xf", "Knn", 10, compound(100, 500, copy)))
    f = fn(db, "treesim::Knn")
    assert [(a.kind, a.copy) for a in f.allocs] == [("construct", True)]
    kept, _, _ = run_perf(db)
    assert kept_checks(kept) == {("treesim::Knn", "heavy-copy")}, kept
    assert "copy-construction" in kept[0].message


# ---------------------------------------------------------------------------
# Perf family: indirect-call-in-inner-loop
# ---------------------------------------------------------------------------


def _filter_record():
    return d("CXXRecordDecl", name="Filter", inner=[
        d("CXXMethodDecl", id="0xvm", name="MayQualify", virtual=True,
          type={"qualType": "bool (int)"})])


def test_perf_virtual_in_inner_loop_needs_depth_two():
    probe = lambda off, line: member_call(  # noqa: E731
        "MayQualify", ref("0xflt", "filt", "treesim::Filter &"),
        off, line, ref_decl="0xvm")
    deep = compound(100, 500,
                    loop(200, 450, 20, loop(250, 400, 25, probe(300, 30))))
    shallow = compound(600, 900, loop(700, 880, 70, probe(750, 75)))
    db = extract(_filter_record(),
                 func("0xa", "Range", 10, deep),
                 func("0xb", "Knn", 60, shallow))
    assert [ic.kind for ic in fn(db, "treesim::Range").indirect_calls] \
        == ["virtual"]
    kept, _, _ = run_perf(db)
    assert kept_checks(kept) == {("treesim::Range",
                                  "indirect-call-in-inner-loop")}, kept
    assert "virtual dispatch" in kept[0].message


def test_perf_functor_call_in_inner_loop_flagged():
    invoke = d("CXXOperatorCallExpr",
               loc={"offset": 300, "line": 30},
               inner=[fnref("0xop", "operator()"),
                      ref("0xfn", "score", "std::function<bool (int)>")])
    body = compound(100, 500,
                    loop(200, 450, 20, loop(250, 400, 25, invoke)))
    db = extract(func("0xf", "BatchKnn", 10, body))
    assert [ic.kind for ic in fn(db, "treesim::BatchKnn").indirect_calls] \
        == ["functor"]
    kept, _, _ = run_perf(db)
    assert kept_checks(kept) == {("treesim::BatchKnn",
                                  "indirect-call-in-inner-loop")}, kept
    assert "std::function" in kept[0].message


# ---------------------------------------------------------------------------
# Perf family: hot-throw
# ---------------------------------------------------------------------------


def test_perf_hot_throw_and_throwing_api():
    hot_body = compound(100, 500,
                        d("CXXThrowExpr", loc={"offset": 200, "line": 20}),
                        member_call("at",
                                    ref("0xv", "v", "std::vector<int>"),
                                    300, 30))
    cold_body = compound(600, 900,
                         d("CXXThrowExpr", loc={"offset": 700, "line": 70}))
    db = extract(func("0xa", "ComputePairwiseDistances", 10, hot_body),
                 func("0xb", "Helper", 60, cold_body))
    kept, _, _ = run_perf(db)
    assert {f.function for f in kept} \
        == {"treesim::ComputePairwiseDistances"}, kept
    got = {(f.check, f.line) for f in kept}
    assert got == {("hot-throw", 20), ("hot-throw", 30)}, kept


def test_perf_suppressions_apply_to_perf_findings():
    body = compound(100, 500, loop(200, 400, 20, new_expr("int", 250, 25)))
    db = extract(func("0xf", "Range", 10, body))
    sup = checks.Suppression(check="alloc-in-hot-loop", file="*",
                             function="treesim::Range", callee="*",
                             reason="unit test")
    kept, suppressed, warnings = run_perf(db, sups=[sup])
    assert kept == [] and len(suppressed) == 1, (kept, suppressed)
    assert warnings == [], warnings


# ---------------------------------------------------------------------------
# Fact-cache eviction (astcheck --stats)
# ---------------------------------------------------------------------------


def test_perf_cache_evict_stale():
    with tempfile.TemporaryDirectory() as tmp:
        cache = clang_driver.FactCache(os.path.join(tmp, "cache"))
        tu_facts = facts.extract_tu(
            tu(func("0xf", "f", 10, compound(100, 500))), SRC, REPO)
        live_src = os.path.join(tmp, "live.cc")
        with open(live_src, "w") as fh:
            fh.write("int x;\n")
        k_live = clang_driver.tu_cache_key("c", ["a"], [("a", "1")])
        k_gone = clang_driver.tu_cache_key("c", ["b"], [("b", "2")])
        cache.put(k_live, tu_facts, source=live_src)
        cache.put(k_gone, tu_facts, source=os.path.join(tmp, "deleted.cc"))
        # A pre-schema-bump leftover must be reaped too.
        old = os.path.join(cache.dir, "0" * 32 + ".json")
        with open(old, "w") as fh:
            json.dump({"schema": 1, "key": "k", "facts": {}}, fh)
        evicted, kept = cache.evict_stale()
        assert (evicted, kept) == (2, 1), (evicted, kept)
        assert cache.get(k_live) is not None
        assert cache.get(k_gone) is None


# ---------------------------------------------------------------------------
# Lifetime family: builders
# ---------------------------------------------------------------------------


def uref(vid: str, name: str, qual: str, offset: int, line: int):
    """A DeclRefExpr read with a source position (a lifetime use site)."""
    n = ref(vid, name, qual)
    n["loc"] = {"offset": offset, "line": line}
    n["range"] = {"begin": {"offset": offset, "line": line},
                  "end": {"offset": offset + 2}}
    return n


def move_of(arg, offset: int, line: int):
    return call("0xmv", "move", offset, line, arg)


def assign(lhs, rhs, offset: int, line: int):
    return d("BinaryOperator", opcode="=",
             range={"begin": {"offset": offset, "line": line},
                    "end": {"offset": offset + 40}},
             inner=[lhs, rhs])


def if_else(cond, then_stmt, else_stmt, begin: int, end: int, line: int):
    return d("IfStmt", hasElse=True,
             range={"begin": {"offset": begin, "line": line},
                    "end": {"offset": end}},
             inner=[cond, then_stmt, else_stmt])


def member_path(base, *names):
    node = base
    for name in names:
        node = d("MemberExpr", name=name, inner=[node])
    return node


def run_lifetime(db, sups=None, repo_root=REPO):
    return checks.run_all(db, {}, sups or [], families=("lifetime",),
                          repo_root=repo_root)


VEC = "std::vector<int>"


# ---------------------------------------------------------------------------
# Lifetime family: use-after-move
# ---------------------------------------------------------------------------


def test_lifetime_move_then_use_flagged():
    body = compound(100, 500,
                    var("0xv", "v", VEC, 150, 15),
                    move_of(uref("0xv", "v", VEC, 205, 20), 200, 20),
                    uref("0xv", "v", VEC, 300, 30))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept_checks(kept) == {("treesim::f", "use-after-move")}, kept
    assert kept[0].line == 30 and "`v`" in kept[0].message, kept[0]


def test_lifetime_reinit_assignment_clean():
    body = compound(100, 500,
                    var("0xv", "v", VEC, 150, 15),
                    move_of(uref("0xv", "v", VEC, 205, 20), 200, 20),
                    assign(uref("0xv", "v", VEC, 252, 25),
                           uref("0xw", "w", VEC, 270, 25), 250, 25),
                    uref("0xv", "v", VEC, 300, 30))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept == [], kept


def test_lifetime_clear_reinit_clean():
    body = compound(100, 500,
                    var("0xv", "v", VEC, 150, 15),
                    move_of(uref("0xv", "v", VEC, 205, 20), 200, 20),
                    member_call("clear", uref("0xv", "v", VEC, 252, 25),
                                250, 25),
                    uref("0xv", "v", VEC, 300, 30))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept == [], kept


def test_lifetime_safe_probe_clean():
    # empty()/size() are defined on a moved-from (valid-but-unspecified)
    # object; probing is how code checks whether recycling is needed.
    body = compound(100, 500,
                    var("0xv", "v", VEC, 150, 15),
                    move_of(uref("0xv", "v", VEC, 205, 20), 200, 20),
                    member_call("empty", uref("0xv", "v", VEC, 252, 25),
                                250, 25),
                    member_call("size", uref("0xv", "v", VEC, 302, 30),
                                300, 30))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept == [], kept


def test_lifetime_double_move_flagged():
    body = compound(100, 500,
                    var("0xv", "v", VEC, 150, 15),
                    move_of(uref("0xv", "v", VEC, 205, 20), 200, 20),
                    move_of(uref("0xv", "v", VEC, 305, 30), 300, 30))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert len(kept) == 1 and "moved from again" in kept[0].message, kept


def test_lifetime_macro_same_offset_silent():
    # All tokens of one macro expansion share the expansion offset; with no
    # textual order inside the expansion the checker must stay silent
    # rather than guess (strict `use.offset > move.offset`).
    body = compound(100, 500,
                    var("0xv", "v", VEC, 150, 15),
                    move_of(uref("0xv", "v", VEC, 200, 20), 200, 20),
                    uref("0xv", "v", VEC, 200, 20))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept == [], kept


def test_lifetime_subobject_paths_disjoint():
    # Moving `s.heap` does not poison `s.calls`; moving `s` poisons both.
    sref = lambda off, line: uref("0xs", "s", "treesim::Sweep", off, line)  # noqa: E731
    body = compound(100, 500,
                    var("0xs", "s", "treesim::Sweep", 150, 15),
                    move_of(member_path(sref(206, 20), "heap"), 200, 20),
                    member_call("top", member_path(sref(302, 30), "calls"),
                                300, 30))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept == [], kept

    body2 = compound(100, 500,
                     var("0xs", "s", "treesim::Sweep", 150, 15),
                     move_of(sref(206, 20), 200, 20),
                     member_call("top", member_path(sref(302, 30), "heap"),
                                 300, 30))
    kept2, _, _ = run_lifetime(extract(func("0xf", "f", 10, body2)))
    assert kept_checks(kept2) == {("treesim::f", "use-after-move")}, kept2


def test_lifetime_member_call_on_move_result_not_a_use():
    # `std::move(tmp).value()`: the receiver is the move's result, not the
    # moved-from variable (the TREESIM_ASSIGN_OR_RETURN idiom).
    body = compound(100, 500,
                    var("0xt", "tmp", "treesim::StatusOr<int>", 150, 15),
                    member_call("value",
                                move_of(uref("0xt", "tmp",
                                             "treesim::StatusOr<int>",
                                             205, 20), 200, 20),
                                200, 20))
    db = extract(func("0xf", "f", 10, body))
    f = fn(db, "treesim::f")
    kinds = [(e.kind, e.path) for e in f.var_events]
    assert kinds == [("move", "tmp")], kinds
    kept, _, _ = run_lifetime(db)
    assert kept == [], kept


def test_lifetime_branch_divergence_clean():
    # Move in the then-arm, use in the else-arm: never the same execution.
    body = compound(100, 500,
                    var("0xv", "v", VEC, 150, 15),
                    if_else(uref("0xc", "c", "bool", 195, 19),
                            compound(200, 250,
                                     move_of(uref("0xv", "v", VEC, 215, 21),
                                             210, 21)),
                            compound(260, 320,
                                     uref("0xv", "v", VEC, 280, 28)),
                            190, 320, 19))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept == [], kept


def test_lifetime_loop_carried_move_flagged():
    # Declared outside the loop, moved inside it, never reinitialized:
    # the next iteration moves a moved-from value.
    body = compound(100, 500,
                    var("0xv", "v", VEC, 150, 15),
                    loop(200, 400, 20,
                         move_of(uref("0xv", "v", VEC, 305, 30), 300, 30)))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert len(kept) == 1 and kept[0].check == "use-after-move", kept
    assert "loop" in kept[0].message and kept[0].line == 30, kept[0]


def test_lifetime_loop_local_and_loop_reinit_clean():
    # Declared inside the loop: fresh object each pass.
    body = compound(100, 500,
                    loop(200, 400, 20,
                         var("0xv", "v", VEC, 250, 25),
                         move_of(uref("0xv", "v", VEC, 305, 30), 300, 30)))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept == [], kept
    # Declared outside but cleared before the loop ends: recycled.
    body2 = compound(100, 500,
                     var("0xv", "v", VEC, 150, 15),
                     loop(200, 400, 20,
                          move_of(uref("0xv", "v", VEC, 305, 30), 300, 30),
                          member_call("clear",
                                      uref("0xv", "v", VEC, 352, 35),
                                      350, 35)))
    kept2, _, _ = run_lifetime(extract(func("0xf", "f", 10, body2)))
    assert kept2 == [], kept2


def test_lifetime_return_move_exempt():
    # Nothing reachable after `return std::move(v)` can read v.
    body = compound(100, 500,
                    var("0xv", "v", VEC, 150, 15),
                    loop(200, 400, 20,
                         d("ReturnStmt",
                           range={"begin": {"offset": 300, "line": 30},
                                  "end": {"offset": 330}},
                           inner=[move_of(uref("0xv", "v", VEC, 310, 30),
                                          305, 30)])),
                    uref("0xv", "v", VEC, 450, 45))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept == [], kept


# ---------------------------------------------------------------------------
# Lifetime family: escaping captures
# ---------------------------------------------------------------------------


def test_lifetime_escape_assigned_function_flagged():
    # `std::function<void()> g; int x; g = [&x]{...};` — x dies first.
    body = compound(100, 600,
                    var("0xg", "g", "std::function<void ()>", 150, 15),
                    var("0xx", "x", "int", 180, 18),
                    assign(uref("0xg", "g", "std::function<void ()>",
                                205, 20),
                           lam(220, 280, 22, [("0xx", "x", "int", True)],
                               [], []),
                           200, 20))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept_checks(kept) == {("treesim::f", "escaping-capture")}, kept
    assert "`x`" in kept[0].message and "stored into `g`" in kept[0].message


def test_lifetime_escape_storage_dies_first_clean():
    # `int x; std::function<void()> f = [&x]{...};` — the function object
    # dies before (or with) the capture; so does the recursive
    # `std::function<...> copy = [&copy](...)` self-capture (equal offsets).
    body = compound(100, 600,
                    var("0xx", "x", "int", 150, 15),
                    var("0xg", "g", "std::function<void ()>", 180, 18,
                        lam(200, 260, 20, [("0xx", "x", "int", True)],
                            [], [])),
                    var("0xc", "copy", "std::function<void (int)>", 300, 30,
                        lam(320, 380, 32,
                            [("0xc", "copy", "std::function<void (int)>",
                              True)], [], [])))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept == [], kept


def test_lifetime_escape_returned_lambda_flagged_value_capture_clean():
    def body_with(by_ref: bool):
        return compound(100, 600,
                        var("0xx", "x", "int", 150, 15),
                        d("ReturnStmt",
                          range={"begin": {"offset": 200, "line": 20},
                                 "end": {"offset": 290}},
                          inner=[lam(210, 280, 21,
                                     [("0xx", "x", "int", by_ref)],
                                     [], [])]))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10,
                                           body_with(True))))
    assert kept_checks(kept) == {("treesim::f", "escaping-capture")}, kept
    assert "is returned" in kept[0].message
    kept2, _, _ = run_lifetime(extract(func("0xf", "f", 10,
                                            body_with(False))))
    assert kept2 == [], kept2


def test_lifetime_escape_submit_deferred_parallel_for_not():
    pool = lambda off, line: uref("0xp", "pool", "treesim::ThreadPool",  # noqa: E731
                                  off, line)
    def body_with(method: str):
        return compound(100, 600,
                        var("0xx", "x", "int", 150, 15),
                        member_call(method, pool(205, 20), 200, 20,
                                    lam(220, 280, 22,
                                        [("0xx", "x", "int", True)],
                                        [], [])))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10,
                                           body_with("Schedule"))))
    assert kept_checks(kept) == {("treesim::f", "escaping-capture")}, kept
    assert "ThreadPool::Schedule" in kept[0].message
    # ParallelFor joins before returning: same shape, no finding.
    kept2, _, _ = run_lifetime(extract(func("0xf", "f", 10,
                                            body_with("ParallelFor"))))
    assert kept2 == [], kept2


def test_lifetime_escape_this_capture_clean():
    # [this] stored into a member: lifetime is object-managed.
    callop = d("CXXMethodDecl", name="operator()",
               type={"qualType": "void () const"})
    closure = d("CXXRecordDecl", tagUsed="class", inner=[
        d("FieldDecl", name="", type={"qualType": "treesim::Widget *"}),
        callop])
    this_lam = d("LambdaExpr", loc={"offset": 220, "line": 22},
                 range={"begin": {"offset": 220}, "end": {"offset": 280}},
                 inner=[closure, d("CXXThisExpr",
                                   type={"qualType": "treesim::Widget *"}),
                        compound(230, 279)])
    body = compound(100, 600,
                    assign(member_path(d("CXXThisExpr"), "cb_"), this_lam,
                           200, 20))
    method = d("CXXMethodDecl", id="0xm", name="Arm",
               loc={"file": SRC, "offset": 90, "line": 9},
               range={"begin": {"offset": 90}, "end": {"offset": 600}},
               inner=[body])
    db = extract(d("CXXRecordDecl", name="Widget", inner=[method]))
    f = db.functions["treesim::Widget::Arm"]
    assert f.escapes and f.escapes[0].storage_is_member, f.escapes
    kept, _, _ = run_lifetime(db)
    assert kept == [], kept


# ---------------------------------------------------------------------------
# Lifetime family: invalidated references
# ---------------------------------------------------------------------------


def test_lifetime_refbind_growth_use_flagged():
    vec = lambda off, line: uref("0xv", "out", VEC, off, line)  # noqa: E731
    body = compound(100, 600,
                    var("0xr", "r", "int &", 150, 15,
                        member_call("back", vec(155, 15), 152, 15)),
                    member_call("push_back", vec(205, 20), 200, 20),
                    uref("0xr", "r", "int &", 300, 30))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept_checks(kept) == {("treesim::f", "invalidated-reference")}, \
        kept
    assert "`out`" in kept[0].message and kept[0].line == 30, kept[0]


def test_lifetime_refbind_reserve_dominated_clean():
    vec = lambda off, line: uref("0xv", "out", VEC, off, line)  # noqa: E731
    body = compound(100, 600,
                    member_call("reserve", vec(125, 12), 120, 12),
                    var("0xr", "r", "int &", 150, 15,
                        member_call("back", vec(155, 15), 152, 15)),
                    member_call("push_back", vec(205, 20), 200, 20),
                    uref("0xr", "r", "int &", 300, 30))
    kept, _, _ = run_lifetime(extract(func("0xf", "f", 10, body)))
    assert kept == [], kept


def test_lifetime_refbind_value_copy_and_use_before_growth_clean():
    vec = lambda off, line: uref("0xv", "out", VEC, off, line)  # noqa: E731
    # A value copy of the element aliases nothing.
    body = compound(100, 600,
                    var("0xc", "c", "int", 150, 15,
                        member_call("back", vec(155, 15), 152, 15)),
                    member_call("push_back", vec(205, 20), 200, 20),
                    uref("0xc", "c", "int", 300, 30))
    db = extract(func("0xf", "f", 10, body))
    assert fn(db, "treesim::f").ref_binds == [], fn(db,
                                                    "treesim::f").ref_binds
    kept, _, _ = run_lifetime(db)
    assert kept == [], kept
    # A use that precedes the growth is fine (pointer variant via data()).
    body2 = compound(100, 600,
                     var("0xp", "p", "int *", 150, 15,
                         member_call("data", vec(155, 15), 152, 15)),
                     uref("0xp", "p", "int *", 180, 18),
                     member_call("push_back", vec(205, 20), 200, 20))
    kept2, _, _ = run_lifetime(extract(func("0xf", "f", 10, body2)))
    assert kept2 == [], kept2


def test_lifetime_out_of_scope_files_skipped():
    body = compound(100, 500,
                    var("0xv", "v", VEC, 150, 15),
                    move_of(uref("0xv", "v", VEC, 205, 20), 200, 20),
                    uref("0xv", "v", VEC, 300, 30))
    db = extract(func("0xf", "f", 10, body,
                      file="/repo/tests/helper_test.cc"))
    kept, _, _ = run_lifetime(db)
    assert kept == [], kept


def test_lifetime_facts_roundtrip_and_richness():
    body = compound(100, 600,
                    var("0xv", "v", VEC, 150, 15),
                    move_of(uref("0xv", "v", VEC, 205, 20), 200, 20),
                    uref("0xv", "v", VEC, 300, 30))
    db = extract(func("0xf", "f", 10, body))
    f = fn(db, "treesim::f")
    assert f.var_events, "expected lifetime events"
    back = facts.FunctionFact.from_json(
        json.loads(json.dumps(f.to_json())))
    assert [e.to_json() for e in back.var_events] == \
        [e.to_json() for e in f.var_events]
    assert facts.FactDB._richness(back) == facts.FactDB._richness(f)
    assert db.to_json()["schema_version"] == facts.SCHEMA_VERSION == 3


def test_cache_schema_v2_entry_evicted_and_reextracted():
    # Regression guard for the SCHEMA_VERSION 2 -> 3 bump: a leftover v2
    # entry is ignored by get() (forcing re-extraction) and reaped by
    # evict_stale(), which is what `--stats` reports.
    with tempfile.TemporaryDirectory() as tmp:
        cache = clang_driver.FactCache(os.path.join(tmp, "cache"))
        tu_facts = facts.extract_tu(
            tu(func("0xf", "f", 10, compound(100, 500))), SRC, REPO)
        live_src = os.path.join(tmp, "live.cc")
        with open(live_src, "w") as fh:
            fh.write("int x;\n")
        key = clang_driver.tu_cache_key("c", ["a"], [("a", "1")])
        cache.put(key, tu_facts, source=live_src)
        doc = json.load(open(cache._path(key)))
        assert doc["schema"] == facts.SCHEMA_VERSION
        # Rewrite the entry as the previous schema version.
        doc["schema"] = 2
        with open(cache._path(key), "w") as fh:
            json.dump(doc, fh)
        assert cache.get(key) is None  # stale: caller re-extracts
        evicted, kept = cache.evict_stale()
        assert (evicted, kept) == (1, 0), (evicted, kept)
        # A fresh put is served again.
        cache.put(key, tu_facts, source=live_src)
        assert cache.get(key) is not None


TESTS = [v for k, v in sorted(globals().items()) if k.startswith("test_")]


def main() -> int:
    failures = 0
    for t in TESTS:
        try:
            t()
            print(f"ok   {t.__name__}")
        except Exception:  # noqa: BLE001 - report and continue
            failures += 1
            print(f"FAIL {t.__name__}")
            traceback.print_exc()
    print(f"astcheck unit tests: {len(TESTS) - failures}/{len(TESTS)} "
          "passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
