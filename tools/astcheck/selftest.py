"""Fixture-corpus selftest: proves each known-bad TU is caught.

Synthesizes a compile database over ``tests/astcheck_fixture/``, runs the
full pipeline (clang -> extraction -> cache -> all three check families ->
suppressions) twice, and asserts:

  * every known-bad TU produces exactly the expected check(s), attributed
    to that TU — one-to-one, no extras;
  * every known-good TU produces zero findings;
  * the deliberately-suppressed TUs' findings land in the suppressed
    bucket and their allowlist entries are consumed (no unused warning);
  * both TREESIM_LOCK_RANK annotations in the corpus are picked up;
  * the macro-expansion TUs' findings (perf and lifetime) point at the
    expansion line in the TU, not at the macro's defining header;
  * a planted pre-SCHEMA_VERSION cache entry is rejected and reaped by
    evict_stale() without disturbing the current entries;
  * the second run is served entirely from the fact cache and finishes
    well under the 15s warm-rerun budget.

Exit codes match the main driver: 0 pass, 1 fail, 77 no clang.
"""

from __future__ import annotations

import glob
import json
import os
import sys
import tempfile
import time

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from astcheck import checks, clang_driver  # noqa: E402

# Expected *kept* findings per fixture TU (check names; empty = clean).
EXPECTED_KEPT: dict[str, set[str]] = {
    "bad_ab_ba.cc": {"lock-order"},
    "bad_transitive_cycle.cc": {"lock-order"},
    "bad_capture_race.cc": {"capture-race"},
    "bad_submit_under_lock.cc": {"blocking-under-lock"},
    "bad_io_under_lock.cc": {"blocking-under-lock"},
    "bad_sleep_under_lock.cc": {"blocking-under-lock"},
    "bad_suppressed_io.cc": set(),  # fires, but allowlisted
    "good_ranked_order.cc": set(),
    "good_guarded_capture.cc": set(),
    "good_io_outside_lock.cc": set(),
    # Perf family.
    "bad_alloc_in_hot_loop.cc": {"alloc-in-hot-loop"},
    "bad_growth_no_reserve.cc": {"alloc-in-hot-loop"},
    "bad_heavy_copy_param.cc": {"heavy-copy"},
    "bad_indirect_inner_loop.cc": {"indirect-call-in-inner-loop"},
    "bad_hot_throw.cc": {"hot-throw"},
    "bad_hot_annotated.cc": {"alloc-in-hot-loop"},
    "bad_parallel_lambda.cc": {"alloc-in-hot-loop"},
    "bad_macro_expansion.cc": {"alloc-in-hot-loop"},
    "bad_suppressed_perf.cc": set(),  # fires, but allowlisted
    "good_growth_reserved.cc": set(),
    "good_heavy_sink_moved.cc": set(),
    "good_cold_marked.cc": set(),
    # Lifetime family.
    "bad_use_after_move.cc": {"use-after-move"},
    "bad_reinit_missed.cc": {"use-after-move"},
    "bad_macro_lifetime.cc": {"use-after-move"},
    "bad_escaping_function_store.cc": {"escaping-capture"},
    "bad_submit_escape.cc": {"escaping-capture"},
    "bad_invalidated_reference.cc": {"invalidated-reference"},
    "good_reinit.cc": set(),
    "good_reserve_dominated_ref.cc": set(),
    "good_value_capture.cc": set(),
}

EXPECTED_SUPPRESSED: dict[str, set[str]] = {
    "bad_suppressed_io.cc": {"blocking-under-lock"},
    "bad_suppressed_perf.cc": {"alloc-in-hot-loop"},
}

# The macro-expansion fixtures anchor their expected finding lines on
# these markers (the expansion sites in each TU, never the defining
# header): (tu, anchor text, check expected on that line).
MACRO_ANCHORS = [
    ("bad_macro_expansion.cc", "FIX_APPEND(ids, i);", "alloc-in-hot-loop"),
    ("bad_macro_lifetime.cc", "FIX_HANDOFF(b_slot, staged);",
     "use-after-move"),
]

WARM_RERUN_BUDGET_S = 15.0


def _compile_db_for(fixture_dir: str, sources: list[str],
                    out_path: str) -> None:
    entries = [{
        "directory": fixture_dir,
        "command": f"c++ -I{fixture_dir} -std=c++17 -c {src}",
        "file": src,
    } for src in sources]
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(entries, fh, indent=1)


def main(args) -> int:
    clang = clang_driver.find_clang(getattr(args, "clang", None))
    if clang is None:
        print("astcheck_selftest: SKIP: no clang >= "
              f"{clang_driver.MIN_CLANG_MAJOR} found on PATH")
        return 77

    repo_root = os.path.abspath(
        getattr(args, "repo_root", None) or os.path.dirname(_TOOLS_DIR))
    fixture_dir = os.path.join(repo_root, "tests", "astcheck_fixture")
    sources = sorted(glob.glob(os.path.join(fixture_dir, "*.cc")))
    missing = set(EXPECTED_KEPT) - {os.path.basename(s) for s in sources}
    if missing:
        print(f"astcheck_selftest: fixture TUs missing: {sorted(missing)}")
        return 1

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="astcheck_selftest_") as tmp:
        db_path = os.path.join(tmp, "compile_commands.json")
        _compile_db_for(fixture_dir, sources, db_path)
        cache_dir = os.path.join(tmp, "cache")
        jobs = getattr(args, "jobs", None) or min(4, os.cpu_count() or 1)

        db, stats = clang_driver.analyze_all(
            db_path, fixture_dir, clang, cache_dir, jobs)
        if stats["errors"]:
            for err in stats["errors"]:
                print(f"astcheck_selftest: clang error: {err}")
            return 1
        print(f"astcheck_selftest: cold run: {stats['tus']} TUs in "
              f"{stats['seconds']}s ({stats['clang']})")

        # Plant a pre-SCHEMA_VERSION entry between the runs: the schema
        # bump must reject and reap it while every current entry keeps
        # serving warm hits.
        cache = clang_driver.FactCache(cache_dir)
        stale_key = "0" * 64
        with open(cache._path(stale_key), "w", encoding="utf-8") as fh:
            json.dump({"schema": clang_driver.SCHEMA_VERSION - 1,
                       "key": stale_key, "source": db_path, "facts": {}},
                      fh)
        if cache.get(stale_key) is not None:
            failures.append("pre-schema cache entry was not rejected")
        evicted, kept_entries = cache.evict_stale()
        if evicted != 1 or kept_entries != stats["tus"]:
            failures.append(
                f"schema eviction: expected (1, {stats['tus']}) "
                f"(evicted, kept), got ({evicted}, {kept_entries})")

        t0 = time.monotonic()
        db, stats2 = clang_driver.analyze_all(
            db_path, fixture_dir, clang, cache_dir, jobs)
        warm = time.monotonic() - t0
        if stats2["analyzed"] != 0 or stats2["cache_hits"] != stats2["tus"]:
            failures.append(
                f"warm rerun not fully cached: {stats2['cache_hits']}/"
                f"{stats2['tus']} hits, {stats2['analyzed']} re-analyzed")
        if warm >= WARM_RERUN_BUDGET_S:
            failures.append(f"warm rerun took {warm:.1f}s "
                            f"(budget {WARM_RERUN_BUDGET_S}s)")
        print(f"astcheck_selftest: warm run: {warm:.2f}s, "
              f"{stats2['cache_hits']} cache hits")

        sups = checks.load_suppressions(
            os.path.join(fixture_dir, "fixture_suppressions.toml"))
        ranks = checks.load_lock_ranks(db, fixture_dir)
        kept, suppressed, warnings = checks.run_all(
            db, ranks, sups, families=("concurrency", "perf", "lifetime"),
            repo_root=fixture_dir)

        if len(ranks) != 2:
            failures.append(f"expected 2 ranked locks in the corpus, "
                            f"got {ranks}")
        for w in warnings:
            failures.append(f"unexpected suppression warning: {w}")

        def by_file(findings):
            out: dict[str, set[str]] = {}
            for f in findings:
                out.setdefault(os.path.basename(f.file), set()).add(f.check)
            return out

        got_kept = by_file(kept)
        got_sup = by_file(suppressed)
        for src in sources:
            base = os.path.basename(src)
            want = EXPECTED_KEPT.get(base, set())
            got = got_kept.get(base, set())
            status = "ok" if got == want else "MISMATCH"
            print(f"  {status:8s} {base:28s} expected={sorted(want)} "
                  f"got={sorted(got)}")
            if got != want:
                failures.append(
                    f"{base}: expected kept findings {sorted(want)}, "
                    f"got {sorted(got)}")
            want_sup = EXPECTED_SUPPRESSED.get(base, set())
            if got_sup.get(base, set()) != want_sup:
                failures.append(
                    f"{base}: expected suppressed {sorted(want_sup)}, "
                    f"got {sorted(got_sup.get(base, set()))}")
        stray = set(got_kept) - {os.path.basename(s) for s in sources}
        if stray:
            failures.append(f"findings attributed outside the corpus: "
                            f"{sorted(stray)}")

        # Macro-expansion attribution: each finding must carry the line of
        # the expansion in its TU, not a line in the header that defines
        # the macro.
        for macro_tu, anchor, check in MACRO_ANCHORS:
            macro_src = os.path.join(fixture_dir, macro_tu)
            with open(macro_src, "r", encoding="utf-8") as fh:
                macro_lines = fh.read().splitlines()
            want_line = next((i + 1 for i, text in enumerate(macro_lines)
                              if anchor in text), None)
            if want_line is None:
                failures.append(f"{macro_tu}: anchor {anchor!r} missing")
                continue
            got_lines = {f.line for f in kept
                         if os.path.basename(f.file) == macro_tu
                         and f.check == check}
            if got_lines != {want_line}:
                failures.append(
                    f"{macro_tu}: expected the {check} finding on "
                    f"expansion line {want_line}, got lines "
                    f"{sorted(got_lines)}")

    if failures:
        for msg in failures:
            print(f"astcheck_selftest: FAIL: {msg}")
        for f in kept:
            print(f"  kept: {f.render()}")
        return 1
    print(f"astcheck_selftest: PASS ({len(sources)} fixture TUs, "
          f"{len(kept)} kept / {len(suppressed)} suppressed findings)")
    return 0


if __name__ == "__main__":
    import argparse
    sys.exit(main(argparse.Namespace()))
