#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Checks, over ``src/`` (and headers under ``fuzz/`` if any appear):

  guard       Include guards must be ``TREESIM_<PATH>_H_`` derived from the
              path relative to src/ (e.g. src/util/status.h ->
              TREESIM_UTIL_STATUS_H_), with a matching #define directly
              after the #ifndef and a trailing ``#endif  // <GUARD>``.
  using       No ``using namespace`` at any scope inside a header.
  assert      No bare ``assert()`` / ``<cassert>`` in library code — use
              TREESIM_CHECK (always on) or TREESIM_DCHECK (debug only),
              which print the failing expression and abort cleanly under
              the fuzzers.
  nodiscard   ``Status`` and ``StatusOr`` must stay ``[[nodiscard]]`` so
              the compiler enforces consumption of every result.
  discarded   Heuristic backstop for the same rule: a statement consisting
              solely of a call to a Status/StatusOr-returning function
              (collected from the headers) discards its result.
  rawsync     No raw standard-library concurrency primitives
              (``std::mutex``, ``std::thread``, ``std::lock_guard``, ...)
              outside ``src/util/`` — use treesim::Mutex / MutexLock /
              CondVar / ThreadPool from util/sync.h and util/thread_pool.h,
              which carry the Clang thread-safety annotations; a raw
              primitive is invisible to the analysis. This rule also scans
              ``tools/`` and ``bench/``.
  chrono      No ``std::chrono`` / ``<chrono>`` outside ``src/util/`` and
              ``bench/`` — ad-hoc timing bypasses the observability layer.
              Time stages with util/stopwatch.h and record the result into
              a util/metrics.h histogram (or wrap the stage in a
              TREESIM_TRACE_SPAN), so every measurement lands in the
              registry and compiles out under TREESIM_METRICS=OFF. This
              rule also scans ``tools/``.
  rawlog      No raw stdio/iostream output (``printf``, ``fprintf``,
              ``puts``, ``std::cout``, ``std::cerr``) inside
              ``src/search/`` — query engines report through QueryStats,
              the metrics registry, and the structured query log
              (util/structured_log.h), never by printing. Printing belongs
              to the binaries: ``bench/`` and ``tools/`` are exempt, as is
              the rest of ``src/`` (util/logging.h itself, parser error
              paths, ...).
  hotalloc    No ``new``, ``make_unique``, or ``std::function`` in the
              headers under ``src/core/`` and ``src/ted/`` — these are the
              innermost kernels of the distance computation, inlined into
              every probe, and an allocation or type-erased call there is
              paid once per candidate pair. This is the cheap textual
              backstop for tools/astcheck's AST-grade perf pass
              (``--checks=perf``), which sees through wrappers but needs a
              clang toolchain; the lint fires everywhere, instantly.
  badmove     No ``std::move`` on a const-qualified or trivially-copyable
              scalar variable in ``src/``. Moving a const object silently
              degrades to a copy (the move constructor cannot bind), and
              moving an int/bool/double is noise that suggests a transfer
              which never happens. Declarations are collected per file
              with a textual heuristic, so only ``std::move(name)`` of a
              name declared const or scalar in the same file fires —
              tools/astcheck's lifetime pass (``--checks=lifetime``) is
              the AST-grade companion that tracks what happens after the
              move.
  sigsafe     ``src/util/triage.cc`` (the crash-time dump writer, which
              runs inside fatal signal handlers) must stay async-signal-
              safe: no heap (``malloc``/``free``/``new``/``make_unique``),
              no stdio (``fprintf``/``snprintf``/...), no allocating C++
              types (``std::string``/``std::vector``/streams), and no
              locks (``MutexLock``/``.Lock()``). The handler may only
              format into fixed buffers and call the small POSIX
              async-signal-safe set (write/open/close/clock_gettime/...).
  rawwait     No busy-waits or leaked threads in ``src/``:
              ``std::this_thread::sleep_for`` / ``sleep_until``,
              ``sleep()`` / ``usleep()`` / ``nanosleep()``, and
              ``std::thread::detach`` are all banned. Waiting is
              CondVar::Wait's job (it releases the mutex and wakes
              precisely); a sleep either races or wastes latency, and a
              detached thread outlives shutdown — both are exactly the
              bugs the upcoming serverd work cannot afford.

Exit status 0 when clean, 1 when any finding is reported. Run from
anywhere: paths are resolved relative to the repo root.
``--self-test`` runs the rules against synthetic known-bad/known-good
files in a temp tree and exits 0 only if every expected finding (and no
unexpected one) fires.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

# Calls through these wrappers consume the Status they are handed.
CONSUMING_PREFIXES = (
    "return",
    "TREESIM_CHECK_OK",
    "TREESIM_DCHECK_OK",
    "TREESIM_ASSIGN_OR_RETURN",
    "TREESIM_RETURN_IF_ERROR",
)

# Standard-library concurrency primitives that bypass the annotated wrappers
# in util/sync.h / util/thread_pool.h (std::atomic is deliberately absent:
# lock-free counters need no capability tracking).
RAW_SYNC_PRIMITIVES = (
    "mutex",
    "timed_mutex",
    "recursive_mutex",
    "recursive_timed_mutex",
    "shared_mutex",
    "shared_timed_mutex",
    "thread",
    "jthread",
    "lock_guard",
    "unique_lock",
    "scoped_lock",
    "shared_lock",
    "condition_variable",
    "condition_variable_any",
)


def strip_comments_and_strings(line: str) -> str:
    """Blanks out // comments, string and char literals (single line only)."""
    out = []
    i = 0
    in_string = None
    while i < len(line):
        c = line[i]
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
            i += 1
            continue
        if c in ('"', "'"):
            in_string = c
            out.append(c)
            i += 1
            continue
        if c == "/" and line[i : i + 2] == "//":
            break
        out.append(c)
        i += 1
    return "".join(out)


class Linter:
    def __init__(self) -> None:
        self.findings: list[str] = []

    def report(self, path: pathlib.Path, line_no: int, rule: str,
               message: str) -> None:
        rel = path.relative_to(REPO_ROOT)
        self.findings.append(f"{rel}:{line_no}: [{rule}] {message}")

    # ---- guard ----------------------------------------------------------

    def check_include_guard(self, path: pathlib.Path, lines: list[str]) -> None:
        rel = path.relative_to(SRC_ROOT).as_posix()
        guard = "TREESIM_" + re.sub(r"[^A-Za-z0-9]", "_", rel).upper() + "_"
        directives = [
            (i + 1, line.strip())
            for i, line in enumerate(lines)
            if line.lstrip().startswith("#")
        ]
        if len(directives) < 2:
            self.report(path, 1, "guard", f"missing include guard {guard}")
            return
        (ifndef_no, ifndef), (_, define) = directives[0], directives[1]
        if ifndef != f"#ifndef {guard}":
            self.report(path, ifndef_no, "guard",
                        f"first directive must be '#ifndef {guard}', "
                        f"got '{ifndef}'")
            return
        if define != f"#define {guard}":
            self.report(path, ifndef_no + 1, "guard",
                        f"'#ifndef {guard}' must be followed by "
                        f"'#define {guard}'")
        tail = [(i + 1, line.strip()) for i, line in enumerate(lines)
                if line.strip()]
        last_no, last = tail[-1]
        if last != f"#endif  // {guard}":
            self.report(path, last_no, "guard",
                        f"file must end with '#endif  // {guard}'")

    # ---- using / assert -------------------------------------------------

    def check_header_using(self, path: pathlib.Path,
                           lines: list[str]) -> None:
        for i, raw in enumerate(lines, start=1):
            line = strip_comments_and_strings(raw)
            if re.search(r"\busing\s+namespace\b", line):
                self.report(path, i, "using",
                            "'using namespace' is not allowed in headers")

    def check_assert(self, path: pathlib.Path, lines: list[str]) -> None:
        for i, raw in enumerate(lines, start=1):
            line = strip_comments_and_strings(raw)
            if re.search(r"#\s*include\s*<(cassert|assert\.h)>", line):
                self.report(path, i, "assert",
                            "<cassert> is banned in src/; use util/logging.h "
                            "TREESIM_CHECK / TREESIM_DCHECK")
            if re.search(r"(?<![\w.])assert\s*\(", line):
                self.report(path, i, "assert",
                            "bare assert(); use TREESIM_CHECK (always on) or "
                            "TREESIM_DCHECK (debug only)")
            if re.search(r"\bstatic_assert\s*\(", raw):
                # static_assert is fine; the negative lookbehind above already
                # excludes it, this branch documents that explicitly.
                pass

    # ---- rawsync --------------------------------------------------------

    RAW_SYNC_RE = re.compile(
        r"\bstd\s*::\s*(" + "|".join(RAW_SYNC_PRIMITIVES) + r")\b")

    def check_raw_sync(self, path: pathlib.Path, lines: list[str]) -> None:
        if path.is_relative_to(SRC_ROOT / "util"):
            return  # the annotated wrappers themselves live here
        for i, raw in enumerate(lines, start=1):
            line = strip_comments_and_strings(raw)
            m = self.RAW_SYNC_RE.search(line)
            if m:
                self.report(path, i, "rawsync",
                            f"raw std::{m.group(1)} outside src/util/; use "
                            "treesim::Mutex/MutexLock/CondVar (util/sync.h) "
                            "or ThreadPool (util/thread_pool.h) so the Clang "
                            "thread-safety analysis sees the lock")

    # ---- chrono ---------------------------------------------------------

    CHRONO_RE = re.compile(r"\bstd\s*::\s*chrono\b|#\s*include\s*<chrono>")

    def check_chrono(self, path: pathlib.Path, lines: list[str]) -> None:
        if path.is_relative_to(SRC_ROOT / "util"):
            return  # Stopwatch and the tracer clock live here
        if path.is_relative_to(REPO_ROOT / "bench"):
            return  # wall-clock harness timing is the benches' job
        for i, raw in enumerate(lines, start=1):
            line = strip_comments_and_strings(raw)
            if self.CHRONO_RE.search(line):
                self.report(path, i, "chrono",
                            "std::chrono outside src/util/ and bench/; time "
                            "with util/stopwatch.h and record into a "
                            "util/metrics.h histogram or TREESIM_TRACE_SPAN "
                            "so the measurement compiles out with "
                            "TREESIM_METRICS=OFF")

    # ---- rawlog ---------------------------------------------------------

    RAW_LOG_RE = re.compile(
        r"\bstd\s*::\s*(?:printf|fprintf|puts|cout|cerr)\b"
        r"|(?<![\w:])(?:printf|fprintf|puts)\s*\(")

    def check_raw_log(self, path: pathlib.Path, lines: list[str]) -> None:
        if not path.is_relative_to(SRC_ROOT / "search"):
            return
        for i, raw in enumerate(lines, start=1):
            line = strip_comments_and_strings(raw)
            if self.RAW_LOG_RE.search(line):
                self.report(path, i, "rawlog",
                            "raw stdio/iostream output in src/search/; "
                            "report through QueryStats, util/metrics.h, or "
                            "the structured query log "
                            "(util/structured_log.h) — printing is the "
                            "binaries' job")

    # ---- rawwait --------------------------------------------------------

    RAW_WAIT_RE = re.compile(
        r"\bstd\s*::\s*this_thread\s*::\s*sleep_(?:for|until)\b"
        r"|(?<![\w:.])(?:sleep|usleep|nanosleep)\s*\("
        r"|(?:\.|->)\s*detach\s*\(")

    def check_raw_wait(self, path: pathlib.Path, lines: list[str]) -> None:
        if not path.is_relative_to(SRC_ROOT):
            return
        for i, raw in enumerate(lines, start=1):
            line = strip_comments_and_strings(raw)
            m = self.RAW_WAIT_RE.search(line)
            if m:
                self.report(path, i, "rawwait",
                            f"'{m.group(0).strip()}' in src/; sleeps "
                            "busy-wait and detached threads outlive "
                            "shutdown — block on treesim::CondVar::Wait "
                            "(util/sync.h) and join workers via ThreadPool "
                            "(util/thread_pool.h)")

    # ---- sigsafe --------------------------------------------------------

    # Non-async-signal-safe constructs: heap, stdio, allocating C++ types,
    # and lock acquisition. `(?<![\w.])` lets `std::fprintf` match (the
    # char before `fprintf` is ':') while skipping `my_fprintf`.
    SIGSAFE_RE = re.compile(
        r"(?<![\w.])(?:malloc|calloc|realloc|free|fopen|fclose|fprintf|"
        r"printf|snprintf|sprintf|vsnprintf|puts|fputs|fwrite|fflush)\s*\("
        r"|(?<![\w:.])new\s+[A-Za-z_(:]"
        r"|\bmake_(?:unique|shared)\s*<"
        r"|\bstd\s*::\s*(?:string|vector|cout|cerr|[io]?stringstream"
        r"|to_string)\b"
        r"|\bMutexLock\b"
        r"|(?:\.|->)\s*[Ll]ock\s*\(")

    def check_sigsafe(self, path: pathlib.Path, lines: list[str]) -> None:
        if path != SRC_ROOT / "util" / "triage.cc":
            return
        for i, raw in enumerate(lines, start=1):
            line = strip_comments_and_strings(raw)
            m = self.SIGSAFE_RE.search(line)
            if m:
                self.report(path, i, "sigsafe",
                            f"'{m.group(0).strip()}' in the crash-handler "
                            "TU; triage.cc runs inside fatal signal "
                            "handlers and may only use fixed buffers, "
                            "relaxed atomics, and the POSIX async-signal-"
                            "safe set (write/open/close/clock_gettime/"
                            "getpid/sigaction/raise)")

    # ---- badmove --------------------------------------------------------

    TRIVIAL_TYPES = frozenset({
        "bool", "char", "short", "int", "long", "unsigned", "float",
        "double", "size_t", "ptrdiff_t", "int8_t", "int16_t", "int32_t",
        "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    })
    # `[const] Type[<...>][&] name` followed by an initializer, separator,
    # or range-for colon — catches locals, by-value/const-ref params, and
    # range-for bindings. Names are scoped per file, so a name is only
    # classified const/trivial when EVERY declaration of it in the file
    # agrees (a non-const local shadowing a const ref elsewhere must not
    # fire).
    DECL_RE = re.compile(
        r"(?P<const>\bconst\s+)?"
        r"(?P<type>[A-Za-z_][\w:]*)(?:\s*<[^;(){]*>)?\s*&?\s+"
        r"(?P<name>\w+)\s*[=;,){:]")
    MOVE_RE = re.compile(r"\bstd\s*::\s*move\s*\(\s*([A-Za-z_]\w*)\s*\)")

    def check_bad_move(self, path: pathlib.Path, lines: list[str]) -> None:
        if not path.is_relative_to(SRC_ROOT):
            return
        stripped = [strip_comments_and_strings(raw) for raw in lines]
        classes: dict[str, set[str]] = {}
        for line in stripped:
            for m in self.DECL_RE.finditer(line):
                if m.group("const"):
                    cls = "const"
                elif m.group("type") in self.TRIVIAL_TYPES:
                    cls = "trivial"
                else:
                    cls = "other"
                classes.setdefault(m.group("name"), set()).add(cls)
        for i, line in enumerate(stripped, start=1):
            for m in self.MOVE_RE.finditer(line):
                name = m.group(1)
                if classes.get(name) == {"const"}:
                    self.report(path, i, "badmove",
                                f"std::move({name}) where `{name}` is "
                                "declared const in this file; a const "
                                "object cannot be moved from, so this "
                                "silently copies — drop the move or drop "
                                "the const")
                elif classes.get(name) == {"trivial"}:
                    self.report(path, i, "badmove",
                                f"std::move({name}) where `{name}` is a "
                                "trivially-copyable scalar in this file; "
                                "the move is a copy either way — drop the "
                                "std::move")

    # ---- hotalloc -------------------------------------------------------

    HOT_ALLOC_DIRS = ("core", "ted")
    HOT_ALLOC_RE = re.compile(
        r"(?<![\w:.])new\s+[A-Za-z_(:]"        # expression `new T`, not "renew"
        r"|\bmake_unique\s*<"
        r"|\bstd\s*::\s*function\b")

    def check_hot_alloc(self, path: pathlib.Path, lines: list[str]) -> None:
        if path.suffix != ".h" or not any(
                path.is_relative_to(SRC_ROOT / d)
                for d in self.HOT_ALLOC_DIRS):
            return
        for i, raw in enumerate(lines, start=1):
            line = strip_comments_and_strings(raw)
            m = self.HOT_ALLOC_RE.search(line)
            if m:
                self.report(path, i, "hotalloc",
                            f"'{m.group(0).strip()}' in an inner kernel "
                            "header (src/core/, src/ted/); these run once "
                            "per candidate pair — preallocate in the "
                            "caller, use direct calls, and keep heap "
                            "traffic out (astcheck --checks=perf is the "
                            "AST-grade version of this rule)")

    # ---- nodiscard ------------------------------------------------------

    def check_status_nodiscard(self) -> None:
        status_h = SRC_ROOT / "util" / "status.h"
        text = status_h.read_text(encoding="utf-8")
        for cls in ("Status", "StatusOr"):
            if not re.search(
                    rf"class\s+\[\[nodiscard\]\]\s+{cls}\b", text):
                self.report(status_h, 1, "nodiscard",
                            f"class {cls} must be declared "
                            f"'class [[nodiscard]] {cls}' so discarded "
                            "results are compiler errors")

    def collect_status_returning(self, header_lines: dict[pathlib.Path,
                                                          list[str]]
                                 ) -> set[str]:
        names: set[str] = set()
        decl = re.compile(
            r"^\s*(?:virtual\s+|static\s+)*"
            r"(?:Status|StatusOr<[^;=]*>)\s+"
            r"(\w+)\s*\(")
        for lines in header_lines.values():
            for raw in lines:
                m = decl.match(strip_comments_and_strings(raw))
                if m:
                    names.add(m.group(1))
        return names

    def check_discarded_status(self, path: pathlib.Path, lines: list[str],
                               names: set[str]) -> None:
        if not names:
            return
        call = re.compile(
            r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*"
            r"(" + "|".join(sorted(names)) + r")\s*\(.*\)\s*;\s*$")
        prev_significant = ""
        for i, raw in enumerate(lines, start=1):
            line = strip_comments_and_strings(raw)
            stripped = line.strip()
            if not stripped:
                continue
            # A call is only "discarded" when it starts its own statement;
            # continuation lines (e.g. the RHS of a wrapped assignment)
            # belong to whatever consumed them on the previous line.
            starts_statement = (prev_significant == ""
                                or prev_significant.endswith((";", "{", "}"))
                                or prev_significant.startswith("#"))
            prev_significant = stripped
            if not starts_statement:
                continue
            if any(stripped.startswith(p) for p in CONSUMING_PREFIXES):
                continue
            if "=" in line:
                continue
            m = call.match(line)
            if m:
                self.report(path, i, "discarded",
                            f"result of Status-returning '{m.group(1)}()' is "
                            "discarded; assign it, return it, or wrap in "
                            "TREESIM_CHECK_OK")

    # ---- driver ---------------------------------------------------------

    def run(self) -> int:
        headers: dict[pathlib.Path, list[str]] = {}
        sources: dict[pathlib.Path, list[str]] = {}
        roots = [SRC_ROOT]
        fuzz_root = REPO_ROOT / "fuzz"
        if fuzz_root.is_dir():
            roots.append(fuzz_root)
        for root in roots:
            for path in sorted(root.rglob("*")):
                if path.suffix == ".h":
                    headers[path] = path.read_text(
                        encoding="utf-8").splitlines()
                elif path.suffix == ".cc":
                    sources[path] = path.read_text(
                        encoding="utf-8").splitlines()

        for path, lines in headers.items():
            if path.is_relative_to(SRC_ROOT):
                self.check_include_guard(path, lines)
            self.check_header_using(path, lines)
            self.check_assert(path, lines)
            self.check_hot_alloc(path, lines)
        for path, lines in sources.items():
            self.check_assert(path, lines)
            self.check_sigsafe(path, lines)
        for path, lines in {**headers, **sources}.items():
            self.check_raw_log(path, lines)
            self.check_raw_wait(path, lines)
            self.check_bad_move(path, lines)

        self.check_status_nodiscard()
        names = self.collect_status_returning(headers)
        for path, lines in {**headers, **sources}.items():
            self.check_discarded_status(path, lines, names)

        # rawsync additionally covers tools/ and bench/ (the other rules
        # keep their src/ + fuzz/ scope).
        sync_files = dict(headers)
        sync_files.update(sources)
        for root_name in ("tools", "bench"):
            root = REPO_ROOT / root_name
            if not root.is_dir():
                continue
            for path in sorted(root.rglob("*")):
                if path.suffix in (".h", ".cc"):
                    sync_files[path] = path.read_text(
                        encoding="utf-8").splitlines()
        for path, lines in sync_files.items():
            self.check_raw_sync(path, lines)
            self.check_chrono(path, lines)

        if self.findings:
            for finding in self.findings:
                print(finding)
            print(f"lint_treesim.py: {len(self.findings)} finding(s)",
                  file=sys.stderr)
            return 1
        checked = len(headers) + len(sources)
        print(f"lint_treesim.py: clean ({checked} files)")
        return 0


def self_test() -> int:
    """Runs every rule against a synthetic tree of known-bad/known-good
    files and checks the findings one-to-one (by rule and count)."""
    import tempfile

    global REPO_ROOT, SRC_ROOT
    orig_roots = (REPO_ROOT, SRC_ROOT)

    files = {
        # Valid status.h so nodiscard/guard stay quiet on the scaffold.
        "src/util/status.h": (
            "#ifndef TREESIM_UTIL_STATUS_H_\n"
            "#define TREESIM_UTIL_STATUS_H_\n"
            "class [[nodiscard]] Status {};\n"
            "template <typename T> class [[nodiscard]] StatusOr {};\n"
            "#endif  // TREESIM_UTIL_STATUS_H_\n"),
        # rawwait: sleep_for, sleep(), usleep(), .detach() — plus one
        # rawsync for the std::thread parameter type.
        "src/bad_wait.cc": (
            "void Slow() {\n"
            "  std::this_thread::sleep_for(interval);\n"
            "  sleep(1);\n"
            "  usleep(100);\n"
            "}\n"
            "void Leak(std::thread& worker) {\n"
            "  worker.detach();\n"
            "}\n"),
        # Known-good: sanctioned wait; sleeps only in comments/strings.
        "src/good_wait.cc": (
            "void Wait() {\n"
            "  // usleep(100) would busy-wait here; CondVar blocks.\n"
            "  const char* msg = \"never call sleep( in src/\";\n"
            "  (void)msg;\n"
            "  cv.Wait(&mu);\n"
            "}\n"),
        "src/search/bad_log.cc": (
            "void Report() {\n"
            "  printf(\"done\\n\");\n"
            "}\n"),
        "src/bad_using.h": (
            "#ifndef TREESIM_BAD_USING_H_\n"
            "#define TREESIM_BAD_USING_H_\n"
            "using namespace std;\n"
            "#endif  // TREESIM_BAD_USING_H_\n"),
        # hotalloc: allocation and type erasure planted in an inner kernel
        # header — new-expression, make_unique, std::function.
        "src/core/bad_hot.h": (
            "#ifndef TREESIM_CORE_BAD_HOT_H_\n"
            "#define TREESIM_CORE_BAD_HOT_H_\n"
            "inline int* Make() { return new int(7); }\n"
            "inline auto MakeBox() { return std::make_unique<int>(7); }\n"
            "inline void Apply(const std::function<int(int)>& f);\n"
            "#endif  // TREESIM_CORE_BAD_HOT_H_\n"),
        # Known-good: the banned names only in comments, and the same
        # constructs are fine outside the kernel directories.
        "src/ted/good_hot.h": (
            "#ifndef TREESIM_TED_GOOD_HOT_H_\n"
            "#define TREESIM_TED_GOOD_HOT_H_\n"
            "// a new tree is built via make_unique in the caller\n"
            "inline int Renew(int x) { return x; }\n"
            "#endif  // TREESIM_TED_GOOD_HOT_H_\n"),
        "src/search/ok_hot.h": (
            "#ifndef TREESIM_SEARCH_OK_HOT_H_\n"
            "#define TREESIM_SEARCH_OK_HOT_H_\n"
            "inline int* MakeOutside() { return new int(7); }\n"
            "#endif  // TREESIM_SEARCH_OK_HOT_H_\n"),
        # badmove: a const object moved (silent copy) and a scalar moved
        # (pointless); the non-const vector move at the end must stay
        # clean, as must the commented-out move.
        # sigsafe: stdio, malloc, and a lock planted in the crash-handler
        # TU — the same names in comments and string literals must not
        # fire, and write() stays fine.
        "src/util/triage.cc": (
            "void WriteDump(int fd) {\n"
            "  // fprintf() or malloc() here would deadlock mid-crash.\n"
            "  const char* note = \"printf( is banned here\";\n"
            "  write(fd, note, 3);\n"
            "  std::fprintf(stderr, \"crash\\n\");\n"
            "  char* scratch = static_cast<char*>(malloc(64));\n"
            "  MutexLock hold(mu);\n"
            "}\n"),
        "src/bad_move.cc": (
            "void Publish(std::vector<int> rows) {\n"
            "  const std::string tag = MakeTag();\n"
            "  Sink(std::move(tag));\n"
            "  int count = 3;\n"
            "  Accept(std::move(count));\n"
            "  // Sink(std::move(tag)) again would copy too.\n"
            "  Sink(std::move(rows));\n"
            "}\n"),
    }
    expected = {"rawwait": 4, "rawsync": 1, "rawlog": 1, "using": 1,
                "hotalloc": 3, "badmove": 2, "sigsafe": 3}

    try:
        with tempfile.TemporaryDirectory(prefix="lint_selftest_") as tmp:
            root = pathlib.Path(tmp)
            REPO_ROOT = root
            SRC_ROOT = root / "src"
            for rel, content in files.items():
                path = root / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(content, encoding="utf-8")
            linter = Linter()
            code = linter.run()
    finally:
        REPO_ROOT, SRC_ROOT = orig_roots

    got: dict[str, int] = {}
    for finding in linter.findings:
        m = re.search(r"\[(\w+)\]", finding)
        if m:
            got[m.group(1)] = got.get(m.group(1), 0) + 1
    failures = []
    if code != 1:
        failures.append(f"expected exit 1 on the bad tree, got {code}")
    if got != expected:
        failures.append(f"expected findings {expected}, got {got}")
    if any("good_wait.cc" in f for f in linter.findings):
        failures.append("known-good file good_wait.cc produced findings")
    if failures:
        for msg in failures:
            print(f"lint_treesim.py --self-test: FAIL: {msg}")
        return 1
    print(f"lint_treesim.py --self-test: PASS "
          f"({sum(expected.values())} expected findings fired)")
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(self_test())
    sys.exit(Linter().run())
