#!/usr/bin/env python3
"""Regression gate: diff two suite-level bench JSON files.

Compares a candidate BENCH_treesim.json (written by tools/run_benchmarks.py)
against a baseline. Points are matched by (benchmark, label, x); within a
matched point, timing metrics must not grow and throughput metrics must not
shrink by more than the noise threshold. Exits 1 when any comparison
regresses, 2 on malformed input — so CI can use it directly as a gate.

Metric direction is inferred from the name:
  lower-is-better:   *_seconds, *_ns, *_micros, ns_per_op
  higher-is-better:  *_per_second, speedup
Everything else (percentages, counts, config echoes) is informational and
never gates; filter effectiveness is checked by the test suite, not by a
noisy wall-clock comparison.

Thresholds are per-metric-kind noise allowances, not precision targets:
bench machines in CI are noisy, so the defaults are generous (50% for
wall-clock, 30% for throughput) and tighten via flags for quiet hardware.
Tiny absolute values (under --min-seconds etc.) never gate — a 2ms stage
doubling to 4ms is scheduler noise, not a regression.

Self-check mode (`--self-check FILE`) compares a file against itself and
requires zero regressions and at least one gated comparison — a cheap
structural test that the gate can parse what run_benchmarks.py writes.

Usage:
    tools/bench_compare.py BASELINE CANDIDATE [--time-threshold 0.5]
                           [--throughput-threshold 0.3] [--min-seconds 0.05]
    tools/bench_compare.py --self-check FILE
"""

import argparse
import json
import sys

LOWER_IS_BETTER_SUFFIXES = ("_seconds", "_ns", "_micros", "ns_per_op")
HIGHER_IS_BETTER_SUFFIXES = ("_per_second", "speedup")

# Floors below which a metric never gates (absolute value in its own unit).
ABS_FLOORS = {
    "_seconds": 0.05,     # overridden by --min-seconds
    "_ns": 50.0,
    "_micros": 50_000.0,
    "ns_per_op": 0.5,
    "_per_second": 1.0,
    "speedup": 0.0,
}


def direction(metric):
    """Returns 'lower', 'higher', or None (not gated)."""
    for suffix in LOWER_IS_BETTER_SUFFIXES:
        if metric.endswith(suffix):
            return "lower"
    for suffix in HIGHER_IS_BETTER_SUFFIXES:
        if metric.endswith(suffix):
            return "higher"
    return None


def abs_floor(metric, min_seconds):
    for suffix, floor in ABS_FLOORS.items():
        if metric.endswith(suffix):
            return min_seconds if suffix == "_seconds" else floor
    return 0.0


def point_key(point):
    return (point.get("label", ""), point.get("x"))


def load_suite(path):
    with open(path, "r", encoding="utf-8") as f:
        suite = json.load(f)
    if suite.get("schema_version") != 1 or "benchmarks" not in suite:
        raise ValueError(f"{path}: not a schema-version-1 suite file")
    index = {}
    for report in suite["benchmarks"]:
        name = report["benchmark"]
        for point in report["points"]:
            index[(name,) + point_key(point)] = point
    return suite, index


def compare(base_index, cand_index, args):
    """Returns (regressions, improvements, gated_count, missing)."""
    regressions, improvements, missing = [], [], []
    gated = 0
    for key, base_point in sorted(base_index.items()):
        cand_point = cand_index.get(key)
        if cand_point is None:
            missing.append("/".join(str(k) for k in key))
            continue
        for metric, base_value in base_point.items():
            sense = direction(metric)
            if sense is None:
                continue
            cand_value = cand_point.get(metric)
            if not isinstance(base_value, (int, float)) or \
               not isinstance(cand_value, (int, float)):
                continue
            gated += 1
            # Below the absolute floor both values are in measurement
            # noise: the pair still counts as compared (so self-check can
            # see a live pipeline), but never classifies as a regression
            # or improvement.
            floor = abs_floor(metric, args.min_seconds)
            if max(abs(base_value), abs(cand_value)) <= floor:
                continue
            threshold = (args.time_threshold if sense == "lower"
                         else args.throughput_threshold)
            where = "/".join(str(k) for k in key) + ":" + metric
            if sense == "lower":
                if cand_value > base_value * (1.0 + threshold):
                    regressions.append(
                        f"{where}: {base_value:.6g} -> {cand_value:.6g} "
                        f"(+{100.0 * (cand_value / base_value - 1):.1f}%)")
                elif cand_value < base_value * (1.0 - threshold):
                    improvements.append(
                        f"{where}: {base_value:.6g} -> {cand_value:.6g}")
            else:
                if cand_value < base_value * (1.0 - threshold):
                    regressions.append(
                        f"{where}: {base_value:.6g} -> {cand_value:.6g} "
                        f"({100.0 * (cand_value / base_value - 1):.1f}%)")
                elif cand_value > base_value * (1.0 + threshold):
                    improvements.append(
                        f"{where}: {base_value:.6g} -> {cand_value:.6g}")
    return regressions, improvements, gated, missing


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("candidate", nargs="?")
    parser.add_argument("--self-check", metavar="FILE",
                        help="compare FILE against itself; require zero "
                             "regressions and >=1 gated metric")
    parser.add_argument("--time-threshold", type=float, default=0.5,
                        help="allowed relative growth of timing metrics "
                             "(default 0.5 = 50%%)")
    parser.add_argument("--throughput-threshold", type=float, default=0.3,
                        help="allowed relative shrink of throughput metrics "
                             "(default 0.3 = 30%%)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="*_seconds metrics below this never gate")
    args = parser.parse_args()

    if args.self_check:
        baseline_path = candidate_path = args.self_check
    elif args.baseline and args.candidate:
        baseline_path, candidate_path = args.baseline, args.candidate
    else:
        parser.print_usage(sys.stderr)
        return 2

    try:
        _, base_index = load_suite(baseline_path)
        _, cand_index = load_suite(candidate_path)
    except (OSError, ValueError, json.JSONDecodeError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    regressions, improvements, gated, missing = compare(
        base_index, cand_index, args)

    print(f"compared {gated} gated metrics across "
          f"{len(base_index)} baseline points")
    if missing:
        print(f"\n{len(missing)} baseline points missing from candidate:")
        for line in missing[:20]:
            print(f"  {line}")
    if improvements:
        print(f"\n{len(improvements)} improvements:")
        for line in improvements:
            print(f"  {line}")
    if regressions:
        print(f"\n{len(regressions)} REGRESSIONS:")
        for line in regressions:
            print(f"  {line}")

    if args.self_check:
        if regressions or missing:
            print("self-check FAILED: a file must never regress against "
                  "itself", file=sys.stderr)
            return 1
        if gated == 0:
            print("self-check FAILED: no gated metrics found — suite file "
                  "is empty or the schema drifted", file=sys.stderr)
            return 1
        print("self-check OK")
        return 0

    if regressions:
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
