#!/usr/bin/env bash
# Runs cppcheck over the project using the compile database of an existing
# CMake build tree. Usage:
#
#   tools/run_cppcheck.sh [build-dir]         # default build dir: build/
#
# Exit status: 0 when cppcheck is clean, 77 when cppcheck is unavailable
# (the container toolchain ships without it — CI installs it and runs this
# for real; 77 is ctest's SKIP_RETURN_CODE), 1 on findings.
set -u -o pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cppcheck_bin="${CPPCHECK:-cppcheck}"
if ! command -v "${cppcheck_bin}" >/dev/null 2>&1; then
  echo "run_cppcheck.sh: cppcheck not found on PATH; skipping" \
       "(set CPPCHECK or install cppcheck to run the checks)" >&2
  exit 77
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_cppcheck.sh: ${build_dir}/compile_commands.json not found." >&2
  echo "Configure first: cmake -B \"${build_dir}\" -S \"${repo_root}\"" >&2
  exit 1
fi

echo "run_cppcheck.sh: ${cppcheck_bin} --project=${build_dir}/compile_commands.json"
"${cppcheck_bin}" \
  --project="${build_dir}/compile_commands.json" \
  --suppressions-list="${repo_root}/tools/cppcheck_suppressions.txt" \
  --enable=warning,performance,portability \
  --inline-suppr \
  --error-exitcode=1 \
  --quiet \
  -j "$(nproc 2>/dev/null || echo 1)"
status=$?

if [[ "${status}" -eq 0 ]]; then
  echo "run_cppcheck.sh: clean"
else
  echo "run_cppcheck.sh: cppcheck reported findings (see above)" >&2
fi
exit "${status}"
