# End-to-end selftest of the telemetry pipeline, run by ctest:
#   cmake -DPython3_EXECUTABLE=... -DRUNNER=run_benchmarks.py
#         -DCOMPARER=bench_compare.py -DBUILD_DIR=<build> -DTMP=<scratch>
#         -P bench_pipeline_selftest.cmake
# Runs the cheapest suite member (metrics_overhead) through the driver, then
# requires bench_compare --self-check to accept the resulting suite file.
# Catches schema drift between bench_report.cc, run_benchmarks.py and
# bench_compare.py without the cost of the full quick suite.

file(MAKE_DIRECTORY ${TMP})
set(suite_json ${TMP}/bench_selftest.json)

execute_process(
  COMMAND ${Python3_EXECUTABLE} ${RUNNER}
          --quick --only=metrics_overhead
          --build-dir ${BUILD_DIR} --out ${suite_json}
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "run_benchmarks.py failed (${code}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND ${Python3_EXECUTABLE} ${COMPARER} --self-check ${suite_json}
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "bench_compare.py self-check failed (${code}):\n"
                      "${out}\n${err}")
endif()

message(STATUS "bench pipeline selftest passed")
