// treesim — command-line front end for the tree similarity library.
//
// Subcommands:
//   generate   synthesize a dataset and write it as a bracket forest file
//   import     split an XML corpus document into a record forest file
//   stats      print shape statistics of a forest file
//   distance   exact and lower-bound distances between two bracket trees
//   mapping    optimal edit mapping + diff between two bracket trees
//   patch      minimal operation sequence transforming one tree into another
//   range      range query against a forest file
//   knn        k-NN query against a forest file
//   join       self similarity join of a forest file
//   cluster    k-medoids clustering of a forest file
//
// Run `treesim_cli <command> --help` (or no arguments) for usage.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/binary_tree.h"
#include "core/branch_profile.h"
#include "core/positional.h"
#include "datagen/dblp_generator.h"
#include "datagen/synthetic_generator.h"
#include "filters/bibranch_filter.h"
#include "filters/histogram_filter.h"
#include "filters/sequence_filter.h"
#include "search/clustering.h"
#include "search/similarity_join.h"
#include "search/similarity_search.h"
#include "ted/edit_mapping.h"
#include "ted/edit_script_synthesis.h"
#include "ted/tree_diff.h"
#include "tree/bracket.h"
#include "tree/forest_io.h"
#include "tree/traversal.h"
#include "util/build_info.h"
#include "util/flags.h"
#include "util/flight_recorder.h"
#include "util/metrics.h"
#include "util/query_context.h"
#include "util/structured_log.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/triage.h"
#include "xml/xml_corpus.h"

namespace treesim {
namespace cli {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: treesim_cli <command> [--flags]\n"
               "\n"
               "commands:\n"
               "  generate --kind=synthetic|dblp --count=N --out=FILE\n"
               "           [--size=50] [--fanout=4] [--labels=8] "
               "[--decay=0.05] [--seed=1]\n"
               "  import   --xml=FILE --out=FILE [--structure-only]\n"
               "           (splits a corpus document, e.g. a DBLP dump, "
               "into one tree per record)\n"
               "  stats    --data=FILE\n"
               "  distance --a=TREE --b=TREE [--q=2]\n"
               "  mapping  --a=TREE --b=TREE\n"
               "  patch    --a=TREE --b=TREE   (minimal operation sequence "
               "a -> b)\n"
               "  range    --data=FILE --query=TREE --tau=N "
               "[--filter=bibranch|histo|seq|none] [--threads=1]\n"
               "  knn      --data=FILE --query=TREE --k=N "
               "[--filter=bibranch|histo|seq|none] [--threads=1]\n"
               "  join     --data=FILE --tau=N [--filter=...] [--threads=1]\n"
               "  cluster  --data=FILE --k=N [--seed=1]\n"
               "\n"
               "TREE arguments use bracket notation, e.g. 'a{b{c d} e}'.\n"
               "--threads=0 uses every hardware thread; results are\n"
               "identical for any thread count.\n"
               "\n"
               "observability (any command):\n"
               "  --metrics=text|json|prometheus\n"
               "                        dump every pipeline counter, gauge\n"
               "                        and histogram on exit (prometheus =\n"
               "                        text exposition format 0.0.4)\n"
               "  --metrics-out=FILE    write the --metrics dump to FILE\n"
               "                        instead of stdout\n"
               "  --query-log=FILE      append one JSON line per query\n"
               "                        (range/knn/join) to FILE\n"
               "  --slow-query-ms=N     only log queries taking >= N ms\n"
               "  --trace=FILE          record per-stage spans and write\n"
               "                        chrome://tracing JSON to FILE\n"
               "  --flight-recorder=N   keep the last N completed query\n"
               "                        records in memory and print them\n"
               "                        after the command\n"
               "  --triage-dir=DIR      directory for crash-time triage\n"
               "                        dumps (default: current directory;\n"
               "                        render with tools/triage_report.py)\n"
               "(query log, trace and flight recorder are no-ops when built\n"
               "with -DTREESIM_METRICS=OFF)\n"
               "\n"
               "treesim_cli --version prints build provenance.\n");
  return 2;
}

int PrintVersion() {
  std::printf("treesim_cli\n");
  std::printf("git_sha %s%s\n", build_info::kGitSha,
              build_info::kGitDirty ? " (dirty)" : "");
  std::printf("build_type %s\n", build_info::kBuildType);
  std::printf("compiler %s\n", build_info::kCompiler);
  std::printf("metrics %s\n", kMetricsEnabled ? "on" : "off");
  return 0;
}

std::unique_ptr<FilterIndex> MakeFilter(const std::string& name) {
  if (name == "bibranch") return std::make_unique<BiBranchFilter>();
  if (name == "histo") return std::make_unique<HistogramFilter>();
  if (name == "seq") return std::make_unique<SequenceFilter>();
  if (name == "none") return nullptr;
  std::fprintf(stderr, "unknown filter '%s' (want bibranch|histo|seq|none)\n",
               name.c_str());
  std::exit(2);
}

StatusOr<std::unique_ptr<TreeDatabase>> LoadDatabase(
    const std::string& path, std::shared_ptr<LabelDictionary> labels) {
  TREESIM_ASSIGN_OR_RETURN(std::vector<Tree> forest,
                           LoadForest(path, labels));
  if (forest.empty()) {
    return Status::InvalidArgument(path + " contains no trees");
  }
  auto db = std::make_unique<TreeDatabase>(labels);
  db->AddAll(std::move(forest));
  return db;
}

StatusOr<Tree> ParseTreeFlag(const FlagParser& flags, const std::string& key,
                             std::shared_ptr<LabelDictionary> labels) {
  const std::string text = flags.GetString(key, "");
  if (text.empty()) {
    return Status::InvalidArgument("missing required flag --" + key);
  }
  return ParseBracket(text, std::move(labels));
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Pool for `--threads=N` (0 = every hardware thread). Returns nullptr —
/// the engines' sequential path — when one worker would be enough for
/// `items` units of work.
std::unique_ptr<ThreadPool> MakePool(const FlagParser& flags, int64_t items) {
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  const int effective = ClampThreads(threads, items);
  if (effective <= 1) return nullptr;
  return std::make_unique<ThreadPool>(effective);
}

int CmdGenerate(const FlagParser& flags) {
  const std::string kind = flags.GetString("kind", "synthetic");
  const int count = static_cast<int>(flags.GetInt("count", 1000));
  const std::string out = flags.GetString("out", "");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  if (out.empty()) return Fail(Status::InvalidArgument("missing --out"));

  auto labels = std::make_shared<LabelDictionary>();
  std::vector<Tree> forest;
  if (kind == "synthetic") {
    SyntheticParams params;
    params.size_mean = flags.GetDouble("size", 50);
    params.fanout_mean = flags.GetDouble("fanout", 4);
    params.label_count = static_cast<int>(flags.GetInt("labels", 8));
    params.decay = flags.GetDouble("decay", 0.05);
    SyntheticGenerator gen(params, labels, seed);
    forest = gen.GenerateDataset(count);
    std::printf("generated %d trees (%s)\n", count,
                params.ToString().c_str());
  } else if (kind == "dblp") {
    DblpGenerator gen(DblpParams{}, labels, seed);
    forest = gen.Generate(count);
    std::printf("generated %d DBLP-like records\n", count);
  } else {
    return Fail(Status::InvalidArgument("unknown --kind '" + kind + "'"));
  }
  const Status saved = SaveForest(forest, out);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int CmdImport(const FlagParser& flags) {
  const std::string xml_path = flags.GetString("xml", "");
  const std::string out = flags.GetString("out", "");
  if (xml_path.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("need --xml and --out"));
  }
  auto labels = std::make_shared<LabelDictionary>();
  XmlParseOptions options;
  if (flags.GetBool("structure-only", false)) {
    options.text_mode = XmlParseOptions::TextMode::kIgnore;
  }
  auto records = LoadXmlCorpus(xml_path, labels, options);
  if (!records.ok()) return Fail(records.status());
  const Status saved = SaveForest(*records, out);
  if (!saved.ok()) return Fail(saved);
  std::printf("imported %zu records from %s into %s\n", records->size(),
              xml_path.c_str(), out.c_str());
  return 0;
}

int CmdStats(const FlagParser& flags) {
  auto labels = std::make_shared<LabelDictionary>();
  auto db_or = LoadDatabase(flags.GetString("data", ""), labels);
  if (!db_or.ok()) return Fail(db_or.status());
  const TreeDatabase& db = **db_or;

  int64_t nodes = 0;
  int64_t leaves = 0;
  int64_t height_total = 0;
  int min_size = db.tree(0).size();
  int max_size = 0;
  for (int i = 0; i < db.size(); ++i) {
    const Tree& t = db.tree(i);
    nodes += t.size();
    leaves += LeafCount(t);
    height_total += TreeHeight(t);
    min_size = std::min(min_size, t.size());
    max_size = std::max(max_size, t.size());
  }
  std::printf("trees:           %d\n", db.size());
  std::printf("total nodes:     %lld\n", static_cast<long long>(nodes));
  std::printf("avg size:        %.2f (min %d, max %d)\n",
              static_cast<double>(nodes) / db.size(), min_size, max_size);
  std::printf("avg height:      %.2f\n",
              static_cast<double>(height_total) / db.size());
  std::printf("avg leaves:      %.2f\n",
              static_cast<double>(leaves) / db.size());
  std::printf("distinct labels: %zu\n", labels->size());
  if (db.size() >= 2) {
    Rng rng(7);
    std::printf("avg distance:    %.2f (sampled)\n",
                db.EstimateAverageDistance(
                    rng, std::min(500, db.size() * (db.size() - 1) / 2)));
  }
  return 0;
}

int CmdDistance(const FlagParser& flags) {
  auto labels = std::make_shared<LabelDictionary>();
  auto a_or = ParseTreeFlag(flags, "a", labels);
  if (!a_or.ok()) return Fail(a_or.status());
  auto b_or = ParseTreeFlag(flags, "b", labels);
  if (!b_or.ok()) return Fail(b_or.status());
  const Tree& a = *a_or;
  const Tree& b = *b_or;
  const int q = static_cast<int>(flags.GetInt("q", 2));

  BranchDictionary branches(q);
  const BranchProfile pa = BranchProfile::FromTree(a, branches);
  const BranchProfile pb = BranchProfile::FromTree(b, branches);
  std::printf("|T1| = %d, |T2| = %d\n", a.size(), b.size());
  std::printf("exact edit distance:        %d\n", TreeEditDistance(a, b));
  std::printf("binary branch distance (q=%d): %lld\n", q,
              static_cast<long long>(BranchDistance(pa, pb)));
  std::printf("plain lower bound:          %d\n",
              BranchDistanceLowerBound(pa, pb));
  std::printf("positional lower bound:     %d\n", OptimisticBound(pa, pb));
  return 0;
}

int CmdMapping(const FlagParser& flags) {
  auto labels = std::make_shared<LabelDictionary>();
  auto a_or = ParseTreeFlag(flags, "a", labels);
  if (!a_or.ok()) return Fail(a_or.status());
  auto b_or = ParseTreeFlag(flags, "b", labels);
  if (!b_or.ok()) return Fail(b_or.status());
  const Tree& a = *a_or;
  const Tree& b = *b_or;
  const EditMapping m = ComputeEditMapping(a, b);
  std::printf("cost %d = %d relabel + %d delete + %d insert\n", m.cost,
              m.relabels, m.deletions, m.insertions);
  std::printf("%s", RenderTreeDiff(a, b, m).c_str());
  const TraversalPositions pa = ComputePositions(a);
  const TraversalPositions pb = ComputePositions(b);
  for (const auto& [u, v] : m.pairs) {
    std::printf("  %s (pre %d) -> %s (pre %d)%s\n",
                std::string(a.LabelName(u)).c_str(),
                pa.pre[static_cast<size_t>(u)],
                std::string(b.LabelName(v)).c_str(),
                pb.pre[static_cast<size_t>(v)],
                a.label(u) != b.label(v) ? "  [relabel]" : "");
  }
  return 0;
}

int CmdPatch(const FlagParser& flags) {
  auto labels = std::make_shared<LabelDictionary>();
  auto a_or = ParseTreeFlag(flags, "a", labels);
  if (!a_or.ok()) return Fail(a_or.status());
  auto b_or = ParseTreeFlag(flags, "b", labels);
  if (!b_or.ok()) return Fail(b_or.status());
  auto script = ComputeEditScript(*a_or, *b_or);
  if (!script.ok()) return Fail(script.status());
  std::printf("%zu operations transform a into b:\n", script->size());
  Tree current = *a_or;
  for (const EditOperation& op : *script) {
    std::printf("  %s\n", ToString(op, *labels).c_str());
    auto next = ApplyEditOperation(current, op);
    if (!next.ok()) return Fail(next.status());
    current = std::move(next).value();
    std::printf("    -> %s\n", ToBracket(current).c_str());
  }
  return 0;
}

int CmdRange(const FlagParser& flags) {
  auto labels = std::make_shared<LabelDictionary>();
  auto db_or = LoadDatabase(flags.GetString("data", ""), labels);
  if (!db_or.ok()) return Fail(db_or.status());
  auto query_or = ParseTreeFlag(flags, "query", labels);
  if (!query_or.ok()) return Fail(query_or.status());
  const int tau = static_cast<int>(flags.GetInt("tau", 2));

  SimilaritySearch engine(db_or->get(),
                          MakeFilter(flags.GetString("filter", "bibranch")));
  const std::unique_ptr<ThreadPool> pool = MakePool(flags, (*db_or)->size());
  const RangeResult r = engine.Range(*query_or, tau, pool.get());
  std::printf("%zu matches within distance %d (%s refined %lld/%lld, "
              "%.1f ms filter + %.1f ms refine)\n",
              r.matches.size(), tau, engine.filter_name().c_str(),
              static_cast<long long>(r.stats.candidates),
              static_cast<long long>(r.stats.database_size),
              1e3 * r.stats.filter_seconds, 1e3 * r.stats.refine_seconds);
  for (const auto& [id, dist] : r.matches) {
    std::printf("  #%d d=%d %s\n", id, dist,
                ToBracket((*db_or)->tree(id)).c_str());
  }
  return 0;
}

int CmdKnn(const FlagParser& flags) {
  auto labels = std::make_shared<LabelDictionary>();
  auto db_or = LoadDatabase(flags.GetString("data", ""), labels);
  if (!db_or.ok()) return Fail(db_or.status());
  auto query_or = ParseTreeFlag(flags, "query", labels);
  if (!query_or.ok()) return Fail(query_or.status());
  const int k = static_cast<int>(flags.GetInt("k", 5));

  SimilaritySearch engine(db_or->get(),
                          MakeFilter(flags.GetString("filter", "bibranch")));
  const std::unique_ptr<ThreadPool> pool = MakePool(flags, (*db_or)->size());
  const KnnResult r = engine.Knn(*query_or, k, pool.get());
  std::printf("%d nearest neighbors (%s refined %lld/%lld)\n",
              static_cast<int>(r.neighbors.size()),
              engine.filter_name().c_str(),
              static_cast<long long>(r.stats.edit_distance_calls),
              static_cast<long long>(r.stats.database_size));
  for (const auto& [id, dist] : r.neighbors) {
    std::printf("  #%d d=%d %s\n", id, dist,
                ToBracket((*db_or)->tree(id)).c_str());
  }
  return 0;
}

int CmdJoin(const FlagParser& flags) {
  auto labels = std::make_shared<LabelDictionary>();
  auto db_or = LoadDatabase(flags.GetString("data", ""), labels);
  if (!db_or.ok()) return Fail(db_or.status());
  const int tau = static_cast<int>(flags.GetInt("tau", 2));
  SimilarityJoin join(db_or->get(),
                      MakeFilter(flags.GetString("filter", "bibranch")));
  const std::unique_ptr<ThreadPool> pool = MakePool(flags, (*db_or)->size());
  const JoinResult r = join.SelfJoin(tau, pool.get());
  std::printf("%zu pairs within distance %d (refined %lld of %lld pairs)\n",
              r.pairs.size(), tau,
              static_cast<long long>(r.stats.edit_distance_calls),
              static_cast<long long>(r.stats.database_size));
  const int show = std::min<int>(20, static_cast<int>(r.pairs.size()));
  for (int i = 0; i < show; ++i) {
    const auto& [l, rr, d] = r.pairs[static_cast<size_t>(i)];
    std::printf("  #%d ~ #%d d=%d\n", l, rr, d);
  }
  if (show < static_cast<int>(r.pairs.size())) {
    std::printf("  ... %zu more\n", r.pairs.size() - show);
  }
  return 0;
}

int CmdCluster(const FlagParser& flags) {
  auto labels = std::make_shared<LabelDictionary>();
  auto db_or = LoadDatabase(flags.GetString("data", ""), labels);
  if (!db_or.ok()) return Fail(db_or.status());
  KMedoidsOptions options;
  options.k = static_cast<int>(flags.GetInt("k", 3));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  const ClusteringResult r = KMedoids(**db_or, options, rng);
  std::printf("k=%d cost=%lld iterations=%d (exact distances: %lld, "
              "pruned by filter: %lld)\n",
              options.k, static_cast<long long>(r.total_cost), r.iterations,
              static_cast<long long>(r.edit_distance_calls),
              static_cast<long long>(r.pruned_by_filter));
  for (size_t c = 0; c < r.medoids.size(); ++c) {
    int members = 0;
    for (const int a : r.assignment) {
      if (a == static_cast<int>(c)) ++members;
    }
    std::printf("  cluster %zu: medoid #%d, %d members: %s\n", c,
                r.medoids[c], members,
                ToBracket((*db_or)->tree(r.medoids[c])).c_str());
  }
  return 0;
}

/// Hidden command exercised by the crash-diagnostics selftest: seeds the
/// flight recorder with synthetic records, then dies the requested way so
/// the triage handler's output can be asserted on from a parent process.
/// `--mode=dump` writes a dump without crashing (exit 0).
int CmdCrashSelftest(const FlagParser& flags) {
  const std::string mode = flags.GetString("mode", "check");
  for (int i = 0; i < 3; ++i) {
    const ScopedQueryContext qctx("crash_selftest");
    FlightRecord rec;
    rec.query_id = qctx.query_id();
    rec.ts_micros = UnixMicros();
    rec.op = "crash_selftest";
    rec.param = i;
    rec.results = i + 1;
    rec.total_micros = 10 * (i + 1);
    FlightRecorder::Global().Record(rec);
    TREESIM_COUNTER_INC("selftest.queries");
  }
  if (mode == "dump") {
    if (!WriteTriageDump("selftest")) {
      std::fprintf(stderr, "cannot write triage dump\n");
      return 1;
    }
    std::printf("wrote %s\n", LastTriagePath());
    return 0;
  }
  if (mode == "check") {
    TREESIM_CHECK(1 < 0) << "crash-selftest requested CHECK failure";
  }
  if (mode == "abort") std::abort();
  if (mode == "segv") raise(SIGSEGV);
  return Fail(Status::InvalidArgument("unknown --mode '" + mode +
                                      "' (want check|abort|segv|dump)"));
}

int Dispatch(const std::string& command, const FlagParser& flags) {
  if (command == "crash-selftest") return CmdCrashSelftest(flags);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "import") return CmdImport(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "distance") return CmdDistance(flags);
  if (command == "mapping") return CmdMapping(flags);
  if (command == "patch") return CmdPatch(flags);
  if (command == "range") return CmdRange(flags);
  if (command == "knn") return CmdKnn(flags);
  if (command == "join") return CmdJoin(flags);
  if (command == "cluster") return CmdCluster(flags);
  return Usage();
}

/// Dumps the registry after the command so the numbers cover everything the
/// run did (index build included). All three modes render to one string and
/// share one sink: stdout by default, or `--metrics-out=FILE`. JSON goes out
/// as one line, parseable by scripts; text gets a separator so it reads
/// apart from command output; prometheus is text exposition format 0.0.4,
/// ready for a node_exporter textfile collector.
int DumpMetrics(const std::string& mode, const std::string& out_path) {
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::string rendered;
  if (mode == "json") {
    rendered = snap.ToJson() + "\n";
  } else if (mode == "text") {
    rendered = "== metrics ==\n" + snap.ToText();
  } else if (mode == "prometheus") {
    rendered = snap.ToPrometheus();
  } else {
    std::fprintf(stderr,
                 "unknown --metrics mode '%s' (want text|json|prometheus)\n",
                 mode.c_str());
    return 2;
  }
  if (out_path.empty()) {
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write metrics file %s\n", out_path.c_str());
    return 1;
  }
  const size_t written = std::fwrite(rendered.data(), 1, rendered.size(), f);
  const bool ok = written == rendered.size() && std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "short write to metrics file %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}

/// `--query-log=FILE` opens the process-wide structured query log before the
/// command runs; `--slow-query-ms=N` additionally restricts it to queries at
/// or above the threshold. Built with -DTREESIM_METRICS=OFF the sink is
/// compiled out, so asking for a log file is an error rather than silence.
int OpenQueryLog(const FlagParser& flags) {
  const std::string path = flags.GetString("query-log", "");
  const int64_t slow_ms = flags.GetInt("slow-query-ms", -1);
  if (path.empty()) {
    if (slow_ms >= 0) {
      std::fprintf(stderr, "--slow-query-ms requires --query-log=FILE\n");
      return 2;
    }
    return 0;
  }
  StructuredLog& qlog = StructuredLog::Global();
  if (slow_ms >= 0) qlog.set_slow_query_micros(slow_ms * 1000);
  const Status status = qlog.OpenFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot open query log: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

int WriteTrace(const std::string& path) {
  Tracer::Global().Disable();
  const std::string json = Tracer::Global().ExportChromeTracing();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write trace file %s\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  const int64_t dropped = Tracer::Global().dropped_events();
  std::string dropped_note;
  if (dropped > 0) {
    dropped_note = ", " + std::to_string(dropped) +
                   " spans dropped to ring wraparound";
  }
  std::fprintf(stderr, "wrote %s (%zu bytes%s)\n", path.c_str(), json.size(),
               dropped_note.c_str());
  return 0;
}

/// `--flight-recorder=N` sizes the always-on ring and asks Main to print
/// its contents after the command. Like --query-log, requesting it in a
/// -DTREESIM_METRICS=OFF build is an error rather than silence.
int ConfigureFlightRecorder(const FlagParser& flags, bool* dump_after) {
  const int64_t n = flags.GetInt("flight-recorder", 0);
  if (n <= 0) return 0;
  if (!kMetricsEnabled) {
    std::fprintf(stderr,
                 "--flight-recorder requires a build with metrics enabled "
                 "(-DTREESIM_METRICS=ON)\n");
    return 2;
  }
  FlightRecorder::Global().Configure(static_cast<int>(n));
  *dump_after = true;
  return 0;
}

void DumpFlightRecorder() {
  const std::vector<FlightRecord> records = FlightRecorder::Global().Snapshot();
  std::printf("== flight recorder (%zu of last %d queries) ==\n",
              records.size(), FlightRecorder::Global().capacity());
  for (const FlightRecord& r : records) {
    std::printf("query_id=%lld op=%s param=%lld db=%lld candidates=%lld "
                "refined=%lld results=%lld filter_us=%lld refine_us=%lld "
                "total_us=%lld bounded_cells=%lld slow=%d\n",
                static_cast<long long>(r.query_id), r.op,
                static_cast<long long>(r.param),
                static_cast<long long>(r.database_size),
                static_cast<long long>(r.candidates),
                static_cast<long long>(r.refined),
                static_cast<long long>(r.results),
                static_cast<long long>(r.filter_micros),
                static_cast<long long>(r.refine_micros),
                static_cast<long long>(r.total_micros),
                static_cast<long long>(r.bounded_cells_delta),
                r.slow ? 1 : 0);
  }
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "version") return PrintVersion();
  const FlagParser flags(argc - 1, argv + 1);
  // Crash triage is always armed: it costs nothing until a fatal signal or
  // TREESIM_CHECK failure, and then preserves the telemetry of the run.
  InstallCrashHandler();
  const std::string triage_dir = flags.GetString("triage-dir", "");
  if (!triage_dir.empty()) SetTriageDir(triage_dir.c_str());
  const std::string metrics_mode = flags.GetString("metrics", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_path = flags.GetString("trace", "");
  const int log_code = OpenQueryLog(flags);
  if (log_code != 0) return log_code;
  bool dump_flight = false;
  const int flight_code = ConfigureFlightRecorder(flags, &dump_flight);
  if (flight_code != 0) return flight_code;
  if (!trace_path.empty()) Tracer::Global().Enable();
  const int code = Dispatch(command, flags);
  StructuredLog::Global().Close();
  if (dump_flight) DumpFlightRecorder();
  if (!trace_path.empty()) {
    const int trace_code = WriteTrace(trace_path);
    if (code == 0 && trace_code != 0) return trace_code;
  }
  if (!metrics_mode.empty()) {
    const int metrics_code = DumpMetrics(metrics_mode, metrics_out);
    if (code == 0 && metrics_code != 0) return metrics_code;
  }
  return code;
}

}  // namespace
}  // namespace cli
}  // namespace treesim

int main(int argc, char** argv) { return treesim::cli::Main(argc, argv); }
