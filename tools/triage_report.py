#!/usr/bin/env python3
"""Renders treesim crash-triage dumps and checks observability joins.

Usage:
  triage_report.py DUMP [DUMP...]
      Parse each triage dump (written by the crash handler in
      src/util/triage.cc) and print a human-readable summary. Exits
      non-zero when a dump is missing its header or END marker, so CI can
      assert that a crash produced a complete, parseable file.

  triage_report.py --check-join TRACE_JSON QLOG_JSONL METRICS_PROM
      Assert that at least one query id appears in all three observability
      outputs of a single run: the chrome://tracing span args, the
      structured query log, and a Prometheus histogram exemplar. This is
      the end-to-end proof that query-context propagation makes the
      streams joinable.
"""

import json
import re
import sys


class DumpError(Exception):
    pass


def parse_dump(path):
    """Parses one triage dump into a dict; raises DumpError when malformed."""
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()
    if not lines or lines[0] != "TREESIM_TRIAGE 1":
        raise DumpError(f"{path}: missing 'TREESIM_TRIAGE 1' header")
    if "END" not in lines:
        raise DumpError(f"{path}: missing END marker (dump truncated?)")

    dump = {
        "path": path,
        "header": {},
        "metrics": [],
        "flight_records": [],
        "trace_spans": [],
    }
    section = None
    for line in lines[1:]:
        if line == "END":
            break
        if line.startswith("SECTION "):
            section = line.split(" ", 1)[1]
            continue
        if section is None:
            key, _, value = line.partition(" ")
            dump["header"][key] = value
        elif section == "metrics":
            parts = line.split()
            if len(parts) >= 3:
                dump["metrics"].append(
                    {"kind": parts[0], "name": parts[1], "rest": parts[2:]})
        elif section == "flight_recorder":
            if line.startswith("record"):
                dump["flight_records"].append(parse_kv(line[len("record"):]))
        elif section == "trace_tail":
            if line.startswith("span"):
                dump["trace_spans"].append(parse_kv(line[len("span"):]))
    return dump


def parse_kv(text):
    """Parses ' k=v k=v ... name=rest' lines; name= swallows the tail."""
    out = {}
    text = text.strip()
    while text:
        key, eq, rest = text.partition("=")
        if not eq:
            break
        if key == "name":
            # The name field is last and may contain anything but newline.
            out[key] = rest
            break
        value, _, text = rest.partition(" ")
        out[key] = value
    return out


def render(dump):
    h = dump["header"]
    print(f"== triage dump: {dump['path']} ==")
    print(f"reason:         {h.get('reason', '?')}")
    if "fatal_message" in h:
        print(f"fatal message:  {h['fatal_message']}")
    print(f"pid:            {h.get('pid', '?')}")
    print(f"timestamp:      {h.get('ts_unix_micros', '?')} (unix micros)")
    dirty = " (dirty)" if h.get("build_dirty") == "1" else ""
    print(f"build:          {h.get('build_sha', '?')}{dirty} "
          f"{h.get('build_type', '?')} {h.get('compiler', '?')}")
    print(f"metrics build:  "
          f"{'on' if h.get('metrics_enabled') == '1' else 'off'}")
    print(f"metrics: {len(dump['metrics'])}")
    for m in dump["metrics"]:
        print(f"  {m['kind']} {m['name']} {' '.join(m['rest'])}")
    print(f"flight records: {len(dump['flight_records'])}")
    for r in dump["flight_records"]:
        print(f"  query_id={r.get('query_id', '?')} op={r.get('op', '?')} "
              f"total_us={r.get('total_us', '?')} "
              f"results={r.get('results', '?')} slow={r.get('slow', '?')}")
    print(f"trace spans: {len(dump['trace_spans'])}")
    for s in dump["trace_spans"][:20]:
        print(f"  thread={s.get('thread', '?')} "
              f"query_id={s.get('query_id', '?')} "
              f"dur_ns={s.get('dur_ns', '?')} name={s.get('name', '?')}")
    if len(dump["trace_spans"]) > 20:
        print(f"  ... {len(dump['trace_spans']) - 20} more")


def trace_query_ids(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    ids = set()
    for e in events:
        args = e.get("args") or {}
        qid = args.get("query_id")
        if isinstance(qid, int) and qid > 0:
            ids.add(qid)
    return ids


def qlog_query_ids(path):
    ids = set()
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            qid = rec.get("query_id")
            if isinstance(qid, int) and qid > 0:
                ids.add(qid)
    return ids


EXEMPLAR_RE = re.compile(r'#\s*\{query_id="(\d+)"\}')


def exemplar_query_ids(path):
    ids = set()
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            m = EXEMPLAR_RE.search(line)
            if m:
                ids.add(int(m.group(1)))
    return ids


def check_join(trace_path, qlog_path, metrics_path):
    trace_ids = trace_query_ids(trace_path)
    qlog_ids = qlog_query_ids(qlog_path)
    exemplar_ids = exemplar_query_ids(metrics_path)
    joined = trace_ids & qlog_ids & exemplar_ids
    print(f"trace query ids:    {sorted(trace_ids)}")
    print(f"query-log ids:      {sorted(qlog_ids)}")
    print(f"exemplar ids:       {sorted(exemplar_ids)}")
    print(f"joinable ids:       {sorted(joined)}")
    if not joined:
        print("FAIL: no query id appears in all three outputs",
              file=sys.stderr)
        return 1
    print("OK: observability streams are joinable")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--check-join":
        if len(argv) != 5:
            print(__doc__, file=sys.stderr)
            return 2
        return check_join(argv[2], argv[3], argv[4])
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    code = 0
    for path in argv[1:]:
        try:
            render(parse_dump(path))
        except (DumpError, OSError) as err:
            print(f"FAIL: {err}", file=sys.stderr)
            code = 1
    return code


if __name__ == "__main__":
    sys.exit(main(sys.argv))
