#!/usr/bin/env python3
"""Benchmark suite driver: run the bench binaries, merge their reports.

Every bench binary under build/bench/ accepts `--json=FILE` and writes the
canonical per-binary report (schema bench/bench_report.h). This driver runs
a suite, collects those reports, and merges them into one suite-level file
(default: BENCH_treesim.json at the repo root) of the shape

    {
      "schema_version": 1,
      "suite": "treesim",
      "quick": true,
      "build": { ... }          # provenance copied from the first report
      "benchmarks": [ {per-binary report}, ... ]
    }

Modes:
  --quick     small workloads (CI gate; a couple of minutes end to end)
  (default)   the full paper-scale suite — hours, for real measurements

The suite file is what tools/bench_compare.py diffs against a baseline.

Usage:
    tools/run_benchmarks.py --quick [--build-dir build] [--out FILE]
                            [--only SUBSTR] [--list]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Suite definition: (binary, quick_args, full_args). Quick runs shrink the
# dataset/query counts through the shared bench flags (bench_util.h
# ParseCommonFlags); micro benches shrink through --benchmark_filter plus
# min_time. A binary missing from the build tree is reported and skipped
# (exit nonzero) so a broken CMake wiring cannot silently pass.
SUITE = [
    ("metrics_overhead", [], []),
    ("fig07_fanout_range", ["--trees=300", "--queries=3"], []),
    ("fig08_fanout_knn", ["--trees=300", "--queries=3"], []),
    ("fig09_size_range", ["--trees=300", "--queries=3"], []),
    ("fig10_size_knn", ["--trees=300", "--queries=3"], []),
    ("fig11_labels_range", ["--trees=300", "--queries=3"], []),
    ("fig12_labels_knn", ["--trees=300", "--queries=3"], []),
    ("fig13_dblp_knn", ["--trees=300", "--queries=5"], []),
    ("fig14_dblp_range", ["--trees=300", "--queries=5"], []),
    ("fig15_distance_distribution", ["--trees=300", "--queries=10"], []),
    ("ablation_filters", ["--trees=200", "--queries=3"], []),
    ("ablation_matching", ["--trees=150", "--queries=3"], []),
    ("ablation_histogram_budget", ["--trees=200", "--queries=4"], []),
    ("parallel_speedup", ["--trees=120", "--queries=8"], []),
    ("micro_core",
     ["--benchmark_filter=BM_ProfileConstruction/.*",
      "--benchmark_min_time=0.05"], []),
    ("micro_distances",
     ["--benchmark_filter=.*ZhangShasha/50$",
      "--benchmark_min_time=0.05"], []),
]


def run_one(bench_dir, name, extra_args, verbose):
    """Runs one binary with --json into a temp file; returns its report."""
    binary = os.path.join(bench_dir, name)
    if not os.path.exists(binary):
        raise FileNotFoundError(binary)
    fd, json_path = tempfile.mkstemp(prefix=f"bench_{name}_", suffix=".json")
    os.close(fd)
    try:
        cmd = [binary, f"--json={json_path}"] + extra_args
        if verbose:
            print("+", " ".join(cmd), flush=True)
        out = None if verbose else subprocess.DEVNULL
        subprocess.run(cmd, check=True, stdout=out, stderr=out)
        with open(json_path, "r", encoding="utf-8") as f:
            report = json.load(f)
    finally:
        os.unlink(json_path)
    for key in ("schema_version", "benchmark", "build", "points"):
        if key not in report:
            raise ValueError(f"{name}: report missing required key '{key}'")
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT, "BENCH_treesim.json"))
    parser.add_argument("--quick", action="store_true",
                        help="small workloads (CI-sized, minutes not hours)")
    parser.add_argument("--only", default="",
                        help="run only binaries whose name contains SUBSTR")
    parser.add_argument("--list", action="store_true",
                        help="print the suite and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="show benchmark stdout")
    args = parser.parse_args()

    selected = [(n, q, f) for (n, q, f) in SUITE if args.only in n]
    if args.list:
        for name, quick_args, full_args in selected:
            extra = quick_args if args.quick else full_args
            print(f"{name} {' '.join(extra)}".strip())
        return 0
    if not selected:
        print(f"error: no benchmark matches --only={args.only}",
              file=sys.stderr)
        return 2

    bench_dir = os.path.join(args.build_dir, "bench")
    reports = []
    failures = []
    for name, quick_args, full_args in selected:
        extra = quick_args if args.quick else full_args
        try:
            reports.append(run_one(bench_dir, name, extra, args.verbose))
            print(f"ok   {name}", flush=True)
        except FileNotFoundError as e:
            failures.append(f"{name}: binary not built ({e})")
            print(f"MISS {name}", flush=True)
        except (subprocess.CalledProcessError, ValueError,
                json.JSONDecodeError) as e:
            failures.append(f"{name}: {e}")
            print(f"FAIL {name}", flush=True)

    suite = {
        "schema_version": 1,
        "suite": "treesim",
        "quick": args.quick,
        "build": reports[0]["build"] if reports else {},
        "benchmarks": reports,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(suite, f, indent=1)
        f.write("\n")
    print(f"wrote {args.out} ({len(reports)} benchmark reports)")

    if failures:
        print("\nfailures:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
