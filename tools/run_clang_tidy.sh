#!/usr/bin/env bash
# Runs clang-tidy (config: the repo-root .clang-tidy) over every translation
# unit in src/ and fuzz/, using the compile database of an existing CMake
# build tree. Usage:
#
#   tools/run_clang_tidy.sh [build-dir]       # default build dir: build/
#
# Exit status: 0 when clang-tidy is clean (or unavailable — the container
# toolchain is GCC-only, so absence is a soft skip; CI installs clang-tidy
# and runs this for real), 1 when any diagnostic is emitted.
set -u -o pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
      clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH; skipping" \
       "(set CLANG_TIDY or install clang-tidy to run the checks)" >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: ${build_dir}/compile_commands.json not found." >&2
  echo "Configure first: cmake -B \"${build_dir}\" -S \"${repo_root}\"" >&2
  exit 1
fi

# The compile database is the single source of truth for the TU list: a
# file CMake does not compile is dead weight clang-tidy should not bless,
# and a freshly added TU is covered the moment it enters the build.
mapfile -t sources < <(python3 - "${build_dir}/compile_commands.json" \
    "${repo_root}" <<'PY'
import json, os, sys
db, root = sys.argv[1], sys.argv[2]
keep = ("src" + os.sep, "fuzz" + os.sep)
seen = set()
for entry in json.load(open(db)):
    path = os.path.normpath(
        os.path.join(entry.get("directory", ""), entry["file"]))
    rel = os.path.relpath(path, root)
    if rel.startswith(keep) and not rel.endswith("standalone_main.cc"):
        seen.add(rel)
print("\n".join(sorted(seen)))
PY
)
if [[ "${#sources[@]}" -eq 0 ]]; then
  echo "run_clang_tidy.sh: no src/ or fuzz/ TUs in" \
       "${build_dir}/compile_commands.json" >&2
  exit 1
fi

echo "run_clang_tidy.sh: ${tidy_bin} over ${#sources[@]} files" \
     "(compile database: ${build_dir})"
status=0
for src in "${sources[@]}"; do
  # --quiet suppresses the "N warnings generated" chatter; diagnostics and
  # the exit status still surface per file.
  if ! "${tidy_bin}" --quiet -p "${build_dir}" "${repo_root}/${src}"; then
    status=1
  fi
done

if [[ "${status}" -eq 0 ]]; then
  echo "run_clang_tidy.sh: clean"
else
  echo "run_clang_tidy.sh: clang-tidy reported diagnostics (see above)" >&2
fi
exit "${status}"
