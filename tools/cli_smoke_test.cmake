# Smoke test for treesim_cli, run by ctest:
#   cmake -DCLI=<binary> -DTMP=<scratch dir> -P cli_smoke_test.cmake
# Exercises the full command surface on a small generated dataset and fails
# on any non-zero exit or missing expected output.

function(run_cli expect_substring)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "treesim_cli ${ARGN} failed (${code}): ${err}")
  endif()
  if(NOT "${expect_substring}" STREQUAL "" AND
     NOT out MATCHES "${expect_substring}")
    message(FATAL_ERROR
      "treesim_cli ${ARGN}: expected output matching '${expect_substring}', "
      "got: ${out}")
  endif()
endfunction()

file(MAKE_DIRECTORY ${TMP})
set(data ${TMP}/cli_smoke.trees)
set(xml ${TMP}/cli_smoke.xml)

run_cli("build_type" --version)
run_cli("git_sha" version)
run_cli("wrote" generate --kind=dblp --count=80 --out=${data} --seed=5)
run_cli("trees: +80" stats --data=${data})
run_cli("exact edit distance: +3"
        distance "--a=a{b{c d} b{c d} e}" "--b=a{b{c d b{e}} c d e}")
run_cli("cost 2" mapping "--a=a{b c}" "--b=a{x c d}")
run_cli("2 operations" patch "--a=a{b c}" "--b=a{x c d}")
run_cli("matches within distance" range --data=${data}
        "--query=article{author{auth0} title{ttl1} year{y0} journal{venue0}}"
        --tau=3)
run_cli("nearest neighbors" knn --data=${data}
        "--query=article{author{auth0} title{ttl1} year{y0} journal{venue0}}"
        --k=3)
run_cli("pairs within distance" join --data=${data} --tau=1)
run_cli("cost=" cluster --data=${data} --k=3)

file(WRITE ${xml}
  "<dblp><article><author>A</author><title>T</title></article>"
  "<www><author>B</author><url/></www></dblp>")
run_cli("imported 2 records" import --xml=${xml} --out=${TMP}/imported.trees)
run_cli("trees: +2" stats --data=${TMP}/imported.trees)

# Error paths exit non-zero.
execute_process(COMMAND ${CLI} stats --data=/no/such/file
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "stats on a missing file should fail")
endif()
execute_process(COMMAND ${CLI} bogus-command
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "unknown command should fail")
endif()

message(STATUS "cli smoke test passed")
