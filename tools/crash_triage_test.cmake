# Crash-diagnostics test, run by ctest:
#   cmake -DCLI=<binary> -DTMP=<scratch dir> -DPYTHON=<python3>
#         -DREPORT=<triage_report.py> -DMETRICS=<ON|OFF>
#         -P crash_triage_test.cmake
#
# Two halves:
#  1. (metrics builds only) One knn run emits --trace, --query-log and
#     Prometheus --metrics simultaneously; triage_report.py --check-join
#     asserts a single query id appears in all three — the end-to-end
#     proof that query-context propagation joins the streams.
#  2. A child treesim_cli is crashed on purpose (crash-selftest drives a
#     TREESIM_CHECK failure -> SIGABRT -> triage handler); the test then
#     requires exactly the triage dump the handler promised: present,
#     parseable by triage_report.py, and — in metrics builds — carrying
#     the flight-recorder records the child seeded before dying.

file(REMOVE_RECURSE ${TMP})
file(MAKE_DIRECTORY ${TMP})
set(data ${TMP}/crash_triage.trees)

function(require_zero code what err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "${what} failed (${code}): ${err}")
  endif()
endfunction()

execute_process(
  COMMAND ${CLI} generate --kind=dblp --count=60 --out=${data} --seed=7
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_VARIABLE err)
require_zero(${code} "generate" "${err}")

if(METRICS)
  # --- Half 1: joinable observability streams from one query run. ---
  execute_process(
    COMMAND ${CLI} knn --data=${data}
      "--query=article{author{auth0} title{ttl1} year{y0} journal{venue0}}"
      --k=3 --threads=4
      --flight-recorder=4
      --trace=${TMP}/trace.json
      --query-log=${TMP}/qlog.jsonl
      --metrics=prometheus --metrics-out=${TMP}/metrics.prom
    RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  require_zero(${code} "knn with full observability" "${err}")
  if(NOT out MATCHES "== flight recorder")
    message(FATAL_ERROR "knn --flight-recorder did not print records: ${out}")
  endif()
  if(NOT out MATCHES "op=knn")
    message(FATAL_ERROR "flight recorder dump is missing the knn record: ${out}")
  endif()

  execute_process(
    COMMAND ${PYTHON} ${REPORT} --check-join
      ${TMP}/trace.json ${TMP}/qlog.jsonl ${TMP}/metrics.prom
    RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  require_zero(${code} "triage_report.py --check-join" "${out}${err}")
else()
  # Metrics-off builds must refuse the flag rather than silently no-op.
  execute_process(
    COMMAND ${CLI} knn --data=${data} "--query=a{b}" --k=1 --flight-recorder=4
    RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
  if(code EQUAL 0)
    message(FATAL_ERROR
      "--flight-recorder should be an error in a metrics-off build")
  endif()
endif()

# --- Half 2: crash a child and demand a parseable dump. ---
execute_process(
  COMMAND ${CLI} crash-selftest --mode=check --triage-dir=${TMP}
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "crash-selftest --mode=check should die, got exit 0")
endif()

file(GLOB dumps ${TMP}/treesim_triage.*.txt)
list(LENGTH dumps dump_count)
if(dump_count EQUAL 0)
  message(FATAL_ERROR "crash produced no triage dump in ${TMP}")
endif()
list(GET dumps 0 dump)

execute_process(
  COMMAND ${PYTHON} ${REPORT} ${dump}
  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
require_zero(${code} "triage_report.py on ${dump}" "${out}${err}")
if(NOT out MATCHES "reason: +SIGABRT")
  message(FATAL_ERROR "dump should record SIGABRT as the reason: ${out}")
endif()
if(NOT out MATCHES "fatal message: +CHECK failed")
  message(FATAL_ERROR "dump should carry the TREESIM_CHECK text: ${out}")
endif()
if(METRICS)
  if(NOT out MATCHES "flight records: 3")
    message(FATAL_ERROR
      "dump should hold the 3 records the child seeded: ${out}")
  endif()
else()
  if(NOT out MATCHES "metrics build: +off")
    message(FATAL_ERROR "metrics-off dump should say so: ${out}")
  endif()
endif()

message(STATUS "crash triage test passed (dump: ${dump})")
