#!/usr/bin/env python3
"""Whole-program architecture and arithmetic-safety analyzer for treesim.

Runs as a ctest entry next to lint_treesim.py. Two passes:

Pass A — layering. Parses the ``#include`` graph of src/, tools/, bench/,
fuzz/, tests/ and examples/ and enforces the module DAG checked in at
tools/layering.toml:

  back-edge     a file of module X includes a header of module Y that X is
                not allowed to depend on (util <- tree <- {core, strgram}
                <- ted <- filters <- search <- {xml, datagen} <- apps).
  cycle         project headers include each other in a cycle.
  private       a file includes another module's private header
                (``*_internal.h`` or ``<module>/internal/...``).
  direct-inc    a src/ file uses a symbol from [direct_includes] (Status,
                TREESIM_CHECK, ThreadPool, CheckedAdd, ...) without
                including its defining header directly.

Pass B — arithmetic safety. In the modules named by [arithmetic].modules,
count/distance-named accumulators must go through util/safe_math.h:

  raw-accum     ``x += ...`` / ``x *= ...`` / ``x -= ...`` or
                ``x = x + ...`` where x is count/distance-named and the
                statement does not use Checked* arithmetic.
  raw-mul       a count/distance-named identifier directly multiplied with
                ``*`` outside Checked* arithmetic.
  raw-narrow    ``static_cast<int-like>(...)`` whose operand mentions a
                count/distance-named identifier (use CheckedCast).

The rare justified exception lives in the allowlist file named by the
config ([arithmetic].allowlist_file) as ``path:line-regex`` entries; the
acceptance bar is ZERO allowlist entries for src/.

The translation-unit list is taken from the compile database
(``<build-dir>/compile_commands.json``, exported by default) when present;
.cc files on disk but absent from the database are still analyzed and
reported as a warning so disabled build options cannot hide code.

Exit status 0 when clean, 1 on any finding. ``--self-test`` builds a
synthetic tree with one violation of every class and asserts the analyzer
reports each (the negative case required by the acceptance criteria).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
import tempfile
import tomllib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

ANALYZED_ROOTS = ("src", "tools", "bench", "fuzz", "tests", "examples")

CAST_RE = re.compile(r"\bstatic_cast\s*<\s*([^<>]+?)\s*>\s*\(")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure."""
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and text.startswith("/*", i):
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:end]))
            i = end
        elif c in ('"', "'"):
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def tracked_name_regex(stems: list[str]) -> re.Pattern[str]:
    """Identifier whose underscore-separated segments include a stem."""
    alt = "|".join(re.escape(s) for s in stems)
    return re.compile(rf"\b(?:[A-Za-z0-9]+_)*(?:{alt})(?:_[A-Za-z0-9]+)*\b")


class Config:
    def __init__(self, path: pathlib.Path) -> None:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
        self.modules: dict[str, set[str]] = {
            name: set(deps) for name, deps in data["modules"].items()
        }
        self.apps: set[str] = set(data["apps"]["names"])
        self.direct_includes: list[tuple[re.Pattern[str], str]] = [
            (re.compile(pattern), header)
            for pattern, header in data.get("direct_includes", {}).items()
        ]
        arith = data.get("arithmetic", {})
        self.arith_modules: set[str] = set(arith.get("modules", []))
        self.tracked = tracked_name_regex(arith.get("tracked_names", []))
        self.narrow_types: set[str] = {
            t.replace(" ", "") for t in arith.get("narrow_types", [])
        }
        self.allowlist_file: str = arith.get("allowlist_file", "")


class SourceFile:
    def __init__(self, root: pathlib.Path, path: pathlib.Path) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.stripped_lines = strip_comments_and_strings(
            self.text).splitlines()
        self.module = self._module()
        # (line_no, include_target) for every quoted include.
        self.includes: list[tuple[int, str]] = [
            (i, m.group(1))
            for i, line in enumerate(self.text.splitlines(), start=1)
            if (m := INCLUDE_RE.match(line))
        ]

    def _module(self) -> str:
        parts = self.rel.split("/")
        if parts[0] == "src":
            return parts[1] if len(parts) > 2 else "umbrella"
        return parts[0]  # tools, bench, fuzz, tests, examples

    @property
    def is_header(self) -> bool:
        return self.path.suffix == ".h"


class Analyzer:
    def __init__(self, root: pathlib.Path, config: Config,
                 build_dir: pathlib.Path | None) -> None:
        self.root = root
        self.config = config
        self.build_dir = build_dir
        self.findings: list[str] = []
        self.warnings: list[str] = []
        self.files: dict[str, SourceFile] = {}
        for sub in ANALYZED_ROOTS:
            base = root / sub
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if "astcheck_fixture" in path.parts:
                    # Deliberately-defective concurrency corpus for
                    # tools/astcheck's selftest; never compiled into the
                    # program and stubs its own "headers".
                    continue
                if path.suffix in (".h", ".cc"):
                    f = SourceFile(root, path)
                    self.files[f.rel] = f
        self.allowlist = self._load_allowlist()

    def _load_allowlist(self) -> list[tuple[str, re.Pattern[str]]]:
        entries: list[tuple[str, re.Pattern[str]]] = []
        if not self.config.allowlist_file:
            return entries
        path = self.root / self.config.allowlist_file
        if not path.is_file():
            return entries
        for raw in path.read_text(encoding="utf-8").splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            file_part, _, regex_part = line.partition(":")
            entries.append((file_part.strip(), re.compile(regex_part.strip())))
            if file_part.strip().startswith("src/"):
                self.warnings.append(
                    f"allowlist entry for {file_part.strip()}: src/ must "
                    "stay allowlist-free (convert to util/safe_math.h)")
        return entries

    def allowlisted(self, rel: str, stripped_line: str) -> bool:
        return any(rel == file_part and regex.search(stripped_line)
                   for file_part, regex in self.allowlist)

    def report(self, rel: str, line_no: int, rule: str, message: str) -> None:
        self.findings.append(f"{rel}:{line_no}: [{rule}] {message}")

    # ---- include resolution --------------------------------------------

    def resolve_include(self, f: SourceFile, target: str) -> str | None:
        """Repo-relative path of a project include, None if external."""
        candidate = f"src/{target}"
        if candidate in self.files:
            return candidate
        local = (f.path.parent / target).resolve()
        try:
            rel = local.relative_to(self.root).as_posix()
        except ValueError:
            return None
        return rel if rel in self.files else None

    # ---- pass A: layering ----------------------------------------------

    def check_layering(self) -> None:
        for f in self.files.values():
            allowed = self.config.modules.get(f.module)
            for line_no, target in f.includes:
                dep_rel = self.resolve_include(f, target)
                if dep_rel is None:
                    continue
                dep = self.files[dep_rel]
                self._check_private(f, line_no, dep)
                if dep.module == f.module or f.module in self.config.apps:
                    continue
                if allowed is None:
                    self.report(
                        f.rel, line_no, "back-edge",
                        f"module '{f.module}' is not declared in "
                        "tools/layering.toml; add it to the DAG")
                elif dep.module not in allowed:
                    self.report(
                        f.rel, line_no, "back-edge",
                        f"module '{f.module}' must not include '{target}' "
                        f"(module '{dep.module}'); allowed deps: "
                        f"{sorted(allowed) or 'none'} "
                        "(tools/layering.toml)")

    def _check_private(self, f: SourceFile, line_no: int,
                       dep: SourceFile) -> None:
        private = (dep.rel.endswith("_internal.h")
                   or "/internal/" in dep.rel)
        if private and dep.module != f.module:
            self.report(
                f.rel, line_no, "private",
                f"'{dep.rel}' is private to module '{dep.module}'")

    def check_header_cycles(self) -> None:
        graph: dict[str, list[str]] = {}
        for f in self.files.values():
            if not f.is_header:
                continue
            graph[f.rel] = [
                dep for _, target in f.includes
                if (dep := self.resolve_include(f, target)) is not None
                and self.files[dep].is_header
            ]
        WHITE, GRAY, BLACK = 0, 1, 2
        color = dict.fromkeys(graph, WHITE)
        stack: list[str] = []
        reported: set[frozenset[str]] = set()

        def dfs(node: str) -> None:
            color[node] = GRAY
            stack.append(node)
            for dep in graph.get(node, ()):
                if color.get(dep, BLACK) == GRAY:
                    cycle = stack[stack.index(dep):] + [dep]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        self.report(dep, 1, "cycle",
                                    "header cycle: " + " -> ".join(cycle))
                elif color.get(dep) == WHITE:
                    dfs(dep)
            stack.pop()
            color[node] = BLACK

        for node in graph:
            if color[node] == WHITE:
                dfs(node)

    def check_direct_includes(self) -> None:
        for f in self.files.values():
            if not f.rel.startswith("src/"):
                continue
            directly_included = {
                self.resolve_include(f, target) for _, target in f.includes
            }
            code = "\n".join(f.stripped_lines)
            for pattern, header in self.config.direct_includes:
                header_rel = f"src/{header}"
                if f.rel == header_rel:  # the defining header itself
                    continue
                m = pattern.search(code)
                if m is None or header_rel in directly_included:
                    continue
                line_no = code.count("\n", 0, m.start()) + 1
                self.report(
                    f.rel, line_no, "direct-inc",
                    f"uses '{m.group(0)}' but does not include "
                    f'"{header}" directly')

    # ---- pass B: arithmetic safety -------------------------------------

    ASSIGN_RE = re.compile(
        r"(?P<lhs>[A-Za-z_](?:[\w.\[\]]|->)*)\s*(?P<op>\+=|-=|\*=)")
    SELF_ASSIGN_RE = re.compile(
        r"(?P<lhs>[A-Za-z_](?:[\w.\[\]]|->)*)\s*=\s*(?P=lhs)\s*[+*-]")
    MUL_ADJ_RE = re.compile(
        r"(?:\b(?P<pre>[A-Za-z_]\w*)\s*\*\s*)|(?:\*\s*(?P<post>[A-Za-z_]\w*)\b)")

    def check_arithmetic(self) -> None:
        for f in self.files.values():
            parts = f.rel.split("/")
            if (parts[0] != "src" or len(parts) < 3
                    or parts[1] not in self.config.arith_modules):
                continue
            for line_no, line in enumerate(f.stripped_lines, start=1):
                if "Checked" in line or self.allowlisted(f.rel, line):
                    continue
                self._check_accum_line(f, line_no, line)
                self._check_mul_line(f, line_no, line)
                self._check_narrow_line(f, line_no, line)

    def _check_accum_line(self, f: SourceFile, line_no: int,
                          line: str) -> None:
        for m in (self.ASSIGN_RE.search(line),
                  self.SELF_ASSIGN_RE.search(line)):
            if m is None:
                continue
            lhs = m.group("lhs")
            if self.config.tracked.search(lhs):
                self.report(
                    f.rel, line_no, "raw-accum",
                    f"unchecked accumulation into '{lhs}'; use "
                    "CheckedAdd/CheckedSub/CheckedMul (util/safe_math.h)")
                return

    def _check_mul_line(self, f: SourceFile, line_no: int,
                        line: str) -> None:
        for m in self.MUL_ADJ_RE.finditer(line):
            name = m.group("pre") or m.group("post")
            if m.group("post") and not self._binary_mul(line, m):
                continue  # unary dereference, not a multiplication
            if name and self.config.tracked.fullmatch(name):
                self.report(
                    f.rel, line_no, "raw-mul",
                    f"unchecked multiplication of '{name}'; use "
                    "CheckedMul (util/safe_math.h)")
                return

    @staticmethod
    def _binary_mul(line: str, m: re.Match[str]) -> bool:
        """True when ``* name`` is a multiplication rather than a pointer
        dereference: something value-like precedes the ``*`` and the
        identifier is not the target of an assignment."""
        before = line[:m.start()].rstrip()
        if not before or before[-1] not in ")]" and not before[-1].isalnum():
            return False
        after = line[m.end():].lstrip()
        if after.startswith("=") and not after.startswith("=="):
            return False  # `*ptr = ...` deref-assignment
        return True

    def _check_narrow_line(self, f: SourceFile, line_no: int,
                           line: str) -> None:
        for m in CAST_RE.finditer(line):
            if m.group(1).replace(" ", "") not in self.config.narrow_types:
                continue
            operand = self._cast_operand(line, m.end())
            if operand and self.config.tracked.search(operand):
                self.report(
                    f.rel, line_no, "raw-narrow",
                    f"raw narrowing static_cast<{m.group(1)}> of a "
                    "count/distance value; use CheckedCast "
                    "(util/safe_math.h)")
                return

    @staticmethod
    def _cast_operand(line: str, open_paren_end: int) -> str:
        depth = 1
        i = open_paren_end
        while i < len(line) and depth > 0:
            if line[i] == "(":
                depth += 1
            elif line[i] == ")":
                depth -= 1
            i += 1
        return line[open_paren_end:i - 1]

    # ---- compile-database coverage -------------------------------------

    def check_compile_db_coverage(self) -> None:
        if self.build_dir is None:
            return
        db_path = self.build_dir / "compile_commands.json"
        if not db_path.is_file():
            self.warnings.append(
                f"{db_path}: compile database not found; configure with "
                "cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is ON by "
                "default). Analyzing all sources found on disk.")
            return
        db_files: set[str] = set()
        for entry in json.loads(db_path.read_text(encoding="utf-8")):
            path = pathlib.Path(entry["file"])
            if not path.is_absolute():
                path = pathlib.Path(entry["directory"]) / path
            try:
                db_files.add(path.resolve().relative_to(self.root).as_posix())
            except ValueError:
                continue
        for rel, f in self.files.items():
            if (not f.is_header and rel not in db_files
                    and not rel.startswith("examples/")):
                self.warnings.append(
                    f"{rel}: not in {db_path.name} (disabled build option?) "
                    "— analyzed from disk anyway")

    # ---- driver --------------------------------------------------------

    def run(self) -> int:
        self.check_compile_db_coverage()
        self.check_layering()
        self.check_header_cycles()
        self.check_direct_includes()
        self.check_arithmetic()
        for warning in self.warnings:
            print(f"warning: {warning}")
        if self.findings:
            for finding in sorted(self.findings):
                print(finding)
            print(f"analyze_treesim.py: {len(self.findings)} finding(s)",
                  file=sys.stderr)
            return 1
        print(f"analyze_treesim.py: clean ({len(self.files)} files, "
              f"{len(self.config.modules)} modules)")
        return 0


# ---- self-test ----------------------------------------------------------

SELF_TEST_CONFIG = """\
[modules]
util = []
core = ["util"]
search = ["core", "util"]

[apps]
names = ["tools"]

[direct_includes]
"\\\\bTREESIM_CHECK\\\\b" = "util/logging.h"

[arithmetic]
modules = ["core"]
tracked_names = ["dist", "count", "total"]
narrow_types = ["int"]
allowlist_file = "allow.txt"
"""

SELF_TEST_FILES = {
    # Back-edge: util must not include search.
    "src/util/helper.cc": '#include "search/engine.h"\nint x;\n',
    "src/search/engine.h": '#include "core/a.h"\nint engine();\n',
    # Header cycle a.h <-> b.h.
    "src/core/a.h": '#include "core/b.h"\nint a();\n',
    "src/core/b.h": '#include "core/a.h"\nint b();\n',
    # Private header of core included from search.
    "src/core/detail_internal.h": "int detail();\n",
    "src/search/uses_private.cc": '#include "core/detail_internal.h"\n',
    # Missing direct include of util/logging.h.
    "src/util/logging.h": "#define TREESIM_CHECK(x) (void)(x)\n",
    "src/core/checks.cc": "void f() { TREESIM_CHECK(1); }\n",
    # Unchecked accumulator + narrowing cast in an arithmetic module.
    "src/core/accum.cc":
        "long g(long d) {\n"
        "  long dist = 0;\n"
        "  dist += d;\n"
        "  int total_count = static_cast<int>(dist);\n"
        "  return dist * total_count;\n"
        "}\n",
    # Same pattern through the Checked wrappers: must NOT be flagged.
    "src/core/clean.cc":
        "long h(long d) {\n"
        "  long dist = 0;\n"
        "  dist = CheckedAdd(dist, d);\n"
        "  return dist;\n"
        "}\n",
    "allow.txt": "# empty\n",
}

SELF_TEST_EXPECT = [
    ("src/util/helper.cc", "back-edge"),
    ("src/core/a.h", "cycle"),
    ("src/search/uses_private.cc", "private"),
    ("src/core/checks.cc", "direct-inc"),
    ("src/core/accum.cc", "raw-accum"),
    ("src/core/accum.cc", "raw-narrow"),
    ("src/core/accum.cc", "raw-mul"),
]


def self_test() -> int:
    with tempfile.TemporaryDirectory(prefix="analyze_treesim_") as tmp:
        root = pathlib.Path(tmp)
        (root / "layering.toml").write_text(SELF_TEST_CONFIG,
                                           encoding="utf-8")
        for rel, content in SELF_TEST_FILES.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content, encoding="utf-8")
        config = Config(root / "layering.toml")
        analyzer = Analyzer(root, config, build_dir=None)
        status = analyzer.run()
        failures: list[str] = []
        if status == 0:
            failures.append("expected a non-zero exit on the synthetic tree")
        for rel, rule in SELF_TEST_EXPECT:
            if not any(f.startswith(f"{rel}:") and f"[{rule}]" in f
                       for f in analyzer.findings):
                failures.append(f"missing expected finding [{rule}] in {rel}")
        for f in analyzer.findings:
            if "clean.cc" in f:
                failures.append(f"false positive on Checked* code: {f}")
        if failures:
            for failure in failures:
                print(f"SELF-TEST FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"analyze_treesim.py --self-test: ok "
              f"({len(SELF_TEST_EXPECT)} violation classes detected, "
              "clean file unflagged)")
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path, default=REPO_ROOT,
                        help="repo root to analyze (default: this repo)")
    parser.add_argument("--config", type=pathlib.Path, default=None,
                        help="layering config (default: <root>/tools/"
                             "layering.toml)")
    parser.add_argument("--build-dir", type=pathlib.Path, default=None,
                        help="build tree whose compile_commands.json "
                             "defines the TU list (default: <root>/build)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the negative-case self test and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    root = args.root.resolve()
    config = Config(args.config or root / "tools" / "layering.toml")
    build_dir = args.build_dir or root / "build"
    return Analyzer(root, config, build_dir).run()


if __name__ == "__main__":
    sys.exit(main())
