#ifndef TREESIM_CORE_BRANCH_PROFILE_H_
#define TREESIM_CORE_BRANCH_PROFILE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/binary_branch.h"
#include "tree/tree.h"
#include "util/status.h"

namespace treesim {

/// All occurrences of one distinct branch inside one tree, with positional
/// information (Section 4.2). `occurrences` is sorted by preorder position;
/// `posts_sorted` holds the same postorder positions sorted ascending (the
/// two ascending sequences Algorithm 1 builds per branch).
struct BranchEntry {
  BranchId branch = 0;
  /// (preorder, postorder) position pairs, ascending by preorder.
  std::vector<std::pair<int, int>> occurrences;
  /// Postorder positions, ascending.
  std::vector<int> posts_sorted;

  int count() const { return static_cast<int>(occurrences.size()); }
};

/// The sparse binary branch vector BRV(T) of Definition 3 plus the
/// positional sequences of Section 4.3 — everything the filters need about
/// one tree. Entries are sorted by branch id; only non-zero dimensions are
/// stored (as in the paper's implementation, Section 5).
struct BranchProfile {
  /// |T|; prmin/prmax of the optimistic bound search derive from it.
  int tree_size = 0;
  /// Branch level q the profile was extracted at.
  int q = 2;
  /// Divisor of the lower bound: 4(q-1)+1.
  int factor = 5;
  /// Non-zero dimensions, ascending by branch id.
  std::vector<BranchEntry> entries;

  /// Total branch occurrences (= tree_size: one branch per node).
  int total_count() const;

  /// Builds the profile of one tree, interning new branches into `dict`.
  /// O(|T| * 2^q + d log d) where d is the number of distinct branches.
  static BranchProfile FromTree(const Tree& t, BranchDictionary& dict);

  /// Verifies the sparse-vector invariants the filters rely on: q/factor
  /// agree with Theorem 3.3, entries strictly ascending by branch id with
  /// positive counts, occurrences ascending by preorder, posts_sorted an
  /// ascending permutation of the occurrence postorders, all positions in
  /// [1, tree_size], and total occurrences == tree_size (one branch per
  /// node, Definition 3). O(total occurrences). Debug builds run this at
  /// the end of FromTree() and on every profile of BuildProfiles().
  Status ValidateInvariants() const;
};

/// The binary branch distance BDist(T1, T2) of Definition 4: the L1 distance
/// of the two (sparse) branch vectors. O(|entries1| + |entries2|).
int64_t BranchDistance(const BranchProfile& a, const BranchProfile& b);

/// The non-positional lower bound of the edit distance from Theorem 3.2/3.3:
/// ceil(BDist / (4(q-1)+1)). Requires a.q == b.q.
int BranchDistanceLowerBound(const BranchProfile& a, const BranchProfile& b);

}  // namespace treesim

#endif  // TREESIM_CORE_BRANCH_PROFILE_H_
