#ifndef TREESIM_CORE_VPTREE_H_
#define TREESIM_CORE_VPTREE_H_

#include <cstdint>
#include <vector>

#include "core/branch_profile.h"
#include "util/random.h"
#include "util/status.h"

namespace treesim {

/// A vantage-point tree over binary branch profiles under BDist. The paper
/// proves BDist satisfies the triangle inequality (Section 3.2), which is
/// exactly what a metric index needs — so the filtering step itself can run
/// sublinearly instead of scanning every vector: a range query with radius
/// factor * tau returns a superset of the trees any BDist-based filter
/// would keep, without evaluating BDist against the whole database. This
/// realizes the "CPU and I/O efficient solutions" direction of the paper's
/// conclusion (an extension beyond its experiments).
///
/// Note BDist is a pseudo-metric (distinct trees can be at distance 0,
/// Fig. 4); that only means a query may see extra distance-0 neighbors,
/// which is harmless for a filter.
class VpTree {
 public:
  /// Builds the index over `profiles` (kept by pointer; must outlive the
  /// tree). `rng` picks vantage points; deterministic given the seed.
  VpTree(const std::vector<BranchProfile>* profiles, Rng& rng);

  VpTree(const VpTree&) = delete;
  VpTree& operator=(const VpTree&) = delete;
  VpTree(VpTree&&) = default;
  VpTree& operator=(VpTree&&) = default;

  /// Ids of all profiles with BDist(query, profile) <= radius, ascending.
  /// `stats_distance_calls`, when non-null, receives the number of BDist
  /// evaluations performed (the measure of sublinearity).
  std::vector<int> RangeSearch(const BranchProfile& query, int64_t radius,
                               int64_t* stats_distance_calls = nullptr) const;

  /// Number of indexed profiles.
  int size() const { return static_cast<int>(profiles_->size()); }

  /// Tree depth (for tests/diagnostics).
  int Depth() const;

  /// Verifies the metric-ball invariants RangeSearch's pruning relies on:
  /// every profile id indexed exactly once, all node links in range, and —
  /// the load-bearing property — ball containment: every id in an inside
  /// subtree is within `radius` of the vantage point, every id in an
  /// outside subtree is farther. A violation means the triangle-inequality
  /// pruning of Search() can silently drop results. O(n log n) BDist
  /// evaluations. Debug builds run this at the end of construction.
  Status ValidateInvariants() const;

 private:
  friend struct InvariantTestPeer;  // tests corrupt nodes to hit validators

  struct Node {
    int profile = -1;           // vantage point (profile id)
    int64_t radius = 0;         // median BDist to the vantage point
    int inside = -1;            // child with d <= radius
    int outside = -1;           // child with d > radius
    std::vector<int> bucket;    // leaf: remaining ids (small subsets)
    bool is_leaf = false;
  };

  static constexpr size_t kLeafSize = 8;

  int Build(std::vector<int>& ids, size_t begin, size_t end, Rng& rng);
  void Search(int node, const BranchProfile& query, int64_t radius,
              std::vector<int>& out, int64_t& calls) const;
  int DepthOf(int node) const;

  const std::vector<BranchProfile>* profiles_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace treesim

#endif  // TREESIM_CORE_VPTREE_H_
