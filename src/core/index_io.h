#ifndef TREESIM_CORE_INDEX_IO_H_
#define TREESIM_CORE_INDEX_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/binary_branch.h"
#include "core/branch_profile.h"
#include "tree/label_dictionary.h"
#include "util/status.h"

namespace treesim {

/// A persisted branch index loaded back into memory: the shared label
/// dictionary, the branch vocabulary and one positional profile per tree
/// (ids preserved). Lets long-lived services skip re-extracting vectors for
/// a large corpus; the trees themselves live in the forest file.
struct LoadedBranchIndex {
  std::shared_ptr<LabelDictionary> labels;
  std::unique_ptr<BranchDictionary> branches;
  std::vector<BranchProfile> profiles;
};

/// Serializes dictionary + vocabulary + profiles to the versioned text
/// format (see index_io.cc for the grammar). `profiles` must have been
/// extracted with `branches`, whose labels come from `labels`.
std::string BranchIndexToString(const LabelDictionary& labels,
                                const BranchDictionary& branches,
                                const std::vector<BranchProfile>& profiles);

/// Parses a serialized index. Label and branch ids are preserved, so
/// profiles, distances and bounds computed from the loaded index are
/// bit-identical to the originals.
StatusOr<LoadedBranchIndex> BranchIndexFromString(std::string_view text);

/// File variants.
Status SaveBranchIndex(const LabelDictionary& labels,
                       const BranchDictionary& branches,
                       const std::vector<BranchProfile>& profiles,
                       const std::string& path);
StatusOr<LoadedBranchIndex> LoadBranchIndex(const std::string& path);

}  // namespace treesim

#endif  // TREESIM_CORE_INDEX_IO_H_
