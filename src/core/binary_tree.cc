#include "core/binary_tree.h"

#include <string>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace treesim {

NormalizedBinaryTree NormalizedBinaryTree::FromTree(const Tree& t) {
  TREESIM_CHECK(!t.empty());
  NormalizedBinaryTree b;
  b.nodes_.reserve(static_cast<size_t>(2 * t.size() + 1));

  // Iterative construction: each work item materializes one B(T) slot for
  // either an original T node or an ε pad. For an original node u,
  // left(u) = first child of u in T (or ε) and right(u) = next sibling of u
  // in T (or ε); the root has no sibling, so its right child is ε.
  struct Work {
    NodeId original;         // kInvalidNode => ε node
    BNodeId slot;            // index in nodes_ to fill
  };
  b.nodes_.push_back(BNode{});
  std::vector<Work> stack = {{t.root(), 0}};
  while (!stack.empty()) {
    const Work w = stack.back();
    stack.pop_back();
    BNode& node = b.nodes_[static_cast<size_t>(w.slot)];
    if (w.original == kInvalidNode) {
      node = BNode{kEpsilonLabel, kNoChild, kNoChild, kInvalidNode};
      continue;
    }
    ++b.original_count_;
    node.label = t.label(w.original);
    node.original = w.original;
    const BNodeId left_slot = static_cast<BNodeId>(b.nodes_.size());
    b.nodes_.push_back(BNode{});
    const BNodeId right_slot = static_cast<BNodeId>(b.nodes_.size());
    b.nodes_.push_back(BNode{});
    // `node` may dangle after push_back; re-fetch.
    b.nodes_[static_cast<size_t>(w.slot)].left = left_slot;
    b.nodes_[static_cast<size_t>(w.slot)].right = right_slot;
    stack.push_back({t.first_child(w.original), left_slot});
    stack.push_back({t.next_sibling(w.original), right_slot});
  }
  TREESIM_DCHECK_OK(b.ValidateInvariants(&t));
  return b;
}

Status NormalizedBinaryTree::ValidateInvariants(const Tree* source) const {
  if (nodes_.empty()) return Status::Internal("B(T) has no nodes");
  const int n = static_cast<int>(nodes_.size());
  if (n != 2 * original_count_ + 1) {
    return Status::Internal(
        "padding count off: " + std::to_string(n) + " slots for " +
        std::to_string(original_count_) + " original nodes");
  }
  std::vector<char> seen(static_cast<size_t>(n), 0);
  std::vector<BNodeId> stack = {root()};
  seen[0] = 1;
  int visited = 1;
  int originals = 0;
  std::vector<char> mirrored;  // source nodes covered by an original slot
  if (source != nullptr) {
    mirrored.assign(static_cast<size_t>(source->size()), 0);
  }
  while (!stack.empty()) {
    const BNodeId id = stack.back();
    stack.pop_back();
    const BNode& node = nodes_[static_cast<size_t>(id)];
    if (node.original == kInvalidNode) {
      // ε pad: always a leaf, always labeled ε.
      if (node.label != kEpsilonLabel) {
        return Status::Internal("ε node " + std::to_string(id) +
                                " carries a non-ε label");
      }
      if (node.left != kNoChild || node.right != kNoChild) {
        return Status::Internal("ε node " + std::to_string(id) +
                                " has children");
      }
      continue;
    }
    ++originals;
    // Original node: padded to exactly two children (Fig. 2).
    if (node.left == kNoChild || node.right == kNoChild) {
      return Status::Internal("original node " + std::to_string(id) +
                              " missing a padded child");
    }
    if (source != nullptr) {
      if (node.original < 0 || node.original >= source->size()) {
        return Status::Internal("original link out of range at node " +
                                std::to_string(id));
      }
      if (mirrored[static_cast<size_t>(node.original)]++ != 0) {
        return Status::Internal("source node mirrored twice at node " +
                                std::to_string(id));
      }
      if (node.label != source->label(node.original)) {
        return Status::Internal("label disagrees with the source tree at "
                                "node " + std::to_string(id));
      }
    }
    for (const BNodeId child : {node.left, node.right}) {
      if (child < 0 || child >= n) {
        return Status::Internal("child link out of range at node " +
                                std::to_string(id));
      }
      if (seen[static_cast<size_t>(child)] != 0) {
        return Status::Internal("slot reached twice (not a tree) at node " +
                                std::to_string(child));
      }
      seen[static_cast<size_t>(child)] = 1;
      ++visited;
      stack.push_back(child);
    }
  }
  if (visited != n) {
    return Status::Internal("unreachable slots: visited " +
                            std::to_string(visited) + " of " +
                            std::to_string(n));
  }
  if (originals != original_count_) {
    return Status::Internal("original_count() does not match the nodes");
  }
  if (source != nullptr && originals != source->size()) {
    return Status::Internal("B(T) mirrors " + std::to_string(originals) +
                            " nodes but T has " +
                            std::to_string(source->size()));
  }
  return Status::Ok();
}

std::string NormalizedBinaryTree::ToString(
    const LabelDictionary& labels) const {
  std::string out;
  struct Frame {
    BNodeId node;
    int depth;
    char edge;  // 'L', 'R' or '*' for the root
  };
  std::vector<Frame> stack = {{root(), 0, '*'}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    out.append(static_cast<size_t>(2 * f.depth), ' ');
    out.push_back(f.edge);
    out.push_back(' ');
    out.append(labels.Name(nodes_[static_cast<size_t>(f.node)].label));
    out.push_back('\n');
    const BNode& n = nodes_[static_cast<size_t>(f.node)];
    if (n.right != kNoChild) stack.push_back({n.right, f.depth + 1, 'R'});
    if (n.left != kNoChild) stack.push_back({n.left, f.depth + 1, 'L'});
  }
  return out;
}

}  // namespace treesim
