#include "core/binary_tree.h"

#include <utility>

#include "util/logging.h"

namespace treesim {

NormalizedBinaryTree NormalizedBinaryTree::FromTree(const Tree& t) {
  TREESIM_CHECK(!t.empty());
  NormalizedBinaryTree b;
  b.nodes_.reserve(static_cast<size_t>(2 * t.size() + 1));

  // Iterative construction: each work item materializes one B(T) slot for
  // either an original T node or an ε pad. For an original node u,
  // left(u) = first child of u in T (or ε) and right(u) = next sibling of u
  // in T (or ε); the root has no sibling, so its right child is ε.
  struct Work {
    NodeId original;         // kInvalidNode => ε node
    BNodeId slot;            // index in nodes_ to fill
  };
  b.nodes_.push_back(BNode{});
  std::vector<Work> stack = {{t.root(), 0}};
  while (!stack.empty()) {
    const Work w = stack.back();
    stack.pop_back();
    BNode& node = b.nodes_[static_cast<size_t>(w.slot)];
    if (w.original == kInvalidNode) {
      node = BNode{kEpsilonLabel, kNoChild, kNoChild, kInvalidNode};
      continue;
    }
    ++b.original_count_;
    node.label = t.label(w.original);
    node.original = w.original;
    const BNodeId left_slot = static_cast<BNodeId>(b.nodes_.size());
    b.nodes_.push_back(BNode{});
    const BNodeId right_slot = static_cast<BNodeId>(b.nodes_.size());
    b.nodes_.push_back(BNode{});
    // `node` may dangle after push_back; re-fetch.
    b.nodes_[static_cast<size_t>(w.slot)].left = left_slot;
    b.nodes_[static_cast<size_t>(w.slot)].right = right_slot;
    stack.push_back({t.first_child(w.original), left_slot});
    stack.push_back({t.next_sibling(w.original), right_slot});
  }
  TREESIM_DCHECK(b.original_count_ == t.size());
  return b;
}

std::string NormalizedBinaryTree::ToString(
    const LabelDictionary& labels) const {
  std::string out;
  struct Frame {
    BNodeId node;
    int depth;
    char edge;  // 'L', 'R' or '*' for the root
  };
  std::vector<Frame> stack = {{root(), 0, '*'}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    out.append(static_cast<size_t>(2 * f.depth), ' ');
    out.push_back(f.edge);
    out.push_back(' ');
    out.append(labels.Name(nodes_[static_cast<size_t>(f.node)].label));
    out.push_back('\n');
    const BNode& n = nodes_[static_cast<size_t>(f.node)];
    if (n.right != kNoChild) stack.push_back({n.right, f.depth + 1, 'R'});
    if (n.left != kNoChild) stack.push_back({n.left, f.depth + 1, 'L'});
  }
  return out;
}

}  // namespace treesim
