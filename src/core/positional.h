#ifndef TREESIM_CORE_POSITIONAL_H_
#define TREESIM_CORE_POSITIONAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/branch_profile.h"

namespace treesim {

/// How |M'max(T1, T2, BiB, pr)| — the maximum one-to-one pairing of equal
/// branches whose preorder AND postorder positions differ by at most pr —
/// is computed. Soundness of the resulting lower bound only needs the
/// computed size to be >= the pairing induced by the optimal edit mapping
/// (Proposition 4.1/4.2); both modes satisfy that:
enum class MatchingMode {
  /// Exact maximum bipartite matching under both positional constraints
  /// (Kuhn's augmenting paths). Tightest PosBDist, O(occ^3) per branch.
  kExact,
  /// min(max 1-D matching on preorder, max 1-D matching on postorder):
  /// the linear-time evaluation the paper describes (each 1-D matching is an
  /// optimal greedy sweep over an ascending sequence). Never smaller than
  /// kExact, so PosBDist is never larger — still sound, slightly weaker.
  kGreedy,
  /// kExact when occurrence lists are small (the common case: most branches
  /// occur once or twice), kGreedy otherwise.
  kAuto,
};

/// Maximum one-to-one matching between ascending sequences `xs` and `ys`
/// allowing pairs with |x - y| <= pr. Greedy two-pointer sweep; optimal for
/// the 1-D problem. O(|xs| + |ys|).
int MaxMatching1D(const std::vector<int>& xs, const std::vector<int>& ys,
                  int pr);

/// Exact maximum bipartite matching between occurrence lists `a` and `b`
/// (each (pre, post)), edges where both coordinates differ by <= pr.
int MaxMatchingExact(const std::vector<std::pair<int, int>>& a,
                     const std::vector<std::pair<int, int>>& b, int pr);

/// |M'max| for one shared branch (Section 4.2), per `mode`.
int MaxPositionalMatching(const BranchEntry& a, const BranchEntry& b, int pr,
                          MatchingMode mode);

/// The positional binary branch distance PosBDist(T1, T2, pr) of
/// Definition 6. Non-increasing in pr; equals BDist at
/// pr >= max(|T1|, |T2|) - 1. Requires a.q == b.q.
int64_t PositionalBranchDistance(const BranchProfile& a,
                                 const BranchProfile& b, int pr,
                                 MatchingMode mode = MatchingMode::kAuto);

/// The optimistic lower bound `propt` of EDist(T1, T2) found by the
/// SearchLBound binary search of Algorithm 2: the smallest pr in
/// [ ||T1|-|T2||, max(|T1|,|T2|) ] with PosBDist(pr) <= factor * pr, where
/// factor = 4(q-1)+1. Guarantees
///   propt >= ceil(BDist / factor)  and  propt >= ||T1| - |T2||.
/// O((|T1|+|T2|) log min(|T1|,|T2|)) with kGreedy matching (Section 4.4).
int OptimisticBound(const BranchProfile& a, const BranchProfile& b,
                    MatchingMode mode = MatchingMode::kAuto);

/// Range-query filter test of Section 4.3: returns false when the candidate
/// can be pruned, i.e. when PosBDist(T1, T2, tau) > factor * tau, which by
/// Proposition 4.2 implies EDist > tau. Equivalent to `propt <= tau` but
/// needs a single PosBDist evaluation instead of a binary search.
bool RangeFilterPasses(const BranchProfile& a, const BranchProfile& b,
                       int tau, MatchingMode mode = MatchingMode::kAuto);

}  // namespace treesim

#endif  // TREESIM_CORE_POSITIONAL_H_
