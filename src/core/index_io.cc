#include "core/index_io.h"

#include <algorithm>
#include <charconv>
#include <utility>

#include "tree/forest_io.h"
#include "util/logging.h"
#include "util/status.h"

// Serialized grammar (line oriented, '\n' separated):
//
//   treesim-branch-index 1
//   q <q>
//   labels <count>                  # user labels; ε (id 0) is implicit
//   <escaped label name>            # count lines, ids 1..count
//   branches <count>
//   <id id ... id>                  # count lines, key_length ids each
//   profiles <count>
//   tree <size> <entry count>       # per tree, then per entry:
//   <branch id> <pre post pre post ...>
//
// Label names are escaped (\\ -> "\\\\", \n -> "\\n") so arbitrary XML text
// labels survive the line format.

namespace treesim {
namespace {

constexpr char kMagic[] = "treesim-branch-index 1";

std::string EscapeLabel(std::string_view label) {
  std::string out;
  out.reserve(label.size());
  for (const char c : label) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeLabel(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      ++i;
      out.push_back(text[i] == 'n' ? '\n' : text[i]);
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

/// Line/token cursor over the serialized text with Status-based errors.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  StatusOr<std::string_view> NextLine() {
    if (pos_ > text_.size()) return Err("unexpected end of index");
    size_t end = text_.find('\n', pos_);
    if (end == std::string_view::npos) end = text_.size();
    std::string_view line = text_.substr(pos_, end - pos_);
    pos_ = end + 1;
    ++line_number_;
    return line;
  }

  /// Parses "<keyword> <non-negative int>".
  StatusOr<int64_t> KeywordCount(std::string_view keyword) {
    TREESIM_ASSIGN_OR_RETURN(std::string_view line, NextLine());
    if (line.substr(0, keyword.size()) != keyword ||
        line.size() <= keyword.size() || line[keyword.size()] != ' ') {
      return Err("expected '" + std::string(keyword) + " <n>'");
    }
    return ParseInt(line.substr(keyword.size() + 1));
  }

  StatusOr<int64_t> ParseInt(std::string_view token) {
    int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size() ||
        value < 0) {
      return Err("bad integer '" + std::string(token) + "'");
    }
    return value;
  }

  Status Err(const std::string& what) const {
    return Status::InvalidArgument("index line " +
                                   std::to_string(line_number_) + ": " + what);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_number_ = 0;
};

/// Splits a line into integer tokens.
StatusOr<std::vector<int64_t>> ParseIntLine(Reader& reader,
                                            std::string_view line) {
  std::vector<int64_t> out;
  size_t pos = 0;
  while (pos < line.size()) {
    size_t end = line.find(' ', pos);
    if (end == std::string_view::npos) end = line.size();
    if (end > pos) {
      TREESIM_ASSIGN_OR_RETURN(const int64_t v,
                               reader.ParseInt(line.substr(pos, end - pos)));
      out.push_back(v);
    }
    pos = end + 1;
  }
  return out;
}

}  // namespace

std::string BranchIndexToString(const LabelDictionary& labels,
                                const BranchDictionary& branches,
                                const std::vector<BranchProfile>& profiles) {
  // Note: appended piecewise (no "literal" + to_string temporaries) to stay
  // clear of GCC 12's spurious -Wrestrict diagnostic on string operator+.
  std::string out = kMagic;
  out += "\nq ";
  out += std::to_string(branches.q());
  out += "\nlabels ";
  out += std::to_string(labels.size());
  for (LabelId id = 1; id < labels.id_bound(); ++id) {
    out.push_back('\n');
    out += EscapeLabel(labels.Name(id));
  }
  out += "\nbranches ";
  out += std::to_string(branches.size());
  for (BranchId id = 0; id < branches.size(); ++id) {
    out.push_back('\n');
    const BranchKey& key = branches.Key(id);
    for (size_t i = 0; i < key.size(); ++i) {
      if (i > 0) out.push_back(' ');
      out += std::to_string(key[i]);
    }
  }
  out += "\nprofiles ";
  out += std::to_string(profiles.size());
  for (const BranchProfile& p : profiles) {
    TREESIM_CHECK_EQ(p.q, branches.q()) << "profile/dictionary q mismatch";
    out += "\ntree ";
    out += std::to_string(p.tree_size);
    out.push_back(' ');
    out += std::to_string(p.entries.size());
    for (const BranchEntry& e : p.entries) {
      out.push_back('\n');
      out += std::to_string(e.branch);
      for (const auto& [pre, post] : e.occurrences) {
        out.push_back(' ');
        out += std::to_string(pre);
        out.push_back(' ');
        out += std::to_string(post);
      }
    }
  }
  out.push_back('\n');
  return out;
}

StatusOr<LoadedBranchIndex> BranchIndexFromString(std::string_view text) {
  Reader reader(text);
  TREESIM_ASSIGN_OR_RETURN(std::string_view magic, reader.NextLine());
  if (magic != kMagic) {
    return Status::InvalidArgument("not a treesim branch index (bad magic)");
  }
  TREESIM_ASSIGN_OR_RETURN(const int64_t q, reader.KeywordCount("q"));
  if (q < 2 || q > 20) return reader.Err("q out of range");

  LoadedBranchIndex index;
  index.labels = std::make_shared<LabelDictionary>();
  TREESIM_ASSIGN_OR_RETURN(const int64_t label_count,
                           reader.KeywordCount("labels"));
  for (int64_t i = 0; i < label_count; ++i) {
    TREESIM_ASSIGN_OR_RETURN(std::string_view line, reader.NextLine());
    const std::string name = UnescapeLabel(line);
    if (name.empty()) return reader.Err("empty label");
    const LabelId id = index.labels->Intern(name);
    if (id != static_cast<LabelId>(i + 1)) {
      return reader.Err("duplicate label '" + name + "'");
    }
  }

  index.branches = std::make_unique<BranchDictionary>(static_cast<int>(q));
  TREESIM_ASSIGN_OR_RETURN(const int64_t branch_count,
                           reader.KeywordCount("branches"));
  for (int64_t i = 0; i < branch_count; ++i) {
    TREESIM_ASSIGN_OR_RETURN(std::string_view line, reader.NextLine());
    TREESIM_ASSIGN_OR_RETURN(std::vector<int64_t> ids,
                             ParseIntLine(reader, line));
    if (static_cast<int>(ids.size()) != index.branches->key_length()) {
      return reader.Err("branch key length mismatch");
    }
    BranchKey key;
    key.reserve(ids.size());
    for (const int64_t id : ids) {
      if (id >= index.labels->id_bound()) {
        return reader.Err("branch references unknown label id");
      }
      key.push_back(static_cast<LabelId>(id));
    }
    if (index.branches->Intern(key) != static_cast<BranchId>(i)) {
      return reader.Err("duplicate branch key");
    }
  }

  TREESIM_ASSIGN_OR_RETURN(const int64_t profile_count,
                           reader.KeywordCount("profiles"));
  index.profiles.reserve(static_cast<size_t>(profile_count));
  for (int64_t t = 0; t < profile_count; ++t) {
    TREESIM_ASSIGN_OR_RETURN(std::string_view header, reader.NextLine());
    if (header.rfind("tree ", 0) != 0) {
      return reader.Err("expected 'tree <size> <entries>'");
    }
    TREESIM_ASSIGN_OR_RETURN(std::vector<int64_t> head,
                             ParseIntLine(reader, header.substr(5)));
    if (head.size() != 2) {
      return reader.Err("expected 'tree <size> <entries>'");
    }
    BranchProfile profile;
    profile.tree_size = static_cast<int>(head[0]);
    profile.q = static_cast<int>(q);
    profile.factor = index.branches->edit_distance_factor();
    BranchId previous_branch = 0;
    for (int64_t e = 0; e < head[1]; ++e) {
      TREESIM_ASSIGN_OR_RETURN(std::string_view line, reader.NextLine());
      TREESIM_ASSIGN_OR_RETURN(std::vector<int64_t> nums,
                               ParseIntLine(reader, line));
      if (nums.size() < 3 || nums.size() % 2 == 0) {
        return reader.Err("expected '<branch> <pre post>+'");
      }
      BranchEntry entry;
      if (nums[0] >= static_cast<int64_t>(index.branches->size())) {
        return reader.Err("profile references unknown branch id");
      }
      entry.branch = static_cast<BranchId>(nums[0]);
      if (e > 0 && entry.branch <= previous_branch) {
        return reader.Err("entries not ascending by branch id");
      }
      previous_branch = entry.branch;
      for (size_t i = 1; i + 1 < nums.size(); i += 2) {
        const int pre = static_cast<int>(nums[i]);
        const int post = static_cast<int>(nums[i + 1]);
        if (pre < 1 || post < 1 || pre > profile.tree_size ||
            post > profile.tree_size) {
          return reader.Err("position outside the tree");
        }
        entry.occurrences.emplace_back(pre, post);
        entry.posts_sorted.push_back(post);
      }
      if (!std::is_sorted(entry.occurrences.begin(),
                          entry.occurrences.end())) {
        return reader.Err("occurrences not ascending by preorder");
      }
      std::sort(entry.posts_sorted.begin(), entry.posts_sorted.end());
      profile.entries.push_back(std::move(entry));
    }
    index.profiles.push_back(std::move(profile));
  }
  return index;
}

Status SaveBranchIndex(const LabelDictionary& labels,
                       const BranchDictionary& branches,
                       const std::vector<BranchProfile>& profiles,
                       const std::string& path) {
  return WriteStringToFile(BranchIndexToString(labels, branches, profiles),
                           path);
}

StatusOr<LoadedBranchIndex> LoadBranchIndex(const std::string& path) {
  TREESIM_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  return BranchIndexFromString(text);
}

}  // namespace treesim
