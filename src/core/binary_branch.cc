#include "core/binary_branch.h"

#include <utility>

#include "tree/traversal.h"
#include "util/logging.h"
#include "util/safe_math.h"

namespace treesim {

// FNV-1a mixing wraps around uint64 by design.
TREESIM_NO_SANITIZE_INTEGER
size_t BranchDictionary::KeyHash::operator()(const BranchKey& k) const {
  // FNV-1a over the label ids.
  uint64_t h = 1469598103934665603ULL;
  for (const LabelId l : k) {
    h ^= static_cast<uint64_t>(l);
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

BranchDictionary::BranchDictionary(int q) : q_(q) {
  TREESIM_CHECK_GE(q, 2) << "branch level q must be >= 2 (Section 3.4)";
  TREESIM_CHECK_LE(q, 20) << "branch level q unreasonably large";
  key_length_ = CheckedSub(1 << q, 1);
}

BranchId BranchDictionary::Intern(const BranchKey& key) {
  TREESIM_CHECK_EQ(static_cast<int>(key.size()), key_length_);
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  const BranchId id = static_cast<BranchId>(keys_.size());
  keys_.push_back(key);
  ids_.emplace(key, id);
  return id;
}

std::optional<BranchId> BranchDictionary::Lookup(const BranchKey& key) const {
  auto it = ids_.find(key);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const BranchKey& BranchDictionary::Key(BranchId id) const {
  TREESIM_CHECK_LT(static_cast<size_t>(id), keys_.size());
  return keys_[static_cast<size_t>(id)];
}

std::string BranchDictionary::Name(BranchId id,
                                   const LabelDictionary& labels) const {
  const BranchKey& key = Key(id);
  // Render the preorder key back as nested "root(left,right)" terms.
  std::string out;
  size_t cursor = 0;
  // Recursive lambda over the preorder layout: a subtree of height h
  // occupies 2^h - 1 consecutive slots.
  auto render = [&](auto&& self, int height) -> void {
    out.append(labels.Name(key[cursor++]));
    if (height <= 1) return;
    out.push_back('(');
    self(self, height - 1);
    out.push_back(',');
    self(self, height - 1);
    out.push_back(')');
  };
  render(render, q_);
  return out;
}

namespace {

/// Fills `key` in preorder with the perfect height-(q-1) binary subtree of
/// B(T) rooted at `root`. In B(T): left(u) = first child of u in T,
/// right(u) = next sibling of u in T; children of ε are ε. The recursion
/// depth is bounded by q.
void FillBranchKey(const Tree& t, NodeId root, int q, BranchKey& key) {
  size_t cursor = 0;
  auto fill = [&](auto&& self, NodeId node, int level) -> void {
    key[cursor++] = (node == kInvalidNode) ? kEpsilonLabel : t.label(node);
    if (level + 1 >= q) return;
    if (node == kInvalidNode) {
      self(self, kInvalidNode, level + 1);
      self(self, kInvalidNode, level + 1);
    } else {
      self(self, t.first_child(node), level + 1);
      self(self, t.next_sibling(node), level + 1);
    }
  };
  fill(fill, root, 0);
}

}  // namespace

std::vector<BranchOccurrence> ExtractBranches(const Tree& t,
                                              BranchDictionary& dict) {
  TREESIM_CHECK(!t.empty());
  const int q = dict.q();
  const TraversalPositions positions = ComputePositions(t);

  BranchKey key(static_cast<size_t>(dict.key_length()), kEpsilonLabel);
  std::vector<BranchOccurrence> out;
  out.reserve(static_cast<size_t>(t.size()));
  for (const NodeId u : PreorderSequence(t)) {
    FillBranchKey(t, u, q, key);
    out.push_back(BranchOccurrence{
        dict.Intern(key), positions.pre[static_cast<size_t>(u)],
        positions.post[static_cast<size_t>(u)]});
  }
  return out;
}

std::vector<KeyedBranchOccurrence> ExtractBranchKeys(const Tree& t, int q) {
  TREESIM_CHECK(!t.empty());
  TREESIM_CHECK_GE(q, 2) << "branch level q must be >= 2 (Section 3.4)";
  const TraversalPositions positions = ComputePositions(t);
  const size_t key_length = (static_cast<size_t>(1) << q) - 1;

  std::vector<KeyedBranchOccurrence> out;
  out.reserve(static_cast<size_t>(t.size()));
  BranchKey key(key_length, kEpsilonLabel);
  for (const NodeId u : PreorderSequence(t)) {
    FillBranchKey(t, u, q, key);
    out.push_back(KeyedBranchOccurrence{
        key, positions.pre[static_cast<size_t>(u)],
        positions.post[static_cast<size_t>(u)]});
  }
  return out;
}

}  // namespace treesim
