#include "core/vptree.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace treesim {

VpTree::VpTree(const std::vector<BranchProfile>* profiles, Rng& rng)
    : profiles_(profiles) {
  TREESIM_CHECK(profiles_ != nullptr);
  std::vector<int> ids(profiles_->size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  if (!ids.empty()) {
    nodes_.reserve(2 * ids.size() / kLeafSize + 4);
    root_ = Build(ids, 0, ids.size(), rng);
  }
}

int VpTree::Build(std::vector<int>& ids, size_t begin, size_t end, Rng& rng) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= kLeafSize) {
    Node& leaf = nodes_.back();
    leaf.is_leaf = true;
    leaf.bucket.assign(ids.begin() + static_cast<ptrdiff_t>(begin),
                       ids.begin() + static_cast<ptrdiff_t>(end));
    std::sort(leaf.bucket.begin(), leaf.bucket.end());
    return node_index;
  }

  // Random vantage point; median split on distance to it.
  const size_t vp_at = begin + rng.UniformIndex(end - begin);
  std::swap(ids[begin], ids[vp_at]);
  const int vp = ids[begin];
  const BranchProfile& vantage = (*profiles_)[static_cast<size_t>(vp)];

  std::vector<std::pair<int64_t, int>> by_distance;
  by_distance.reserve(end - begin - 1);
  for (size_t i = begin + 1; i < end; ++i) {
    by_distance.emplace_back(
        BranchDistance(vantage, (*profiles_)[static_cast<size_t>(ids[i])]),
        ids[i]);
  }
  const size_t mid = by_distance.size() / 2;
  std::nth_element(by_distance.begin(),
                   by_distance.begin() + static_cast<ptrdiff_t>(mid),
                   by_distance.end());
  const int64_t median = by_distance[mid].first;

  // Partition: inside = d <= median (includes the median element so the
  // inside half is never empty), outside = d > median.
  size_t write = begin + 1;
  std::stable_partition(
      by_distance.begin(), by_distance.end(),
      [median](const std::pair<int64_t, int>& p) { return p.first <= median; });
  size_t inside_end = begin + 1;
  for (const auto& [d, id] : by_distance) {
    ids[write++] = id;
    if (d <= median) ++inside_end;
  }

  // Degenerate split (all distances equal): fall back to a leaf to
  // guarantee termination.
  if (inside_end == end || inside_end == begin + 1) {
    Node& leaf = nodes_[static_cast<size_t>(node_index)];
    leaf.is_leaf = true;
    leaf.bucket.assign(ids.begin() + static_cast<ptrdiff_t>(begin),
                       ids.begin() + static_cast<ptrdiff_t>(end));
    std::sort(leaf.bucket.begin(), leaf.bucket.end());
    return node_index;
  }

  const int inside = Build(ids, begin + 1, inside_end, rng);
  const int outside = Build(ids, inside_end, end, rng);
  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.profile = vp;
  node.radius = median;
  node.inside = inside;
  node.outside = outside;
  return node_index;
}

void VpTree::Search(int node_index, const BranchProfile& query,
                    int64_t radius, std::vector<int>& out,
                    int64_t& calls) const {
  const Node& node = nodes_[static_cast<size_t>(node_index)];
  if (node.is_leaf) {
    for (const int id : node.bucket) {
      ++calls;
      if (BranchDistance(query, (*profiles_)[static_cast<size_t>(id)]) <=
          radius) {
        out.push_back(id);
      }
    }
    return;
  }
  ++calls;
  const int64_t d =
      BranchDistance(query, (*profiles_)[static_cast<size_t>(node.profile)]);
  if (d <= radius) out.push_back(node.profile);
  // Triangle inequality pruning: the inside ball holds points within
  // node.radius of the vantage point, so it can contain a result only if
  // d - radius <= node.radius; the outside shell only if
  // d + radius > node.radius.
  if (d - radius <= node.radius) Search(node.inside, query, radius, out, calls);
  if (d + radius > node.radius) Search(node.outside, query, radius, out, calls);
}

std::vector<int> VpTree::RangeSearch(const BranchProfile& query,
                                     int64_t radius,
                                     int64_t* stats_distance_calls) const {
  std::vector<int> out;
  int64_t calls = 0;
  if (root_ >= 0 && radius >= 0) Search(root_, query, radius, out, calls);
  std::sort(out.begin(), out.end());
  if (stats_distance_calls != nullptr) *stats_distance_calls = calls;
  return out;
}

int VpTree::DepthOf(int node) const {
  if (node < 0) return 0;
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.is_leaf) return 1;
  return 1 + std::max(DepthOf(n.inside), DepthOf(n.outside));
}

int VpTree::Depth() const { return DepthOf(root_); }

}  // namespace treesim
