#include "core/vptree.h"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/status.h"

namespace treesim {

VpTree::VpTree(const std::vector<BranchProfile>* profiles, Rng& rng)
    : profiles_(profiles) {
  TREESIM_CHECK(profiles_ != nullptr);
  std::vector<int> ids(profiles_->size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  if (!ids.empty()) {
    nodes_.reserve(2 * ids.size() / kLeafSize + 4);
    root_ = Build(ids, 0, ids.size(), rng);
  }
  TREESIM_DCHECK_OK(ValidateInvariants());
}

Status VpTree::ValidateInvariants() const {
  const int n = size();
  if (root_ < 0) {
    if (n != 0) {
      return Status::Internal("profiles present but the tree has no root");
    }
    return Status::Ok();
  }
  std::vector<char> indexed(static_cast<size_t>(n), 0);
  std::vector<char> node_seen(nodes_.size(), 0);
  const auto record = [&](int id, std::vector<int>& ids) -> Status {
    if (id < 0 || id >= n) {
      return Status::Internal("profile id out of range: " +
                              std::to_string(id));
    }
    if (indexed[static_cast<size_t>(id)]++ != 0) {
      return Status::Internal("profile indexed twice: " + std::to_string(id));
    }
    ids.push_back(id);
    return Status::Ok();
  };
  // Walks a subtree, collecting every profile id it indexes into `ids`, and
  // checks ball containment at each internal node on the way back up.
  std::function<Status(int, std::vector<int>&)> walk =
      [&](int node_index, std::vector<int>& ids) -> Status {
    if (node_index < 0 || node_index >= static_cast<int>(nodes_.size())) {
      return Status::Internal("node link out of range: " +
                              std::to_string(node_index));
    }
    if (node_seen[static_cast<size_t>(node_index)]++ != 0) {
      return Status::Internal("node visited twice: " +
                              std::to_string(node_index));
    }
    const Node& node = nodes_[static_cast<size_t>(node_index)];
    if (node.is_leaf) {
      for (const int id : node.bucket) {
        TREESIM_RETURN_IF_ERROR(record(id, ids));
      }
      return Status::Ok();
    }
    TREESIM_RETURN_IF_ERROR(record(node.profile, ids));
    std::vector<int> inside_ids;
    std::vector<int> outside_ids;
    TREESIM_RETURN_IF_ERROR(walk(node.inside, inside_ids));
    TREESIM_RETURN_IF_ERROR(walk(node.outside, outside_ids));
    // Metric-ball containment: Search() prunes whole subtrees with the
    // triangle inequality, which is only sound when inside really means
    // d <= radius and outside really means d > radius.
    const BranchProfile& vantage = (*profiles_)[static_cast<size_t>(
        node.profile)];
    for (const int id : inside_ids) {
      if (BranchDistance(vantage, (*profiles_)[static_cast<size_t>(id)]) >
          node.radius) {
        return Status::Internal("inside ball violated at node " +
                                std::to_string(node_index) + " by profile " +
                                std::to_string(id));
      }
    }
    for (const int id : outside_ids) {
      if (BranchDistance(vantage, (*profiles_)[static_cast<size_t>(id)]) <=
          node.radius) {
        return Status::Internal("outside shell violated at node " +
                                std::to_string(node_index) + " by profile " +
                                std::to_string(id));
      }
    }
    ids.insert(ids.end(), inside_ids.begin(), inside_ids.end());
    ids.insert(ids.end(), outside_ids.begin(), outside_ids.end());
    return Status::Ok();
  };
  std::vector<int> all;
  TREESIM_RETURN_IF_ERROR(walk(root_, all));
  if (static_cast<int>(all.size()) != n) {
    return Status::Internal("indexed " + std::to_string(all.size()) +
                            " profiles of " + std::to_string(n));
  }
  return Status::Ok();
}

int VpTree::Build(std::vector<int>& ids, size_t begin, size_t end, Rng& rng) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= kLeafSize) {
    Node& leaf = nodes_.back();
    leaf.is_leaf = true;
    leaf.bucket.assign(ids.begin() + static_cast<ptrdiff_t>(begin),
                       ids.begin() + static_cast<ptrdiff_t>(end));
    std::sort(leaf.bucket.begin(), leaf.bucket.end());
    return node_index;
  }

  // Random vantage point; median split on distance to it.
  const size_t vp_at = begin + rng.UniformIndex(end - begin);
  std::swap(ids[begin], ids[vp_at]);
  const int vp = ids[begin];
  const BranchProfile& vantage = (*profiles_)[static_cast<size_t>(vp)];

  std::vector<std::pair<int64_t, int>> by_distance;
  by_distance.reserve(end - begin - 1);
  for (size_t i = begin + 1; i < end; ++i) {
    by_distance.emplace_back(
        BranchDistance(vantage, (*profiles_)[static_cast<size_t>(ids[i])]),
        ids[i]);
  }
  const size_t mid = by_distance.size() / 2;
  std::nth_element(by_distance.begin(),
                   by_distance.begin() + static_cast<ptrdiff_t>(mid),
                   by_distance.end());
  const int64_t median = by_distance[mid].first;

  // Partition: inside = d <= median (includes the median element so the
  // inside half is never empty), outside = d > median.
  size_t write = begin + 1;
  std::stable_partition(
      by_distance.begin(), by_distance.end(),
      [median](const std::pair<int64_t, int>& p) { return p.first <= median; });
  size_t inside_end = begin + 1;
  for (const auto& [d, id] : by_distance) {
    ids[write++] = id;
    if (d <= median) ++inside_end;
  }

  // Degenerate split (all distances equal): fall back to a leaf to
  // guarantee termination.
  if (inside_end == end || inside_end == begin + 1) {
    Node& leaf = nodes_[static_cast<size_t>(node_index)];
    leaf.is_leaf = true;
    leaf.bucket.assign(ids.begin() + static_cast<ptrdiff_t>(begin),
                       ids.begin() + static_cast<ptrdiff_t>(end));
    std::sort(leaf.bucket.begin(), leaf.bucket.end());
    return node_index;
  }

  const int inside = Build(ids, begin + 1, inside_end, rng);
  const int outside = Build(ids, inside_end, end, rng);
  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.profile = vp;
  node.radius = median;
  node.inside = inside;
  node.outside = outside;
  return node_index;
}

void VpTree::Search(int node_index, const BranchProfile& query,
                    int64_t radius, std::vector<int>& out,
                    int64_t& calls) const {
  const Node& node = nodes_[static_cast<size_t>(node_index)];
  if (node.is_leaf) {
    for (const int id : node.bucket) {
      ++calls;
      if (BranchDistance(query, (*profiles_)[static_cast<size_t>(id)]) <=
          radius) {
        out.push_back(id);
      }
    }
    return;
  }
  ++calls;
  const int64_t d =
      BranchDistance(query, (*profiles_)[static_cast<size_t>(node.profile)]);
  if (d <= radius) out.push_back(node.profile);
  // Triangle inequality pruning: the inside ball holds points within
  // node.radius of the vantage point, so it can contain a result only if
  // d - radius <= node.radius; the outside shell only if
  // d + radius > node.radius.
  if (d - radius <= node.radius) Search(node.inside, query, radius, out, calls);
  if (d + radius > node.radius) Search(node.outside, query, radius, out, calls);
}

std::vector<int> VpTree::RangeSearch(const BranchProfile& query,
                                     int64_t radius,
                                     int64_t* stats_distance_calls) const {
  std::vector<int> out;
  int64_t calls = 0;
  if (root_ >= 0 && radius >= 0) Search(root_, query, radius, out, calls);
  std::sort(out.begin(), out.end());
  TREESIM_COUNTER_INC("vptree.range_searches");
  TREESIM_COUNTER_ADD("vptree.distance_calls", calls);
  TREESIM_HISTOGRAM_RECORD("vptree.probe_distance_calls", CountBuckets(),
                           calls);
  if (stats_distance_calls != nullptr) *stats_distance_calls = calls;
  return out;
}

int VpTree::DepthOf(int node) const {
  if (node < 0) return 0;
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.is_leaf) return 1;
  return 1 + std::max(DepthOf(n.inside), DepthOf(n.outside));
}

int VpTree::Depth() const { return DepthOf(root_); }

}  // namespace treesim
