#ifndef TREESIM_CORE_BINARY_BRANCH_H_
#define TREESIM_CORE_BINARY_BRANCH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tree/tree.h"
#include "util/safe_math.h"

namespace treesim {

/// Dense id of an interned (q-level) binary branch — one symbol of the
/// branch alphabet Γ of Definition 3 / Definition 5.
using BranchId = uint32_t;

/// A branch key: the preorder label sequence of the perfect binary subtree
/// of height q-1 rooted at a node of the normalized B(T) (Definition 5),
/// ε-padded where B(T) has no node. Length is 2^q - 1; for the two-level
/// branch of Definition 2 this is (label(u), label(left), label(right)).
using BranchKey = std::vector<LabelId>;

/// Interns branch keys of one fixed level q into dense BranchIds. One
/// dictionary is shared by a dataset and all queries against it (the
/// vocabulary of the inverted file of Fig. 3a). Not thread-safe.
class BranchDictionary {
 public:
  /// `q` >= 2 (q = 1 records no structure; see Section 3.4).
  explicit BranchDictionary(int q);

  BranchDictionary(const BranchDictionary&) = delete;
  BranchDictionary& operator=(const BranchDictionary&) = delete;
  BranchDictionary(BranchDictionary&&) = default;
  BranchDictionary& operator=(BranchDictionary&&) = default;

  int q() const { return q_; }

  /// Key length 2^q - 1.
  int key_length() const { return key_length_; }

  /// The divisor of Theorems 3.2 / 3.3: 4(q-1) + 1, i.e. 5 for q = 2.
  int edit_distance_factor() const {
    return CheckedAdd(CheckedMul(4, q_ - 1), 1);
  }

  /// Returns the id of `key`, interning on first sight.
  /// `key.size()` must equal key_length().
  BranchId Intern(const BranchKey& key);

  /// Returns the id of `key` if known.
  std::optional<BranchId> Lookup(const BranchKey& key) const;

  /// The interned key of `id`.
  const BranchKey& Key(BranchId id) const;

  /// Number of distinct branches (|Γ| restricted to branches seen so far).
  size_t size() const { return keys_.size(); }

  /// Human-readable branch, e.g. "b(c,ε)" for a two-level branch.
  std::string Name(BranchId id, const LabelDictionary& labels) const;

 private:
  struct KeyHash {
    size_t operator()(const BranchKey& k) const;
  };

  int q_;
  int key_length_;
  std::unordered_map<BranchKey, BranchId, KeyHash> ids_;
  std::vector<BranchKey> keys_;
};

/// One branch occurrence: the q-level branch rooted at a node of T together
/// with that node's positional information (1-based preorder/postorder
/// positions in T — equivalently preorder/inorder in B(T), Section 4.2).
struct BranchOccurrence {
  BranchId branch;
  int pre;
  int post;
};

/// Extracts the q-level binary branch of EVERY node of `t` (each original
/// node roots exactly one branch in B(T)), interning keys into `dict`.
/// Runs in O(|T| * 2^q) by navigating the first-child/next-sibling links
/// directly — B(T) is never materialized. Result is in preorder of T.
std::vector<BranchOccurrence> ExtractBranches(const Tree& t,
                                              BranchDictionary& dict);

/// A branch occurrence before dictionary interning: the raw key instead of
/// a BranchId. This is the thread-safe half of ExtractBranches — it touches
/// only `t`, so many trees can be extracted concurrently while the id
/// assignment (which must stay in tree order to keep BranchIds
/// deterministic) happens in a later sequential pass.
struct KeyedBranchOccurrence {
  BranchKey key;
  int pre;
  int post;
};

/// Pure key extraction for the parallel inverted-file build: same
/// occurrences as ExtractBranches (preorder of T), no interning. `q` >= 2.
std::vector<KeyedBranchOccurrence> ExtractBranchKeys(const Tree& t, int q);

}  // namespace treesim

#endif  // TREESIM_CORE_BINARY_BRANCH_H_
