#include "core/branch_profile.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/hot.h"
#include "util/logging.h"
#include "util/safe_math.h"
#include "util/status.h"

namespace treesim {

int BranchProfile::total_count() const {
  int total = 0;
  for (const BranchEntry& e : entries) total = CheckedAdd(total, e.count());
  return total;
}

BranchProfile BranchProfile::FromTree(const Tree& t, BranchDictionary& dict) {
  BranchProfile p;
  p.tree_size = t.size();
  p.q = dict.q();
  p.factor = dict.edit_distance_factor();

  std::vector<BranchOccurrence> occurrences = ExtractBranches(t, dict);
  std::sort(occurrences.begin(), occurrences.end(),
            [](const BranchOccurrence& x, const BranchOccurrence& y) {
              if (x.branch != y.branch) return x.branch < y.branch;
              return x.pre < y.pre;
            });
  // Run-length over the (branch, pre)-sorted occurrences: count the
  // distinct branches first so every vector below is sized exactly once.
  size_t distinct = 0;
  for (size_t i = 0; i < occurrences.size(); ++i) {
    if (i == 0 || occurrences[i - 1].branch != occurrences[i].branch) {
      ++distinct;
    }
  }
  p.entries.reserve(distinct);
  for (size_t i = 0; i < occurrences.size();) {
    size_t j = i;
    while (j < occurrences.size() &&
           occurrences[j].branch == occurrences[i].branch) {
      ++j;
    }
    BranchEntry e{occurrences[i].branch, {}, {}};
    e.occurrences.reserve(j - i);
    e.posts_sorted.reserve(j - i);
    for (size_t o = i; o < j; ++o) {
      e.occurrences.emplace_back(occurrences[o].pre, occurrences[o].post);
      e.posts_sorted.push_back(occurrences[o].post);
    }
    std::sort(e.posts_sorted.begin(), e.posts_sorted.end());
    p.entries.push_back(std::move(e));
    i = j;
  }
  TREESIM_DCHECK_OK(p.ValidateInvariants());
  return p;
}

Status TREESIM_COLD BranchProfile::ValidateInvariants() const {
  if (tree_size < 0) return Status::Internal("negative tree size");
  if (q < 2) return Status::Internal("branch level q must be >= 2");
  if (factor != 4 * (q - 1) + 1) {
    return Status::Internal("factor disagrees with 4(q-1)+1 for q=" +
                            std::to_string(q));
  }
  int total = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const BranchEntry& e = entries[i];
    if (i > 0 && entries[i - 1].branch >= e.branch) {
      return Status::Internal("entries not strictly ascending by branch id");
    }
    if (e.occurrences.empty()) {
      return Status::Internal("zero-count entry for branch " +
                              std::to_string(e.branch));
    }
    if (e.posts_sorted.size() != e.occurrences.size()) {
      return Status::Internal("posts_sorted size mismatch for branch " +
                              std::to_string(e.branch));
    }
    std::vector<int> posts;
    posts.reserve(e.occurrences.size());
    for (size_t o = 0; o < e.occurrences.size(); ++o) {
      const auto& [pre, post] = e.occurrences[o];
      if (pre < 1 || pre > tree_size || post < 1 || post > tree_size) {
        return Status::Internal("position outside [1, |T|] for branch " +
                                std::to_string(e.branch));
      }
      if (o > 0 && e.occurrences[o - 1].first >= pre) {
        return Status::Internal("occurrences not ascending by preorder for "
                                "branch " + std::to_string(e.branch));
      }
      posts.push_back(post);
    }
    std::sort(posts.begin(), posts.end());
    if (posts != e.posts_sorted) {
      return Status::Internal("posts_sorted is not the sorted occurrence "
                              "postorders for branch " +
                              std::to_string(e.branch));
    }
    total = CheckedAdd(total, e.count());
  }
  // Every node of T roots exactly one branch (Definition 3).
  if (total != tree_size) {
    return Status::Internal("occurrence total " + std::to_string(total) +
                            " != tree size " + std::to_string(tree_size));
  }
  return Status::Ok();
}

int64_t TREESIM_HOT BranchDistance(const BranchProfile& a,
                                   const BranchProfile& b) {
  TREESIM_CHECK_EQ(a.q, b.q) << "profiles extracted at different levels";
  int64_t dist = 0;
  size_t i = 0;
  size_t j = 0;
  // Merge over the two id-sorted sparse vectors.
  while (i < a.entries.size() && j < b.entries.size()) {
    const BranchEntry& ea = a.entries[i];
    const BranchEntry& eb = b.entries[j];
    if (ea.branch == eb.branch) {
      dist = CheckedAdd<int64_t>(dist, std::abs(ea.count() - eb.count()));
      ++i;
      ++j;
    } else if (ea.branch < eb.branch) {
      dist = CheckedAdd<int64_t>(dist, ea.count());
      ++i;
    } else {
      dist = CheckedAdd<int64_t>(dist, eb.count());
      ++j;
    }
  }
  for (; i < a.entries.size(); ++i) {
    dist = CheckedAdd<int64_t>(dist, a.entries[i].count());
  }
  for (; j < b.entries.size(); ++j) {
    dist = CheckedAdd<int64_t>(dist, b.entries[j].count());
  }
  return dist;
}

int TREESIM_HOT BranchDistanceLowerBound(const BranchProfile& a,
                                         const BranchProfile& b) {
  const int64_t dist = BranchDistance(a, b);
  const int64_t factor = a.factor;
  // ceil(BDist / [4(q-1)+1]) — Theorem 3.2's lower bound. A wrapped sum
  // here would under- or over-state the bound and corrupt pruning, hence
  // the checked ceiling arithmetic.
  return CheckedCast<int>(CheckedAdd(dist, factor - 1) / factor);
}

}  // namespace treesim
