#include "core/branch_profile.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace treesim {

int BranchProfile::total_count() const {
  int total = 0;
  for (const BranchEntry& e : entries) total += e.count();
  return total;
}

BranchProfile BranchProfile::FromTree(const Tree& t, BranchDictionary& dict) {
  BranchProfile p;
  p.tree_size = t.size();
  p.q = dict.q();
  p.factor = dict.edit_distance_factor();

  std::vector<BranchOccurrence> occurrences = ExtractBranches(t, dict);
  std::sort(occurrences.begin(), occurrences.end(),
            [](const BranchOccurrence& x, const BranchOccurrence& y) {
              if (x.branch != y.branch) return x.branch < y.branch;
              return x.pre < y.pre;
            });
  for (const BranchOccurrence& occ : occurrences) {
    if (p.entries.empty() || p.entries.back().branch != occ.branch) {
      p.entries.push_back(BranchEntry{occ.branch, {}, {}});
    }
    p.entries.back().occurrences.emplace_back(occ.pre, occ.post);
    p.entries.back().posts_sorted.push_back(occ.post);
  }
  for (BranchEntry& e : p.entries) {
    std::sort(e.posts_sorted.begin(), e.posts_sorted.end());
  }
  return p;
}

int64_t BranchDistance(const BranchProfile& a, const BranchProfile& b) {
  TREESIM_CHECK_EQ(a.q, b.q) << "profiles extracted at different levels";
  int64_t dist = 0;
  size_t i = 0;
  size_t j = 0;
  // Merge over the two id-sorted sparse vectors.
  while (i < a.entries.size() && j < b.entries.size()) {
    const BranchEntry& ea = a.entries[i];
    const BranchEntry& eb = b.entries[j];
    if (ea.branch == eb.branch) {
      dist += std::abs(ea.count() - eb.count());
      ++i;
      ++j;
    } else if (ea.branch < eb.branch) {
      dist += ea.count();
      ++i;
    } else {
      dist += eb.count();
      ++j;
    }
  }
  for (; i < a.entries.size(); ++i) dist += a.entries[i].count();
  for (; j < b.entries.size(); ++j) dist += b.entries[j].count();
  return dist;
}

int BranchDistanceLowerBound(const BranchProfile& a, const BranchProfile& b) {
  const int64_t dist = BranchDistance(a, b);
  const int64_t factor = a.factor;
  return static_cast<int>((dist + factor - 1) / factor);
}

}  // namespace treesim
