#include "core/positional.h"

#include <algorithm>
#include <cstdlib>

#include "util/hot.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/safe_math.h"

namespace treesim {
namespace {

/// Exact matching is only attempted when the edge grid stays small; beyond
/// this the greedy bound is used (still sound, see MatchingMode docs).
constexpr int kExactMatchingGridLimit = 64 * 64;

/// Kuhn's augmenting-path search: tries to (re)assign left node `i`.
bool TryAugment(const std::vector<std::pair<int, int>>& a,
                const std::vector<std::pair<int, int>>& b, int pr, int i,
                std::vector<char>& visited, std::vector<int>& match_of_b) {
  for (size_t j = 0; j < b.size(); ++j) {
    if (visited[j]) continue;
    if (std::abs(a[static_cast<size_t>(i)].first - b[j].first) > pr) continue;
    if (std::abs(a[static_cast<size_t>(i)].second - b[j].second) > pr)
      continue;
    visited[j] = 1;
    if (match_of_b[j] < 0 ||
        TryAugment(a, b, pr, match_of_b[j], visited, match_of_b)) {
      match_of_b[j] = i;
      return true;
    }
  }
  return false;
}

}  // namespace

int MaxMatching1D(const std::vector<int>& xs, const std::vector<int>& ys,
                  int pr) {
  int matched = 0;
  size_t i = 0;
  size_t j = 0;
  // Both sequences ascend, so the closest-unmatched-pair sweep is optimal:
  // skipping the smaller endpoint can never hurt (exchange argument).
  while (i < xs.size() && j < ys.size()) {
    const int diff = xs[i] - ys[j];
    if (std::abs(diff) <= pr) {
      ++matched;
      ++i;
      ++j;
    } else if (diff < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return matched;
}

int MaxMatchingExact(const std::vector<std::pair<int, int>>& a,
                     const std::vector<std::pair<int, int>>& b, int pr) {
  std::vector<int> match_of_b(b.size(), -1);
  std::vector<char> visited(b.size(), 0);
  int matched = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    std::fill(visited.begin(), visited.end(), 0);
    if (TryAugment(a, b, pr, static_cast<int>(i), visited, match_of_b)) {
      ++matched;
    }
  }
  return matched;
}

int MaxPositionalMatching(const BranchEntry& a, const BranchEntry& b, int pr,
                          MatchingMode mode) {
  const int ca = a.count();
  const int cb = b.count();
  if (ca == 0 || cb == 0) return 0;
  // Single-occurrence branches (the common case) need no search at all.
  if (ca == 1 && cb == 1) {
    const auto& x = a.occurrences[0];
    const auto& y = b.occurrences[0];
    return (std::abs(x.first - y.first) <= pr &&
            std::abs(x.second - y.second) <= pr)
               ? 1
               : 0;
  }
  const bool exact = mode == MatchingMode::kExact ||
                     (mode == MatchingMode::kAuto &&
                      static_cast<int64_t>(ca) * cb <= kExactMatchingGridLimit);
  if (exact) {
    return MaxMatchingExact(a.occurrences, b.occurrences, pr);
  }
  // Preorder positions in `occurrences` are already ascending; extract them.
  std::vector<int> pres_a(a.occurrences.size());
  std::vector<int> pres_b(b.occurrences.size());
  for (size_t i = 0; i < a.occurrences.size(); ++i) {
    pres_a[i] = a.occurrences[i].first;
  }
  for (size_t i = 0; i < b.occurrences.size(); ++i) {
    pres_b[i] = b.occurrences[i].first;
  }
  return std::min(MaxMatching1D(pres_a, pres_b, pr),
                  MaxMatching1D(a.posts_sorted, b.posts_sorted, pr));
}

int64_t TREESIM_HOT PositionalBranchDistance(const BranchProfile& a,
                                             const BranchProfile& b, int pr,
                                             MatchingMode mode) {
  TREESIM_CHECK_EQ(a.q, b.q) << "profiles extracted at different levels";
  int64_t dist = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    const BranchEntry& ea = a.entries[i];
    const BranchEntry& eb = b.entries[j];
    if (ea.branch == eb.branch) {
      const int m = MaxPositionalMatching(ea, eb, pr, mode);
      dist = CheckedAdd<int64_t>(
          dist, CheckedSub(CheckedAdd(ea.count(), eb.count()),
                           CheckedMul(2, m)));
      ++i;
      ++j;
    } else if (ea.branch < eb.branch) {
      dist = CheckedAdd<int64_t>(dist, ea.count());
      ++i;
    } else {
      dist = CheckedAdd<int64_t>(dist, eb.count());
      ++j;
    }
  }
  for (; i < a.entries.size(); ++i) {
    dist = CheckedAdd<int64_t>(dist, a.entries[i].count());
  }
  for (; j < b.entries.size(); ++j) {
    dist = CheckedAdd<int64_t>(dist, b.entries[j].count());
  }
  return dist;
}

int OptimisticBound(const BranchProfile& a, const BranchProfile& b,
                    MatchingMode mode) {
  const int factor = a.factor;
  const int pr_min = std::abs(a.tree_size - b.tree_size);
  const int pr_max = std::max(a.tree_size, b.tree_size);
  auto bounded = [&](int pr) {
    return PositionalBranchDistance(a, b, pr, mode) <=
           CheckedMul<int64_t>(factor, pr);
  };
  // PosBDist(pr) is non-increasing in pr, so `bounded` is monotone and at
  // pr_max it always holds (every equal-branch pair is within position
  // range, so PosBDist = BDist <= |T1|+|T2| <= factor * pr_max).
  TREESIM_COUNTER_INC("positional.searchlbound_calls");
  if (bounded(pr_min)) {
    TREESIM_HISTOGRAM_RECORD("positional.propt", SmallValueBuckets(),
                             static_cast<int64_t>(pr_min));
    return pr_min;
  }
  int lo = pr_min + 1;
  int hi = pr_max;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (bounded(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  TREESIM_HISTOGRAM_RECORD("positional.propt", SmallValueBuckets(),
                           static_cast<int64_t>(lo));
  return lo;
}

bool RangeFilterPasses(const BranchProfile& a, const BranchProfile& b,
                       int tau, MatchingMode mode) {
  if (tau < 0) return false;
  if (std::abs(a.tree_size - b.tree_size) > tau) return false;
  return PositionalBranchDistance(a, b, tau, mode) <=
         CheckedMul<int64_t>(a.factor, tau);
}

}  // namespace treesim
