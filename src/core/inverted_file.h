#ifndef TREESIM_CORE_INVERTED_FILE_H_
#define TREESIM_CORE_INVERTED_FILE_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/binary_branch.h"
#include "core/branch_profile.h"
#include "tree/tree.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace treesim {

/// The extended inverted file IFI of Algorithm 1 (Fig. 3a): a vocabulary of
/// binary branches plus, per branch, an inverted list of
/// (tree id, occurrence count, positions). Vector representations of a whole
/// dataset are built by one scan of the IFI, exactly as Algorithm 1 does.
/// Construction is O(sum |Ti|) time and space (Section 4.4).
class InvertedFileIndex {
 public:
  /// One inverted-list element: all occurrences of the branch in one tree.
  struct Posting {
    int tree_id = 0;
    /// (preorder, postorder) positions, ascending by preorder.
    std::vector<std::pair<int, int>> positions;

    int count() const { return static_cast<int>(positions.size()); }
  };

  /// `q` is the branch level (2 = the binary branch of Definition 2).
  explicit InvertedFileIndex(int q) : dict_(q) {}

  InvertedFileIndex(const InvertedFileIndex&) = delete;
  InvertedFileIndex& operator=(const InvertedFileIndex&) = delete;
  InvertedFileIndex(InvertedFileIndex&&) = default;
  InvertedFileIndex& operator=(InvertedFileIndex&&) = default;

  /// Indexes one tree; returns its dense tree id (0, 1, 2, ...).
  int Add(const Tree& t);

  /// Indexes a whole forest, ids in input order. With a pool, branch-key
  /// extraction — the O(|Ti| * 2^q) part of Algorithm 1 — runs in parallel
  /// across trees; interning and inverted-list appends stay sequential in
  /// tree order, so BranchIds, postings and positions are byte-identical to
  /// calling Add() per tree. nullptr builds sequentially.
  void AddAll(const std::vector<Tree>& trees, ThreadPool* pool = nullptr);

  /// Number of indexed trees.
  int tree_count() const { return tree_count_; }

  /// The branch vocabulary (shared with query profile extraction so ids
  /// agree between database and query vectors).
  BranchDictionary& branch_dict() { return dict_; }
  const BranchDictionary& branch_dict() const { return dict_; }

  /// Inverted list of one branch, ordered by tree id.
  const std::vector<Posting>& postings(BranchId branch) const;

  /// Trees (by id) containing `branch`; convenience for examples/tools.
  std::vector<int> TreesContaining(BranchId branch) const;

  /// Materializes the sparse vector + positional sequences of every indexed
  /// tree by scanning the inverted lists (Algorithm 1, lines 6-13).
  /// Result is indexed by tree id; entries are sorted by branch id.
  std::vector<BranchProfile> BuildProfiles() const;

  /// Verifies the IFI invariants of Fig. 3a: inverted lists strictly
  /// ascending by tree id with positive counts, positions ascending by
  /// preorder and inside [1, |Ti|], and per-tree occurrence totals equal to
  /// the tree sizes (every node contributes exactly one branch). O(index
  /// size). Debug builds run this at the start of BuildProfiles().
  Status ValidateInvariants() const;

 private:
  friend struct InvariantTestPeer;  // tests corrupt lists to hit validators

  /// Shared tail of Add()/AddAll(): assigns the next tree id and appends
  /// `occurrences` (any order) to the inverted lists.
  int AddOccurrences(int tree_size, std::vector<BranchOccurrence> occurrences);

  BranchDictionary dict_;
  std::vector<std::vector<Posting>> lists_;  // indexed by BranchId
  std::vector<int> tree_sizes_;              // indexed by tree id
  int tree_count_ = 0;
};

}  // namespace treesim

#endif  // TREESIM_CORE_INVERTED_FILE_H_
