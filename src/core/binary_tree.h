#ifndef TREESIM_CORE_BINARY_TREE_H_
#define TREESIM_CORE_BINARY_TREE_H_

#include <string>
#include <vector>

#include "tree/tree.h"
#include "util/status.h"

namespace treesim {

/// The normalized binary tree representation B(T) of Section 3.2: the
/// left-child/right-sibling transform of T, padded with ε nodes so that
/// every ORIGINAL node has exactly two children and every leaf is an ε node
/// (Fig. 2 of the paper). Materialized explicitly for inspection, testing
/// and documentation; the branch extractor navigates T directly and never
/// needs this structure.
class NormalizedBinaryTree {
 public:
  /// Index into nodes(). The root of B(T) is node 0.
  using BNodeId = int32_t;
  static constexpr BNodeId kNoChild = -1;

  struct BNode {
    /// Label of the node; kEpsilonLabel for padding nodes.
    LabelId label = kEpsilonLabel;
    /// Left/right children; kNoChild only for ε nodes (originals are padded).
    BNodeId left = kNoChild;
    BNodeId right = kNoChild;
    /// The T node this B(T) node mirrors, or kInvalidNode for ε nodes.
    NodeId original = kInvalidNode;
  };

  /// Builds B(T) from a non-empty tree.
  static NormalizedBinaryTree FromTree(const Tree& t);

  const std::vector<BNode>& nodes() const { return nodes_; }
  BNodeId root() const { return 0; }

  /// Number of B(T) nodes that mirror original T nodes.
  int original_count() const { return original_count_; }

  /// Number of ε padding nodes. Every original node has exactly two
  /// children in the normalized form, so this is original_count() + 1.
  int epsilon_count() const {
    return static_cast<int>(nodes_.size()) - original_count_;
  }

  bool is_epsilon(BNodeId n) const {
    return nodes_[static_cast<size_t>(n)].original == kInvalidNode;
  }

  /// Multi-line ASCII rendering (indented preorder), for debugging/examples.
  std::string ToString(const LabelDictionary& labels) const;

  /// Verifies the ε-padding shape of Section 3.2: node 0 is the root, every
  /// slot is reachable exactly once (a well-formed binary tree), every
  /// original node has BOTH children, every ε node is a leaf labeled
  /// kEpsilonLabel, and epsilon_count() == original_count() + 1. When
  /// `source` is non-null the `original` back-links are also cross-checked
  /// against it (distinct, in range, labels agree, one per source node).
  /// O(|B(T)|). Debug builds run this at the end of FromTree().
  Status ValidateInvariants(const Tree* source = nullptr) const;

 private:
  friend struct InvariantTestPeer;  // tests corrupt nodes to hit validators

  std::vector<BNode> nodes_;
  int original_count_ = 0;
};

}  // namespace treesim

#endif  // TREESIM_CORE_BINARY_TREE_H_
