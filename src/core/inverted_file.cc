#include "core/inverted_file.h"

#include <algorithm>

#include "util/logging.h"

namespace treesim {

int InvertedFileIndex::Add(const Tree& t) {
  const int tree_id = tree_count_++;
  tree_sizes_.push_back(t.size());
  // Traverse(), insertPreOrder()/insertPostOrder() of Algorithm 1: one pass
  // produces every branch occurrence with both positions; appending at the
  // tail of the inverted list keeps each update O(1).
  std::vector<BranchOccurrence> occurrences = ExtractBranches(t, dict_);
  if (lists_.size() < dict_.size()) lists_.resize(dict_.size());
  std::sort(occurrences.begin(), occurrences.end(),
            [](const BranchOccurrence& x, const BranchOccurrence& y) {
              if (x.branch != y.branch) return x.branch < y.branch;
              return x.pre < y.pre;
            });
  for (const BranchOccurrence& occ : occurrences) {
    std::vector<Posting>& list = lists_[static_cast<size_t>(occ.branch)];
    if (list.empty() || list.back().tree_id != tree_id) {
      list.push_back(Posting{tree_id, {}});
    }
    list.back().positions.emplace_back(occ.pre, occ.post);
  }
  return tree_id;
}

const std::vector<InvertedFileIndex::Posting>& InvertedFileIndex::postings(
    BranchId branch) const {
  TREESIM_CHECK_LT(static_cast<size_t>(branch), lists_.size());
  return lists_[static_cast<size_t>(branch)];
}

std::vector<int> InvertedFileIndex::TreesContaining(BranchId branch) const {
  std::vector<int> out;
  for (const Posting& p : postings(branch)) out.push_back(p.tree_id);
  return out;
}

std::vector<BranchProfile> InvertedFileIndex::BuildProfiles() const {
  std::vector<BranchProfile> profiles(static_cast<size_t>(tree_count_));
  for (int i = 0; i < tree_count_; ++i) {
    BranchProfile& p = profiles[static_cast<size_t>(i)];
    p.tree_size = tree_sizes_[static_cast<size_t>(i)];
    p.q = dict_.q();
    p.factor = dict_.edit_distance_factor();
  }
  // One scan of the IFI; branch ids ascend, so each profile's entries come
  // out sorted by branch id (Algorithm 1, lines 6-13).
  for (size_t branch = 0; branch < lists_.size(); ++branch) {
    for (const Posting& posting : lists_[branch]) {
      BranchProfile& p = profiles[static_cast<size_t>(posting.tree_id)];
      BranchEntry entry;
      entry.branch = static_cast<BranchId>(branch);
      entry.occurrences = posting.positions;
      entry.posts_sorted.reserve(posting.positions.size());
      for (const auto& [pre, post] : posting.positions) {
        entry.posts_sorted.push_back(post);
      }
      std::sort(entry.posts_sorted.begin(), entry.posts_sorted.end());
      p.entries.push_back(std::move(entry));
    }
  }
  return profiles;
}

}  // namespace treesim
