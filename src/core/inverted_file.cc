#include "core/inverted_file.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/safe_math.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace treesim {

int InvertedFileIndex::Add(const Tree& t) {
  // Traverse(), insertPreOrder()/insertPostOrder() of Algorithm 1: one pass
  // produces every branch occurrence with both positions; appending at the
  // tail of the inverted list keeps each update O(1).
  return AddOccurrences(t.size(), ExtractBranches(t, dict_));
}

int InvertedFileIndex::AddOccurrences(
    int tree_size, std::vector<BranchOccurrence> occurrences) {
  TREESIM_COUNTER_INC("index.trees_added");
  TREESIM_COUNTER_ADD("index.branch_occurrences",
                      static_cast<int64_t>(occurrences.size()));
  const int tree_id = tree_count_++;
  tree_sizes_.push_back(tree_size);
  if (lists_.size() < dict_.size()) lists_.resize(dict_.size());
  std::sort(occurrences.begin(), occurrences.end(),
            [](const BranchOccurrence& x, const BranchOccurrence& y) {
              if (x.branch != y.branch) return x.branch < y.branch;
              return x.pre < y.pre;
            });
  for (const BranchOccurrence& occ : occurrences) {
    std::vector<Posting>& list = lists_[static_cast<size_t>(occ.branch)];
    if (list.empty() || list.back().tree_id != tree_id) {
      list.push_back(Posting{tree_id, {}});
    }
    list.back().positions.emplace_back(occ.pre, occ.post);
  }
  TREESIM_GAUGE_SET("index.distinct_branches",
                    static_cast<int64_t>(dict_.size()));
  return tree_id;
}

void InvertedFileIndex::AddAll(const std::vector<Tree>& trees,
                               ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1 || trees.size() < 2) {
    for (const Tree& t : trees) Add(t);
    return;
  }
  // Parallel phase: per-tree branch-key extraction into disjoint slots —
  // the traversal-heavy part of Algorithm 1, touching only the input tree.
  std::vector<std::vector<KeyedBranchOccurrence>> extracted(trees.size());
  const int q = dict_.q();
  pool->ParallelFor(static_cast<int64_t>(trees.size()), [&](int64_t i) {
    extracted[static_cast<size_t>(i)] =
        ExtractBranchKeys(trees[static_cast<size_t>(i)], q);
  });
  // Sequential phase, in tree order: interning assigns BranchIds in exactly
  // the order the per-tree Add() path would (preorder within each tree), so
  // the resulting dictionary and postings are byte-identical to a
  // sequential build — determinism the tests pin down.
  std::vector<BranchOccurrence> occurrences;
  for (size_t i = 0; i < trees.size(); ++i) {
    occurrences.clear();
    occurrences.reserve(extracted[i].size());
    for (const KeyedBranchOccurrence& occ : extracted[i]) {
      occurrences.push_back(
          BranchOccurrence{dict_.Intern(occ.key), occ.pre, occ.post});
    }
    AddOccurrences(trees[i].size(), std::move(occurrences));
    extracted[i].clear();  // free the keys as we go
  }
}

const std::vector<InvertedFileIndex::Posting>& InvertedFileIndex::postings(
    BranchId branch) const {
  TREESIM_CHECK_LT(static_cast<size_t>(branch), lists_.size());
  return lists_[static_cast<size_t>(branch)];
}

std::vector<int> InvertedFileIndex::TreesContaining(BranchId branch) const {
  std::vector<int> out;
  for (const Posting& p : postings(branch)) out.push_back(p.tree_id);
  return out;
}

Status InvertedFileIndex::ValidateInvariants() const {
  if (tree_count_ < 0) return Status::Internal("negative tree count");
  if (tree_sizes_.size() != static_cast<size_t>(tree_count_)) {
    return Status::Internal("tree_sizes out of step with tree count");
  }
  if (lists_.size() > dict_.size()) {
    return Status::Internal("more inverted lists than interned branches");
  }
  std::vector<int64_t> occurrences_per_tree(static_cast<size_t>(tree_count_),
                                            0);
  for (size_t branch = 0; branch < lists_.size(); ++branch) {
    const std::vector<Posting>& list = lists_[branch];
    for (size_t p = 0; p < list.size(); ++p) {
      const Posting& posting = list[p];
      if (posting.tree_id < 0 || posting.tree_id >= tree_count_) {
        return Status::Internal("posting names unknown tree " +
                                std::to_string(posting.tree_id));
      }
      if (p > 0 && list[p - 1].tree_id >= posting.tree_id) {
        return Status::Internal("postings not strictly ascending by tree id "
                                "for branch " + std::to_string(branch));
      }
      if (posting.positions.empty()) {
        return Status::Internal("empty posting for branch " +
                                std::to_string(branch));
      }
      const int tree_size = tree_sizes_[static_cast<size_t>(posting.tree_id)];
      for (size_t o = 0; o < posting.positions.size(); ++o) {
        const auto& [pre, post] = posting.positions[o];
        if (pre < 1 || pre > tree_size || post < 1 || post > tree_size) {
          return Status::Internal("position outside [1, |T|] in tree " +
                                  std::to_string(posting.tree_id));
        }
        if (o > 0 && posting.positions[o - 1].first >= pre) {
          return Status::Internal("positions not ascending by preorder in "
                                  "tree " + std::to_string(posting.tree_id));
        }
      }
      int64_t& tree_total =
          occurrences_per_tree[static_cast<size_t>(posting.tree_id)];
      tree_total = CheckedAdd<int64_t>(tree_total, posting.count());
    }
  }
  // Every node of every indexed tree roots exactly one branch, so the
  // per-tree totals across all lists must equal the tree sizes.
  for (int t = 0; t < tree_count_; ++t) {
    if (occurrences_per_tree[static_cast<size_t>(t)] !=
        tree_sizes_[static_cast<size_t>(t)]) {
      return Status::Internal("occurrence total of tree " + std::to_string(t) +
                              " does not match its size");
    }
  }
  return Status::Ok();
}

std::vector<BranchProfile> InvertedFileIndex::BuildProfiles() const {
  TREESIM_TRACE_SPAN("index.build_profiles");
  TREESIM_DCHECK_OK(ValidateInvariants());
  // Inverted-list skew is what decides whether the Section 5 candidate
  // counts stay small, so the length distribution lands in the registry.
  for (const std::vector<Posting>& list : lists_) {
    TREESIM_HISTOGRAM_RECORD("index.inverted_list_length", CountBuckets(),
                             static_cast<int64_t>(list.size()));
  }
  std::vector<BranchProfile> profiles(static_cast<size_t>(tree_count_));
  for (int i = 0; i < tree_count_; ++i) {
    BranchProfile& p = profiles[static_cast<size_t>(i)];
    p.tree_size = tree_sizes_[static_cast<size_t>(i)];
    p.q = dict_.q();
    p.factor = dict_.edit_distance_factor();
  }
  // One scan of the IFI; branch ids ascend, so each profile's entries come
  // out sorted by branch id (Algorithm 1, lines 6-13).
  for (size_t branch = 0; branch < lists_.size(); ++branch) {
    for (const Posting& posting : lists_[branch]) {
      BranchProfile& p = profiles[static_cast<size_t>(posting.tree_id)];
      BranchEntry entry;
      entry.branch = static_cast<BranchId>(branch);
      entry.occurrences = posting.positions;
      entry.posts_sorted.reserve(posting.positions.size());
      for (const auto& [pre, post] : posting.positions) {
        entry.posts_sorted.push_back(post);
      }
      std::sort(entry.posts_sorted.begin(), entry.posts_sorted.end());
      p.entries.push_back(std::move(entry));
    }
  }
#ifndef NDEBUG
  for (const BranchProfile& p : profiles) {
    TREESIM_DCHECK_OK(p.ValidateInvariants());
  }
#endif
  return profiles;
}

}  // namespace treesim
