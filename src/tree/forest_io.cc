#include "tree/forest_io.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "tree/bracket.h"
#include "util/status.h"

namespace treesim {

std::string ForestToString(const std::vector<Tree>& forest) {
  std::string out;
  out += "# treesim forest: " + std::to_string(forest.size()) +
         " trees, one bracket tree per line\n";
  for (const Tree& t : forest) {
    out += ToBracket(t);
    out.push_back('\n');
  }
  return out;
}

StatusOr<std::vector<Tree>> ForestFromString(
    std::string_view text, std::shared_ptr<LabelDictionary> labels) {
  if (labels == nullptr) {
    return Status::InvalidArgument("label dictionary must not be null");
  }
  std::vector<Tree> forest;
  size_t line_start = 0;
  int line_number = 0;
  while (line_start <= text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view line = text.substr(line_start, line_end - line_start);
    ++line_number;
    line_start = line_end + 1;
    // Trim and skip blanks/comments.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    StatusOr<Tree> tree = ParseBracket(line, labels);
    if (!tree.ok()) {
      return Status(tree.status().code(),
                    "line " + std::to_string(line_number) + ": " +
                        tree.status().message());
    }
    forest.push_back(std::move(tree).value());
  }
  return forest;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal("error while reading " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& content,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open " + path +
                                           " for writing");
  out << content;
  out.flush();
  if (!out) return Status::Internal("error while writing " + path);
  return Status::Ok();
}

Status SaveForest(const std::vector<Tree>& forest, const std::string& path) {
  return WriteStringToFile(ForestToString(forest), path);
}

StatusOr<std::vector<Tree>> LoadForest(
    const std::string& path, std::shared_ptr<LabelDictionary> labels) {
  TREESIM_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  return ForestFromString(text, std::move(labels));
}

}  // namespace treesim
