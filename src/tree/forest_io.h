#ifndef TREESIM_TREE_FOREST_IO_H_
#define TREESIM_TREE_FOREST_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "tree/tree.h"
#include "util/status.h"

namespace treesim {

/// Serializes a forest to the line-oriented bracket format: one tree per
/// line, '#' starts a comment line, blank lines ignored. The format
/// round-trips through ParseBracket/ToBracket.
std::string ForestToString(const std::vector<Tree>& forest);

/// Parses a forest from the line-oriented bracket format.
StatusOr<std::vector<Tree>> ForestFromString(
    std::string_view text, std::shared_ptr<LabelDictionary> labels);

/// Writes `forest` to `path` (overwrites).
Status SaveForest(const std::vector<Tree>& forest, const std::string& path);

/// Reads a forest from `path`.
StatusOr<std::vector<Tree>> LoadForest(
    const std::string& path, std::shared_ptr<LabelDictionary> labels);

/// Reads a whole file into a string (shared helper for loaders/tools).
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file (overwrites).
Status WriteStringToFile(const std::string& content, const std::string& path);

}  // namespace treesim

#endif  // TREESIM_TREE_FOREST_IO_H_
