#include "tree/traversal.h"

#include <algorithm>
#include <cstddef>

namespace treesim {

std::vector<NodeId> PreorderSequence(const Tree& t) {
  std::vector<NodeId> out;
  if (t.empty()) return out;
  out.reserve(static_cast<size_t>(t.size()));
  std::vector<NodeId> stack;
  stack.reserve(static_cast<size_t>(t.size()));
  stack.push_back(t.root());
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    // Push children in reverse so the first child is processed first:
    // append in sibling order, then flip the appended range in place —
    // no per-node temporary vector.
    const size_t mark = stack.size();
    for (NodeId c = t.first_child(n); c != kInvalidNode;
         c = t.next_sibling(c)) {
      stack.push_back(c);
    }
    std::reverse(stack.begin() + static_cast<std::ptrdiff_t>(mark),
                 stack.end());
  }
  return out;
}

std::vector<NodeId> PostorderSequence(const Tree& t) {
  std::vector<NodeId> out;
  if (t.empty()) return out;
  out.reserve(static_cast<size_t>(t.size()));
  // Two-phase iterative postorder: emit in reverse-preorder of mirrored
  // children, then reverse.
  std::vector<NodeId> stack;
  stack.reserve(static_cast<size_t>(t.size()));
  stack.push_back(t.root());
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    for (NodeId c = t.first_child(n); c != kInvalidNode;
         c = t.next_sibling(c)) {
      stack.push_back(c);
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

TraversalPositions ComputePositions(const Tree& t) {
  TraversalPositions p;
  p.pre.assign(static_cast<size_t>(t.size()), 0);
  p.post.assign(static_cast<size_t>(t.size()), 0);
  const std::vector<NodeId> pre = PreorderSequence(t);
  for (size_t i = 0; i < pre.size(); ++i) {
    p.pre[static_cast<size_t>(pre[i])] = static_cast<int>(i) + 1;
  }
  const std::vector<NodeId> post = PostorderSequence(t);
  for (size_t i = 0; i < post.size(); ++i) {
    p.post[static_cast<size_t>(post[i])] = static_cast<int>(i) + 1;
  }
  return p;
}

std::vector<int> NodeDepths(const Tree& t) {
  std::vector<int> depth(static_cast<size_t>(t.size()), 0);
  for (const NodeId n : PreorderSequence(t)) {
    const NodeId p = t.parent(n);
    depth[static_cast<size_t>(n)] =
        (p == kInvalidNode) ? 1 : depth[static_cast<size_t>(p)] + 1;
  }
  return depth;
}

std::vector<int> NodeHeights(const Tree& t) {
  std::vector<int> height(static_cast<size_t>(t.size()), 1);
  // Postorder guarantees children are finalized before their parent.
  for (const NodeId n : PostorderSequence(t)) {
    const NodeId p = t.parent(n);
    if (p != kInvalidNode) {
      height[static_cast<size_t>(p)] = std::max(
          height[static_cast<size_t>(p)], height[static_cast<size_t>(n)] + 1);
    }
  }
  return height;
}

int TreeHeight(const Tree& t) {
  if (t.empty()) return 0;
  return NodeHeights(t)[static_cast<size_t>(t.root())];
}

int LeafCount(const Tree& t) {
  int leaves = 0;
  for (NodeId n = 0; n < t.size(); ++n) {
    if (t.is_leaf(n)) ++leaves;
  }
  return leaves;
}

std::vector<int> NodeDegrees(const Tree& t) {
  std::vector<int> degree(static_cast<size_t>(t.size()), 0);
  for (NodeId n = 0; n < t.size(); ++n) {
    const NodeId p = t.parent(n);
    if (p != kInvalidNode) ++degree[static_cast<size_t>(p)];
  }
  return degree;
}

}  // namespace treesim
