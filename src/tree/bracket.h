#ifndef TREESIM_TREE_BRACKET_H_
#define TREESIM_TREE_BRACKET_H_

#include <memory>
#include <string>
#include <string_view>

#include "tree/tree.h"
#include "util/status.h"

namespace treesim {

/// Parses the bracket notation for ordered labeled trees:
///
///   tree  := label [ '{' tree* '}' ]
///   label := plain token (no whitespace or { } ' characters)
///            | 'single-quoted' with \' and \\ escapes
///
/// Example: "a{b{c d} e}" is the tree a with children b (children c, d)
/// and e. Whitespace between tokens is insignificant. Labels are interned
/// into `labels`.
StatusOr<Tree> ParseBracket(std::string_view text,
                            std::shared_ptr<LabelDictionary> labels);

/// Serializes `t` back to bracket notation (inverse of ParseBracket up to
/// whitespace). Labels needing quoting are single-quoted with escapes.
std::string ToBracket(const Tree& t);

}  // namespace treesim

#endif  // TREESIM_TREE_BRACKET_H_
