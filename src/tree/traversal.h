#ifndef TREESIM_TREE_TRAVERSAL_H_
#define TREESIM_TREE_TRAVERSAL_H_

#include <vector>

#include "tree/tree.h"

namespace treesim {

/// Nodes of `t` in preorder (document order). Iterative; safe for deep trees.
std::vector<NodeId> PreorderSequence(const Tree& t);

/// Nodes of `t` in postorder.
std::vector<NodeId> PostorderSequence(const Tree& t);

/// 1-based preorder and postorder positions of every node, as used by the
/// positional binary branch structures of Section 4.2 (the paper numbers
/// nodes from 1; Fig. 2 annotates each node with "(pre, post)").
/// Indexed by NodeId.
struct TraversalPositions {
  std::vector<int> pre;
  std::vector<int> post;
};

/// Computes both position arrays in one pass.
TraversalPositions ComputePositions(const Tree& t);

/// Depth of every node in levels, root = 1. Indexed by NodeId.
std::vector<int> NodeDepths(const Tree& t);

/// Height of every node in levels: leaves = 1, internal = 1 + max(children).
/// Indexed by NodeId.
std::vector<int> NodeHeights(const Tree& t);

/// Height of the whole tree in levels (= NodeHeights[root]); 0 for empty.
int TreeHeight(const Tree& t);

/// Number of leaf nodes.
int LeafCount(const Tree& t);

/// Degree (child count) of every node. Indexed by NodeId.
std::vector<int> NodeDegrees(const Tree& t);

}  // namespace treesim

#endif  // TREESIM_TREE_TRAVERSAL_H_
