#include "tree/label_dictionary.h"

#include "util/logging.h"

namespace treesim {

LabelDictionary::LabelDictionary() {
  names_.push_back("\xCE\xB5");  // UTF-8 "ε", slot 0
}

LabelId LabelDictionary::Intern(std::string_view label) {
  TREESIM_CHECK(!label.empty()) << "empty labels are reserved for ε";
  auto it = ids_.find(std::string(label));
  if (it != ids_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(label);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<LabelId> LabelDictionary::Lookup(std::string_view label) const {
  auto it = ids_.find(std::string(label));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::string_view LabelDictionary::Name(LabelId id) const {
  TREESIM_CHECK_LT(id, names_.size()) << "unknown LabelId";
  return names_[id];
}

}  // namespace treesim
