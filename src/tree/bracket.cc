#include "tree/bracket.h"

#include <cctype>
#include <utility>
#include <vector>

#include "util/status.h"

namespace treesim {
namespace {

bool IsPlainLabelChar(char c) {
  return !std::isspace(static_cast<unsigned char>(c)) && c != '{' &&
         c != '}' && c != '\'';
}

/// Parser over a string_view cursor. Fully iterative — the open-brace
/// ancestors live in an explicit heap-allocated stack, so nesting depth is
/// bounded by kMaxDepth, never by the thread stack (the old recursive
/// descent overflowed under sanitizer-sized stack frames before its depth
/// cap could fire).
class BracketParser {
 public:
  BracketParser(std::string_view text, std::shared_ptr<LabelDictionary> labels)
      : text_(text), builder_(std::move(labels)) {}

  StatusOr<Tree> Run() {
    SkipSpace();
    TREESIM_ASSIGN_OR_RETURN(std::string root_label, ParseLabel());
    NodeId last = builder_.AddRoot(root_label);
    // Parents whose '{' is still open; the top owns subsequent labels.
    std::vector<NodeId> open;
    // '{' is only legal directly after a label (it opens that label's
    // child list).
    bool after_label = true;
    for (;;) {
      SkipSpace();
      if (AtEnd()) break;
      const char c = Peek();
      if (c == '{') {
        if (!after_label) {
          return Status::InvalidArgument("expected label at offset " +
                                         std::to_string(pos_));
        }
        if (static_cast<int>(open.size()) >= kMaxDepth) {
          return Status::InvalidArgument("tree nesting exceeds depth limit");
        }
        open.push_back(last);
        after_label = false;
        ++pos_;
      } else if (c == '}') {
        if (open.empty()) break;  // reported as trailing characters below
        open.pop_back();
        after_label = false;
        ++pos_;
      } else {
        if (open.empty()) break;  // second top-level tree: trailing error
        TREESIM_ASSIGN_OR_RETURN(std::string label, ParseLabel());
        last = builder_.AddChild(open.back(), label);
        after_label = true;
      }
    }
    if (!open.empty()) return Status::InvalidArgument("unbalanced '{'");
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return std::move(builder_).Build();
  }

 private:
  // Semantic nesting cap, kept from the recursive implementation so
  // adversarial input still fails fast with a clean error.
  static constexpr int kMaxDepth = 20000;

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  StatusOr<std::string> ParseLabel() {
    if (AtEnd()) return Status::InvalidArgument("expected label, got EOF");
    if (Peek() == '\'') return ParseQuotedLabel();
    const size_t start = pos_;
    while (!AtEnd() && IsPlainLabelChar(Peek())) ++pos_;
    if (pos_ == start) {
      return Status::InvalidArgument("expected label at offset " +
                                     std::to_string(pos_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  StatusOr<std::string> ParseQuotedLabel() {
    ++pos_;  // opening quote
    std::string label;
    while (!AtEnd()) {
      const char c = text_[pos_++];
      if (c == '\'') {
        if (label.empty()) {
          return Status::InvalidArgument("empty quoted label");
        }
        return label;
      }
      if (c == '\\') {
        if (AtEnd()) break;
        label.push_back(text_[pos_++]);
      } else {
        label.push_back(c);
      }
    }
    return Status::InvalidArgument("unterminated quoted label");
  }

  std::string_view text_;
  size_t pos_ = 0;
  TreeBuilder builder_;
};

bool NeedsQuoting(std::string_view label) {
  for (const char c : label) {
    if (!IsPlainLabelChar(c)) return true;
  }
  return label.empty();
}

void AppendLabel(std::string_view label, std::string& out) {
  if (!NeedsQuoting(label)) {
    out.append(label);
    return;
  }
  out.push_back('\'');
  for (const char c : label) {
    if (c == '\'' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('\'');
}

}  // namespace

StatusOr<Tree> ParseBracket(std::string_view text,
                            std::shared_ptr<LabelDictionary> labels) {
  if (labels == nullptr) {
    return Status::InvalidArgument("label dictionary must not be null");
  }
  return BracketParser(text, std::move(labels)).Run();
}

std::string ToBracket(const Tree& t) {
  std::string out;
  if (t.empty()) return out;
  // Iterative preorder with an explicit "close brace" marker per frame.
  struct Frame {
    NodeId node;
    bool closer;  // emit '}' instead of visiting
  };
  std::vector<Frame> stack = {{t.root(), false}};
  bool first_token = true;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.closer) {
      out.push_back('}');
      continue;
    }
    if (!first_token && out.back() != '{') out.push_back(' ');
    first_token = false;
    AppendLabel(t.LabelName(f.node), out);
    if (!t.is_leaf(f.node)) {
      out.push_back('{');
      stack.push_back({f.node, true});
      std::vector<NodeId> children = t.Children(f.node);
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        stack.push_back({*it, false});
      }
    }
  }
  return out;
}

}  // namespace treesim
