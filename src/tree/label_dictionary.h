#ifndef TREESIM_TREE_LABEL_DICTIONARY_H_
#define TREESIM_TREE_LABEL_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace treesim {

/// Dense integer id of an interned node label. Id 0 is reserved for the
/// ε padding label used by the normalized binary tree representation
/// (Section 3.2 of the paper); user labels start at 1.
using LabelId = uint32_t;

/// The reserved ε label (appended nodes in the normalized binary tree).
inline constexpr LabelId kEpsilonLabel = 0;

/// Interns label strings to dense LabelIds shared by all trees of a dataset
/// and its queries. Interning makes node comparison O(1) and keeps binary
/// branch keys compact. Not thread-safe; share one instance per dataset.
class LabelDictionary {
 public:
  LabelDictionary();

  LabelDictionary(const LabelDictionary&) = delete;
  LabelDictionary& operator=(const LabelDictionary&) = delete;
  LabelDictionary(LabelDictionary&&) = default;
  LabelDictionary& operator=(LabelDictionary&&) = default;

  /// Returns the id of `label`, interning it on first sight. `label` must be
  /// non-empty (the empty string is reserved for ε).
  LabelId Intern(std::string_view label);

  /// Returns the id of `label` if already interned, otherwise nullopt.
  std::optional<LabelId> Lookup(std::string_view label) const;

  /// Returns the string for an id previously returned by Intern (or "ε" for
  /// kEpsilonLabel). Aborts on out-of-range ids.
  std::string_view Name(LabelId id) const;

  /// Number of distinct user labels interned so far (excludes ε).
  size_t size() const { return names_.size() - 1; }

  /// One past the largest valid id; useful to size per-label arrays
  /// (includes the ε slot at index 0).
  LabelId id_bound() const { return static_cast<LabelId>(names_.size()); }

 private:
  std::unordered_map<std::string, LabelId> ids_;
  std::vector<std::string> names_;  // names_[0] == "ε"
};

}  // namespace treesim

#endif  // TREESIM_TREE_LABEL_DICTIONARY_H_
