#ifndef TREESIM_TREE_TREE_H_
#define TREESIM_TREE_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tree/label_dictionary.h"
#include "util/logging.h"
#include "util/status.h"

namespace treesim {

/// Index of a node inside one Tree's arena. Ids are dense: every value in
/// [0, tree.size()) names a live node. Ids are otherwise arbitrary (in
/// particular they are NOT traversal positions; see traversal.h).
using NodeId = int32_t;

/// Sentinel for "no such node" (no parent / no child / no sibling).
inline constexpr NodeId kInvalidNode = -1;

/// A rooted, ordered, labeled tree (Section 2 of the paper), stored as a
/// contiguous arena of nodes in first-child / next-sibling form — which is
/// exactly the left-child/right-sibling binary tree representation B(T) that
/// the binary branch transformation is defined on (Section 2.3).
///
/// Trees are immutable after construction; build them with TreeBuilder or the
/// parsers, derive edited copies with the functions in ted/edit_operation.h.
/// The label dictionary is shared (and may be extended by later trees).
class Tree {
 public:
  /// One arena slot. Plain data; all fields are maintained by TreeBuilder.
  struct Node {
    LabelId label = kEpsilonLabel;
    NodeId parent = kInvalidNode;
    NodeId first_child = kInvalidNode;
    NodeId next_sibling = kInvalidNode;
  };

  Tree() = default;

  Tree(const Tree&) = default;
  Tree& operator=(const Tree&) = default;
  Tree(Tree&&) = default;
  Tree& operator=(Tree&&) = default;

  /// Number of nodes, |T|.
  int size() const { return static_cast<int>(nodes_.size()); }

  /// True when the tree has no nodes. Most algorithms require non-empty
  /// trees; parsers never produce empty ones.
  bool empty() const { return nodes_.empty(); }

  /// Root node id. Requires a non-empty tree.
  NodeId root() const {
    TREESIM_DCHECK(!empty());
    return root_;
  }

  LabelId label(NodeId n) const { return node(n).label; }
  NodeId parent(NodeId n) const { return node(n).parent; }
  NodeId first_child(NodeId n) const { return node(n).first_child; }
  NodeId next_sibling(NodeId n) const { return node(n).next_sibling; }

  /// True when `n` has no children.
  bool is_leaf(NodeId n) const { return node(n).first_child == kInvalidNode; }

  /// Number of children of `n` (walks the child list; O(degree)).
  int Degree(NodeId n) const;

  /// Children of `n` in sibling order.
  std::vector<NodeId> Children(NodeId n) const;

  /// Label string of node `n` (via the shared dictionary).
  std::string_view LabelName(NodeId n) const {
    return labels_->Name(label(n));
  }

  /// The shared label dictionary (never null for a built tree).
  const std::shared_ptr<LabelDictionary>& label_dict() const {
    return labels_;
  }

  /// Structural + label equality (same shape, same labels, same sibling
  /// order). Node ids need not coincide. Both trees must share comparable
  /// label ids (i.e., the same dictionary) for labels to match.
  bool StructurallyEquals(const Tree& other) const;

  /// Verifies the arena invariants every algorithm in the library assumes:
  /// parent/first_child/next_sibling links in range and mutually consistent,
  /// exactly one root with no parent and no sibling, every node reachable
  /// exactly once from the root (no cycles, no orphans), and labels interned
  /// in the shared dictionary. O(|T|). Returns OK or a diagnostic.
  ///
  /// Debug builds run this automatically at the end of TreeBuilder::Build()
  /// via TREESIM_DCHECK_OK; release builds skip it. Tests can call it
  /// directly (and abort on corruption with TREESIM_CHECK_OK).
  Status ValidateInvariants() const;

 private:
  friend class TreeBuilder;
  friend struct InvariantTestPeer;  // tests corrupt arenas to hit validators

  const Node& node(NodeId n) const {
    TREESIM_DCHECK(n >= 0 && n < size());
    return nodes_[static_cast<size_t>(n)];
  }

  std::vector<Node> nodes_;
  NodeId root_ = kInvalidNode;
  std::shared_ptr<LabelDictionary> labels_;
};

/// Incrementally constructs a Tree. Children are appended in sibling order.
/// Typical use:
///
///   auto dict = std::make_shared<LabelDictionary>();
///   TreeBuilder b(dict);
///   NodeId root = b.AddRoot("a");
///   NodeId x = b.AddChild(root, "b");
///   b.AddChild(x, "c");
///   Tree t = std::move(b).Build();
class TreeBuilder {
 public:
  /// `labels` must be non-null; it is shared with the built tree.
  explicit TreeBuilder(std::shared_ptr<LabelDictionary> labels);

  TreeBuilder(const TreeBuilder&) = delete;
  TreeBuilder& operator=(const TreeBuilder&) = delete;
  TreeBuilder(TreeBuilder&&) = default;
  TreeBuilder& operator=(TreeBuilder&&) = default;

  /// Creates the root. Must be the first node added, exactly once.
  NodeId AddRoot(std::string_view label);
  NodeId AddRootId(LabelId label);

  /// Appends a new last child under `parent`. `parent` must exist.
  NodeId AddChild(NodeId parent, std::string_view label);
  NodeId AddChildId(NodeId parent, LabelId label);

  /// Number of nodes added so far.
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Finalizes the tree. The builder is consumed; the tree is non-empty
  /// (aborts if AddRoot was never called — that is a programming error).
  Tree Build() &&;

 private:
  std::vector<Tree::Node> nodes_;
  std::vector<NodeId> last_child_;  // per node, for O(1) append
  std::shared_ptr<LabelDictionary> labels_;
  bool has_root_ = false;
};

}  // namespace treesim

#endif  // TREESIM_TREE_TREE_H_
