#include "tree/tree.h"

#include <utility>

namespace treesim {

int Tree::Degree(NodeId n) const {
  int d = 0;
  for (NodeId c = first_child(n); c != kInvalidNode; c = next_sibling(c)) ++d;
  return d;
}

std::vector<NodeId> Tree::Children(NodeId n) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child(n); c != kInvalidNode; c = next_sibling(c)) {
    out.push_back(c);
  }
  return out;
}

bool Tree::StructurallyEquals(const Tree& other) const {
  if (size() != other.size()) return false;
  if (empty()) return true;
  // Parallel iterative preorder walk over both trees; mismatched shape shows
  // up as one side running out of children/siblings before the other.
  std::vector<std::pair<NodeId, NodeId>> stack = {{root(), other.root()}};
  while (!stack.empty()) {
    auto [a, b] = stack.back();
    stack.pop_back();
    if (label(a) != other.label(b)) return false;
    NodeId ca = first_child(a);
    NodeId cb = other.first_child(b);
    while (ca != kInvalidNode && cb != kInvalidNode) {
      stack.emplace_back(ca, cb);
      ca = next_sibling(ca);
      cb = other.next_sibling(cb);
    }
    if (ca != cb) return false;  // both must be kInvalidNode here
  }
  return true;
}

TreeBuilder::TreeBuilder(std::shared_ptr<LabelDictionary> labels)
    : labels_(std::move(labels)) {
  TREESIM_CHECK(labels_ != nullptr);
}

NodeId TreeBuilder::AddRoot(std::string_view label) {
  return AddRootId(labels_->Intern(label));
}

NodeId TreeBuilder::AddRootId(LabelId label) {
  TREESIM_CHECK(!has_root_) << "AddRoot called twice";
  has_root_ = true;
  nodes_.push_back(Tree::Node{label, kInvalidNode, kInvalidNode,
                              kInvalidNode});
  last_child_.push_back(kInvalidNode);
  return 0;
}

NodeId TreeBuilder::AddChild(NodeId parent, std::string_view label) {
  return AddChildId(parent, labels_->Intern(label));
}

NodeId TreeBuilder::AddChildId(NodeId parent, LabelId label) {
  TREESIM_CHECK(parent >= 0 && parent < size()) << "bad parent id " << parent;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Tree::Node{label, parent, kInvalidNode, kInvalidNode});
  last_child_.push_back(kInvalidNode);
  const size_t p = static_cast<size_t>(parent);
  if (last_child_[p] == kInvalidNode) {
    nodes_[p].first_child = id;
  } else {
    nodes_[static_cast<size_t>(last_child_[p])].next_sibling = id;
  }
  last_child_[p] = id;
  return id;
}

Tree TreeBuilder::Build() && {
  TREESIM_CHECK(has_root_) << "Build() without AddRoot()";
  Tree t;
  t.nodes_ = std::move(nodes_);
  t.root_ = 0;
  t.labels_ = std::move(labels_);
  return t;
}

}  // namespace treesim
