#include "tree/tree.h"

#include <sstream>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace treesim {
namespace {

/// Shared formatter for validator diagnostics: "<what> (node <id>)".
Status NodeError(const std::string& what, NodeId n) {
  std::ostringstream os;
  os << what << " (node " << n << ")";
  return Status::Internal(os.str());
}

}  // namespace

int Tree::Degree(NodeId n) const {
  int d = 0;
  for (NodeId c = first_child(n); c != kInvalidNode; c = next_sibling(c)) ++d;
  return d;
}

std::vector<NodeId> Tree::Children(NodeId n) const {
  size_t count = 0;
  for (NodeId c = first_child(n); c != kInvalidNode; c = next_sibling(c)) {
    ++count;
  }
  std::vector<NodeId> out;
  out.reserve(count);
  for (NodeId c = first_child(n); c != kInvalidNode; c = next_sibling(c)) {
    out.push_back(c);
  }
  return out;
}

bool Tree::StructurallyEquals(const Tree& other) const {
  if (size() != other.size()) return false;
  if (empty()) return true;
  // Parallel iterative preorder walk over both trees; mismatched shape shows
  // up as one side running out of children/siblings before the other.
  std::vector<std::pair<NodeId, NodeId>> stack = {{root(), other.root()}};
  while (!stack.empty()) {
    auto [a, b] = stack.back();
    stack.pop_back();
    if (label(a) != other.label(b)) return false;
    NodeId ca = first_child(a);
    NodeId cb = other.first_child(b);
    while (ca != kInvalidNode && cb != kInvalidNode) {
      stack.emplace_back(ca, cb);
      ca = next_sibling(ca);
      cb = other.next_sibling(cb);
    }
    if (ca != cb) return false;  // both must be kInvalidNode here
  }
  return true;
}

Status Tree::ValidateInvariants() const {
  if (empty()) {
    if (root_ != kInvalidNode) {
      return Status::Internal("empty tree with a root id set");
    }
    return Status::Ok();
  }
  if (labels_ == nullptr) {
    return Status::Internal("non-empty tree without a label dictionary");
  }
  const int n = size();
  if (root_ < 0 || root_ >= n) return NodeError("root id out of range", root_);
  if (parent(root_) != kInvalidNode) {
    return NodeError("root has a parent", root_);
  }
  if (next_sibling(root_) != kInvalidNode) {
    return NodeError("root has a sibling", root_);
  }
  const auto link_ok = [n](NodeId id) { return id >= kInvalidNode && id < n; };
  for (NodeId i = 0; i < n; ++i) {
    const Node& v = nodes_[static_cast<size_t>(i)];
    if (!link_ok(v.parent) || !link_ok(v.first_child) ||
        !link_ok(v.next_sibling)) {
      return NodeError("link out of range", i);
    }
    if (v.label >= labels_->id_bound()) {
      return NodeError("label not interned in the dictionary", i);
    }
  }
  // DFS over the child lists: every non-root node must be reached exactly
  // once, and each child's parent link must point back at the node whose
  // list contains it. Revisiting a marked node catches sibling-chain cycles
  // and cross-links, so the walk always terminates.
  std::vector<char> seen(static_cast<size_t>(n), 0);
  std::vector<NodeId> stack = {root_};
  seen[static_cast<size_t>(root_)] = 1;
  int visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId c = first_child(u); c != kInvalidNode; c = next_sibling(c)) {
      if (seen[static_cast<size_t>(c)] != 0) {
        return NodeError("node reached twice (cycle or shared child)", c);
      }
      seen[static_cast<size_t>(c)] = 1;
      ++visited;
      if (parent(c) != u) {
        return NodeError("child's parent link disagrees with the list", c);
      }
      stack.push_back(c);
    }
  }
  if (visited != n) {
    return Status::Internal("unreachable nodes: visited " +
                            std::to_string(visited) + " of " +
                            std::to_string(n));
  }
  return Status::Ok();
}

TreeBuilder::TreeBuilder(std::shared_ptr<LabelDictionary> labels)
    : labels_(std::move(labels)) {
  TREESIM_CHECK(labels_ != nullptr);
}

NodeId TreeBuilder::AddRoot(std::string_view label) {
  return AddRootId(labels_->Intern(label));
}

NodeId TreeBuilder::AddRootId(LabelId label) {
  TREESIM_CHECK(!has_root_) << "AddRoot called twice";
  has_root_ = true;
  nodes_.push_back(Tree::Node{label, kInvalidNode, kInvalidNode,
                              kInvalidNode});
  last_child_.push_back(kInvalidNode);
  return 0;
}

NodeId TreeBuilder::AddChild(NodeId parent, std::string_view label) {
  return AddChildId(parent, labels_->Intern(label));
}

NodeId TreeBuilder::AddChildId(NodeId parent, LabelId label) {
  TREESIM_CHECK(parent >= 0 && parent < size()) << "bad parent id " << parent;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Tree::Node{label, parent, kInvalidNode, kInvalidNode});
  last_child_.push_back(kInvalidNode);
  const size_t p = static_cast<size_t>(parent);
  if (last_child_[p] == kInvalidNode) {
    nodes_[p].first_child = id;
  } else {
    nodes_[static_cast<size_t>(last_child_[p])].next_sibling = id;
  }
  last_child_[p] = id;
  return id;
}

Tree TreeBuilder::Build() && {
  TREESIM_CHECK(has_root_) << "Build() without AddRoot()";
  Tree t;
  t.nodes_ = std::move(nodes_);
  t.root_ = 0;
  t.labels_ = std::move(labels_);
  TREESIM_DCHECK_OK(t.ValidateInvariants());
  return t;
}

}  // namespace treesim
