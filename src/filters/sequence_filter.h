#ifndef TREESIM_FILTERS_SEQUENCE_FILTER_H_
#define TREESIM_FILTERS_SEQUENCE_FILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "filters/filter_index.h"
#include "strgram/qgram.h"

namespace treesim {

/// The sequence-based lower bounds discussed in Section 2.2: a tree edit
/// script of length k induces string edit scripts of length <= k on both the
/// preorder and the postorder label sequences, so
///
///   EDist >= max(SED(pre1, pre2), SED(post1, post2))      [Guha et al. 15]
///
/// and, one level cheaper, Ukkonen's q-gram count filter applied to those
/// sequences. The exact-SED mode is the O(|T1||T2|)-per-pair filter the
/// paper criticizes as unscalable (kept as a faithful related-work baseline
/// and for the ablation benches); the q-gram mode is linear like the binary
/// branch filter but blind to tree structure beyond the traversal order.
class SequenceFilter final : public FilterIndex {
 public:
  struct Options {
    enum class Mode {
      /// max of the two exact string edit distances (tight, quadratic).
      kEditDistance,
      /// max of the two q-gram count bounds (loose, linear).
      kQGram,
    };
    Mode mode = Mode::kQGram;
    /// Window length for kQGram.
    int q = 2;
  };

  /// Per-tree derived data: the two traversal sequences and, in q-gram
  /// mode, their gram profiles.
  struct TreeSequences {
    std::vector<LabelId> pre;
    std::vector<LabelId> post;
    std::unique_ptr<QGramProfile> pre_grams;   // kQGram only
    std::unique_ptr<QGramProfile> post_grams;  // kQGram only
  };

  /// Default options: q-gram mode with q = 2.
  SequenceFilter();
  explicit SequenceFilter(Options options);

  std::string name() const override;
  void Build(const std::vector<Tree>& trees) override;
  std::unique_ptr<FilterQueryContext> PrepareQuery(const Tree& query) override;
  double LowerBound(const FilterQueryContext& ctx, int tree_id) const override;
  bool MayQualify(const FilterQueryContext& ctx, int tree_id,
                  double tau) const override;

  /// Extracts the per-tree data under this filter's options (exposed for
  /// tests and ablation benches).
  TreeSequences Extract(const Tree& t) const;

 private:
  Options options_;
  std::vector<TreeSequences> sequences_;
};

}  // namespace treesim

#endif  // TREESIM_FILTERS_SEQUENCE_FILTER_H_
