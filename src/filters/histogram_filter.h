#ifndef TREESIM_FILTERS_HISTOGRAM_FILTER_H_
#define TREESIM_FILTERS_HISTOGRAM_FILTER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "filters/filter_index.h"
#include "tree/tree.h"

namespace treesim {

/// The comparison baseline of Section 5: structure/content histograms in the
/// spirit of Kailing et al. [EDBT 2004] ("Histo" in the paper's figures).
/// Three feature families are combined by taking the max of their bounds:
///
///   label histogram:   EDist >= ceil(L1 / 2)   — one operation changes the
///       label multiset by at most 2 (relabel removes one label, adds one).
///   degree histogram:  EDist >= ceil(L1 / 3)   — deleting n moves its
///       parent's bucket (2 changes) and removes n's own bucket entry (1);
///       insertion is symmetric; relabel changes nothing.
///   scalar structure:  EDist >= |Δheight|, |Δsize|, |Δleaf count| — a
///       single operation changes each scalar by at most 1.
///
/// The published height-HISTOGRAM bound of Kailing et al. targets unordered
/// TED; the variants above are (re)proven for the ordered unit-cost distance
/// the search engine refines with, keeping the engine free of false
/// negatives (see DESIGN.md, substitutions).
class HistogramFilter final : public FilterIndex {
 public:
  struct Options {
    /// Fold label ids into this many buckets (0 = one bucket per label).
    /// Folding models the paper's equal-space normalization and can only
    /// weaken (never unsound) the bound.
    int label_buckets = 0;
    /// Cap degrees at this many buckets (0 = unbounded).
    int degree_buckets = 0;
    bool use_label = true;
    bool use_degree = true;
    bool use_scalars = true;
  };

  /// Default options: unfolded histograms, all features on.
  HistogramFilter();
  explicit HistogramFilter(Options options);

  std::string name() const override { return "Histo"; }
  void Build(const std::vector<Tree>& trees) override;
  std::unique_ptr<FilterQueryContext> PrepareQuery(const Tree& query) override;
  double LowerBound(const FilterQueryContext& ctx, int tree_id) const override;

  /// Per-tree feature vector (exposed for tests and Fig. 15).
  struct Features {
    /// (bucket, count), ascending by bucket; bucket = label id (or folded).
    std::vector<std::pair<int, int>> label_hist;
    /// (bucket, count), ascending; bucket = degree (or capped).
    std::vector<std::pair<int, int>> degree_hist;
    int height = 0;
    int size = 0;
    int leaves = 0;
  };

  /// Extracts the features of one tree under this filter's options.
  Features ExtractFeatures(const Tree& t) const;

  /// The combined lower bound between two feature vectors.
  int Bound(const Features& a, const Features& b) const;

 private:
  Options options_;
  std::vector<Features> features_;
};

/// L1 distance between two sparse (bucket, count) histograms sorted by
/// bucket.
int64_t SparseHistogramL1(const std::vector<std::pair<int, int>>& a,
                          const std::vector<std::pair<int, int>>& b);

}  // namespace treesim

#endif  // TREESIM_FILTERS_HISTOGRAM_FILTER_H_
