#include "filters/histogram_filter.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

#include "filters/filter_index.h"
#include "tree/traversal.h"
#include "util/hot.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/safe_math.h"

namespace treesim {
namespace {

class HistogramQueryContext final : public FilterQueryContext {
 public:
  explicit HistogramQueryContext(HistogramFilter::Features features)
      : features_(std::move(features)) {}
  const HistogramFilter::Features& features() const { return features_; }

 private:
  HistogramFilter::Features features_;
};

std::vector<std::pair<int, int>> ToSparseHistogram(
    const std::map<int, int>& counts) {
  std::vector<std::pair<int, int>> out(counts.begin(), counts.end());
  return out;  // std::map iterates in ascending bucket order
}

}  // namespace

int64_t SparseHistogramL1(const std::vector<std::pair<int, int>>& a,
                          const std::vector<std::pair<int, int>>& b) {
  int64_t dist = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first == b[j].first) {
      dist = CheckedAdd<int64_t>(dist, std::abs(a[i].second - b[j].second));
      ++i;
      ++j;
    } else if (a[i].first < b[j].first) {
      dist = CheckedAdd<int64_t>(dist, a[i].second);
      ++i;
    } else {
      dist = CheckedAdd<int64_t>(dist, b[j].second);
      ++j;
    }
  }
  for (; i < a.size(); ++i) dist = CheckedAdd<int64_t>(dist, a[i].second);
  for (; j < b.size(); ++j) dist = CheckedAdd<int64_t>(dist, b[j].second);
  return dist;
}

HistogramFilter::HistogramFilter() : HistogramFilter(Options()) {}

HistogramFilter::HistogramFilter(Options options) : options_(options) {}

HistogramFilter::Features HistogramFilter::ExtractFeatures(
    const Tree& t) const {
  Features f;
  f.size = t.size();
  f.height = TreeHeight(t);
  f.leaves = LeafCount(t);

  std::map<int, int> labels;
  for (NodeId n = 0; n < t.size(); ++n) {
    int bucket = static_cast<int>(t.label(n));
    if (options_.label_buckets > 0) bucket %= options_.label_buckets;
    ++labels[bucket];
  }
  f.label_hist = ToSparseHistogram(labels);

  std::map<int, int> degrees;
  for (const int d : NodeDegrees(t)) {
    int bucket = d;
    if (options_.degree_buckets > 0) {
      bucket = std::min(bucket, options_.degree_buckets - 1);
    }
    ++degrees[bucket];
  }
  f.degree_hist = ToSparseHistogram(degrees);
  return f;
}

int HistogramFilter::Bound(const Features& a, const Features& b) const {
  int64_t bound = 0;
  if (options_.use_label) {
    // One edit operation changes the (folded) label multiset by <= 2.
    bound = std::max(bound, (SparseHistogramL1(a.label_hist, b.label_hist) + 1) / 2);
  }
  if (options_.use_degree) {
    // One edit operation changes the (capped) degree histogram by <= 3.
    bound = std::max(bound,
                     (SparseHistogramL1(a.degree_hist, b.degree_hist) + 2) / 3);
  }
  if (options_.use_scalars) {
    // One edit operation changes height, size and leaf count by <= 1 each.
    bound = std::max<int64_t>(bound, std::abs(a.height - b.height));
    bound = std::max<int64_t>(bound, std::abs(a.size - b.size));
    bound = std::max<int64_t>(bound, std::abs(a.leaves - b.leaves));
  }
  return CheckedCast<int>(bound);
}

void HistogramFilter::Build(const std::vector<Tree>& trees) {
  TREESIM_CHECK(features_.empty()) << "Build() called twice";
  features_.reserve(trees.size());
  for (const Tree& t : trees) features_.push_back(ExtractFeatures(t));
}

std::unique_ptr<FilterQueryContext> TREESIM_HOT HistogramFilter::PrepareQuery(
    const Tree& query) {
  return std::make_unique<HistogramQueryContext>(ExtractFeatures(query));
}

double TREESIM_HOT HistogramFilter::LowerBound(const FilterQueryContext& ctx,
                                               int tree_id) const {
  TREESIM_COUNTER_INC("filter.histogram.bounds");
  const auto& q = static_cast<const HistogramQueryContext&>(ctx);
  return Bound(q.features(), features_[static_cast<size_t>(tree_id)]);
}

}  // namespace treesim
