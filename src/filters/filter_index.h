#ifndef TREESIM_FILTERS_FILTER_INDEX_H_
#define TREESIM_FILTERS_FILTER_INDEX_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tree/tree.h"

namespace treesim {

/// Query-side state a FilterIndex derives once per query tree (e.g. the
/// query's branch profile) and reuses against every database tree.
class FilterQueryContext {
 public:
  virtual ~FilterQueryContext() = default;
};

/// A lower-bounding filter over a fixed database of trees, pluggable into
/// the filter-and-refine engine (Section 4.1). Implementations must be
/// SOUND: LowerBound() never exceeds the exact tree edit distance, so the
/// engine reports no false negatives.
///
/// The refine stage these bounds gate is itself threshold-bounded
/// (ted/bounded_ted.h): the engine hands the verifier the same tau (or
/// current kth-best distance) the filter pruned against, and the verifier
/// only promises exactness up to that threshold. A sound bound therefore
/// stays sufficient — every surviving candidate is verified exactly within
/// the threshold — but an UNSOUND bound would now fail in two places
/// instead of one (wrongly pruned AND wrongly clamped).
class FilterIndex {
 public:
  virtual ~FilterIndex() = default;

  /// Short name for reports ("BiBranch", "Histo", ...).
  virtual std::string name() const = 0;

  /// Indexes the database. Called once, before any query.
  virtual void Build(const std::vector<Tree>& trees) = 0;

  /// Derives the per-query state. Non-const: filters may extend shared
  /// dictionaries with branches/labels first seen in the query.
  virtual std::unique_ptr<FilterQueryContext> PrepareQuery(const Tree& query) = 0;

  /// A lower bound of EDist(query, tree `tree_id`).
  virtual double LowerBound(const FilterQueryContext& ctx, int tree_id) const = 0;

  /// Range-query test: false when the tree is certainly farther than `tau`.
  /// Default uses LowerBound(); overridden where a cheaper tau-specific test
  /// exists (the positional BiBranch filter, Section 4.3).
  virtual bool MayQualify(const FilterQueryContext& ctx, int tree_id,
                          double tau) const {
    return LowerBound(ctx, tree_id) <= tau;
  }

  /// Optional sublinear candidate retrieval for range queries: when a
  /// filter owns a metric index over its vectors it can return the entire
  /// may-qualify id set (ascending) without being probed per tree. nullopt
  /// (the default) makes the engine fall back to the MayQualify scan. The
  /// returned set must equal { id : MayQualify(ctx, id, tau) } — candidates
  /// are refined with the exact distance either way, so soundness is about
  /// completeness of this set.
  virtual std::optional<std::vector<int>> TryRangeCandidates(
      const FilterQueryContext& /*ctx*/, double /*tau*/) const {
    return std::nullopt;
  }
};

}  // namespace treesim

#endif  // TREESIM_FILTERS_FILTER_INDEX_H_
