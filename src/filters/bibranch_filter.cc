#include "filters/bibranch_filter.h"

#include <cmath>
#include <utility>

#include "filters/filter_index.h"
#include "util/hot.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/safe_math.h"
#include "util/trace.h"

namespace treesim {
namespace {

class BiBranchQueryContext final : public FilterQueryContext {
 public:
  explicit BiBranchQueryContext(BranchProfile profile)
      : profile_(std::move(profile)) {}
  const BranchProfile& profile() const { return profile_; }

 private:
  BranchProfile profile_;
};

}  // namespace

BiBranchFilter::BiBranchFilter() : BiBranchFilter(Options()) {}

BiBranchFilter::BiBranchFilter(Options options)
    : options_(options), index_(options.q) {}

std::string BiBranchFilter::name() const {
  std::string n = "BiBranch(" + std::to_string(options_.q) + ")";
  if (!options_.positional) n += "-plain";
  return n;
}

void BiBranchFilter::Build(const std::vector<Tree>& trees) {
  TREESIM_TRACE_SPAN("filter.bibranch.build");
  TREESIM_CHECK(profiles_.empty()) << "Build() called twice";
  index_.AddAll(trees, options_.build_pool);
  profiles_ = index_.BuildProfiles();
  if (options_.use_vptree) {
    Rng rng(0x5eed);  // fixed seed: deterministic index shape
    vptree_ = std::make_unique<VpTree>(&profiles_, rng);
  }
}

std::unique_ptr<FilterQueryContext> TREESIM_HOT BiBranchFilter::PrepareQuery(
    const Tree& query) {
  return std::make_unique<BiBranchQueryContext>(
      BranchProfile::FromTree(query, index_.branch_dict()));
}

double TREESIM_HOT BiBranchFilter::LowerBound(const FilterQueryContext& ctx,
                                              int tree_id) const {
  const auto& q = static_cast<const BiBranchQueryContext&>(ctx);
  const BranchProfile& data = profiles_[static_cast<size_t>(tree_id)];
  if (options_.positional) {
    return OptimisticBound(q.profile(), data, options_.matching);
  }
  return BranchDistanceLowerBound(q.profile(), data);
}

std::optional<std::vector<int>> TREESIM_HOT BiBranchFilter::TryRangeCandidates(
    const FilterQueryContext& ctx, double tau) const {
  if (vptree_ == nullptr) return std::nullopt;
  const auto& q = static_cast<const BiBranchQueryContext&>(ctx);
  const int itau = static_cast<int>(std::floor(tau));
  if (itau < 0) return std::vector<int>{};
  // Anything a BDist-based filter keeps satisfies
  // BDist <= factor * tau (Theorem 3.2/3.3), so the metric ball around the
  // query with that radius is a complete candidate set...
  int64_t calls = 0;
  std::vector<int> ball = vptree_->RangeSearch(
      q.profile(),
      CheckedMul<int64_t>(index_.branch_dict().edit_distance_factor(), itau),
      &calls);
  vptree_distance_calls_.fetch_add(calls, std::memory_order_relaxed);
  TREESIM_COUNTER_ADD("filter.bibranch.ball_candidates",
                      static_cast<int64_t>(ball.size()));
  if (!options_.positional) return ball;
  // ... which the positional test then narrows to exactly the MayQualify
  // set (the ball already guarantees the BDist part).
  std::vector<int> candidates;
  candidates.reserve(ball.size());
  for (const int id : ball) {
    if (RangeFilterPasses(q.profile(),
                          profiles_[static_cast<size_t>(id)], itau,
                          options_.matching)) {
      candidates.push_back(id);
    }
  }
  TREESIM_COUNTER_ADD("filter.bibranch.positional_survivors",
                      static_cast<int64_t>(candidates.size()));
  return candidates;
}

bool TREESIM_HOT BiBranchFilter::MayQualify(const FilterQueryContext& ctx,
                                            int tree_id, double tau) const {
  const auto& q = static_cast<const BiBranchQueryContext&>(ctx);
  const BranchProfile& data = profiles_[static_cast<size_t>(tree_id)];
  // Unit-cost distances are integral, so testing at floor(tau) is exact.
  const int itau = static_cast<int>(std::floor(tau));
  TREESIM_COUNTER_INC("filter.bibranch.checked");
  bool pass;
  if (options_.positional) {
    pass = RangeFilterPasses(q.profile(), data, itau, options_.matching);
  } else {
    pass = BranchDistanceLowerBound(q.profile(), data) <= itau;
  }
  if (pass) TREESIM_COUNTER_INC("filter.bibranch.passed");
  return pass;
}

}  // namespace treesim
