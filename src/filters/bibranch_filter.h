#ifndef TREESIM_FILTERS_BIBRANCH_FILTER_H_
#define TREESIM_FILTERS_BIBRANCH_FILTER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/inverted_file.h"
#include "core/positional.h"
#include "core/vptree.h"
#include "filters/filter_index.h"
#include "util/thread_pool.h"

namespace treesim {

/// The paper's filter: q-level binary branch vectors with (optionally)
/// positional information. Lower bounds:
///   positional:  propt from the SearchLBound binary search (Section 4.2),
///                with the PosBDist(tau) single-shot test for range queries
///                (Section 4.3);
///   plain:       ceil(BDist / (4(q-1)+1)) (Theorem 3.2/3.3).
class BiBranchFilter final : public FilterIndex {
 public:
  struct Options {
    /// Branch level; 2 is the binary branch of Definition 2.
    int q = 2;
    /// Use positional binary branches (the paper's full method). When
    /// false, only the occurrence counts are compared (plain BDist).
    bool positional = true;
    /// How per-branch positional matchings are computed; see MatchingMode.
    MatchingMode matching = MatchingMode::kAuto;
    /// Index the branch vectors in a VP-tree (BDist satisfies the triangle
    /// inequality) so range queries retrieve their candidate set
    /// sublinearly instead of scanning every vector. Identical results;
    /// pays O(N log N) BDist evaluations at Build().
    bool use_vptree = false;
    /// Pool Build() fans the inverted-file construction out over (borrowed;
    /// must outlive Build()). Index contents are byte-identical to a
    /// sequential build. nullptr builds sequentially.
    ThreadPool* build_pool = nullptr;
  };

  /// Default options: q = 2, positional.
  BiBranchFilter();
  explicit BiBranchFilter(Options options);

  std::string name() const override;
  void Build(const std::vector<Tree>& trees) override;
  std::unique_ptr<FilterQueryContext> PrepareQuery(const Tree& query) override;
  double LowerBound(const FilterQueryContext& ctx, int tree_id) const override;
  bool MayQualify(const FilterQueryContext& ctx, int tree_id,
                  double tau) const override;
  std::optional<std::vector<int>> TryRangeCandidates(
      const FilterQueryContext& ctx, double tau) const override;

  /// The underlying inverted file (for inspection/examples).
  const InvertedFileIndex& inverted_file() const { return index_; }

  /// Database profiles, indexed by tree id (for inspection/tests).
  const std::vector<BranchProfile>& profiles() const { return profiles_; }

  /// Cumulative BDist evaluations spent inside VP-tree range searches
  /// (for benchmarking sublinearity; 0 when use_vptree is off).
  int64_t vptree_distance_calls() const {
    return vptree_distance_calls_.load(std::memory_order_relaxed);
  }

 private:
  Options options_;
  InvertedFileIndex index_;
  std::vector<BranchProfile> profiles_;
  std::unique_ptr<VpTree> vptree_;
  /// Probe accounting mutated from const query paths; atomic because range
  /// probes may run concurrently from the parallel search/join layers (the
  /// only shared mutable state a built filter owns — everything else is
  /// read-only after Build()).
  mutable std::atomic<int64_t> vptree_distance_calls_{0};
};

}  // namespace treesim

#endif  // TREESIM_FILTERS_BIBRANCH_FILTER_H_
