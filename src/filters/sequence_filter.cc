#include "filters/sequence_filter.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "filters/filter_index.h"
#include "strgram/string_edit_distance.h"
#include "tree/traversal.h"
#include "util/hot.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace treesim {
namespace {

class SequenceQueryContext final : public FilterQueryContext {
 public:
  explicit SequenceQueryContext(SequenceFilter::TreeSequences sequences)
      : sequences_(std::move(sequences)) {}
  const SequenceFilter::TreeSequences& sequences() const {
    return sequences_;
  }

 private:
  SequenceFilter::TreeSequences sequences_;
};

}  // namespace

SequenceFilter::SequenceFilter() : SequenceFilter(Options()) {}

SequenceFilter::SequenceFilter(Options options) : options_(options) {
  TREESIM_CHECK_GE(options_.q, 1);
}

std::string SequenceFilter::name() const {
  return options_.mode == Options::Mode::kEditDistance
             ? "SeqED"
             : "SeqQGram(" + std::to_string(options_.q) + ")";
}

SequenceFilter::TreeSequences SequenceFilter::Extract(const Tree& t) const {
  TreeSequences s;
  s.pre.reserve(static_cast<size_t>(t.size()));
  for (const NodeId n : PreorderSequence(t)) s.pre.push_back(t.label(n));
  s.post.reserve(static_cast<size_t>(t.size()));
  for (const NodeId n : PostorderSequence(t)) s.post.push_back(t.label(n));
  if (options_.mode == Options::Mode::kQGram) {
    s.pre_grams = std::make_unique<QGramProfile>(s.pre, options_.q);
    s.post_grams = std::make_unique<QGramProfile>(s.post, options_.q);
  }
  return s;
}

void SequenceFilter::Build(const std::vector<Tree>& trees) {
  TREESIM_CHECK(sequences_.empty()) << "Build() called twice";
  sequences_.reserve(trees.size());
  for (const Tree& t : trees) sequences_.push_back(Extract(t));
}

std::unique_ptr<FilterQueryContext> TREESIM_HOT SequenceFilter::PrepareQuery(
    const Tree& query) {
  return std::make_unique<SequenceQueryContext>(Extract(query));
}

double TREESIM_HOT SequenceFilter::LowerBound(const FilterQueryContext& ctx,
                                              int tree_id) const {
  const TreeSequences& q =
      static_cast<const SequenceQueryContext&>(ctx).sequences();
  const TreeSequences& data = sequences_[static_cast<size_t>(tree_id)];
  if (options_.mode == Options::Mode::kEditDistance) {
    return std::max(StringEditDistance(q.pre, data.pre),
                    StringEditDistance(q.post, data.post));
  }
  return std::max(QGramLowerBound(*q.pre_grams, *data.pre_grams),
                  QGramLowerBound(*q.post_grams, *data.post_grams));
}

bool TREESIM_HOT SequenceFilter::MayQualify(const FilterQueryContext& ctx,
                                            int tree_id, double tau) const {
  const int itau = static_cast<int>(std::floor(tau));
  if (itau < 0) return false;
  TREESIM_COUNTER_INC("filter.sequence.checked");
  bool pass;
  if (options_.mode == Options::Mode::kEditDistance) {
    // The banded SED answers the threshold question in O(tau * n).
    const TreeSequences& q =
        static_cast<const SequenceQueryContext&>(ctx).sequences();
    const TreeSequences& data = sequences_[static_cast<size_t>(tree_id)];
    pass = StringEditDistanceBounded(q.pre, data.pre, itau) <= itau &&
           StringEditDistanceBounded(q.post, data.post, itau) <= itau;
  } else {
    pass = LowerBound(ctx, tree_id) <= tau;
  }
  if (pass) TREESIM_COUNTER_INC("filter.sequence.passed");
  return pass;
}

}  // namespace treesim
