#include "datagen/synthetic_generator.h"

#include <deque>
#include <sstream>
#include <utility>

#include "datagen/edit_noise.h"
#include "util/logging.h"

namespace treesim {

std::string SyntheticParams::ToString() const {
  std::ostringstream os;
  os << "N{" << fanout_mean << "," << fanout_stddev << "}N{" << size_mean
     << "," << size_stddev << "}L" << label_count << "D" << decay;
  return os.str();
}

SyntheticGenerator::SyntheticGenerator(SyntheticParams params,
                                       std::shared_ptr<LabelDictionary> labels,
                                       uint64_t seed)
    : params_(params), labels_(std::move(labels)), rng_(seed) {
  TREESIM_CHECK(labels_ != nullptr);
  TREESIM_CHECK_GE(params_.label_count, 1);
  TREESIM_CHECK_GE(params_.seed_count, 1);
  TREESIM_CHECK(params_.decay >= 0.0 && params_.decay <= 1.0);
  label_ids_.reserve(static_cast<size_t>(params_.label_count));
  for (int i = 0; i < params_.label_count; ++i) {
    label_ids_.push_back(labels_->Intern("l" + std::to_string(i)));
  }
}

LabelId SyntheticGenerator::RandomLabel() {
  return label_ids_[rng_.UniformIndex(label_ids_.size())];
}

Tree SyntheticGenerator::GenerateSeedTree() {
  // Breadth-first growth (Section 5.1): draw the maximum size, then expand
  // nodes in FIFO order, sampling each node's child count from the fanout
  // distribution until the budget is exhausted.
  const int max_size =
      rng_.NormalInt(params_.size_mean, params_.size_stddev, 1, 1 << 20);
  TreeBuilder builder(labels_);
  std::deque<NodeId> frontier = {builder.AddRootId(RandomLabel())};
  while (!frontier.empty() && builder.size() < max_size) {
    const NodeId node = frontier.front();
    frontier.pop_front();
    const int fanout =
        rng_.NormalInt(params_.fanout_mean, params_.fanout_stddev, 0, 1 << 20);
    for (int i = 0; i < fanout && builder.size() < max_size; ++i) {
      frontier.push_back(builder.AddChildId(node, RandomLabel()));
    }
  }
  return std::move(builder).Build();
}

Tree SyntheticGenerator::Mutate(const Tree& t) {
  // Each node independently mutates with probability `decay`; the total op
  // count is therefore Binomial(|T|, decay). Ops target random nodes of the
  // evolving tree (the tree changes under the script, so per-op re-sampling
  // is the faithful way to apply it).
  int ops = 0;
  for (int i = 0; i < t.size(); ++i) {
    if (rng_.Bernoulli(params_.decay)) ++ops;
  }
  if (ops == 0) return t;
  const NoisyTree noisy = ApplyRandomEdits(t, ops, label_ids_, rng_);
  return noisy.tree;
}

std::vector<Tree> SyntheticGenerator::GenerateDataset(int count) {
  TREESIM_CHECK_GE(count, 1);
  std::vector<Tree> dataset;
  std::vector<int> chain_depth;
  std::vector<size_t> eligible_parents;  // indices with depth < max depth
  dataset.reserve(static_cast<size_t>(count));
  const int seeds = std::min(params_.seed_count, count);
  for (int i = 0; i < seeds; ++i) {
    dataset.push_back(GenerateSeedTree());
    chain_depth.push_back(0);
    eligible_parents.push_back(static_cast<size_t>(i));
  }
  while (static_cast<int>(dataset.size()) < count) {
    const size_t parent =
        eligible_parents[rng_.UniformIndex(eligible_parents.size())];
    dataset.push_back(Mutate(dataset[parent]));
    const int depth = chain_depth[parent] + 1;
    chain_depth.push_back(depth);
    if (depth < params_.max_chain_depth) {
      eligible_parents.push_back(dataset.size() - 1);
    }
  }
  return dataset;
}

}  // namespace treesim
