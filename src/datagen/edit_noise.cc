#include "datagen/edit_noise.h"

#include <utility>

#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"

namespace treesim {

EditOperation RandomEditOperation(const Tree& t,
                                  const std::vector<LabelId>& label_pool,
                                  Rng& rng) {
  TREESIM_CHECK(!label_pool.empty());
  TREESIM_CHECK(!t.empty());
  while (true) {
    const int kind = rng.UniformInt(0, 2);
    const NodeId node = static_cast<NodeId>(
        rng.UniformIndex(static_cast<size_t>(t.size())));
    switch (kind) {
      case 0: {  // relabel (possibly to the same label when the pool is 1)
        const LabelId label = label_pool[rng.UniformIndex(label_pool.size())];
        if (label == t.label(node) && label_pool.size() > 1) continue;
        return EditOperation::MakeRelabel(node, label);
      }
      case 1: {  // delete (never the root)
        if (node == t.root()) continue;
        return EditOperation::MakeDelete(node);
      }
      default: {  // insert under `node`, adopting a random child run
        const LabelId label = label_pool[rng.UniformIndex(label_pool.size())];
        const int degree = t.Degree(node);
        const int begin = rng.UniformInt(0, degree);
        const int count = rng.UniformInt(0, degree - begin);
        return EditOperation::MakeInsert(node, label, begin, count);
      }
    }
  }
}

NoisyTree ApplyRandomEdits(const Tree& t, int ops,
                           const std::vector<LabelId>& label_pool, Rng& rng) {
  NoisyTree out;
  out.tree = t;
  out.script.reserve(static_cast<size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    const EditOperation op = RandomEditOperation(out.tree, label_pool, rng);
    StatusOr<Tree> edited = ApplyEditOperation(out.tree, op);
    TREESIM_CHECK(edited.ok()) << edited.status() << " applying "
                               << ToString(op, *out.tree.label_dict());
    out.tree = std::move(edited).value();
    out.script.push_back(op);
  }
  return out;
}

}  // namespace treesim
