#ifndef TREESIM_DATAGEN_DBLP_GENERATOR_H_
#define TREESIM_DATAGEN_DBLP_GENERATOR_H_

#include <memory>
#include <vector>

#include "tree/tree.h"
#include "util/random.h"

namespace treesim {

/// Knobs of the DBLP-like record generator. Defaults are calibrated so a
/// generated sample reproduces the shape statistics the paper reports for
/// its real 2000-record DBLP sample: shallow (avg depth 2.902), bushy,
/// avg 10.15 nodes per tree, and an average pairwise edit distance of ~5
/// (see DESIGN.md, substitutions; fig13/fig14 print the realized values).
struct DblpParams {
  /// Distinct values per field; small pools keep the label universe — and
  /// hence the binary branch universe — small, which drives the paper's
  /// Section 5.2/5.3 observations about shallow data.
  int author_pool = 120;
  int title_pool = 80;
  int year_pool = 30;
  int venue_pool = 40;
  int page_pool = 25;

  /// P(author count = 2..4); remaining mass goes to 1 author.
  double p_two_authors = 0.15;
  double p_three_authors = 0.05;
  double p_four_authors = 0.01;

  /// Record type mix (remaining mass goes to <article>). Real DBLP is
  /// heterogeneous: small <www> homepage entries and larger <proceedings>
  /// records sit beside papers — the structural spread the binary branch
  /// filter exploits (Section 5.2).
  double p_inproceedings = 0.25;
  double p_www = 0.15;
  double p_proceedings = 0.08;

  /// Probability of the optional fields (papers only).
  double p_pages = 0.12;
  double p_ee = 0.15;
  double p_url = 0.08;

  /// Geometric skew of value popularity (real DBLP values — years, venues,
  /// frequent authors — are heavily head-skewed, which is what keeps the
  /// average pairwise edit distance near the paper's 5.03). 0 = uniform.
  double value_skew = 0.65;
};

/// Generates bibliographic-record trees shaped like DBLP XML entries.
/// Four record types:
///
///   article / inproceedings: author x(1-4), title, year, journal|booktitle
///                            [pages] [ee] [url] - value leaves under fields
///   www:                     author, title, url - small homepage stubs
///   proceedings:             editor x2, title, year, publisher, isbn
///
/// Deterministic given the seed.
class DblpGenerator {
 public:
  DblpGenerator(DblpParams params, std::shared_ptr<LabelDictionary> labels,
                uint64_t seed);

  /// One record.
  Tree Next();

  /// A dataset of `count` records.
  std::vector<Tree> Generate(int count);

 private:
  LabelId Pick(const std::vector<LabelId>& pool);
  LabelId PickSkewed(const std::vector<LabelId>& pool);

  DblpParams params_;
  std::shared_ptr<LabelDictionary> labels_;
  Rng rng_;
  LabelId article_, inproceedings_, www_, proceedings_, author_, editor_,
      title_, year_, journal_, booktitle_, publisher_, isbn_, pages_, ee_,
      url_;
  std::vector<LabelId> authors_, titles_, years_, venues_, page_values_,
      publishers_, isbns_;
};

}  // namespace treesim

#endif  // TREESIM_DATAGEN_DBLP_GENERATOR_H_
