#ifndef TREESIM_DATAGEN_SYNTHETIC_GENERATOR_H_
#define TREESIM_DATAGEN_SYNTHETIC_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "tree/tree.h"
#include "util/random.h"

namespace treesim {

/// Parameters of the paper's synthetic data generator (Section 5, after
/// [Zaki 2002]): fanout and tree size are normally distributed, labels are
/// drawn uniformly from a fixed universe, and the dataset evolves from a
/// few seed trees by decay-driven edit operations. The paper's notation
/// "N{4,0.5}N{50,2}L8 D0.05" maps onto the fields below.
struct SyntheticParams {
  double fanout_mean = 4.0;
  double fanout_stddev = 0.5;
  double size_mean = 50.0;
  double size_stddev = 2.0;
  /// Number of distinct labels in the whole dataset (L8 -> 8).
  int label_count = 8;
  /// Decay factor Dz: per-node probability that an edit operation is
  /// applied when deriving a tree from its seed (the paper uses 0.05).
  double decay = 0.05;
  /// Number of from-scratch seed trees that start the evolution.
  int seed_count = 100;

  /// Maximum derivation-chain depth: a new tree only mutates a tree fewer
  /// than this many derivations away from an original seed. The paper's
  /// description ("the data generated from the seeds is used as the seed
  /// for the next data generation") is ambiguous between short waves and an
  /// unbounded chain; short chains (depth 2) reproduce its measured
  /// behavior — crisply clustered data where the accessed fraction of the
  /// binary branch filter nearly equals the result size (Section 5.1).
  /// Set to a large value for a continuum of distances instead.
  int max_chain_depth = 2;

  /// "N{4,0.5}N{50,2}L8D0.05"-style tag for report headers.
  std::string ToString() const;
};

/// Generates datasets of rooted ordered labeled trees per SyntheticParams.
/// Deterministic given the seed. Labels are interned as "l0".."l<k-1>" into
/// the shared dictionary.
class SyntheticGenerator {
 public:
  SyntheticGenerator(SyntheticParams params,
                     std::shared_ptr<LabelDictionary> labels, uint64_t seed);

  /// One from-scratch tree: breadth-first growth, per-node fanout sampled
  /// from N(fanout_mean, fanout_stddev), total size capped by a draw from
  /// N(size_mean, size_stddev), labels uniform over the universe.
  Tree GenerateSeedTree();

  /// A full dataset of `count` trees: seed trees first, then each further
  /// tree derived from a random earlier tree by edit operations whose count
  /// is Binomial(|T|, decay) (insert / delete / relabel equiprobable), the
  /// derived tree joining the seed pool — the paper's evolution scheme.
  std::vector<Tree> GenerateDataset(int count);

  /// Applies the decay-driven mutation step to one tree (exposed for tests).
  Tree Mutate(const Tree& t);

  const SyntheticParams& params() const { return params_; }

 private:
  LabelId RandomLabel();

  SyntheticParams params_;
  std::shared_ptr<LabelDictionary> labels_;
  std::vector<LabelId> label_ids_;
  Rng rng_;
};

}  // namespace treesim

#endif  // TREESIM_DATAGEN_SYNTHETIC_GENERATOR_H_
