#include "datagen/dblp_generator.h"

#include <cmath>
#include <string>
#include <utility>

#include "util/logging.h"

namespace treesim {
namespace {

std::vector<LabelId> MakePool(LabelDictionary& dict, const std::string& prefix,
                              int n) {
  std::vector<LabelId> pool;
  pool.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    pool.push_back(dict.Intern(prefix + std::to_string(i)));
  }
  return pool;
}

}  // namespace

DblpGenerator::DblpGenerator(DblpParams params,
                             std::shared_ptr<LabelDictionary> labels,
                             uint64_t seed)
    : params_(params), labels_(std::move(labels)), rng_(seed) {
  TREESIM_CHECK(labels_ != nullptr);
  article_ = labels_->Intern("article");
  inproceedings_ = labels_->Intern("inproceedings");
  www_ = labels_->Intern("www");
  proceedings_ = labels_->Intern("proceedings");
  author_ = labels_->Intern("author");
  editor_ = labels_->Intern("editor");
  title_ = labels_->Intern("title");
  year_ = labels_->Intern("year");
  journal_ = labels_->Intern("journal");
  booktitle_ = labels_->Intern("booktitle");
  publisher_ = labels_->Intern("publisher");
  isbn_ = labels_->Intern("isbn");
  pages_ = labels_->Intern("pages");
  ee_ = labels_->Intern("ee");
  url_ = labels_->Intern("url");
  authors_ = MakePool(*labels_, "auth", params_.author_pool);
  titles_ = MakePool(*labels_, "ttl", params_.title_pool);
  years_ = MakePool(*labels_, "y", params_.year_pool);
  venues_ = MakePool(*labels_, "venue", params_.venue_pool);
  page_values_ = MakePool(*labels_, "pg", params_.page_pool);
  publishers_ = MakePool(*labels_, "pub", 12);
  isbns_ = MakePool(*labels_, "isbn", 25);
}

LabelId DblpGenerator::Pick(const std::vector<LabelId>& pool) {
  return pool[rng_.UniformIndex(pool.size())];
}

LabelId DblpGenerator::PickSkewed(const std::vector<LabelId>& pool) {
  const double p = params_.value_skew;
  if (p <= 0.0) return Pick(pool);
  // Geometric head-skew, clamped to the pool: popular values repeat across
  // records, as years/venues/prolific authors do in the real DBLP.
  const double u = std::max(rng_.UniformReal(), 1e-12);
  const size_t index = static_cast<size_t>(std::log(u) / std::log(1.0 - p));
  return pool[std::min(index, pool.size() - 1)];
}

Tree DblpGenerator::Next() {
  const double type_draw = rng_.UniformReal();
  enum { kArticle, kInproceedings, kWww, kProceedings } type = kArticle;
  if (type_draw < params_.p_www) {
    type = kWww;
  } else if (type_draw < params_.p_www + params_.p_proceedings) {
    type = kProceedings;
  } else if (type_draw <
             params_.p_www + params_.p_proceedings + params_.p_inproceedings) {
    type = kInproceedings;
  }

  TreeBuilder builder(labels_);
  // Values are drawn before the field node is added so the RNG consumption
  // order does not depend on argument evaluation order. Titles are
  // unique-ish (uniform); the other values are head-skewed like real DBLP.
  NodeId root = kInvalidNode;
  auto add_field = [&](LabelId field, LabelId value) {
    builder.AddChildId(builder.AddChildId(root, field), value);
  };

  switch (type) {
    case kWww: {
      // Homepage stub: author, title, bare url leaf.
      root = builder.AddRootId(www_);
      const LabelId author_value = PickSkewed(authors_);
      add_field(author_, author_value);
      add_field(title_, Pick(titles_));
      builder.AddChildId(root, url_);
      break;
    }
    case kProceedings: {
      root = builder.AddRootId(proceedings_);
      for (int i = 0; i < 2; ++i) add_field(editor_, PickSkewed(authors_));
      add_field(title_, Pick(titles_));
      add_field(year_, PickSkewed(years_));
      add_field(publisher_, PickSkewed(publishers_));
      add_field(isbn_, Pick(isbns_));
      break;
    }
    case kArticle:
    case kInproceedings: {
      root = builder.AddRootId(type == kArticle ? article_ : inproceedings_);
      const double a = rng_.UniformReal();
      int author_count = 1;
      if (a < params_.p_four_authors) {
        author_count = 4;
      } else if (a < params_.p_four_authors + params_.p_three_authors) {
        author_count = 3;
      } else if (a < params_.p_four_authors + params_.p_three_authors +
                         params_.p_two_authors) {
        author_count = 2;
      }
      for (int i = 0; i < author_count; ++i) {
        add_field(author_, PickSkewed(authors_));
      }
      add_field(title_, Pick(titles_));
      add_field(year_, PickSkewed(years_));
      add_field(type == kArticle ? journal_ : booktitle_,
                PickSkewed(venues_));
      if (rng_.Bernoulli(params_.p_pages)) {
        add_field(pages_, PickSkewed(page_values_));
      }
      if (rng_.Bernoulli(params_.p_ee)) builder.AddChildId(root, ee_);
      if (rng_.Bernoulli(params_.p_url)) builder.AddChildId(root, url_);
      break;
    }
  }
  return std::move(builder).Build();
}

std::vector<Tree> DblpGenerator::Generate(int count) {
  TREESIM_CHECK_GE(count, 0);
  std::vector<Tree> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(Next());
  return out;
}

}  // namespace treesim
