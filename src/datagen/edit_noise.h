#ifndef TREESIM_DATAGEN_EDIT_NOISE_H_
#define TREESIM_DATAGEN_EDIT_NOISE_H_

#include <vector>

#include "ted/edit_operation.h"
#include "tree/tree.h"
#include "util/random.h"

namespace treesim {

/// A tree derived by a known random edit script. |script| is an upper bound
/// on EDist(original, tree) — the handle the property tests use to check
/// Theorem 3.2/3.3 without computing scripts themselves.
struct NoisyTree {
  Tree tree;
  std::vector<EditOperation> script;
};

/// Applies `ops` random edit operations (insert / delete / relabel,
/// equiprobable) to `t`, drawing labels for relabels/inserts uniformly from
/// `label_pool` (must be non-empty). Deletions never target the root; an
/// operation that cannot apply (e.g. delete on a single-node tree) is
/// re-drawn, so the returned script always has exactly `ops` entries.
NoisyTree ApplyRandomEdits(const Tree& t, int ops,
                           const std::vector<LabelId>& label_pool, Rng& rng);

/// Generates one random edit operation valid for `t`. Exposed for tests
/// that exercise single-operation invariants (the Theorem 3.2 case split).
EditOperation RandomEditOperation(const Tree& t,
                                  const std::vector<LabelId>& label_pool,
                                  Rng& rng);

}  // namespace treesim

#endif  // TREESIM_DATAGEN_EDIT_NOISE_H_
