#include "xml/xml_corpus.h"

#include <functional>
#include <utility>

#include "tree/forest_io.h"
#include "util/logging.h"
#include "util/status.h"

namespace treesim {

std::vector<Tree> SplitChildren(const Tree& corpus) {
  std::vector<Tree> records;
  if (corpus.empty()) return records;
  for (const NodeId record_root : corpus.Children(corpus.root())) {
    TreeBuilder builder(corpus.label_dict());
    std::function<void(NodeId, NodeId)> copy = [&](NodeId src,
                                                   NodeId parent) {
      const NodeId dst =
          (parent == kInvalidNode)
              ? builder.AddRootId(corpus.label(src))
              : builder.AddChildId(parent, corpus.label(src));
      for (NodeId c = corpus.first_child(src); c != kInvalidNode;
           c = corpus.next_sibling(c)) {
        copy(c, dst);
      }
    };
    copy(record_root, kInvalidNode);
    records.push_back(std::move(builder).Build());
  }
  return records;
}

StatusOr<std::vector<Tree>> ParseXmlCorpus(
    std::string_view xml, std::shared_ptr<LabelDictionary> labels,
    const XmlParseOptions& options) {
  TREESIM_ASSIGN_OR_RETURN(const Tree corpus,
                           ParseXml(xml, std::move(labels), options));
  return SplitChildren(corpus);
}

StatusOr<std::vector<Tree>> LoadXmlCorpus(
    const std::string& path, std::shared_ptr<LabelDictionary> labels,
    const XmlParseOptions& options) {
  TREESIM_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  return ParseXmlCorpus(text, std::move(labels), options);
}

}  // namespace treesim
