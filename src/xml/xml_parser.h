#ifndef TREESIM_XML_XML_PARSER_H_
#define TREESIM_XML_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "tree/tree.h"
#include "util/status.h"

namespace treesim {

/// How XML constructs map onto ordered labeled tree nodes.
struct XmlParseOptions {
  enum class TextMode {
    /// Text content is dropped; only the element structure remains.
    kIgnore,
    /// Non-whitespace text becomes a leaf child labeled with the (trimmed,
    /// possibly truncated) text — the usual encoding when similarity should
    /// reflect content as well as structure (e.g. the DBLP experiments).
    kAsLeaf,
  };

  TextMode text_mode = TextMode::kAsLeaf;
  /// When true, each attribute becomes a child labeled "@name" (with the
  /// value as its own leaf child under kAsLeaf), ordered before element
  /// children in attribute order.
  bool include_attributes = false;
  /// Text leaf labels are truncated to this many bytes.
  size_t max_text_label_length = 64;
};

/// Parses one XML document (a useful subset: elements, attributes, text,
/// CDATA, comments, processing instructions, DOCTYPE, the five predefined
/// entities and numeric character references) into a Tree whose node labels
/// are element names (and optionally attributes/text). Not a validating
/// parser; namespaces are kept verbatim in names.
StatusOr<Tree> ParseXml(std::string_view xml,
                        std::shared_ptr<LabelDictionary> labels,
                        const XmlParseOptions& options = {});

/// Renders a tree as indented XML, treating every node label as an element
/// name (labels that are not valid XML names are emitted inside the tag
/// as-is; intended for demos and debugging, not round-tripping).
std::string ToXml(const Tree& t);

}  // namespace treesim

#endif  // TREESIM_XML_XML_PARSER_H_
