#include "xml/xml_parser.h"

#include <cctype>
#include <utility>
#include <vector>

#include "util/status.h"

namespace treesim {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

/// Streaming parser; elements are pushed on an explicit stack, so document
/// depth is bounded only by memory.
class XmlParser {
 public:
  XmlParser(std::string_view text, std::shared_ptr<LabelDictionary> labels,
            const XmlParseOptions& options)
      : text_(text), options_(options), builder_(std::move(labels)) {}

  StatusOr<Tree> Run() {
    while (true) {
      TREESIM_RETURN_IF_ERROR(SkipMisc());
      if (AtEnd()) break;
      if (Peek() != '<') {
        TREESIM_RETURN_IF_ERROR(ConsumeText());
        continue;
      }
      TREESIM_RETURN_IF_ERROR(ConsumeMarkup());
      if (root_done_ && open_.empty()) break;
    }
    if (!open_.empty()) return Error("unclosed element");
    if (!root_done_) return Error("no root element");
    TREESIM_RETURN_IF_ERROR(SkipMisc());
    if (!AtEnd()) return Error("content after the root element");
    return std::move(builder_).Build();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool StartsWith(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("XML error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  /// Skips whitespace and non-element markup allowed outside elements.
  Status SkipMisc() {
    while (!AtEnd()) {
      if (IsSpace(Peek())) {
        ++pos_;
      } else if (StartsWith("<?")) {
        TREESIM_RETURN_IF_ERROR(SkipUntil("?>"));
      } else if (StartsWith("<!--")) {
        TREESIM_RETURN_IF_ERROR(SkipUntil("-->"));
      } else if (StartsWith("<!DOCTYPE")) {
        TREESIM_RETURN_IF_ERROR(SkipDoctype());
      } else if (!open_.empty()) {
        break;  // inside the root, anything else is content/markup
      } else if (Peek() == '<') {
        break;  // root element start
      } else {
        return Error("unexpected character outside the root element");
      }
    }
    return Status::Ok();
  }

  Status SkipUntil(std::string_view terminator) {
    const size_t at = text_.find(terminator, pos_);
    if (at == std::string_view::npos) {
      return Error("unterminated '" + std::string(terminator) + "'");
    }
    pos_ = at + terminator.size();
    return Status::Ok();
  }

  Status SkipDoctype() {
    // DOCTYPE may contain an internal subset in [...]; track both nestings.
    int angle = 0;
    bool in_subset = false;
    while (!AtEnd()) {
      const char c = text_[pos_++];
      if (c == '[') in_subset = true;
      if (c == ']') in_subset = false;
      if (c == '<') ++angle;
      if (c == '>') {
        --angle;
        if (angle == 0 && !in_subset) return Status::Ok();
      }
    }
    return Error("unterminated DOCTYPE");
  }

  Status ConsumeMarkup() {
    if (StartsWith("<?")) return SkipUntil("?>");
    if (StartsWith("<!--")) return SkipUntil("-->");
    if (StartsWith("<![CDATA[")) return ConsumeCdata();
    if (StartsWith("</")) return ConsumeCloseTag();
    return ConsumeOpenTag();
  }

  Status ConsumeCdata() {
    const size_t start = pos_ + 9;  // after "<![CDATA["
    const size_t end = text_.find("]]>", start);
    if (end == std::string_view::npos) return Error("unterminated CDATA");
    text_buffer_.append(text_.substr(start, end - start));
    pos_ = end + 3;
    return Status::Ok();
  }

  Status ConsumeText() {
    const size_t start = pos_;
    while (!AtEnd() && Peek() != '<') ++pos_;
    if (open_.empty()) {
      if (!Trim(text_.substr(start, pos_ - start)).empty()) {
        return Error("text outside the root element");
      }
      return Status::Ok();
    }
    TREESIM_ASSIGN_OR_RETURN(
        const std::string decoded,
        DecodeEntities(text_.substr(start, pos_ - start)));
    text_buffer_.append(decoded);
    return Status::Ok();
  }

  /// Emits the accumulated text (if any) as a leaf under the current
  /// element, per options.
  void FlushText() {
    if (open_.empty()) {
      text_buffer_.clear();
      return;
    }
    const std::string_view trimmed = Trim(text_buffer_);
    if (!trimmed.empty() &&
        options_.text_mode == XmlParseOptions::TextMode::kAsLeaf) {
      builder_.AddChild(open_.back(),
                        trimmed.substr(0, options_.max_text_label_length));
    }
    text_buffer_.clear();
  }

  StatusOr<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) return Error("expected a name");
    const size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  void SkipWs() {
    while (!AtEnd() && IsSpace(Peek())) ++pos_;
  }

  Status ConsumeOpenTag() {
    FlushText();
    ++pos_;  // '<'
    TREESIM_ASSIGN_OR_RETURN(const std::string name, ParseName());
    NodeId node;
    if (open_.empty()) {
      if (root_done_) return Error("multiple root elements");
      node = builder_.AddRoot(name);
      root_done_ = true;
    } else {
      node = builder_.AddChild(open_.back(), name);
    }
    // Attributes.
    while (true) {
      SkipWs();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>') {
        ++pos_;
        open_.push_back(node);
        names_.push_back(name);
        return Status::Ok();
      }
      if (StartsWith("/>")) {
        pos_ += 2;
        return Status::Ok();
      }
      TREESIM_ASSIGN_OR_RETURN(const std::string attr, ParseName());
      SkipWs();
      if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
      ++pos_;
      SkipWs();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected a quoted attribute value");
      }
      const char quote = Peek();
      ++pos_;
      const size_t vstart = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      TREESIM_ASSIGN_OR_RETURN(
          const std::string value,
          DecodeEntities(text_.substr(vstart, pos_ - vstart)));
      ++pos_;  // closing quote
      if (options_.include_attributes) {
        const NodeId attr_node = builder_.AddChild(node, "@" + attr);
        if (options_.text_mode == XmlParseOptions::TextMode::kAsLeaf &&
            !value.empty()) {
          builder_.AddChild(
              attr_node,
              std::string_view(value).substr(
                  0, options_.max_text_label_length));
        }
      }
    }
  }

  Status ConsumeCloseTag() {
    FlushText();
    pos_ += 2;  // "</"
    TREESIM_ASSIGN_OR_RETURN(const std::string name, ParseName());
    SkipWs();
    if (AtEnd() || Peek() != '>') return Error("malformed end tag");
    ++pos_;
    if (open_.empty()) return Error("end tag without a matching start tag");
    if (names_.back() != name) {
      return Error("mismatched end tag </" + name + ">, expected </" +
                   names_.back() + ">");
    }
    open_.pop_back();
    names_.pop_back();
    return Status::Ok();
  }

  StatusOr<std::string> DecodeEntities(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out.push_back(s[i]);
        continue;
      }
      const size_t semi = s.find(';', i);
      if (semi == std::string_view::npos) return Error("unterminated entity");
      const std::string_view entity = s.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (!entity.empty() && entity[0] == '#') {
        int code = 0;
        const bool hex = entity.size() > 1 && (entity[1] == 'x' ||
                                               entity[1] == 'X');
        for (size_t j = hex ? 2 : 1; j < entity.size(); ++j) {
          const char c = entity[j];
          int digit;
          if (c >= '0' && c <= '9') {
            digit = c - '0';
          } else if (hex && c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
          } else if (hex && c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
          } else {
            return Error("bad character reference");
          }
          code = code * (hex ? 16 : 10) + digit;
          if (code > 0x10FFFF) return Error("character reference too large");
        }
        // Encode as UTF-8.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xF0 | (code >> 18)));
          out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        return Error("unknown entity &" + std::string(entity) + ";");
      }
      i = semi;
    }
    return out;
  }

  std::string_view text_;
  XmlParseOptions options_;
  TreeBuilder builder_;
  size_t pos_ = 0;
  std::vector<NodeId> open_;
  std::vector<std::string> names_;
  std::string text_buffer_;
  bool root_done_ = false;
};

void EscapeInto(std::string_view s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out.push_back(c);
    }
  }
}

}  // namespace

StatusOr<Tree> ParseXml(std::string_view xml,
                        std::shared_ptr<LabelDictionary> labels,
                        const XmlParseOptions& options) {
  if (labels == nullptr) {
    return Status::InvalidArgument("label dictionary must not be null");
  }
  return XmlParser(xml, std::move(labels), options).Run();
}

std::string ToXml(const Tree& t) {
  std::string out;
  if (t.empty()) return out;
  struct Frame {
    NodeId node;
    int depth;
    bool closer;
  };
  std::vector<Frame> stack = {{t.root(), 0, false}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    out.append(static_cast<size_t>(2 * f.depth), ' ');
    if (f.closer) {
      out += "</";
      EscapeInto(t.LabelName(f.node), out);
      out += ">\n";
      continue;
    }
    out.push_back('<');
    EscapeInto(t.LabelName(f.node), out);
    if (t.is_leaf(f.node)) {
      out += "/>\n";
      continue;
    }
    out += ">\n";
    stack.push_back({f.node, f.depth, true});
    std::vector<NodeId> children = t.Children(f.node);
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({*it, f.depth + 1, false});
    }
  }
  return out;
}

}  // namespace treesim
