#ifndef TREESIM_XML_XML_CORPUS_H_
#define TREESIM_XML_XML_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "tree/tree.h"
#include "util/status.h"
#include "xml/xml_parser.h"

namespace treesim {

/// Splits a tree into the forest of its root's child subtrees — the shape
/// of corpus documents like the real DBLP dump, where one <dblp> root wraps
/// millions of record elements. Each child becomes an independent Tree
/// sharing the source's label dictionary. The root's own label is dropped.
std::vector<Tree> SplitChildren(const Tree& corpus);

/// Parses an XML corpus document and returns one tree per record element
/// (child of the document root). This is how the paper's DBLP experiment
/// input would be loaded from the real dump:
///
///   auto records = ParseXmlCorpus(dblp_xml, labels);
///   db->AddAll(std::move(*records));
StatusOr<std::vector<Tree>> ParseXmlCorpus(
    std::string_view xml, std::shared_ptr<LabelDictionary> labels,
    const XmlParseOptions& options = {});

/// Reads and parses an XML corpus file.
StatusOr<std::vector<Tree>> LoadXmlCorpus(
    const std::string& path, std::shared_ptr<LabelDictionary> labels,
    const XmlParseOptions& options = {});

}  // namespace treesim

#endif  // TREESIM_XML_XML_CORPUS_H_
