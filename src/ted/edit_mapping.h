#ifndef TREESIM_TED_EDIT_MAPPING_H_
#define TREESIM_TED_EDIT_MAPPING_H_

#include <string>
#include <utility>
#include <vector>

#include "tree/tree.h"

namespace treesim {

/// An optimal edit mapping between two trees (Section 2.1 / [23]): a
/// one-to-one node correspondence preserving ancestor and sibling order that
/// realizes the unit-cost edit distance. Unmapped T1 nodes are deletions,
/// unmapped T2 nodes are insertions, mapped pairs with different labels are
/// relabelings:
///   cost = relabels + (|T1| - |pairs|) + (|T2| - |pairs|).
struct EditMapping {
  /// Mapped (T1 node, T2 node) pairs, ascending by T1 postorder.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  /// Total unit cost; equals TreeEditDistance(t1, t2).
  int cost = 0;
  /// Mapped pairs whose labels differ.
  int relabels = 0;
  /// |T1| - |pairs|.
  int deletions = 0;
  /// |T2| - |pairs|.
  int insertions = 0;
};

/// Computes an optimal edit mapping by backtracking through the
/// Zhang–Shasha dynamic program. Same asymptotic cost as the distance
/// computation. Both trees must be non-empty.
EditMapping ComputeEditMapping(const Tree& t1, const Tree& t2);

/// Validates the mapping invariants of Section 2.1 against the two trees:
/// one-to-one, ancestor order preserved, sibling (preorder) order preserved,
/// and the cost accounting above. Returns a diagnostic ("" when valid).
/// Used by tests and available for debugging.
std::string ValidateEditMapping(const Tree& t1, const Tree& t2,
                                const EditMapping& mapping);

}  // namespace treesim

#endif  // TREESIM_TED_EDIT_MAPPING_H_
