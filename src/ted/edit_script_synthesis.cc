#include "ted/edit_script_synthesis.h"

#include <algorithm>
#include <utility>

#include "tree/traversal.h"
#include "util/logging.h"
#include "util/status.h"

namespace treesim {
namespace {

/// Mutable working copy of the evolving tree. Arena indices are stable;
/// preorder addresses are recomputed per emitted operation (the script
/// addresses the intermediate trees, whose ids are preorder ranks — see the
/// ApplyEditOperation guarantee).
struct ShadowNode {
  LabelId label = kEpsilonLabel;
  std::vector<int> children;
  /// The T2 node this will become; kInvalidNode marks a pending deletion.
  NodeId t2_image = kInvalidNode;
};

class ScriptBuilder {
 public:
  ScriptBuilder(const Tree& t1, const Tree& t2, const EditMapping& mapping)
      : t1_(t1), t2_(t2), mapping_(mapping), t2_pos_(ComputePositions(t2)) {}

  StatusOr<std::vector<EditOperation>> Run() {
    TREESIM_RETURN_IF_ERROR(CheckRoots());
    BuildShadow();
    Relabels();
    Deletions();
    TREESIM_RETURN_IF_ERROR(Insertions());
    return std::move(script_);
  }

 private:
  Status CheckRoots() {
    for (const auto& [u, v] : mapping_.pairs) {
      if (u == t1_.root() && v == t2_.root()) return Status::Ok();
      if (u == t1_.root() || v == t2_.root()) break;
    }
    return Status::Unimplemented(
        "the mapping does not pair the two roots; root deletion/creation is "
        "outside the supported operation set");
  }

  void BuildShadow() {
    // One shadow node per T1 node, same arena indices.
    shadow_.resize(static_cast<size_t>(t1_.size()));
    for (NodeId n = 0; n < t1_.size(); ++n) {
      shadow_[static_cast<size_t>(n)].label = t1_.label(n);
      for (const NodeId c : t1_.Children(n)) {
        shadow_[static_cast<size_t>(n)].children.push_back(c);
      }
    }
    root_ = t1_.root();
    for (const auto& [u, v] : mapping_.pairs) {
      shadow_[static_cast<size_t>(u)].t2_image = v;
    }
  }

  /// Preorder rank of `target` in the current shadow, converted to the
  /// NodeId the next intermediate tree uses for it.
  NodeId AddressOf(int target) const {
    int rank = 0;
    int found = -1;
    // Iterative preorder over the shadow.
    std::vector<int> stack = {root_};
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      if (node == target) {
        found = rank;
        break;
      }
      ++rank;
      const std::vector<int>& kids =
          shadow_[static_cast<size_t>(node)].children;
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back(*it);
      }
    }
    TREESIM_CHECK_GE(found, 0) << "target not in the shadow tree";
    // The very first operation addresses the original t1, whose NodeIds may
    // not be preorder ranks; later intermediates are rebuilt in preorder.
    if (script_.empty()) {
      return PreorderSequence(t1_)[static_cast<size_t>(found)];
    }
    return found;
  }

  void Relabels() {
    for (const auto& [u, v] : mapping_.pairs) {
      if (t1_.label(u) != t2_.label(v)) {
        script_.push_back(
            EditOperation::MakeRelabel(AddressOf(u), t2_.label(v)));
        shadow_[static_cast<size_t>(u)].label = t2_.label(v);
      }
    }
  }

  void Deletions() {
    // Delete unmapped nodes one at a time; splicing children up keeps the
    // shadow consistent with what ApplyEditOperation would produce.
    while (true) {
      int victim = -1;
      int parent = -1;
      std::vector<std::pair<int, int>> stack = {{root_, -1}};
      while (!stack.empty()) {
        const auto [node, par] = stack.back();
        stack.pop_back();
        if (shadow_[static_cast<size_t>(node)].t2_image == kInvalidNode) {
          victim = node;
          parent = par;
          break;
        }
        const std::vector<int>& kids =
            shadow_[static_cast<size_t>(node)].children;
        for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
          stack.push_back({*it, node});
        }
      }
      if (victim < 0) return;
      TREESIM_CHECK_GE(parent, 0) << "root must be mapped here";
      script_.push_back(EditOperation::MakeDelete(AddressOf(victim)));
      std::vector<int>& siblings =
          shadow_[static_cast<size_t>(parent)].children;
      const auto at = std::find(siblings.begin(), siblings.end(), victim);
      TREESIM_CHECK(at != siblings.end());
      const std::vector<int> orphans =
          shadow_[static_cast<size_t>(victim)].children;
      siblings.insert(siblings.erase(at), orphans.begin(), orphans.end());
    }
  }

  bool IsAncestorInT2(NodeId ancestor, NodeId node) const {
    return t2_pos_.pre[static_cast<size_t>(ancestor)] <
               t2_pos_.pre[static_cast<size_t>(node)] &&
           t2_pos_.post[static_cast<size_t>(ancestor)] >
               t2_pos_.post[static_cast<size_t>(node)];
  }

  Status Insertions() {
    // Shadow index per T2 node, filled as nodes materialize.
    std::vector<int> shadow_of_t2(static_cast<size_t>(t2_.size()), -1);
    for (size_t i = 0; i < shadow_.size(); ++i) {
      const NodeId image = shadow_[i].t2_image;
      if (image != kInvalidNode) {
        shadow_of_t2[static_cast<size_t>(image)] = static_cast<int>(i);
      }
    }
    for (const NodeId v : PreorderSequence(t2_)) {
      if (shadow_of_t2[static_cast<size_t>(v)] >= 0) continue;  // mapped
      const NodeId t2_parent = t2_.parent(v);
      if (t2_parent == kInvalidNode) {
        return Status::Internal("unmapped T2 root slipped past CheckRoots");
      }
      const int parent_shadow = shadow_of_t2[static_cast<size_t>(t2_parent)];
      if (parent_shadow < 0) {
        return Status::Internal("T2 parent not materialized in preorder");
      }
      // The current children of the parent that belong under v form a
      // consecutive run (descendant intervals are contiguous).
      std::vector<int>& kids =
          shadow_[static_cast<size_t>(parent_shadow)].children;
      int begin = -1;
      int count = 0;
      for (size_t i = 0; i < kids.size(); ++i) {
        const NodeId image =
            shadow_[static_cast<size_t>(kids[i])].t2_image;
        if (IsAncestorInT2(v, image)) {
          if (begin < 0) begin = static_cast<int>(i);
          if (static_cast<int>(i) != begin + count) {
            return Status::Internal("adopted children are not consecutive");
          }
          ++count;
        }
      }
      if (begin < 0) {
        // No descendants present yet: v lands at the position determined by
        // its T2 preorder among the parent's current children.
        begin = 0;
        for (const int kid : kids) {
          const NodeId image = shadow_[static_cast<size_t>(kid)].t2_image;
          if (t2_pos_.pre[static_cast<size_t>(image)] <
              t2_pos_.pre[static_cast<size_t>(v)]) {
            ++begin;
          }
        }
      }
      script_.push_back(EditOperation::MakeInsert(
          AddressOf(parent_shadow), t2_.label(v), begin, count));
      // Materialize in the shadow.
      const int fresh = static_cast<int>(shadow_.size());
      shadow_.push_back(ShadowNode{});
      shadow_.back().label = t2_.label(v);
      shadow_.back().t2_image = v;
      std::vector<int>& kids2 =
          shadow_[static_cast<size_t>(parent_shadow)].children;
      shadow_.back().children.assign(
          kids2.begin() + begin, kids2.begin() + begin + count);
      kids2.erase(kids2.begin() + begin, kids2.begin() + begin + count);
      kids2.insert(kids2.begin() + begin, fresh);
      shadow_of_t2[static_cast<size_t>(v)] = fresh;
    }
    return Status::Ok();
  }

  const Tree& t1_;
  const Tree& t2_;
  const EditMapping& mapping_;
  TraversalPositions t2_pos_;
  std::vector<ShadowNode> shadow_;
  int root_ = 0;
  std::vector<EditOperation> script_;
};

}  // namespace

StatusOr<std::vector<EditOperation>> SynthesizeEditScript(
    const Tree& t1, const Tree& t2, const EditMapping& mapping) {
  if (t1.empty() || t2.empty()) {
    return Status::FailedPrecondition("trees must be non-empty");
  }
  const std::string diagnosis = ValidateEditMapping(t1, t2, mapping);
  if (!diagnosis.empty()) {
    return Status::InvalidArgument("invalid mapping: " + diagnosis);
  }
  return ScriptBuilder(t1, t2, mapping).Run();
}

StatusOr<std::vector<EditOperation>> ComputeEditScript(const Tree& t1,
                                                       const Tree& t2) {
  return SynthesizeEditScript(t1, t2, ComputeEditMapping(t1, t2));
}

}  // namespace treesim
