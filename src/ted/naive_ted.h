#ifndef TREESIM_TED_NAIVE_TED_H_
#define TREESIM_TED_NAIVE_TED_H_

#include "tree/tree.h"

namespace treesim {

/// Exact unit-cost tree edit distance computed by a direct memoized
/// evaluation of the forest-distance recurrence (no keyroot decomposition).
/// O(n^4) time/space — intended only as an independent oracle for testing
/// the production Zhang–Shasha implementation on small trees (<= ~30 nodes).
int NaiveTreeEditDistance(const Tree& t1, const Tree& t2);

}  // namespace treesim

#endif  // TREESIM_TED_NAIVE_TED_H_
