#ifndef TREESIM_TED_COST_MODEL_H_
#define TREESIM_TED_COST_MODEL_H_

#include "tree/label_dictionary.h"

namespace treesim {

/// Cost of the three edit operations of Section 2.1 (relabel, insert,
/// delete). The paper adopts the unit-cost distance; the general model is
/// supported for the extension mentioned there ("our algorithm can be easily
/// extended to the general edit distance measure if there is a lower bound
/// on the cost for each edit operation").
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Cost of relabeling `from` to `to`. Must be 0 when from == to.
  virtual double Relabel(LabelId from, LabelId to) const {
    return from == to ? 0.0 : 1.0;
  }

  /// Cost of inserting a node labeled `label`.
  virtual double Insert(LabelId /*label*/) const { return 1.0; }

  /// Cost of deleting a node labeled `label`.
  virtual double Delete(LabelId /*label*/) const { return 1.0; }

  /// A positive lower bound on the cost of any single operation (between
  /// distinct labels, for Relabel). Lets the embedding bounds scale:
  /// BDist <= 5 * EDist / MinOperationCost() becomes
  /// EDist >= MinOperationCost() * BDist / 5.
  virtual double MinOperationCost() const { return 1.0; }
};

/// The paper's default: every operation costs 1.
class UnitCostModel final : public CostModel {
 public:
  /// Shared immutable instance.
  static const UnitCostModel& Get();
};

}  // namespace treesim

#endif  // TREESIM_TED_COST_MODEL_H_
