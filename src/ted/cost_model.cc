#include "ted/cost_model.h"

namespace treesim {

const UnitCostModel& UnitCostModel::Get() {
  static const UnitCostModel* const kInstance = new UnitCostModel();
  return *kInstance;
}

}  // namespace treesim
