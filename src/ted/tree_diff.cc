#include "ted/tree_diff.h"

#include <vector>

#include "tree/traversal.h"
#include "util/logging.h"

namespace treesim {
namespace {

/// Renders one tree, one node per line, with a per-node marker and an
/// optional "-> other label" suffix for relabeled nodes.
void RenderPane(const Tree& t, const std::vector<char>& marker,
                const std::vector<NodeId>& partner_label_of,
                const Tree* partner, std::string& out) {
  const std::vector<int> depth = NodeDepths(t);
  for (const NodeId n : PreorderSequence(t)) {
    out.push_back(marker[static_cast<size_t>(n)]);
    out.push_back(' ');
    out.append(static_cast<size_t>(2 * (depth[static_cast<size_t>(n)] - 1)),
               ' ');
    out.append(t.LabelName(n));
    if (partner != nullptr &&
        partner_label_of[static_cast<size_t>(n)] != kInvalidNode) {
      out += " -> ";
      out.append(partner->LabelName(
          partner_label_of[static_cast<size_t>(n)]));
    }
    out.push_back('\n');
  }
}

}  // namespace

std::string RenderTreeDiff(const Tree& t1, const Tree& t2,
                           const EditMapping& mapping) {
  TREESIM_CHECK(!t1.empty() && !t2.empty());
  // Per-node markers: default delete/insert; mapped pairs become
  // unchanged or relabeled.
  std::vector<char> marker1(static_cast<size_t>(t1.size()), '-');
  std::vector<char> marker2(static_cast<size_t>(t2.size()), '+');
  std::vector<NodeId> relabel_target(static_cast<size_t>(t1.size()),
                                     kInvalidNode);
  const std::vector<NodeId> no_partner(static_cast<size_t>(t2.size()),
                                       kInvalidNode);
  for (const auto& [u, v] : mapping.pairs) {
    if (t1.label(u) == t2.label(v)) {
      marker1[static_cast<size_t>(u)] = ' ';
      marker2[static_cast<size_t>(v)] = ' ';
    } else {
      marker1[static_cast<size_t>(u)] = '~';
      marker2[static_cast<size_t>(v)] = '~';
      relabel_target[static_cast<size_t>(u)] = v;
    }
  }
  std::string out = "--- T1 (" + std::to_string(mapping.deletions) +
                    " deleted, " + std::to_string(mapping.relabels) +
                    " relabeled)\n";
  RenderPane(t1, marker1, relabel_target, &t2, out);
  out += "+++ T2 (" + std::to_string(mapping.insertions) + " inserted)\n";
  RenderPane(t2, marker2, no_partner, nullptr, out);
  return out;
}

std::string RenderTreeDiff(const Tree& t1, const Tree& t2) {
  return RenderTreeDiff(t1, t2, ComputeEditMapping(t1, t2));
}

}  // namespace treesim
