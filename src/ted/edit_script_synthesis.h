#ifndef TREESIM_TED_EDIT_SCRIPT_SYNTHESIS_H_
#define TREESIM_TED_EDIT_SCRIPT_SYNTHESIS_H_

#include <vector>

#include "ted/edit_mapping.h"
#include "ted/edit_operation.h"
#include "tree/tree.h"
#include "util/status.h"

namespace treesim {

/// Synthesizes an executable edit script from an edit mapping — the
/// constructive direction of the mapping/script duality of Section 2.1:
/// a mapping of cost k yields a script of exactly k operations
/// (relabels of mapped pairs, deletions of unmapped T1 nodes bottom-up,
/// insertions of unmapped T2 nodes top-down), and
/// ApplyEditScript(t1, script) reproduces t2.
///
/// The script addresses nodes of the successive intermediate trees; it is
/// valid input for ApplyEditScript. Combined with ComputeEditMapping this
/// yields a "tree patch": the minimal operation sequence transforming t1
/// into t2.
///
/// Limitation: the library's operation set cannot delete or create a root
/// (Section 2.1 footnote in edit_operation.h), so a mapping that leaves
/// either root unmapped — or maps the two roots to non-root nodes — is
/// rejected with kUnimplemented. ComputeEditMapping produces such mappings
/// only when relabeling the roots is not optimal, which is rare; callers
/// can fall back to reporting the mapping itself.
StatusOr<std::vector<EditOperation>> SynthesizeEditScript(
    const Tree& t1, const Tree& t2, const EditMapping& mapping);

/// Convenience: optimal mapping + synthesis in one call.
StatusOr<std::vector<EditOperation>> ComputeEditScript(const Tree& t1,
                                                       const Tree& t2);

}  // namespace treesim

#endif  // TREESIM_TED_EDIT_SCRIPT_SYNTHESIS_H_
