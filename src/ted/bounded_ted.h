#ifndef TREESIM_TED_BOUNDED_TED_H_
#define TREESIM_TED_BOUNDED_TED_H_

#include "ted/cost_model.h"
#include "ted/zhang_shasha.h"
#include "tree/tree.h"

namespace treesim {

/// Threshold-bounded unit-cost tree edit distance — the refine-stage
/// verifier of the filter-and-refine pipeline. The engine never needs the
/// full distance: range queries ask "is EDist <= tau?" and k-NN asks "is
/// EDist < kth-best?", so the verifier may stop as soon as the answer is
/// provably "no".
///
/// Contract (the one the differential/metamorphic/fuzz suites pin):
///   * EDist(t1, t2) <= tau  =>  returns exactly EDist(t1, t2);
///   * EDist(t1, t2) >  tau  =>  returns a value > tau (tau + 1 for
///     tau >= 0; 0 for negative tau, where every distance exceeds tau).
/// Equivalently, for tau >= 0 the result is min(EDist, tau + 1). Callers
/// can therefore keep their existing `d <= tau` / heap-insert logic and
/// get byte-identical results to the unbounded path.
///
/// Internally: Zhang–Shasha restricted to the |x - y| <= tau diagonal band
/// of every keyroot-pair forest matrix (an out-of-band forest pair needs
/// more than tau unmatched nodes), per-keyroot-pair early exit once every
/// remaining cell provably exceeds tau, and an RTED-style strategy choice
/// between the leftmost and the mirrored (rightmost) decomposition of the
/// pair, whichever has the smaller keyroot-weight product. When the band
/// would exclude less than half of the root forest matrix (wide tau on
/// small trees) the per-read band checks cost more than they save, so the
/// call runs the plain kernel instead and clamps — the contract above is
/// unchanged.
int BoundedTreeEditDistance(const TedTree& t1, const TedTree& t2, int tau);

/// Convenience overload; builds both views (including mirrors) internally.
int BoundedTreeEditDistance(const Tree& t1, const Tree& t2, int tau);

/// Threshold-bounded distance under an arbitrary cost model. Same contract
/// as the unit-cost verifier: when the exact weighted distance is <= tau
/// the returned value is bit-identical to TreeEditDistanceWeighted (same
/// additions in the same order); otherwise the result is some value > tau
/// (+infinity from the banded kernel, or the exact distance when the call
/// delegates to the plain kernel because the band covers every diagonal or
/// would prune too little to pay for itself).
/// Negative and NaN thresholds reject everything with +infinity. The band
/// is scaled by costs.MinOperationCost(), which must be positive.
double BoundedTreeEditDistanceWeighted(const TedTree& t1, const TedTree& t2,
                                       double tau, const CostModel& costs);

}  // namespace treesim

#endif  // TREESIM_TED_BOUNDED_TED_H_
