#ifndef TREESIM_TED_EDIT_OPERATION_H_
#define TREESIM_TED_EDIT_OPERATION_H_

#include <string>
#include <vector>

#include "tree/tree.h"
#include "util/status.h"

namespace treesim {

/// One of the three node edit operations of Section 2.1, addressed by NodeId
/// of the tree it is applied to. Applying an operation produces a new tree
/// (trees are immutable), so a script addresses nodes of successive
/// intermediate trees.
struct EditOperation {
  enum class Kind {
    /// Change label(node) to `label`.
    kRelabel,
    /// Remove `node` (not the root): its children are spliced into its
    /// parent's child list at the position `node` occupied.
    kDelete,
    /// Add a new node labeled `label` under parent `node`: the consecutive
    /// children [child_begin, child_begin + child_count) of `node` become
    /// the children of the new node, which takes their place.
    kInsert,
  };

  Kind kind;
  /// Target node (kRelabel, kDelete) or parent of the new node (kInsert).
  NodeId node = kInvalidNode;
  /// New label (kRelabel, kInsert); ignored for kDelete.
  LabelId label = kEpsilonLabel;
  /// First adopted child position (kInsert only), 0-based among `node`'s
  /// children; must satisfy 0 <= child_begin <= degree(node).
  int child_begin = 0;
  /// Number of adopted children (kInsert only);
  /// child_begin + child_count <= degree(node).
  int child_count = 0;

  static EditOperation MakeRelabel(NodeId node, LabelId label) {
    return {Kind::kRelabel, node, label, 0, 0};
  }
  static EditOperation MakeDelete(NodeId node) {
    return {Kind::kDelete, node, kEpsilonLabel, 0, 0};
  }
  static EditOperation MakeInsert(NodeId parent, LabelId label,
                                  int child_begin, int child_count) {
    return {Kind::kInsert, parent, label, child_begin, child_count};
  }
};

/// Applies one operation, returning the edited tree. Errors (rather than
/// aborting) on out-of-range nodes, deleting the root, or invalid child
/// ranges — callers like the random generator probe with arbitrary targets.
///
/// Guarantee: the returned tree numbers its nodes in preorder (NodeId ==
/// 0-based preorder rank). Script producers (edit-script synthesis) rely on
/// this to address nodes of intermediate trees they never materialize.
StatusOr<Tree> ApplyEditOperation(const Tree& t, const EditOperation& op);

/// Applies a whole script in order. The script length is an upper bound on
/// EDist(t, result) — the property the embedding tests lean on.
StatusOr<Tree> ApplyEditScript(const Tree& t,
                               const std::vector<EditOperation>& script);

/// Debug representation, e.g. "relabel(3 -> 'x')".
std::string ToString(const EditOperation& op, const LabelDictionary& labels);

}  // namespace treesim

#endif  // TREESIM_TED_EDIT_OPERATION_H_
