#ifndef TREESIM_TED_TREE_DIFF_H_
#define TREESIM_TED_TREE_DIFF_H_

#include <string>

#include "ted/edit_mapping.h"
#include "tree/tree.h"

namespace treesim {

/// Renders an edit mapping as a unified-diff-style, two-pane text view:
///
///   --- T1
///     a
///   -   b        (deleted)
///   ~   c -> x   (relabeled)
///   +++ T2
///     a
///   +   d        (inserted)
///   ~   x        (relabel target)
///
/// Indentation mirrors each tree's structure; markers: ' ' unchanged,
/// '-' deleted, '+' inserted, '~' relabeled. Intended for tooling output
/// (the CLI's `mapping`/`patch` commands) and debugging.
std::string RenderTreeDiff(const Tree& t1, const Tree& t2,
                           const EditMapping& mapping);

/// Convenience: computes the optimal mapping first.
std::string RenderTreeDiff(const Tree& t1, const Tree& t2);

}  // namespace treesim

#endif  // TREESIM_TED_TREE_DIFF_H_
