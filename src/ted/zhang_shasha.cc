#include "ted/zhang_shasha.h"

#include <algorithm>
#include <memory>

#include "tree/traversal.h"
#include "util/hot.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/safe_math.h"

namespace treesim {
namespace {

/// Unit costs with integer arithmetic (the common case in the paper).
struct UnitCosts {
  using Dist = int;
  int Delete(LabelId) const { return 1; }
  int Insert(LabelId) const { return 1; }
  int Relabel(LabelId a, LabelId b) const { return a == b ? 0 : 1; }
};

/// Arbitrary costs via the virtual CostModel.
struct ModelCosts {
  using Dist = double;
  const CostModel& model;
  double Delete(LabelId l) const { return model.Delete(l); }
  double Insert(LabelId l) const { return model.Insert(l); }
  double Relabel(LabelId a, LabelId b) const { return model.Relabel(a, b); }
};

/// The Zhang–Shasha dynamic program. `td` and `fd` layouts follow the
/// original paper: td[i*n2+j] is the distance between the subtrees rooted at
/// postorder nodes i of T1 and j of T2; fd is the forest-distance scratch
/// matrix of one keyroot pair, reused across pairs to avoid reallocation.
/// Returns the full td matrix; the overall distance is its last entry.
template <typename Costs>
std::vector<typename Costs::Dist> ZhangShashaImpl(const TedTree& t1,
                                                  const TedTree& t2,
                                                  const Costs& costs) {
  using Dist = typename Costs::Dist;
  const int n1 = t1.size();
  const int n2 = t2.size();
  TREESIM_CHECK(n1 > 0 && n2 > 0) << "trees must be non-empty";

  std::vector<Dist> td(static_cast<size_t>(n1) * static_cast<size_t>(n2));
  std::vector<Dist> fd(static_cast<size_t>(n1 + 1) *
                       static_cast<size_t>(n2 + 1));
  const size_t fd_stride = static_cast<size_t>(n2) + 1;
  auto fd_at = [&](int x, int y) -> Dist& {
    return fd[static_cast<size_t>(x) * fd_stride + static_cast<size_t>(y)];
  };

  for (const int k1 : t1.keyroots) {
    for (const int k2 : t2.keyroots) {
      const int l1 = t1.lml[static_cast<size_t>(k1)];
      const int l2 = t2.lml[static_cast<size_t>(k2)];
      // fd indices are offset: x = di - l1 + 1, y = dj - l2 + 1.
      fd_at(0, 0) = Dist{0};
      for (int di = l1; di <= k1; ++di) {
        fd_at(di - l1 + 1, 0) = CheckedAddAny(
            fd_at(di - l1, 0), costs.Delete(t1.labels[static_cast<size_t>(di)]));
      }
      for (int dj = l2; dj <= k2; ++dj) {
        fd_at(0, dj - l2 + 1) = CheckedAddAny(
            fd_at(0, dj - l2), costs.Insert(t2.labels[static_cast<size_t>(dj)]));
      }
      for (int di = l1; di <= k1; ++di) {
        const int x = di - l1 + 1;
        const LabelId a = t1.labels[static_cast<size_t>(di)];
        const int lml1 = t1.lml[static_cast<size_t>(di)];
        for (int dj = l2; dj <= k2; ++dj) {
          const int y = dj - l2 + 1;
          const LabelId b = t2.labels[static_cast<size_t>(dj)];
          const Dist del = CheckedAddAny(fd_at(x - 1, y), costs.Delete(a));
          const Dist ins = CheckedAddAny(fd_at(x, y - 1), costs.Insert(b));
          if (lml1 == l1 && t2.lml[static_cast<size_t>(dj)] == l2) {
            // Both prefixes are whole subtrees: this cell is a tree distance.
            const Dist rel =
                CheckedAddAny(fd_at(x - 1, y - 1), costs.Relabel(a, b));
            const Dist best = std::min({del, ins, rel});
            fd_at(x, y) = best;
            td[static_cast<size_t>(di) * static_cast<size_t>(n2) +
               static_cast<size_t>(dj)] = best;
          } else {
            const Dist sub = CheckedAddAny(
                fd_at(lml1 - l1, t2.lml[static_cast<size_t>(dj)] - l2),
                td[static_cast<size_t>(di) * static_cast<size_t>(n2) +
                   static_cast<size_t>(dj)]);
            fd_at(x, y) = std::min({del, ins, sub});
          }
        }
      }
    }
  }
  return td;
}

}  // namespace

namespace {

/// One orientation of the postorder view. `mirrored` reads the tree with
/// child order reversed everywhere: its postorder is the reverse of the
/// original preorder, its "leftmost leaf" descends through original LAST
/// children, and its keyroots are the nodes with a right sibling in the
/// original (plus the root). The mirrored view is a faithful TedTree of the
/// mirrored tree, so every distance routine runs on it unchanged.
TedTree BuildOrientation(const Tree& t, bool mirrored) {
  TedTree out;
  const int n = t.size();
  std::vector<NodeId> post;
  if (mirrored) {
    // Mirrored postorder == reversed preorder: both orders place a node
    // after (resp. before) the right-to-left sequence of its subtrees.
    post = PreorderSequence(t);
    std::reverse(post.begin(), post.end());
  } else {
    post = PostorderSequence(t);
  }
  std::vector<int> post_index(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    post_index[static_cast<size_t>(post[static_cast<size_t>(i)])] = i;
  }
  out.labels.resize(static_cast<size_t>(n));
  out.lml.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const NodeId node = post[static_cast<size_t>(i)];
    out.labels[static_cast<size_t>(i)] = t.label(node);
    NodeId fc = t.first_child(node);
    if (mirrored && fc != kInvalidNode) {
      // The mirrored first child is the original last child.
      while (t.next_sibling(fc) != kInvalidNode) fc = t.next_sibling(fc);
    }
    // Children precede parents in (both) postorders, so lml of the first
    // child is already final.
    out.lml[static_cast<size_t>(i)] =
        (fc == kInvalidNode)
            ? i
            : out.lml[static_cast<size_t>(post_index[static_cast<size_t>(fc)])];
  }
  size_t keyroot_count = 0;
  for (int i = 0; i < n; ++i) {
    const NodeId node = post[static_cast<size_t>(i)];
    const NodeId parent = t.parent(node);
    const bool has_left_sibling =
        mirrored ? t.next_sibling(node) != kInvalidNode
                 : parent != kInvalidNode && t.first_child(parent) != node;
    if (parent == kInvalidNode || has_left_sibling) ++keyroot_count;
  }
  out.keyroots.reserve(keyroot_count);
  for (int i = 0; i < n; ++i) {
    const NodeId node = post[static_cast<size_t>(i)];
    const NodeId parent = t.parent(node);
    const bool has_left_sibling =
        mirrored ? t.next_sibling(node) != kInvalidNode
                 : parent != kInvalidNode && t.first_child(parent) != node;
    if (parent == kInvalidNode || has_left_sibling) {
      out.keyroots.push_back(i);
      out.keyroot_weight = CheckedAdd<int64_t>(
          out.keyroot_weight, i - out.lml[static_cast<size_t>(i)] + 1);
    }
  }
  return out;
}

}  // namespace

TedTree TedTree::FromTree(const Tree& t) {
  TREESIM_CHECK(!t.empty());
  TedTree out = BuildOrientation(t, /*mirrored=*/false);
  out.mirror =
      std::make_shared<const TedTree>(BuildOrientation(t, /*mirrored=*/true));
  return out;
}

int TREESIM_HOT TreeEditDistance(const TedTree& t1, const TedTree& t2) {
  TREESIM_COUNTER_INC("ted.zhang_shasha_calls");
  TREESIM_HISTOGRAM_RECORD("ted.problem_nodes", CountBuckets(),
                           static_cast<int64_t>(t1.size()) + t2.size());
  return ZhangShashaImpl(t1, t2, UnitCosts{}).back();
}

std::vector<int> TreeDistanceMatrix(const TedTree& t1, const TedTree& t2) {
  return ZhangShashaImpl(t1, t2, UnitCosts{});
}

int TreeEditDistance(const Tree& t1, const Tree& t2) {
  return TreeEditDistance(TedTree::FromTree(t1), TedTree::FromTree(t2));
}

double TREESIM_HOT TreeEditDistanceWeighted(const TedTree& t1,
                                            const TedTree& t2,
                                            const CostModel& costs) {
  TREESIM_COUNTER_INC("ted.zhang_shasha_weighted_calls");
  return ZhangShashaImpl(t1, t2, ModelCosts{costs}).back();
}

}  // namespace treesim
