#include "ted/edit_mapping.h"

#include <algorithm>

#include "ted/zhang_shasha.h"
#include "tree/traversal.h"
#include "util/logging.h"

namespace treesim {
namespace {

/// Backtracks through the Zhang–Shasha program. Each Trace() call owns one
/// forest-pair window: it recomputes the forest-distance table for that
/// window (the DP discards them) and walks from the corner back to the
/// origin, emitting matched postorder pairs. "Sub" transitions (a whole
/// subtree matched against a whole subtree) recurse into the subtree pair's
/// own window, mirroring how the forward DP consumed td[] entries.
class MappingBacktracker {
 public:
  MappingBacktracker(const TedTree& t1, const TedTree& t2,
                     const std::vector<int>& td)
      : t1_(t1), t2_(t2), td_(td), n2_(t2.size()) {
    fd_.resize((static_cast<size_t>(t1_.size()) + 1) *
               (static_cast<size_t>(t2_.size()) + 1));
    fd_stride_ = static_cast<size_t>(t2_.size()) + 1;
  }

  /// Matched (postorder index in T1, postorder index in T2) pairs.
  std::vector<std::pair<int, int>> Run() {
    Trace(0, t1_.size() - 1, 0, t2_.size() - 1);
    std::sort(matches_.begin(), matches_.end());
    return matches_;
  }

 private:
  int Td(int i, int j) const {
    return td_[static_cast<size_t>(i) * static_cast<size_t>(n2_) +
               static_cast<size_t>(j)];
  }

  int& Fd(int x, int y) {
    return fd_[static_cast<size_t>(x) * fd_stride_ + static_cast<size_t>(y)];
  }

  int Rel(int i, int j) const {
    return t1_.labels[static_cast<size_t>(i)] ==
                   t2_.labels[static_cast<size_t>(j)]
               ? 0
               : 1;
  }

  /// Recomputes the forest-distance window [l1..i1] x [l2..i2] (unit costs),
  /// identical to the forward DP restricted to this window.
  void FillWindow(int l1, int i1, int l2, int i2) {
    Fd(0, 0) = 0;
    for (int di = l1; di <= i1; ++di) Fd(di - l1 + 1, 0) = di - l1 + 1;
    for (int dj = l2; dj <= i2; ++dj) Fd(0, dj - l2 + 1) = dj - l2 + 1;
    for (int di = l1; di <= i1; ++di) {
      const int x = di - l1 + 1;
      const int lml1 = t1_.lml[static_cast<size_t>(di)];
      for (int dj = l2; dj <= i2; ++dj) {
        const int y = dj - l2 + 1;
        const int lml2 = t2_.lml[static_cast<size_t>(dj)];
        const int del = Fd(x - 1, y) + 1;
        const int ins = Fd(x, y - 1) + 1;
        if (lml1 == l1 && lml2 == l2) {
          Fd(x, y) = std::min({del, ins, Fd(x - 1, y - 1) + Rel(di, dj)});
        } else {
          Fd(x, y) =
              std::min({del, ins, Fd(lml1 - l1, lml2 - l2) + Td(di, dj)});
        }
      }
    }
  }

  void Trace(int l1, int i1, int l2, int i2) {
    if (l1 > i1 || l2 > i2) return;  // one side empty: pure ins/del
    FillWindow(l1, i1, l2, i2);
    int x = i1;
    int y = i2;
    while (x >= l1 && y >= l2) {
      const int px = x - l1 + 1;
      const int py = y - l2 + 1;
      const int here = Fd(px, py);
      const int lml1 = t1_.lml[static_cast<size_t>(x)];
      const int lml2 = t2_.lml[static_cast<size_t>(y)];
      if (lml1 == l1 && lml2 == l2) {
        if (here == Fd(px - 1, py - 1) + Rel(x, y)) {
          matches_.emplace_back(x, y);
          --x;
          --y;
        } else if (here == Fd(px - 1, py) + 1) {
          --x;  // delete x
        } else {
          TREESIM_DCHECK(here == Fd(px, py - 1) + 1);
          --y;  // insert y
        }
      } else {
        if (here == Fd(px - 1, py) + 1) {
          --x;
        } else if (here == Fd(px, py - 1) + 1) {
          --y;
        } else {
          TREESIM_DCHECK(here == Fd(lml1 - l1, lml2 - l2) + Td(x, y));
          // Subtree x matched against subtree y as whole trees: the inner
          // alignment lives in the subtree pair's own window. Recursing
          // clobbers fd_, so remember where this window's walk resumes and
          // refill afterwards.
          const int resume_x = lml1 - 1;
          const int resume_y = lml2 - 1;
          Trace(lml1, x, lml2, y);
          x = resume_x;
          y = resume_y;
          if (x >= l1 && y >= l2) FillWindow(l1, i1, l2, i2);
        }
      }
    }
    // Whatever remains on either side is deletions/insertions (unmapped).
  }

  const TedTree& t1_;
  const TedTree& t2_;
  const std::vector<int>& td_;
  int n2_;
  std::vector<int> fd_;
  size_t fd_stride_ = 0;
  std::vector<std::pair<int, int>> matches_;
};

}  // namespace

EditMapping ComputeEditMapping(const Tree& t1, const Tree& t2) {
  TREESIM_CHECK(!t1.empty() && !t2.empty());
  const TedTree v1 = TedTree::FromTree(t1);
  const TedTree v2 = TedTree::FromTree(t2);
  const std::vector<int> td = TreeDistanceMatrix(v1, v2);
  const std::vector<std::pair<int, int>> matches =
      MappingBacktracker(v1, v2, td).Run();

  const std::vector<NodeId> post1 = PostorderSequence(t1);
  const std::vector<NodeId> post2 = PostorderSequence(t2);
  EditMapping mapping;
  mapping.cost = td.back();
  for (const auto& [i, j] : matches) {
    mapping.pairs.emplace_back(post1[static_cast<size_t>(i)],
                               post2[static_cast<size_t>(j)]);
    if (v1.labels[static_cast<size_t>(i)] !=
        v2.labels[static_cast<size_t>(j)]) {
      ++mapping.relabels;
    }
  }
  mapping.deletions = t1.size() - static_cast<int>(mapping.pairs.size());
  mapping.insertions = t2.size() - static_cast<int>(mapping.pairs.size());
#ifndef NDEBUG
  // Machine-check the Section 2.1 contract on every mapping the
  // backtracker emits: a valid one-to-one order-preserving mapping whose
  // operation counts sum to the distance the DP returned (mapping.cost is
  // td.back(), so this ties the mapping back to TreeEditDistance).
  const std::string mapping_diagnostic = ValidateEditMapping(t1, t2, mapping);
  TREESIM_DCHECK(mapping_diagnostic.empty())
      << "Zhang-Shasha backtracker produced an invalid mapping: "
      << mapping_diagnostic;
#endif
  return mapping;
}

std::string ValidateEditMapping(const Tree& t1, const Tree& t2,
                                const EditMapping& mapping) {
  const TraversalPositions pos1 = ComputePositions(t1);
  const TraversalPositions pos2 = ComputePositions(t2);
  std::vector<char> used1(static_cast<size_t>(t1.size()), 0);
  std::vector<char> used2(static_cast<size_t>(t2.size()), 0);
  int relabels = 0;
  for (const auto& [u, v] : mapping.pairs) {
    if (u < 0 || u >= t1.size() || v < 0 || v >= t2.size()) {
      return "pair outside the trees";
    }
    if (used1[static_cast<size_t>(u)]++ != 0) return "T1 node mapped twice";
    if (used2[static_cast<size_t>(v)]++ != 0) return "T2 node mapped twice";
    if (t1.label(u) != t2.label(v)) ++relabels;
  }
  // Order preservation: for every two pairs, preorder AND postorder orders
  // must agree (this encodes both the ancestor and the sibling condition of
  // Section 2.1).
  for (size_t a = 0; a < mapping.pairs.size(); ++a) {
    for (size_t b = a + 1; b < mapping.pairs.size(); ++b) {
      const auto& [u1, v1] = mapping.pairs[a];
      const auto& [u2, v2] = mapping.pairs[b];
      const bool pre_less = pos1.pre[static_cast<size_t>(u1)] <
                            pos1.pre[static_cast<size_t>(u2)];
      const bool post_less = pos1.post[static_cast<size_t>(u1)] <
                             pos1.post[static_cast<size_t>(u2)];
      if (pre_less != (pos2.pre[static_cast<size_t>(v1)] <
                       pos2.pre[static_cast<size_t>(v2)])) {
        return "preorder not preserved";
      }
      if (post_less != (pos2.post[static_cast<size_t>(v1)] <
                        pos2.post[static_cast<size_t>(v2)])) {
        return "postorder not preserved";
      }
    }
  }
  if (relabels != mapping.relabels) return "relabel count mismatch";
  if (mapping.deletions !=
      t1.size() - static_cast<int>(mapping.pairs.size())) {
    return "deletion count mismatch";
  }
  if (mapping.insertions !=
      t2.size() - static_cast<int>(mapping.pairs.size())) {
    return "insertion count mismatch";
  }
  if (mapping.cost !=
      mapping.relabels + mapping.deletions + mapping.insertions) {
    return "cost does not match the operation counts";
  }
  return "";
}

}  // namespace treesim
