#ifndef TREESIM_TED_ZHANG_SHASHA_H_
#define TREESIM_TED_ZHANG_SHASHA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ted/cost_model.h"
#include "tree/tree.h"

namespace treesim {

/// Postorder view of a tree precomputed for the Zhang–Shasha dynamic
/// program [Zhang & Shasha, SIAM J. Comput. 1989] — the reference exact
/// tree edit distance the paper's filters refine against (reference [23]).
///
/// Precompute once per database tree and reuse across queries: building the
/// view is O(|T|), while each distance computation is
/// O(|T1||T2| * min(depth,leaves)^2) in the worst case.
struct TedTree {
  /// Node labels in postorder (0-based).
  std::vector<LabelId> labels;
  /// lml[i] = postorder index of the leftmost leaf of the subtree rooted at
  /// postorder node i.
  std::vector<int> lml;
  /// Keyroots in ascending postorder index: nodes that have a left sibling,
  /// plus the root (the LR_keyroots set of the original algorithm).
  std::vector<int> keyroots;
  /// Total DP work of the keyroot decomposition in this orientation:
  /// sum over keyroots k of (k - lml[k] + 1). The bounded verifier
  /// (ted/bounded_ted.h) compares the product of the two trees' weights
  /// across the left and right orientations — RTED's strategy choice
  /// restricted to the {leftmost, rightmost} path set — and runs the
  /// cheaper one, so deep right spines and left-leaning combs stop
  /// hitting the fixed-leftmost worst case.
  int64_t keyroot_weight = 0;
  /// The mirrored orientation: the same tree with child order reversed
  /// everywhere, whose edit distance to another mirrored tree equals the
  /// original distance (mirroring both sides preserves mapping validity).
  /// Built by FromTree on the primary view; null on the mirror itself.
  /// shared_ptr keeps TedTree cheap to copy into vectors (TreeDatabase
  /// stores one view per tree).
  std::shared_ptr<const TedTree> mirror;

  int size() const { return static_cast<int>(labels.size()); }

  /// Builds the view (including its mirror). `t` must be non-empty.
  static TedTree FromTree(const Tree& t);
};

/// Exact unit-cost tree edit distance (the paper's EDist). Integer-valued.
int TreeEditDistance(const TedTree& t1, const TedTree& t2);

/// The full subtree-pair distance matrix of the Zhang–Shasha program:
/// entry [i * |T2| + j] is the unit-cost distance between the subtrees
/// rooted at postorder node i of T1 and postorder node j of T2. The overall
/// distance sits in the last entry. Used by edit-mapping backtracking.
std::vector<int> TreeDistanceMatrix(const TedTree& t1, const TedTree& t2);

/// Convenience overload; builds both views internally.
int TreeEditDistance(const Tree& t1, const Tree& t2);

/// Exact tree edit distance under an arbitrary cost model.
double TreeEditDistanceWeighted(const TedTree& t1, const TedTree& t2,
                                const CostModel& costs);

}  // namespace treesim

#endif  // TREESIM_TED_ZHANG_SHASHA_H_
