#include "ted/naive_ted.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "ted/zhang_shasha.h"
#include "util/logging.h"
#include "util/safe_math.h"

namespace treesim {
namespace {

/// Memoized forest distance between the postorder-contiguous forests
/// T1[l1..i1] and T2[l2..i2] (empty when l > i). This is the textbook
/// recurrence evaluated top-down, deliberately structured differently from
/// the keyroot-based production implementation.
class NaiveTed {
 public:
  NaiveTed(const TedTree& t1, const TedTree& t2) : t1_(t1), t2_(t2) {}

  int Run() { return Fd(0, t1_.size() - 1, 0, t2_.size() - 1); }

 private:
  uint64_t Key(int l1, int i1, int l2, int i2) const {
    const uint64_t n1 = static_cast<uint64_t>(t1_.size()) + 2;
    const uint64_t n2 = static_cast<uint64_t>(t2_.size()) + 2;
    // Overflow here would alias distinct memo cells, so the packing must be
    // checked, not wrapping.
    uint64_t k = static_cast<uint64_t>(l1 + 1);
    k = CheckedAdd(CheckedMul(k, n1), static_cast<uint64_t>(i1 + 1));
    k = CheckedAdd(CheckedMul(k, n2), static_cast<uint64_t>(l2 + 1));
    k = CheckedAdd(CheckedMul(k, n2), static_cast<uint64_t>(i2 + 1));
    return k;
  }

  int Fd(int l1, int i1, int l2, int i2) {
    const bool empty1 = l1 > i1;
    const bool empty2 = l2 > i2;
    if (empty1 && empty2) return 0;
    if (empty1) return i2 - l2 + 1;  // insert everything
    if (empty2) return i1 - l1 + 1;  // delete everything
    const uint64_t key = Key(l1, i1, l2, i2);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    const int del = CheckedAdd(Fd(l1, i1 - 1, l2, i2), 1);
    const int ins = CheckedAdd(Fd(l1, i1, l2, i2 - 1), 1);
    const int lml1 = std::max(t1_.lml[static_cast<size_t>(i1)], l1);
    const int lml2 = std::max(t2_.lml[static_cast<size_t>(i2)], l2);
    const int relabel = t1_.labels[static_cast<size_t>(i1)] ==
                                t2_.labels[static_cast<size_t>(i2)]
                            ? 0
                            : 1;
    const int match =
        CheckedAdd(CheckedAdd(Fd(l1, lml1 - 1, l2, lml2 - 1),
                              Fd(lml1, i1 - 1, lml2, i2 - 1)),
                   relabel);
    const int best = std::min({del, ins, match});
    memo_.emplace(key, best);
    return best;
  }

  const TedTree& t1_;
  const TedTree& t2_;
  std::unordered_map<uint64_t, int> memo_;
};

}  // namespace

int NaiveTreeEditDistance(const Tree& t1, const Tree& t2) {
  TREESIM_CHECK(!t1.empty() && !t2.empty());
  const TedTree v1 = TedTree::FromTree(t1);
  const TedTree v2 = TedTree::FromTree(t2);
  return NaiveTed(v1, v2).Run();
}

}  // namespace treesim
