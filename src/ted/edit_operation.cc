#include "ted/edit_operation.h"

#include <functional>
#include <utility>

#include "util/status.h"

namespace treesim {
namespace {

Status ValidateNode(const Tree& t, NodeId n) {
  if (n < 0 || n >= t.size()) {
    return Status::OutOfRange("node id " + std::to_string(n) +
                              " outside tree of size " +
                              std::to_string(t.size()));
  }
  return Status::Ok();
}

/// Copies `t` while relabeling one node. NodeIds are freshly assigned by the
/// builder; the recursion depth equals the tree depth.
Tree CopyWithRelabel(const Tree& t, NodeId target, LabelId label) {
  TreeBuilder builder(t.label_dict());
  std::function<void(NodeId, NodeId)> copy = [&](NodeId src, NodeId parent) {
    const LabelId l = (src == target) ? label : t.label(src);
    const NodeId dst = (parent == kInvalidNode) ? builder.AddRootId(l)
                                                : builder.AddChildId(parent, l);
    for (NodeId c = t.first_child(src); c != kInvalidNode;
         c = t.next_sibling(c)) {
      copy(c, dst);
    }
  };
  copy(t.root(), kInvalidNode);
  return std::move(builder).Build();
}

/// Copies `t` while deleting one (non-root) node: its children are emitted
/// in its place in the parent's child list.
Tree CopyWithDelete(const Tree& t, NodeId target) {
  TreeBuilder builder(t.label_dict());
  std::function<void(NodeId, NodeId)> copy = [&](NodeId src, NodeId parent) {
    if (src == target) {
      for (NodeId c = t.first_child(src); c != kInvalidNode;
           c = t.next_sibling(c)) {
        copy(c, parent);
      }
      return;
    }
    const NodeId dst = (parent == kInvalidNode)
                           ? builder.AddRootId(t.label(src))
                           : builder.AddChildId(parent, t.label(src));
    for (NodeId c = t.first_child(src); c != kInvalidNode;
         c = t.next_sibling(c)) {
      copy(c, dst);
    }
  };
  copy(t.root(), kInvalidNode);
  return std::move(builder).Build();
}

/// Copies `t` inserting a node labeled `label` under `parent_target`,
/// adopting children [begin, begin+count).
Tree CopyWithInsert(const Tree& t, NodeId parent_target, LabelId label,
                    int begin, int count) {
  TreeBuilder builder(t.label_dict());
  std::function<void(NodeId, NodeId)> copy = [&](NodeId src, NodeId parent) {
    const NodeId dst = (parent == kInvalidNode)
                           ? builder.AddRootId(t.label(src))
                           : builder.AddChildId(parent, t.label(src));
    if (src != parent_target) {
      for (NodeId c = t.first_child(src); c != kInvalidNode;
           c = t.next_sibling(c)) {
        copy(c, dst);
      }
      return;
    }
    const std::vector<NodeId> children = t.Children(src);
    int i = 0;
    NodeId inserted = kInvalidNode;
    for (const NodeId c : children) {
      if (i == begin) {
        inserted = builder.AddChildId(dst, label);
      }
      if (i >= begin && i < begin + count) {
        copy(c, inserted);
      } else {
        copy(c, dst);
      }
      ++i;
    }
    if (begin == static_cast<int>(children.size())) {
      builder.AddChildId(dst, label);  // appended as new last (leaf) child
    }
  };
  copy(t.root(), kInvalidNode);
  return std::move(builder).Build();
}

}  // namespace

StatusOr<Tree> ApplyEditOperation(const Tree& t, const EditOperation& op) {
  if (t.empty()) return Status::FailedPrecondition("empty tree");
  TREESIM_RETURN_IF_ERROR(ValidateNode(t, op.node));
  switch (op.kind) {
    case EditOperation::Kind::kRelabel:
      return CopyWithRelabel(t, op.node, op.label);
    case EditOperation::Kind::kDelete:
      if (op.node == t.root()) {
        return Status::InvalidArgument(
            "deleting the root is not supported (it would leave a forest)");
      }
      return CopyWithDelete(t, op.node);
    case EditOperation::Kind::kInsert: {
      const int degree = t.Degree(op.node);
      if (op.child_begin < 0 || op.child_count < 0 ||
          op.child_begin + op.child_count > degree) {
        return Status::OutOfRange(
            "insert range [" + std::to_string(op.child_begin) + ", " +
            std::to_string(op.child_begin + op.child_count) +
            ") exceeds degree " + std::to_string(degree));
      }
      return CopyWithInsert(t, op.node, op.label, op.child_begin,
                            op.child_count);
    }
  }
  return Status::Internal("unreachable");
}

StatusOr<Tree> ApplyEditScript(const Tree& t,
                               const std::vector<EditOperation>& script) {
  Tree current = t;
  for (const EditOperation& op : script) {
    TREESIM_ASSIGN_OR_RETURN(current, ApplyEditOperation(current, op));
  }
  return current;
}

std::string ToString(const EditOperation& op, const LabelDictionary& labels) {
  switch (op.kind) {
    case EditOperation::Kind::kRelabel:
      return "relabel(" + std::to_string(op.node) + " -> '" +
             std::string(labels.Name(op.label)) + "')";
    case EditOperation::Kind::kDelete:
      return "delete(" + std::to_string(op.node) + ")";
    case EditOperation::Kind::kInsert:
      return "insert('" + std::string(labels.Name(op.label)) + "' under " +
             std::to_string(op.node) + " adopting [" +
             std::to_string(op.child_begin) + ", " +
             std::to_string(op.child_begin + op.child_count) + "))";
  }
  return "?";
}

}  // namespace treesim
