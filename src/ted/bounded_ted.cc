#include "ted/bounded_ted.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/hot.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/safe_math.h"

namespace treesim {
namespace {

/// Unit costs with integer arithmetic (mirrors zhang_shasha.cc so in-band
/// cells compute the exact same values as the unbounded kernel).
struct UnitCosts {
  using Dist = int;
  int Delete(LabelId) const { return 1; }
  int Insert(LabelId) const { return 1; }
  int Relabel(LabelId a, LabelId b) const { return a == b ? 0 : 1; }
};

/// Arbitrary costs via the virtual CostModel.
struct ModelCosts {
  using Dist = double;
  const CostModel& model;
  double Delete(LabelId l) const { return model.Delete(l); }
  double Insert(LabelId l) const { return model.Insert(l); }
  double Relabel(LabelId a, LabelId b) const { return model.Relabel(a, b); }
};

/// Pruning telemetry for one call, accumulated locally (no atomics in the
/// DP loops) and published to the registry once by the wrappers.
struct BoundedStats {
  int64_t cells_total = 0;     // what the unbounded kernel would compute
  int64_t cells_computed = 0;  // what the band actually computed
  int64_t keyroot_pairs_exited = 0;
};

/// Zhang–Shasha over a diagonal band, with saturation at `cap`.
///
/// Invariant (induction over the DP order): every stored cell holds
/// min(its true value, cap)-or-more, and holds the EXACT true value
/// whenever that value is <= tau. Why the band is lossless for <= tau
/// answers: a forest pair offset by |x - y| prefix nodes needs at least
/// that many unmatched nodes, each costing >= 1 (>= c_min scaled into
/// `band` for weighted costs), so every optimal derivation of a <= tau
/// value stays strictly inside the band and reads only inputs whose true
/// values are themselves <= tau (costs are nonnegative) — i.e. inputs the
/// invariant already guarantees exact.
///
/// `td` is cap-initialized: subtree-pair cells the band (or the early
/// exit) never writes stand for "farther than tau", which the invariant
/// shows is the truth for them.
template <typename Costs>
typename Costs::Dist TREESIM_HOT BoundedImpl(const TedTree& t1,
                                             const TedTree& t2,
                                             const Costs& costs,
                                             const int band,
                                             const typename Costs::Dist tau,
                                             const typename Costs::Dist cap,
                                             BoundedStats& stats) {
  using Dist = typename Costs::Dist;
  const int n1 = t1.size();
  const int n2 = t2.size();
  TREESIM_CHECK(n1 > 0 && n2 > 0) << "trees must be non-empty";

  std::vector<Dist> td(static_cast<size_t>(n1) * static_cast<size_t>(n2),
                       cap);
  std::vector<Dist> fd(static_cast<size_t>(n1 + 1) *
                       static_cast<size_t>(n2 + 1));
  const size_t fd_stride = static_cast<size_t>(n2) + 1;
  auto fd_at = [&](int x, int y) -> Dist& {
    return fd[static_cast<size_t>(x) * fd_stride + static_cast<size_t>(y)];
  };
  // Every fd read goes through the band test: an out-of-band cell provably
  // holds a forest distance > tau, so `cap` stands in for it — and the
  // stale value a previous keyroot pair left in the shared scratch matrix
  // is never observed.
  auto fd_read = [&](int x, int y) -> Dist {
    return (x - y > band || y - x > band) ? cap : fd_at(x, y);
  };
  auto clamped = [&](Dist v) -> Dist { return v > tau ? cap : v; };

  // Suffix minima over the earliest fd row each remaining row can read, for
  // the early exit below. Both scratch vectors hoisted out of the pair loop.
  std::vector<int> jump_suffix_min;
  jump_suffix_min.reserve(static_cast<size_t>(n1) + 2);
  std::vector<int> danger_prefix;
  danger_prefix.reserve(static_cast<size_t>(n2) + 1);

  for (const int k1 : t1.keyroots) {
    for (const int k2 : t2.keyroots) {
      const int l1 = t1.lml[static_cast<size_t>(k1)];
      const int l2 = t2.lml[static_cast<size_t>(k2)];
      const int rows = k1 - l1 + 1;
      const int cols = k2 - l2 + 1;
      stats.cells_total =
          CheckedAdd(stats.cells_total, CheckedMul<int64_t>(rows, cols));
      // Early-exit dependency arrays, computed LAZILY on the first row
      // that could exit (most pairs never develop a capped streak past the
      // band boundary, and an eager O(rows + cols) precompute per keyroot
      // pair costs as much as the banded DP itself on trees with many
      // small keyroot pairs).
      //
      // danger_prefix[y] = how many of columns 1..y would make a
      // leftmost-path row's sub option read an IN-BAND cell of fd row 0:
      // non-subtree columns (lml2(dj) != l2) whose jump column
      // jy = lml2(dj) - l2 satisfies jy <= band. Reads with jy > band land
      // out of band and fd_read substitutes cap, so they cannot smuggle a
      // small value; tree-case columns only read the previous row and the
      // in-row left neighbor.
      //
      // jump_suffix_min[x] = min over rows x..rows of the earliest fd row
      // row x' can reach with an in-band read: lml1(di) - l1 when that is
      // nonzero (pure sub-option rows); for rows on the keyroot's leftmost
      // path (lml1(di) == l1), 0 if some in-band column is dangerous per
      // danger_prefix (fd row 0 plus a td entry an earlier keyroot pair may
      // have left small), else x' - 1. Sentinel INT_MAX past the end and
      // for rows the band excludes entirely.
      bool jumps_ready = false;
      auto compute_jumps = [&]() {
        danger_prefix.assign(static_cast<size_t>(cols) + 1, 0);
        for (int y = 1; y <= cols; ++y) {
          const int jy = t2.lml[static_cast<size_t>(l2 + y - 1)] - l2;
          danger_prefix[static_cast<size_t>(y)] =
              danger_prefix[static_cast<size_t>(y) - 1] +
              (jy > 0 && jy <= band ? 1 : 0);
        }
        jump_suffix_min.assign(static_cast<size_t>(rows) + 2,
                               std::numeric_limits<int>::max());
        for (int x = rows; x >= 1; --x) {
          const int lml_row = t1.lml[static_cast<size_t>(l1 + x - 1)] - l1;
          int earliest = std::numeric_limits<int>::max();
          const int row_lo = std::max(1, x - band);
          const int row_hi = std::min(cols, x + band);
          if (row_lo <= cols) {
            if (lml_row != 0) {
              earliest = lml_row;
            } else if (danger_prefix[static_cast<size_t>(row_hi)] -
                           danger_prefix[static_cast<size_t>(row_lo) - 1] >
                       0) {
              earliest = 0;
            } else {
              earliest = x - 1;
            }
          }
          jump_suffix_min[static_cast<size_t>(x)] =
              std::min(jump_suffix_min[static_cast<size_t>(x) + 1],
                       earliest);
        }
        jumps_ready = true;
      };
      // fd indices are offset: x = di - l1 + 1, y = dj - l2 + 1. The
      // boundary row/column only exist up to the band edge; past it they
      // are > tau by construction and fd_read substitutes cap.
      fd_at(0, 0) = Dist{0};
      const int x_boundary = std::min(rows, band);
      for (int x = 1; x <= x_boundary; ++x) {
        fd_at(x, 0) = clamped(CheckedAddAny(
            fd_at(x - 1, 0),
            costs.Delete(t1.labels[static_cast<size_t>(l1 + x - 1)])));
      }
      const int y_boundary = std::min(cols, band);
      for (int y = 1; y <= y_boundary; ++y) {
        fd_at(0, y) = clamped(CheckedAddAny(
            fd_at(0, y - 1),
            costs.Insert(t2.labels[static_cast<size_t>(l2 + y - 1)])));
      }
      // streak_start: first row of the current run of all-cap rows, or -1.
      // Once rows streak_start..x are all cap AND every remaining row both
      // (a) jumps no earlier than streak_start and (b) starts past the
      // boundary column (x >= band implies x' - band >= 1 for all later
      // rows x'), each remaining cell's options — delete (previous row),
      // insert (left neighbor: in-row cap or out-of-band), relabel
      // (previous row), subtree (a capped or out-of-band fd row, plus a
      // nonnegative td) — are all >= cap, so by induction every remaining
      // cell would compute cap. Skipping them leaves exactly the values
      // the invariant requires (td stays cap-initialized).
      int streak_start = -1;
      bool abandoned = false;
      for (int x = 1; x <= rows && !abandoned; ++x) {
        const int y_lo = std::max(1, x - band);
        const int y_hi = std::min(cols, x + band);
        if (y_lo > cols) break;  // this and all later rows are out of band
        const int di = l1 + x - 1;
        const LabelId a = t1.labels[static_cast<size_t>(di)];
        const int lml1 = t1.lml[static_cast<size_t>(di)];
        const Dist del_cost = costs.Delete(a);  // row-invariant
        // A row is "capped" when every in-band cell it owns — including
        // the boundary column while that is still in band — holds cap.
        bool row_capped = x > band || fd_at(x, 0) >= cap;
        for (int y = y_lo; y <= y_hi; ++y) {
          const int dj = l2 + y - 1;
          const LabelId b = t2.labels[static_cast<size_t>(dj)];
          // In-band neighbor reads skip the band test: for any in-band
          // (x, y), the delete read (x-1, y) is out of band only at
          // y == x + band, the insert read (x, y-1) only at y == x - band,
          // and the relabel read (x-1, y-1) never (|x-y| unchanged) — and
          // each in-band neighbor was written this pair (row x-1 covers
          // [x-1-band, x-1+band] clipped, the boundary fills cover row 0 /
          // column 0 up to the band edge).
          const Dist del = CheckedAddAny(
              y == x + band ? cap : fd_at(x - 1, y), del_cost);
          const Dist ins = CheckedAddAny(
              y == x - band ? cap : fd_at(x, y - 1), costs.Insert(b));
          Dist best;
          const int lml2dj = t2.lml[static_cast<size_t>(dj)] - l2;
          if (lml1 == l1 && lml2dj == 0) {
            // Both prefixes are whole subtrees: this cell is a tree
            // distance.
            const Dist rel =
                CheckedAddAny(fd_at(x - 1, y - 1), costs.Relabel(a, b));
            best = clamped(std::min({del, ins, rel}));
            td[static_cast<size_t>(di) * static_cast<size_t>(n2) +
               static_cast<size_t>(dj)] = best;
          } else {
            // The jump read targets an arbitrary earlier row/column, so it
            // keeps the full band test (out of band => cap).
            const Dist sub = CheckedAddAny(
                fd_read(lml1 - l1, lml2dj),
                td[static_cast<size_t>(di) * static_cast<size_t>(n2) +
                   static_cast<size_t>(dj)]);
            best = clamped(std::min({del, ins, sub}));
          }
          fd_at(x, y) = best;
          if (best < cap) row_capped = false;
        }
        stats.cells_computed = CheckedAdd(
            stats.cells_computed, static_cast<int64_t>(y_hi - y_lo + 1));
        if (row_capped) {
          if (streak_start < 0) streak_start = x;
          if (x >= band && x < rows) {
            if (!jumps_ready) compute_jumps();
            if (jump_suffix_min[static_cast<size_t>(x) + 1] >=
                streak_start) {
              ++stats.keyroot_pairs_exited;
              abandoned = true;
            }
          }
        } else {
          streak_start = -1;
        }
      }
    }
  }
  return td[static_cast<size_t>(n1 - 1) * static_cast<size_t>(n2) +
            static_cast<size_t>(n2 - 1)];
}

/// RTED-style strategy choice restricted to {leftmost, rightmost}: pick
/// the orientation pair with the smaller keyroot-weight product (the DP
/// cell count the decomposition implies). Mirroring BOTH trees preserves
/// the edit distance — a mapping is order-valid on the mirrors iff it is
/// on the originals — so running the kernel on the mirror views is exact.
/// doubles avoid overflow in the product; the comparison is heuristic.
void ChooseOrientation(const TedTree*& t1, const TedTree*& t2) {
  if (t1->mirror == nullptr || t2->mirror == nullptr) return;
  const double left = static_cast<double>(t1->keyroot_weight) *
                      static_cast<double>(t2->keyroot_weight);
  const double right = static_cast<double>(t1->mirror->keyroot_weight) *
                       static_cast<double>(t2->mirror->keyroot_weight);
  if (right < left) {
    t1 = t1->mirror.get();
    t2 = t2->mirror.get();
    TREESIM_COUNTER_INC("ted.bounded_mirror_strategy");
  }
}

/// Whether a band of half-width `band` excludes at least half the cells of
/// the (n1+1) x (n2+1) root forest matrix. The banded kernel pays for its
/// band tests (three guarded reads per cell plus per-row exit bookkeeping)
/// on every cell it does compute — measured ~1.7x per cell on the DBLP
/// range workload — so it only wins when the band skips a comparable share
/// of the plain kernel's work. Cells with x - y > band form a triangle of
/// tri(n1 - band) cells (symmetrically for y - x); that count is exact for
/// the root pair, which dominates the total cost, so it is the proxy used
/// for the whole call.
bool BandExcludesEnough(int n1, int n2, int band) {
  auto tri = [](int m) {
    return m > 0 ? static_cast<double>(m) * (m + 1) / 2.0 : 0.0;
  };
  const double total =
      (static_cast<double>(n1) + 1) * (static_cast<double>(n2) + 1);
  return 2.0 * (tri(n1 - band) + tri(n2 - band)) >= total;
}

void PublishStats(const BoundedStats& stats) {
  TREESIM_COUNTER_ADD("ted.bounded_cells_computed", stats.cells_computed);
  TREESIM_COUNTER_ADD("ted.bounded_cells_band_pruned",
                      stats.cells_total - stats.cells_computed);
  TREESIM_COUNTER_ADD("ted.bounded_keyroot_early_exits",
                      stats.keyroot_pairs_exited);
}

}  // namespace

int TREESIM_HOT BoundedTreeEditDistance(const TedTree& t1, const TedTree& t2,
                                        int tau) {
  TREESIM_COUNTER_INC("ted.bounded_calls");
  const int n1 = t1.size();
  const int n2 = t2.size();
  // Every distance is <= n1 + n2 (delete one tree, insert the other), so a
  // threshold at least that large is effectively unbounded — the plain
  // kernel is then the faster verifier (no band tests per read).
  if (tau >= CheckedAdd(n1, n2)) return TreeEditDistance(t1, t2);
  // Negative threshold: every distance exceeds it; 0 answers "> tau".
  if (tau < 0) return 0;
  // Size difference is a lower bound, checked before any allocation.
  if (n1 - n2 > tau || n2 - n1 > tau) return tau + 1;
  // Wide band on small trees: the per-read band checks would cost more
  // than the pruning saves. Run the plain kernel and clamp, which
  // preserves the min(exact, tau + 1) contract exactly (tau < n1 + n2
  // here, so tau + 1 cannot overflow).
  if (!BandExcludesEnough(n1, n2, tau)) {
    return std::min(TreeEditDistance(t1, t2), tau + 1);
  }
  TREESIM_HISTOGRAM_RECORD("ted.problem_nodes", CountBuckets(),
                           static_cast<int64_t>(n1) + n2);
  const TedTree* a = &t1;
  const TedTree* b = &t2;
  ChooseOrientation(a, b);
  BoundedStats stats;
  const int d =
      BoundedImpl(*a, *b, UnitCosts{}, /*band=*/tau, tau, /*cap=*/tau + 1,
                  stats);
  PublishStats(stats);
  return d;
}

int BoundedTreeEditDistance(const Tree& t1, const Tree& t2, int tau) {
  return BoundedTreeEditDistance(TedTree::FromTree(t1), TedTree::FromTree(t2),
                                 tau);
}

double TREESIM_HOT BoundedTreeEditDistanceWeighted(const TedTree& t1,
                                                   const TedTree& t2,
                                                   double tau,
                                                   const CostModel& costs) {
  TREESIM_COUNTER_INC("ted.bounded_weighted_calls");
  const double c_min = costs.MinOperationCost();
  TREESIM_CHECK_GT(c_min, 0.0) << "MinOperationCost must be positive";
  const double inf = std::numeric_limits<double>::infinity();
  // Catches both negative and NaN thresholds: nothing is within them.
  if (!(tau >= 0.0)) return inf;
  const int n1 = t1.size();
  const int n2 = t2.size();
  const int max_band = CheckedAdd(n1, n2);
  if (tau >= c_min * static_cast<double>(max_band)) {
    // The band would cover every diagonal (this also absorbs tau = +inf,
    // whose floor-to-int below would be undefined). Note this does NOT
    // mean the answer is exact for free — c_min * max_band can be far
    // below the true maximum — but banding has nothing left to prune.
    return TreeEditDistanceWeighted(t1, t2, costs);
  }
  // A forest pair offset by m prefix nodes costs >= m * c_min, so the band
  // only needs diagonals with m * c_min <= tau. The +1 absorbs the
  // floating-point rounding of the division (conservative: one diagonal
  // too many is wasted work, one too few would be unsound).
  int band = static_cast<int>(tau / c_min) + 1;
  if (band > max_band) band = max_band;
  if (n1 - n2 > band || n2 - n1 > band) return inf;
  // Same profitability gate as the unit kernel: a band this wide on trees
  // this small prunes too little to pay for its per-read checks. The plain
  // kernel returns the exact distance, which satisfies the contract on
  // both sides of tau (callers are promised only "some value > tau" on
  // rejection, not a specific sentinel).
  if (!BandExcludesEnough(n1, n2, band)) {
    return TreeEditDistanceWeighted(t1, t2, costs);
  }
  // No orientation choice here: the mirrored decomposition sums the same
  // optimal derivation in a different order, and reordered floating-point
  // adds would break the bit-identical promise to the unbounded kernel.
  // The exact <= tau values must match TreeEditDistanceWeighted to the ulp
  // so rewired call sites stay byte-identical.
  BoundedStats stats;
  const double d =
      BoundedImpl(t1, t2, ModelCosts{costs}, band, tau, /*cap=*/inf, stats);
  PublishStats(stats);
  return d;
}

}  // namespace treesim
