#include "search/clustering.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

#include "core/branch_profile.h"
#include "core/positional.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/safe_math.h"

namespace treesim {
namespace {

/// Pairwise distance access with optional lower-bound pruning. EDist(i, j)
/// is computed lazily and cached (the medoid-update step revisits pairs).
class DistanceOracle {
 public:
  DistanceOracle(const TreeDatabase& db, const KMedoidsOptions& options)
      : db_(db), use_filter_(options.use_filter) {
    if (use_filter_) {
      dict_ = std::make_unique<BranchDictionary>(options.q);
      profiles_.reserve(static_cast<size_t>(db.size()));
      for (int i = 0; i < db.size(); ++i) {
        profiles_.push_back(BranchProfile::FromTree(db.tree(i), *dict_));
      }
    }
  }

  /// Exact distance (cached).
  int Distance(int i, int j) {
    if (i == j) return 0;
    if (i > j) std::swap(i, j);
    const int64_t key =
        static_cast<int64_t>(i) * db_.size() + j;
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const int d = TreeEditDistance(db_.ted_view(i), db_.ted_view(j));
    ++edit_distance_calls_;
    cache_.emplace(key, d);
    return d;
  }

  /// A cheap lower bound of Distance(i, j) (0 when filtering is off).
  int LowerBound(int i, int j) {
    if (!use_filter_ || i == j) return 0;
    return OptimisticBound(profiles_[static_cast<size_t>(i)],
                           profiles_[static_cast<size_t>(j)]);
  }

  void CountPruned() { ++pruned_; }
  int64_t edit_distance_calls() const { return edit_distance_calls_; }
  int64_t pruned() const { return pruned_; }

 private:
  const TreeDatabase& db_;
  bool use_filter_;
  std::unique_ptr<BranchDictionary> dict_;
  std::vector<BranchProfile> profiles_;
  std::unordered_map<int64_t, int> cache_;
  int64_t edit_distance_calls_ = 0;
  int64_t pruned_ = 0;
};

}  // namespace

ClusteringResult KMedoids(const TreeDatabase& db,
                          const KMedoidsOptions& options, Rng& rng) {
  TREESIM_CHECK_GE(options.k, 1);
  TREESIM_CHECK_LE(options.k, db.size());
  TREESIM_CHECK_GE(options.max_iterations, 1);

  ClusteringResult result;
  DistanceOracle oracle(db, options);

  if (options.initialization == KMedoidsOptions::Initialization::kRandom) {
    const std::vector<size_t> init = rng.SampleWithoutReplacement(
        static_cast<size_t>(db.size()), static_cast<size_t>(options.k));
    result.medoids.assign(init.begin(), init.end());
  } else {
    // k-means++-style seeding: D^2 weighting over the current nearest-seed
    // distances.
    result.medoids.push_back(
        static_cast<int>(rng.UniformIndex(static_cast<size_t>(db.size()))));
    std::vector<int64_t> nearest(static_cast<size_t>(db.size()));
    while (static_cast<int>(result.medoids.size()) < options.k) {
      int64_t total = 0;
      for (int t = 0; t < db.size(); ++t) {
        int best = oracle.Distance(t, result.medoids[0]);
        for (size_t m = 1; m < result.medoids.size(); ++m) {
          best = std::min(best, oracle.Distance(t, result.medoids[m]));
        }
        nearest[static_cast<size_t>(t)] =
            CheckedMul<int64_t>(best, best);
        total = CheckedAdd(total, nearest[static_cast<size_t>(t)]);
      }
      int chosen;
      if (total == 0) {
        // All trees coincide with a medoid; fall back to the first
        // unchosen id for determinism.
        chosen = 0;
        while (std::find(result.medoids.begin(), result.medoids.end(),
                         chosen) != result.medoids.end()) {
          ++chosen;
        }
      } else {
        int64_t target = static_cast<int64_t>(rng.UniformReal() *
                                              static_cast<double>(total));
        chosen = db.size() - 1;
        for (int t = 0; t < db.size(); ++t) {
          target -= nearest[static_cast<size_t>(t)];
          if (target < 0) {
            chosen = t;
            break;
          }
        }
      }
      result.medoids.push_back(chosen);
    }
  }
  result.assignment.assign(static_cast<size_t>(db.size()), 0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    // Assignment step: nearest medoid per tree, pruning medoids whose lower
    // bound cannot beat the best distance found so far.
    bool changed = false;
    result.total_cost = 0;
    for (int t = 0; t < db.size(); ++t) {
      int best_cluster = result.assignment[static_cast<size_t>(t)];
      // Seed with the current medoid so bounds have something to beat.
      int best = oracle.Distance(t, result.medoids[
          static_cast<size_t>(best_cluster)]);
      for (int c = 0; c < options.k; ++c) {
        if (c == result.assignment[static_cast<size_t>(t)]) continue;
        const int medoid = result.medoids[static_cast<size_t>(c)];
        if (oracle.LowerBound(t, medoid) >= best && best >= 0) {
          oracle.CountPruned();
          continue;
        }
        const int d = oracle.Distance(t, medoid);
        if (d < best || (d == best && c < best_cluster)) {
          best = d;
          best_cluster = c;
        }
      }
      if (best_cluster != result.assignment[static_cast<size_t>(t)]) {
        result.assignment[static_cast<size_t>(t)] = best_cluster;
        changed = true;
      }
      result.total_cost = CheckedAdd<int64_t>(result.total_cost, best);
    }

    // Update step: each cluster re-centers on the member with the minimum
    // total distance to the rest of the cluster.
    bool medoid_moved = false;
    for (int c = 0; c < options.k; ++c) {
      std::vector<int> members;
      for (int t = 0; t < db.size(); ++t) {
        if (result.assignment[static_cast<size_t>(t)] == c) {
          members.push_back(t);
        }
      }
      if (members.empty()) continue;  // keep the old medoid
      int best_medoid = result.medoids[static_cast<size_t>(c)];
      int64_t best_total = std::numeric_limits<int64_t>::max();
      for (const int candidate : members) {
        int64_t total = 0;
        for (const int other : members) {
          total = CheckedAdd<int64_t>(total, oracle.Distance(candidate, other));
          if (total >= best_total) break;  // cannot win anymore
        }
        if (total < best_total ||
            (total == best_total && candidate < best_medoid)) {
          best_total = total;
          best_medoid = candidate;
        }
      }
      if (best_medoid != result.medoids[static_cast<size_t>(c)]) {
        result.medoids[static_cast<size_t>(c)] = best_medoid;
        medoid_moved = true;
      }
    }

    if (!changed && !medoid_moved) break;
  }

  result.edit_distance_calls = oracle.edit_distance_calls();
  result.pruned_by_filter = oracle.pruned();
  return result;
}

}  // namespace treesim
