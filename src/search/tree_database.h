#ifndef TREESIM_SEARCH_TREE_DATABASE_H_
#define TREESIM_SEARCH_TREE_DATABASE_H_

#include <memory>
#include <vector>

#include "ted/zhang_shasha.h"
#include "tree/tree.h"
#include "util/random.h"

namespace treesim {

/// An in-memory collection of trees sharing one label dictionary, with the
/// per-tree Zhang–Shasha views precomputed (the refinement step reuses them
/// across queries). Tree ids are dense, in insertion order.
class TreeDatabase {
 public:
  explicit TreeDatabase(std::shared_ptr<LabelDictionary> labels);

  TreeDatabase(const TreeDatabase&) = delete;
  TreeDatabase& operator=(const TreeDatabase&) = delete;
  TreeDatabase(TreeDatabase&&) = default;
  TreeDatabase& operator=(TreeDatabase&&) = default;

  /// Adds a tree (must share this database's label dictionary); returns its
  /// id.
  int Add(Tree t);

  /// Bulk Add.
  void AddAll(std::vector<Tree> trees);

  int size() const { return static_cast<int>(trees_.size()); }
  const Tree& tree(int id) const;
  const TedTree& ted_view(int id) const;
  const std::vector<Tree>& trees() const { return trees_; }
  const std::shared_ptr<LabelDictionary>& label_dict() const {
    return labels_;
  }

  /// Average |T| over the database (0 when empty).
  double AverageTreeSize() const;

  /// Estimates the average pairwise unit-cost edit distance from
  /// `sample_pairs` random pairs — the paper sets range-query radii to 1/5
  /// of this (Section 5.1). Exact when sample_pairs covers all pairs.
  double EstimateAverageDistance(Rng& rng, int sample_pairs) const;

 private:
  std::shared_ptr<LabelDictionary> labels_;
  std::vector<Tree> trees_;
  std::vector<TedTree> ted_views_;
};

}  // namespace treesim

#endif  // TREESIM_SEARCH_TREE_DATABASE_H_
