#ifndef TREESIM_SEARCH_PAIRWISE_H_
#define TREESIM_SEARCH_PAIRWISE_H_

#include <cstdint>
#include <vector>

#include "search/tree_database.h"

namespace treesim {

/// A dense symmetric pairwise distance matrix over a database (the input of
/// hierarchical clustering, MDS visualization, medoid seeding, ...).
class PairwiseDistances {
 public:
  /// Entry (i, j); i == j is 0. Symmetric.
  int At(int i, int j) const;

  int size() const { return size_; }

  /// Mean off-diagonal distance (0 when size < 2).
  double Mean() const;

 private:
  friend PairwiseDistances ComputePairwiseDistances(const TreeDatabase&, int);

  int size_ = 0;
  /// Upper triangle, row-major: entry (i, j) with i < j lives at
  /// i * size - i*(i+1)/2 + (j - i - 1).
  std::vector<int> upper_;
};

/// Computes all |D|*(|D|-1)/2 exact unit-cost edit distances. `threads` > 1
/// fans the (embarrassingly parallel) pair computations out over worker
/// threads — TedTree views are immutable and the Zhang–Shasha kernel is
/// pure, so this is safe; results are identical for any thread count.
/// threads <= 0 picks the hardware concurrency.
PairwiseDistances ComputePairwiseDistances(const TreeDatabase& db,
                                           int threads = 1);

}  // namespace treesim

#endif  // TREESIM_SEARCH_PAIRWISE_H_
