#ifndef TREESIM_SEARCH_PAIRWISE_H_
#define TREESIM_SEARCH_PAIRWISE_H_

#include <cstdint>
#include <vector>

#include "search/tree_database.h"
#include "util/thread_pool.h"

namespace treesim {

/// A dense symmetric pairwise distance matrix over a database (the input of
/// hierarchical clustering, MDS visualization, medoid seeding, ...).
class PairwiseDistances {
 public:
  /// Entry (i, j); i == j is 0. Symmetric.
  int At(int i, int j) const;

  int size() const { return size_; }

  /// Mean off-diagonal distance (0 when size < 2).
  double Mean() const;

 private:
  friend PairwiseDistances ComputePairwiseDistances(const TreeDatabase&,
                                                    ThreadPool*);

  int size_ = 0;
  /// Upper triangle, row-major: entry (i, j) with i < j lives at
  /// i * size - i*(i+1)/2 + (j - i - 1).
  std::vector<int> upper_;
};

/// Computes all |D|*(|D|-1)/2 exact unit-cost edit distances, fanning the
/// (embarrassingly parallel) row computations out over `pool` — TedTree
/// views are immutable and the Zhang–Shasha kernel is pure, so this is
/// safe; every row writes a disjoint slice of the matrix, so results are
/// byte-identical for any pool size. nullptr runs sequentially.
PairwiseDistances ComputePairwiseDistances(const TreeDatabase& db,
                                           ThreadPool* pool);

/// Convenience overload owning a temporary pool: `threads` <= 0 picks the
/// hardware concurrency; the count is clamped to the number of matrix rows.
PairwiseDistances ComputePairwiseDistances(const TreeDatabase& db,
                                           int threads = 1);

}  // namespace treesim

#endif  // TREESIM_SEARCH_PAIRWISE_H_
