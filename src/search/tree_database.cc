#include "search/tree_database.h"

#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/safe_math.h"

namespace treesim {

TreeDatabase::TreeDatabase(std::shared_ptr<LabelDictionary> labels)
    : labels_(std::move(labels)) {
  TREESIM_CHECK(labels_ != nullptr);
}

int TreeDatabase::Add(Tree t) {
  TREESIM_CHECK(!t.empty()) << "cannot index an empty tree";
  TREESIM_CHECK(t.label_dict() == labels_)
      << "tree does not share the database label dictionary";
  const int id = size();
  ted_views_.push_back(TedTree::FromTree(t));
  trees_.push_back(std::move(t));
  TREESIM_COUNTER_INC("db.trees_added");
  TREESIM_GAUGE_SET("db.size", static_cast<int64_t>(trees_.size()));
  return id;
}

void TreeDatabase::AddAll(std::vector<Tree> trees) {
  for (Tree& t : trees) Add(std::move(t));
}

const Tree& TreeDatabase::tree(int id) const {
  TREESIM_CHECK(id >= 0 && id < size());
  return trees_[static_cast<size_t>(id)];
}

const TedTree& TreeDatabase::ted_view(int id) const {
  TREESIM_CHECK(id >= 0 && id < size());
  return ted_views_[static_cast<size_t>(id)];
}

double TreeDatabase::AverageTreeSize() const {
  if (trees_.empty()) return 0.0;
  int64_t total = 0;
  for (const Tree& t : trees_) total = CheckedAdd<int64_t>(total, t.size());
  return static_cast<double>(total) / static_cast<double>(trees_.size());
}

double TreeDatabase::EstimateAverageDistance(Rng& rng,
                                             int sample_pairs) const {
  TREESIM_CHECK_GE(size(), 2);
  TREESIM_CHECK_GT(sample_pairs, 0);
  int64_t total = 0;
  for (int s = 0; s < sample_pairs; ++s) {
    const int i = static_cast<int>(rng.UniformIndex(trees_.size()));
    int j = static_cast<int>(rng.UniformIndex(trees_.size() - 1));
    if (j >= i) ++j;  // distinct pair, uniform
    total = CheckedAdd<int64_t>(
        total, TreeEditDistance(ted_views_[static_cast<size_t>(i)],
                                ted_views_[static_cast<size_t>(j)]));
  }
  return static_cast<double>(total) / static_cast<double>(sample_pairs);
}

}  // namespace treesim
