#ifndef TREESIM_SEARCH_CLUSTERING_H_
#define TREESIM_SEARCH_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "search/tree_database.h"
#include "util/random.h"

namespace treesim {

/// Result of a k-medoids clustering run under the tree edit distance.
struct ClusteringResult {
  /// Tree ids of the k medoids.
  std::vector<int> medoids;
  /// Per tree: index into `medoids` of its cluster.
  std::vector<int> assignment;
  /// Sum of EDist(tree, its medoid).
  int64_t total_cost = 0;
  /// Lloyd-style iterations executed (including the final no-change pass).
  int iterations = 0;
  /// Exact edit distance computations performed.
  int64_t edit_distance_calls = 0;
  /// Exact computations skipped thanks to the binary branch lower bound.
  int64_t pruned_by_filter = 0;
};

/// Options for KMedoids.
struct KMedoidsOptions {
  enum class Initialization {
    /// k distinct uniform random medoids.
    kRandom,
    /// k-means++-style seeding: each next medoid is drawn with probability
    /// proportional to the squared distance to the nearest chosen one.
    /// Much more robust against merged clusters; the default.
    kPlusPlus,
  };

  int k = 3;
  int max_iterations = 20;
  Initialization initialization = Initialization::kPlusPlus;
  /// Use binary branch optimistic bounds to skip exact distances whose
  /// lower bound already exceeds the best assignment so far (the clustering
  /// application from the paper's introduction). Results are identical with
  /// or without; only edit_distance_calls/pruned_by_filter change.
  bool use_filter = true;
  /// Branch level for the filter.
  int q = 2;
};

/// Clusters the database with the k-medoids (PAM/Lloyd hybrid) scheme:
/// random initial medoids, alternate (a) assign every tree to its nearest
/// medoid and (b) re-center each cluster on the member minimizing the total
/// in-cluster distance, until assignments stabilize or max_iterations.
/// Deterministic given `rng`. O(iterations * (k * N + sum |C|^2)) exact
/// distance computations before filter pruning.
ClusteringResult KMedoids(const TreeDatabase& db, const KMedoidsOptions& options,
                          Rng& rng);

}  // namespace treesim

#endif  // TREESIM_SEARCH_CLUSTERING_H_
