#include "search/pairwise.h"

#include <atomic>
#include <thread>

#include "util/logging.h"

namespace treesim {

int PairwiseDistances::At(int i, int j) const {
  TREESIM_DCHECK(i >= 0 && i < size_ && j >= 0 && j < size_);
  if (i == j) return 0;
  if (i > j) std::swap(i, j);
  const size_t index = static_cast<size_t>(i) * static_cast<size_t>(size_) -
                       static_cast<size_t>(i) * (static_cast<size_t>(i) + 1) /
                           2 +
                       static_cast<size_t>(j - i - 1);
  return upper_[index];
}

double PairwiseDistances::Mean() const {
  if (upper_.empty()) return 0.0;
  int64_t total = 0;
  for (const int d : upper_) total += d;
  return static_cast<double>(total) / static_cast<double>(upper_.size());
}

PairwiseDistances ComputePairwiseDistances(const TreeDatabase& db,
                                           int threads) {
  PairwiseDistances result;
  result.size_ = db.size();
  const size_t pairs = static_cast<size_t>(db.size()) *
                       (static_cast<size_t>(db.size()) - 1) / 2;
  result.upper_.resize(pairs);
  if (pairs == 0) return result;

  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }

  // Workers pull rows off a shared counter; each row i computes the
  // distances (i, i+1..n-1). Rows shrink with i, so the dynamic schedule
  // balances better than a static split.
  std::atomic<int> next_row{0};
  auto worker = [&]() {
    while (true) {
      const int i = next_row.fetch_add(1);
      if (i >= db.size() - 1) return;
      const size_t row_base =
          static_cast<size_t>(i) * static_cast<size_t>(db.size()) -
          static_cast<size_t>(i) * (static_cast<size_t>(i) + 1) / 2;
      for (int j = i + 1; j < db.size(); ++j) {
        result.upper_[row_base + static_cast<size_t>(j - i - 1)] =
            TreeEditDistance(db.ted_view(i), db.ted_view(j));
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return result;
}

}  // namespace treesim
