#include "search/pairwise.h"

#include "util/logging.h"
#include "util/safe_math.h"
#include "util/thread_pool.h"

namespace treesim {
namespace {

/// Row offset of entry (i, i+1) in the packed upper triangle of an n x n
/// matrix.
size_t RowBase(int i, int n) {
  return static_cast<size_t>(i) * static_cast<size_t>(n) -
         static_cast<size_t>(i) * (static_cast<size_t>(i) + 1) / 2;
}

}  // namespace

int PairwiseDistances::At(int i, int j) const {
  TREESIM_DCHECK(i >= 0 && i < size_ && j >= 0 && j < size_);
  if (i == j) return 0;
  if (i > j) std::swap(i, j);
  return upper_[RowBase(i, size_) + static_cast<size_t>(j - i - 1)];
}

double PairwiseDistances::Mean() const {
  if (upper_.empty()) return 0.0;
  int64_t total = 0;
  for (const int d : upper_) total = CheckedAdd<int64_t>(total, d);
  return static_cast<double>(total) / static_cast<double>(upper_.size());
}

PairwiseDistances ComputePairwiseDistances(const TreeDatabase& db,
                                           ThreadPool* pool) {
  PairwiseDistances result;
  result.size_ = db.size();
  const size_t pairs = static_cast<size_t>(db.size()) *
                       (static_cast<size_t>(db.size()) - 1) / 2;
  result.upper_.resize(pairs);
  if (pairs == 0) return result;

  // One work item per row i, computing the distances (i, i+1..n-1) into the
  // row's disjoint slice. Rows shrink with i, so the pool's dynamic index
  // claiming balances better than a static split would; results land in
  // fixed slots, so any schedule produces identical bytes.
  ParallelFor(pool, db.size() - 1, [&](int64_t i) {
    const size_t row_base = RowBase(static_cast<int>(i), db.size());
    for (int j = static_cast<int>(i) + 1; j < db.size(); ++j) {
      result.upper_[row_base + static_cast<size_t>(j - i - 1)] =
          TreeEditDistance(db.ted_view(static_cast<int>(i)),
                           db.ted_view(j));
    }
  });
  return result;
}

PairwiseDistances ComputePairwiseDistances(const TreeDatabase& db,
                                           int threads) {
  // Clamp to the row count: spawning hardware_concurrency() workers for a
  // 3-tree matrix (as the old ad-hoc std::thread code did) is pure overhead.
  const int effective = ClampThreads(threads, std::max(db.size() - 1, 0));
  if (effective <= 1) return ComputePairwiseDistances(db, nullptr);
  ThreadPool pool(effective);
  return ComputePairwiseDistances(db, &pool);
}

}  // namespace treesim
