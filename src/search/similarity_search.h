#ifndef TREESIM_SEARCH_SIMILARITY_SEARCH_H_
#define TREESIM_SEARCH_SIMILARITY_SEARCH_H_

#include <memory>
#include <utility>
#include <vector>

#include "filters/filter_index.h"
#include "search/query_stats.h"
#include "search/tree_database.h"
#include "ted/cost_model.h"
#include "util/thread_pool.h"

namespace treesim {

/// Result of a range query: ids of trees within distance tau of the query,
/// ascending by (distance, id).
struct RangeResult {
  std::vector<std::pair<int, int>> matches;  // (tree id, exact distance)
  QueryStats stats;
};

/// Result of a k-NN query: the k nearest trees, ascending by
/// (distance, id); fewer when the database is smaller than k.
struct KnnResult {
  std::vector<std::pair<int, int>> neighbors;  // (tree id, exact distance)
  QueryStats stats;
};

/// Result of a batch k-NN query: one KnnResult per query tree, in input
/// order, plus the merged accounting.
struct BatchKnnResult {
  std::vector<KnnResult> per_query;
  /// Sum of the per-query stats, merged when the parallel refinement joins.
  QueryStats combined;
};

/// Weighted-cost variants (general CostModel distances are real-valued).
struct WeightedRangeResult {
  std::vector<std::pair<int, double>> matches;
  QueryStats stats;
};
struct WeightedKnnResult {
  std::vector<std::pair<int, double>> neighbors;
  QueryStats stats;
};

/// The filter-and-refine similarity search engine of Section 4 (Algorithm 2
/// and its range variant), parameterized by any sound FilterIndex. With a
/// null filter it degenerates to the sequential scan used as the timing
/// baseline in Section 5.
///
/// The refine stage uses the threshold-bounded verifier
/// (ted/bounded_ted.h) at the query's tau (range/join) or the current
/// kth-best distance (k-NN): candidates farther than the threshold are
/// rejected without computing their full distance. The bounded verifier is
/// exact for every distance within the threshold, so all results — ids,
/// distances, and orderings — are byte-identical to what the unbounded
/// Zhang–Shasha refine produced; only the refine-stage work changes (see
/// the ted.bounded_* counters).
class SimilaritySearch {
 public:
  /// Builds `filter` over `db` (pass nullptr for sequential scan). `db`
  /// must outlive this object.
  SimilaritySearch(const TreeDatabase* db,
                   std::unique_ptr<FilterIndex> filter);

  SimilaritySearch(const SimilaritySearch&) = delete;
  SimilaritySearch& operator=(const SimilaritySearch&) = delete;
  SimilaritySearch(SimilaritySearch&&) = default;
  SimilaritySearch& operator=(SimilaritySearch&&) = default;

  /// All trees with EDist(query, tree) <= tau. Filtering uses
  /// FilterIndex::MayQualify; survivors are verified with exact TED. With a
  /// pool, candidate verification (the dominant cost) fans out over the
  /// workers into per-candidate slots; matches and stats are identical to
  /// the sequential scan for any pool size.
  RangeResult Range(const Tree& query, int tau, ThreadPool* pool = nullptr);

  /// The k nearest neighbors by exact TED, via the optimal multi-step
  /// strategy (Algorithm 2): lower bounds for every tree, ascending sweep,
  /// early break once the k-th best exact distance is below the next bound.
  ///
  /// With a pool the sweep refines candidates in parallel, bound-ascending
  /// blocks at a time: each worker verifies candidates thread-locally and
  /// merges into a mutex-guarded result heap; a candidate is skipped when
  /// its bound already exceeds the current k-th best exact distance, and
  /// the sweep stops at the first block whose smallest bound does — the
  /// same soundness argument as the sequential early break (every skipped
  /// tree has exact distance >= bound > k-th best). `neighbors` is
  /// byte-identical for any pool size; `stats.edit_distance_calls` may
  /// exceed the sequential count (a block may verify a few candidates past
  /// the optimal stopping point).
  KnnResult Knn(const Tree& query, int k, ThreadPool* pool = nullptr);

  /// Batch k-NN entry point: answers `queries` in input order, refining
  /// each query's candidates in parallel over `pool`; per-query QueryStats
  /// are merged into `combined` at join. Query preparation stays sequential
  /// (filters may extend shared dictionaries), so results are identical to
  /// calling Knn() per query.
  BatchKnnResult BatchKnn(const std::vector<Tree>& queries, int k,
                          ThreadPool* pool = nullptr);

  /// Name of the active filter ("Sequential" when none).
  std::string filter_name() const;

  /// Range query under a general cost model — the extension the paper notes
  /// in Section 2.1: every filter bound counts unit operations, and any
  /// weighted-optimal script has at least that many operations, each
  /// costing >= costs.MinOperationCost(), so bounds scale by that constant
  /// and exactness is preserved. costs.MinOperationCost() must be > 0.
  WeightedRangeResult RangeWeighted(const Tree& query, double tau,
                                    const CostModel& costs);

  /// k-NN under a general cost model (same scaling argument).
  WeightedKnnResult KnnWeighted(const Tree& query, int k,
                                const CostModel& costs);

 private:
  const TreeDatabase* db_;
  std::unique_ptr<FilterIndex> filter_;
};

}  // namespace treesim

#endif  // TREESIM_SEARCH_SIMILARITY_SEARCH_H_
