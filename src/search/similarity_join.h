#ifndef TREESIM_SEARCH_SIMILARITY_JOIN_H_
#define TREESIM_SEARCH_SIMILARITY_JOIN_H_

#include <memory>
#include <tuple>
#include <vector>

#include "filters/filter_index.h"
#include "search/query_stats.h"
#include "search/tree_database.h"
#include "util/thread_pool.h"

namespace treesim {

/// Result of an approximate (similarity) join: all tree pairs within edit
/// distance tau, with the exact distance. Ascending by (left id, right id).
struct JoinResult {
  /// (left tree id, right tree id, exact distance).
  std::vector<std::tuple<int, int, int>> pairs;
  /// Aggregated over all probes; database_size counts candidate pairs.
  QueryStats stats;
};

/// The approximate-join operation from the paper's introduction ("these
/// problems form the core operation for many database manipulations (e.g.,
/// approximate join, ...)"), built on the filter-and-refine engine: the
/// filter indexes the right side once, every left tree probes it with a
/// range query. Surviving candidate pairs are verified with the
/// threshold-bounded distance (ted/bounded_ted.h) at the join's tau —
/// exact for every emitted pair, and provably "> tau" for every rejected
/// one, so the output is byte-identical to an unbounded refine.
class SimilarityJoin {
 public:
  /// Builds `filter` over `right` (nullptr = no filtering). Both databases
  /// must outlive this object and share a label dictionary.
  SimilarityJoin(const TreeDatabase* right,
                 std::unique_ptr<FilterIndex> filter);

  SimilarityJoin(const SimilarityJoin&) = delete;
  SimilarityJoin& operator=(const SimilarityJoin&) = delete;

  /// All (l, r) with EDist(left[l], right[r]) <= tau. With a pool, query
  /// preparation stays sequential (filters may extend shared dictionaries),
  /// then each left tree's probe + refinement fans out over the workers
  /// into a per-left result slot; slots merge in left-id order, so `pairs`
  /// and the counting stats are identical to the sequential join for any
  /// pool size (only the seconds attribution shifts: probing is timed with
  /// refinement rather than with preparation).
  JoinResult Join(const TreeDatabase& left, int tau,
                  ThreadPool* pool = nullptr);

  /// Self join of the right-side database: all unordered pairs l < r within
  /// tau (each pair probed once). Same parallel contract as Join().
  JoinResult SelfJoin(int tau, ThreadPool* pool = nullptr);

 private:
  JoinResult JoinImpl(const TreeDatabase& left, int tau, bool self,
                      ThreadPool* pool);

  const TreeDatabase* right_;
  std::unique_ptr<FilterIndex> filter_;
};

}  // namespace treesim

#endif  // TREESIM_SEARCH_SIMILARITY_JOIN_H_
