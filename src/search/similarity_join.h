#ifndef TREESIM_SEARCH_SIMILARITY_JOIN_H_
#define TREESIM_SEARCH_SIMILARITY_JOIN_H_

#include <memory>
#include <tuple>
#include <vector>

#include "filters/filter_index.h"
#include "search/query_stats.h"
#include "search/tree_database.h"

namespace treesim {

/// Result of an approximate (similarity) join: all tree pairs within edit
/// distance tau, with the exact distance. Ascending by (left id, right id).
struct JoinResult {
  /// (left tree id, right tree id, exact distance).
  std::vector<std::tuple<int, int, int>> pairs;
  /// Aggregated over all probes; database_size counts candidate pairs.
  QueryStats stats;
};

/// The approximate-join operation from the paper's introduction ("these
/// problems form the core operation for many database manipulations (e.g.,
/// approximate join, ...)"), built on the filter-and-refine engine: the
/// filter indexes the right side once, every left tree probes it with a
/// range query.
class SimilarityJoin {
 public:
  /// Builds `filter` over `right` (nullptr = no filtering). Both databases
  /// must outlive this object and share a label dictionary.
  SimilarityJoin(const TreeDatabase* right,
                 std::unique_ptr<FilterIndex> filter);

  SimilarityJoin(const SimilarityJoin&) = delete;
  SimilarityJoin& operator=(const SimilarityJoin&) = delete;

  /// All (l, r) with EDist(left[l], right[r]) <= tau.
  JoinResult Join(const TreeDatabase& left, int tau);

  /// Self join of the right-side database: all unordered pairs l < r within
  /// tau (each pair probed once).
  JoinResult SelfJoin(int tau);

 private:
  JoinResult JoinImpl(const TreeDatabase& left, int tau, bool self);

  const TreeDatabase* right_;
  std::unique_ptr<FilterIndex> filter_;
};

}  // namespace treesim

#endif  // TREESIM_SEARCH_SIMILARITY_JOIN_H_
