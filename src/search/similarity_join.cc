#include "search/similarity_join.h"

#include <memory>
#include <string>
#include <utility>

#include "filters/filter_index.h"
#include "ted/bounded_ted.h"
#include "util/flight_recorder.h"
#include "util/hot.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/query_context.h"
#include "util/safe_math.h"
#include "util/stopwatch.h"
#include "util/structured_log.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace treesim {
namespace {

/// Monotonic value of the bounded-TED cell counter, used to attribute the
/// cells a single join computed to its flight record.
int64_t BoundedCellsCounterValue() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("ted.bounded_cells_computed");
  return counter.value();
}

/// Publishes one completed-join record into the always-on flight recorder.
void RecordFlight(int64_t query_id, int64_t tau, const QueryStats& stats,
                  int64_t total_micros, int64_t bounded_cells_delta) {
  if constexpr (kMetricsEnabled) {
    FlightRecord rec;
    rec.query_id = query_id;
    rec.ts_micros = UnixMicros();
    rec.op = "join";
    rec.param = tau;
    rec.database_size = stats.database_size;
    rec.candidates = stats.candidates;
    rec.refined = stats.edit_distance_calls;
    rec.results = stats.results;
    rec.filter_micros = static_cast<int64_t>(stats.filter_seconds * 1e6);
    rec.refine_micros = static_cast<int64_t>(stats.refine_seconds * 1e6);
    rec.total_micros = total_micros;
    rec.bounded_cells_delta = bounded_cells_delta;
    rec.slow = StructuredLog::Global().IsSlow(total_micros);
    FlightRecorder::Global().Record(rec);
  }
}

/// Query-log record for one join call (both the parallel and the
/// sequential paths funnel through here before returning). Cold: runs
/// once per join, after the timers stop, and only when sampled in.
void TREESIM_COLD MaybeLogJoin(const JoinResult& result, int64_t query_id,
                               int tau, bool self, int64_t left_size,
                               const std::string& filter_name) {
  StructuredLog& qlog = StructuredLog::Global();
  const int64_t total_micros =
      static_cast<int64_t>(result.stats.TotalSeconds() * 1e6);
  if (!qlog.ShouldLog(total_micros)) return;
  LogRecord rec;
  rec.Int("ts_micros", UnixMicros())
      .Str("event", self ? "self_join" : "join")
      .Int("query_id", query_id)
      .Str("filter", filter_name)
      .Int("tau", tau)
      .Int("left_size", left_size)
      .Int("database_size", result.stats.database_size)
      .Int("candidates", result.stats.candidates)
      .Int("refined", result.stats.edit_distance_calls)
      .Int("results", result.stats.results)
      .Int("filter_micros",
           static_cast<int64_t>(result.stats.filter_seconds * 1e6))
      .Int("refine_micros",
           static_cast<int64_t>(result.stats.refine_seconds * 1e6))
      .Int("total_micros", total_micros)
      .Bool("slow", qlog.IsSlow(total_micros));
  qlog.Write(rec);
}

}  // namespace

SimilarityJoin::SimilarityJoin(const TreeDatabase* right,
                               std::unique_ptr<FilterIndex> filter)
    : right_(right), filter_(std::move(filter)) {
  TREESIM_CHECK(right_ != nullptr);
  if (filter_ != nullptr) filter_->Build(right_->trees());
}

JoinResult SimilarityJoin::Join(const TreeDatabase& left, int tau,
                                ThreadPool* pool) {
  return JoinImpl(left, tau, /*self=*/false, pool);
}

JoinResult SimilarityJoin::SelfJoin(int tau, ThreadPool* pool) {
  return JoinImpl(*right_, tau, /*self=*/true, pool);
}

JoinResult SimilarityJoin::JoinImpl(const TreeDatabase& left, int tau,
                                    bool self, ThreadPool* pool) {
  TREESIM_CHECK(left.label_dict() == right_->label_dict())
      << "join sides must share one label dictionary";
  const ScopedQueryContext qctx("join");
  const int64_t bounded_cells_before = BoundedCellsCounterValue();
  TREESIM_TRACE_SPAN("search.join");
  TREESIM_COUNTER_INC("search.join.joins");
  JoinResult result;
  if (pool != nullptr && pool->size() > 1 && left.size() >= 2) {
    // Phase 1, sequential: query preparation in left order (PrepareQuery
    // may extend the filter's shared dictionaries, so it must not
    // interleave; preparing in id order also keeps any interning
    // deterministic).
    Stopwatch filter_timer;
    std::vector<std::unique_ptr<FilterQueryContext>> contexts;
    if (filter_ != nullptr) {
      contexts.resize(static_cast<size_t>(left.size()));
      for (int l = 0; l < left.size(); ++l) {
        contexts[static_cast<size_t>(l)] = filter_->PrepareQuery(left.tree(l));
      }
    }
    result.stats.filter_seconds = filter_timer.ElapsedSeconds();

    // Phase 2, parallel: each left tree probes (const MayQualify) and
    // refines into its own slot — no shared mutable state.
    struct PerLeft {
      std::vector<std::tuple<int, int, int>> pairs;
      int64_t candidates = 0;
      int64_t calls = 0;
    };
    std::vector<PerLeft> slots(static_cast<size_t>(left.size()));
    Stopwatch refine_timer;
    pool->ParallelFor(left.size(), [&](int64_t li) {
      const int l = static_cast<int>(li);
      PerLeft& slot = slots[static_cast<size_t>(l)];
      for (int r = self ? l + 1 : 0; r < right_->size(); ++r) {
        if (filter_ != nullptr &&
            !filter_->MayQualify(*contexts[static_cast<size_t>(l)], r, tau)) {
          continue;
        }
        ++slot.candidates;
        // Bounded verification at the join threshold: exact for every
        // emitted pair, tau + 1 for every rejected one.
        const int d =
            BoundedTreeEditDistance(left.ted_view(l), right_->ted_view(r), tau);
        ++slot.calls;
        if (d <= tau) slot.pairs.emplace_back(l, r, d);
      }
    });
    result.stats.refine_seconds = refine_timer.ElapsedSeconds();

    // Phase 3, sequential: merge slots in left order — each slot is
    // already ascending by r, so the concatenation is ascending by (l, r),
    // exactly the sequential output.
    size_t total_pairs = 0;
    for (const PerLeft& slot : slots) {
      total_pairs = CheckedAdd(total_pairs, slot.pairs.size());
    }
    result.pairs.reserve(total_pairs);
    for (int l = 0; l < left.size(); ++l) {
      PerLeft& slot = slots[static_cast<size_t>(l)];
      result.stats.database_size = CheckedAdd<int64_t>(
          result.stats.database_size, right_->size() - (self ? l + 1 : 0));
      result.stats.candidates =
          CheckedAdd(result.stats.candidates, slot.candidates);
      result.stats.edit_distance_calls =
          CheckedAdd(result.stats.edit_distance_calls, slot.calls);
      result.pairs.insert(result.pairs.end(), slot.pairs.begin(),
                          slot.pairs.end());
    }
    result.stats.results = static_cast<int64_t>(result.pairs.size());
    TREESIM_COUNTER_ADD("search.join.pairs_considered",
                        result.stats.database_size);
    TREESIM_COUNTER_ADD("search.join.candidates", result.stats.candidates);
    TREESIM_COUNTER_ADD("search.join.refined",
                        result.stats.edit_distance_calls);
    TREESIM_COUNTER_ADD("search.join.results", result.stats.results);
    TREESIM_HISTOGRAM_RECORD(
        "search.join.filter_micros", LatencyBucketsMicros(),
        static_cast<int64_t>(result.stats.filter_seconds * 1e6));
    TREESIM_HISTOGRAM_RECORD(
        "search.join.refine_micros", LatencyBucketsMicros(),
        static_cast<int64_t>(result.stats.refine_seconds * 1e6));
    const int64_t total_micros =
        static_cast<int64_t>(result.stats.TotalSeconds() * 1e6);
    TREESIM_WINDOW_RECORD("search.join.latency_window", total_micros);
    RecordFlight(qctx.query_id(), tau, result.stats, total_micros,
                 BoundedCellsCounterValue() - bounded_cells_before);
    MaybeLogJoin(result, qctx.query_id(), tau, self, left.size(),
                 filter_ == nullptr ? "Sequential" : filter_->name());
    return result;
  }
  std::vector<int> candidates;  // hoisted: reused across left trees
  for (int l = 0; l < left.size(); ++l) {
    // In a self join every unordered pair is probed from its smaller id;
    // the filter still scans all of `right_`, so prune r <= l afterwards
    // (cheap: MayQualify already ran, but the exact distance is skipped).
    Stopwatch filter_timer;
    candidates.clear();
    candidates.reserve(static_cast<size_t>(right_->size()));
    if (filter_ == nullptr) {
      for (int r = self ? l + 1 : 0; r < right_->size(); ++r) {
        candidates.push_back(r);
      }
      result.stats.database_size = CheckedAdd<int64_t>(
          result.stats.database_size, right_->size() - (self ? l + 1 : 0));
    } else {
      const std::unique_ptr<FilterQueryContext> ctx =
          filter_->PrepareQuery(left.tree(l));
      for (int r = self ? l + 1 : 0; r < right_->size(); ++r) {
        if (filter_->MayQualify(*ctx, r, tau)) candidates.push_back(r);
      }
      result.stats.database_size = CheckedAdd<int64_t>(
          result.stats.database_size, right_->size() - (self ? l + 1 : 0));
    }
    result.stats.filter_seconds += filter_timer.ElapsedSeconds();
    result.stats.candidates = CheckedAdd<int64_t>(
        result.stats.candidates, static_cast<int64_t>(candidates.size()));

    Stopwatch refine_timer;
    for (const int r : candidates) {
      const int d =
          BoundedTreeEditDistance(left.ted_view(l), right_->ted_view(r), tau);
      ++result.stats.edit_distance_calls;
      if (d <= tau) result.pairs.emplace_back(l, r, d);
    }
    result.stats.refine_seconds += refine_timer.ElapsedSeconds();
  }
  result.stats.results = static_cast<int64_t>(result.pairs.size());
  TREESIM_COUNTER_ADD("search.join.pairs_considered",
                      result.stats.database_size);
  TREESIM_COUNTER_ADD("search.join.candidates", result.stats.candidates);
  TREESIM_COUNTER_ADD("search.join.refined",
                      result.stats.edit_distance_calls);
  TREESIM_COUNTER_ADD("search.join.results", result.stats.results);
  TREESIM_HISTOGRAM_RECORD(
      "search.join.filter_micros", LatencyBucketsMicros(),
      static_cast<int64_t>(result.stats.filter_seconds * 1e6));
  TREESIM_HISTOGRAM_RECORD(
      "search.join.refine_micros", LatencyBucketsMicros(),
      static_cast<int64_t>(result.stats.refine_seconds * 1e6));
  const int64_t total_micros =
      static_cast<int64_t>(result.stats.TotalSeconds() * 1e6);
  TREESIM_WINDOW_RECORD("search.join.latency_window", total_micros);
  RecordFlight(qctx.query_id(), tau, result.stats, total_micros,
               BoundedCellsCounterValue() - bounded_cells_before);
  MaybeLogJoin(result, qctx.query_id(), tau, self, left.size(),
               filter_ == nullptr ? "Sequential" : filter_->name());
  return result;
}

}  // namespace treesim
