#include "search/similarity_join.h"

#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace treesim {

SimilarityJoin::SimilarityJoin(const TreeDatabase* right,
                               std::unique_ptr<FilterIndex> filter)
    : right_(right), filter_(std::move(filter)) {
  TREESIM_CHECK(right_ != nullptr);
  if (filter_ != nullptr) filter_->Build(right_->trees());
}

JoinResult SimilarityJoin::Join(const TreeDatabase& left, int tau) {
  return JoinImpl(left, tau, /*self=*/false);
}

JoinResult SimilarityJoin::SelfJoin(int tau) {
  return JoinImpl(*right_, tau, /*self=*/true);
}

JoinResult SimilarityJoin::JoinImpl(const TreeDatabase& left, int tau,
                                    bool self) {
  TREESIM_CHECK(left.label_dict() == right_->label_dict())
      << "join sides must share one label dictionary";
  JoinResult result;
  for (int l = 0; l < left.size(); ++l) {
    // In a self join every unordered pair is probed from its smaller id;
    // the filter still scans all of `right_`, so prune r <= l afterwards
    // (cheap: MayQualify already ran, but the exact distance is skipped).
    Stopwatch filter_timer;
    std::vector<int> candidates;
    if (filter_ == nullptr) {
      for (int r = self ? l + 1 : 0; r < right_->size(); ++r) {
        candidates.push_back(r);
      }
      result.stats.database_size += right_->size() - (self ? l + 1 : 0);
    } else {
      const std::unique_ptr<QueryContext> ctx =
          filter_->PrepareQuery(left.tree(l));
      for (int r = self ? l + 1 : 0; r < right_->size(); ++r) {
        if (filter_->MayQualify(*ctx, r, tau)) candidates.push_back(r);
      }
      result.stats.database_size += right_->size() - (self ? l + 1 : 0);
    }
    result.stats.filter_seconds += filter_timer.ElapsedSeconds();
    result.stats.candidates += static_cast<int64_t>(candidates.size());

    Stopwatch refine_timer;
    for (const int r : candidates) {
      const int d = TreeEditDistance(left.ted_view(l), right_->ted_view(r));
      ++result.stats.edit_distance_calls;
      if (d <= tau) result.pairs.emplace_back(l, r, d);
    }
    result.stats.refine_seconds += refine_timer.ElapsedSeconds();
  }
  result.stats.results = static_cast<int64_t>(result.pairs.size());
  return result;
}

}  // namespace treesim
