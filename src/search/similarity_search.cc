#include "search/similarity_search.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "filters/filter_index.h"
#include "ted/bounded_ted.h"
#include "util/flight_recorder.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/query_context.h"
#include "util/safe_math.h"
#include "util/stopwatch.h"
#include "util/structured_log.h"
#include "util/sync.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace treesim {
namespace {

/// Shared tail of every query-log record: the candidate funnel and the
/// stage/total timings from QueryStats, plus the slow marker. The caller
/// guards with StructuredLog::ShouldLog(), so none of this runs while the
/// sink is disabled (and under TREESIM_METRICS=OFF the guarded block is
/// dead code).
void AppendQueryStatsFields(const QueryStats& stats, int64_t total_micros,
                            LogRecord& rec) {
  rec.Int("database_size", stats.database_size)
      .Int("candidates", stats.candidates)
      .Int("refined", stats.edit_distance_calls)
      .Int("results", stats.results)
      .Int("filter_micros",
           static_cast<int64_t>(stats.filter_seconds * 1e6))
      .Int("refine_micros",
           static_cast<int64_t>(stats.refine_seconds * 1e6))
      .Int("total_micros", total_micros)
      .Bool("slow", StructuredLog::Global().IsSlow(total_micros));
}

/// Current value of the process-wide bounded-TED cell counter
/// (ted/bounded_ted.cc), read before/after a query for the flight
/// recorder's per-query delta. The delta is approximate when queries
/// overlap in one process. Constant 0 under TREESIM_METRICS=OFF.
int64_t BoundedCellsCounterValue() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("ted.bounded_cells_computed");
  return counter.value();
}

/// Appends one completed query to the always-on flight recorder — the
/// crash-dumpable sibling of the optional structured-log record.
void RecordFlight(const char* op, int64_t query_id, int64_t param,
                  const QueryStats& stats, int64_t total_micros,
                  int64_t bounded_cells_delta) {
  if constexpr (kMetricsEnabled) {
    FlightRecord rec;
    rec.query_id = query_id;
    rec.ts_micros = UnixMicros();
    rec.op = op;
    rec.param = param;
    rec.database_size = stats.database_size;
    rec.candidates = stats.candidates;
    rec.refined = stats.edit_distance_calls;
    rec.results = stats.results;
    rec.filter_micros = static_cast<int64_t>(stats.filter_seconds * 1e6);
    rec.refine_micros = static_cast<int64_t>(stats.refine_seconds * 1e6);
    rec.total_micros = total_micros;
    rec.bounded_cells_delta = bounded_cells_delta;
    rec.slow = StructuredLog::Global().IsSlow(total_micros);
    FlightRecorder::Global().Record(rec);
  }
}

}  // namespace

SimilaritySearch::SimilaritySearch(const TreeDatabase* db,
                                   std::unique_ptr<FilterIndex> filter)
    : db_(db), filter_(std::move(filter)) {
  TREESIM_CHECK(db_ != nullptr);
  if (filter_ != nullptr) filter_->Build(db_->trees());
}

std::string SimilaritySearch::filter_name() const {
  return filter_ == nullptr ? "Sequential" : filter_->name();
}

RangeResult SimilaritySearch::Range(const Tree& query, int tau,
                                    ThreadPool* pool) {
  // The query's identity for every span, log record, exemplar, and flight
  // record below — opened before the top span so it carries the id too,
  // and propagated into pool workers by ThreadPool::Schedule.
  const ScopedQueryContext qctx("range");
  const int64_t bounded_cells_before = BoundedCellsCounterValue();
  TREESIM_TRACE_SPAN("search.range");
  TREESIM_COUNTER_INC("search.range.queries");
  RangeResult result;
  result.stats.database_size = db_->size();

  // Filtering step. The context outlives the branch so the debug-mode
  // soundness check below can re-probe the filter per refined candidate.
  std::vector<int> candidates;
  std::unique_ptr<FilterQueryContext> ctx;
  Stopwatch filter_timer;
  {
    TREESIM_TRACE_SPAN("search.range.filter");
    if (filter_ == nullptr) {
      candidates.resize(static_cast<size_t>(db_->size()));
      for (int id = 0; id < db_->size(); ++id) {
        candidates[static_cast<size_t>(id)] = id;
      }
    } else {
      ctx = filter_->PrepareQuery(query);
      std::optional<std::vector<int>> batch =
          filter_->TryRangeCandidates(*ctx, tau);
      if (batch.has_value()) {
        candidates = std::move(*batch);  // metric-index fast path
      } else {
        candidates.reserve(static_cast<size_t>(db_->size()));
        for (int id = 0; id < db_->size(); ++id) {
          if (filter_->MayQualify(*ctx, id, tau)) candidates.push_back(id);
        }
      }
    }
  }
  TREESIM_HISTOGRAM_RECORD("search.range.filter_micros",
                           LatencyBucketsMicros(),
                           filter_timer.ElapsedMicros());
  TREESIM_COUNTER_ADD("search.range.candidates",
                      static_cast<int64_t>(candidates.size()));
  TREESIM_HISTOGRAM_RECORD("search.range.candidates_per_query",
                           CountBuckets(),
                           static_cast<int64_t>(candidates.size()));
  result.stats.filter_seconds = filter_timer.ElapsedSeconds();
  result.stats.candidates = static_cast<int64_t>(candidates.size());

  // Refinement step: verify every candidate with the threshold-bounded
  // distance — exact whenever it is <= tau, and a definitive tau + 1
  // otherwise, which the match test below rejects exactly like the full
  // distance would. Each candidate's distance lands in its own slot, so
  // the parallel fan-out (TedTree views are immutable, the kernel is pure)
  // yields exactly the sequential matches and stats for any pool size.
  Stopwatch refine_timer;
  const TedTree query_view = TedTree::FromTree(query);
  std::vector<int> distances(candidates.size(), 0);
  {
    TREESIM_TRACE_SPAN("search.range.refine");
    ParallelFor(pool, static_cast<int64_t>(candidates.size()), [&](int64_t c) {
      const int id = candidates[static_cast<size_t>(c)];
      const int d = BoundedTreeEditDistance(query_view, db_->ted_view(id), tau);
#ifndef NDEBUG
      // Theorem 3.2/3.3 as a machine-checked invariant: the filter's lower
      // bound (ceil(BDist / [4(q-1)+1]) for the branch filters) must never
      // exceed the exact edit distance on any refined candidate. Valid with
      // the bounded verifier too: refined candidates have bound <= tau, and
      // d is either exact or the clamped tau + 1 > bound.
      if (ctx != nullptr) {
        TREESIM_DCHECK_LE(filter_->LowerBound(*ctx, id),
                          static_cast<double>(d))
            << "unsound lower bound from filter " << filter_->name()
            << " on tree " << id;
      }
#endif
      distances[static_cast<size_t>(c)] = d;
    });
  }
  result.stats.edit_distance_calls =
      static_cast<int64_t>(candidates.size());
  TREESIM_COUNTER_ADD("search.range.refined",
                      static_cast<int64_t>(candidates.size()));
  size_t within_tau = 0;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (distances[c] <= tau) ++within_tau;
  }
  result.matches.reserve(within_tau);
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (distances[c] <= tau) {
      result.matches.emplace_back(candidates[c], distances[c]);
    }
  }
  result.stats.refine_seconds = refine_timer.ElapsedSeconds();
  TREESIM_HISTOGRAM_RECORD("search.range.refine_micros",
                           LatencyBucketsMicros(),
                           refine_timer.ElapsedMicros());
  TREESIM_COUNTER_ADD("search.range.results",
                      static_cast<int64_t>(result.matches.size()));

  std::sort(result.matches.begin(), result.matches.end(),
            [](const std::pair<int, int>& a, const std::pair<int, int>& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  result.stats.results = static_cast<int64_t>(result.matches.size());

  StructuredLog& qlog = StructuredLog::Global();
  const int64_t total_micros =
      static_cast<int64_t>(result.stats.TotalSeconds() * 1e6);
  if (qlog.ShouldLog(total_micros)) {
    LogRecord rec;
    rec.Int("ts_micros", UnixMicros())
        .Str("event", "range")
        .Int("query_id", qctx.query_id())
        .Str("filter", filter_name())
        .Int("tau", tau);
    AppendQueryStatsFields(result.stats, total_micros, rec);
    qlog.Write(rec);
  }
  TREESIM_WINDOW_RECORD("search.range.latency_window", total_micros);
  RecordFlight("range", qctx.query_id(), tau, result.stats, total_micros,
               BoundedCellsCounterValue() - bounded_cells_before);
  return result;
}

KnnResult SimilaritySearch::Knn(const Tree& query, int k, ThreadPool* pool) {
  TREESIM_CHECK_GT(k, 0);
  const ScopedQueryContext qctx("knn");
  const int64_t bounded_cells_before = BoundedCellsCounterValue();
  TREESIM_TRACE_SPAN("search.knn");
  TREESIM_COUNTER_INC("search.knn.queries");
  KnnResult result;
  result.stats.database_size = db_->size();
  if (db_->size() == 0) return result;

  // Step 1: lower bound for every database tree (Algorithm 2, lines 1-3).
  // PrepareQuery stays on the calling thread (it may extend shared
  // dictionaries); the per-tree bounds are pure reads and fan out.
  Stopwatch filter_timer;
  std::vector<double> bounds(static_cast<size_t>(db_->size()), 0.0);
  std::vector<int> order(static_cast<size_t>(db_->size()));
  for (int id = 0; id < db_->size(); ++id) {
    order[static_cast<size_t>(id)] = id;
  }
  if (filter_ != nullptr) {
    TREESIM_TRACE_SPAN("search.knn.filter");
    const std::unique_ptr<FilterQueryContext> ctx = filter_->PrepareQuery(query);
    ParallelFor(pool, db_->size(), [&](int64_t id) {
      bounds[static_cast<size_t>(id)] =
          filter_->LowerBound(*ctx, static_cast<int>(id));
    });
    TREESIM_COUNTER_ADD("search.knn.bounds_computed",
                        static_cast<int64_t>(db_->size()));
    // Step 2: ascending by optimistic bound (line 4), so the most promising
    // trees are refined first and the break triggers as early as possible.
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double ba = bounds[static_cast<size_t>(a)];
      const double bb = bounds[static_cast<size_t>(b)];
      if (ba != bb) return ba < bb;
      return a < b;
    });
  }
  result.stats.filter_seconds = filter_timer.ElapsedSeconds();
  TREESIM_HISTOGRAM_RECORD("search.knn.filter_micros",
                           LatencyBucketsMicros(),
                           filter_timer.ElapsedMicros());

  // Step 3: pruning sweep with a max-heap of the k best exact distances
  // (lines 5-15). Heap entries are (distance, id); top() is the current
  // k-th best under the deterministic (distance, id) order.
  Stopwatch refine_timer;
  TREESIM_TRACE_SPAN("search.knn.refine");
  const TedTree query_view = TedTree::FromTree(query);
  std::priority_queue<std::pair<int, int>> heap;
  int64_t calls = 0;
  // Sum over refined candidates of (exact distance - lower bound), the
  // per-query pruning-power figure reported in the query log.
  int64_t bound_gap_sum = 0;
  if (pool == nullptr || pool->size() <= 1) {
    for (const int id : order) {
      if (static_cast<int>(heap.size()) == k &&
          bounds[static_cast<size_t>(id)] >
              static_cast<double>(heap.top().first)) {
        break;  // every remaining bound is at least this large
      }
      // Verify against the current k-th best: a candidate farther than
      // that can never enter the heap, so the verifier may stop at
      // tau_b + 1 — which the (d, id) < top() test below rejects exactly
      // like the full distance would. While the heap is filling every
      // verification must be exact (INT_MAX delegates to the unbounded
      // kernel); once full, tau_b equals the k-th distance, so ties at
      // the k-th best are still computed exactly and the id tie-break
      // stays byte-identical to the unbounded sweep.
      const int tau_b = static_cast<int>(heap.size()) == k
                            ? heap.top().first
                            : std::numeric_limits<int>::max();
      const int d = BoundedTreeEditDistance(query_view, db_->ted_view(id),
                                            tau_b);
      ++calls;
      // Soundness of the pruning sweep: a bound above the exact distance
      // would let the early break drop true neighbors. (With the bounded
      // verifier, a clamped d is tau_b + 1 and surviving candidates have
      // bound <= tau_b, so the check still holds.)
      TREESIM_DCHECK_LE(bounds[static_cast<size_t>(id)],
                        static_cast<double>(d))
          << "unsound lower bound on tree " << id;
      // Bound tightness (Section 5's pruning-power claim): how far below
      // the verified (possibly threshold-clamped) distance the filter's
      // lower bound sat on this candidate.
      const int64_t gap =
          d - static_cast<int64_t>(bounds[static_cast<size_t>(id)]);
      TREESIM_HISTOGRAM_RECORD("search.knn.bound_gap", SmallValueBuckets(),
                               gap);
      bound_gap_sum = CheckedAdd(bound_gap_sum, gap);
      if (static_cast<int>(heap.size()) < k) {
        heap.emplace(d, id);
      } else if (std::make_pair(d, id) < heap.top()) {
        heap.pop();
        heap.emplace(d, id);
      }
    }
  } else {
    // Parallel sweep over bound-ascending blocks. Workers verify
    // candidates thread-locally and merge into the mutex-guarded heap; a
    // bounded heap keeps the k smallest (distance, id) pairs of whatever
    // set was verified, independent of insertion order, and the skip/stop
    // tests below only drop candidates whose bound STRICTLY exceeds the
    // current k-th best exact distance — which only shrinks over time, so
    // such a candidate can never re-enter the final top k. Hence
    // `neighbors` equals the sequential sweep's for any pool size; only
    // the number of verifications may differ (a block can overshoot the
    // sequential stopping point). The bounded verifier keeps this
    // determinism: its threshold is a snapshot of the k-th best, stale
    // only toward larger values, so final-top-k members are always
    // verified exactly (see the snapshot comment below).
    struct SweepState {
      Mutex mu;
      std::priority_queue<std::pair<int, int>> heap TREESIM_GUARDED_BY(mu);
      int64_t calls TREESIM_GUARDED_BY(mu) = 0;
      int64_t bound_gap_sum TREESIM_GUARDED_BY(mu) = 0;
    } sweep;
    const int64_t n = db_->size();
    const int64_t block =
        std::max<int64_t>(k, static_cast<int64_t>(8 * pool->size()));
    for (int64_t start = 0; start < n; start += block) {
      {
        MutexLock lock(sweep.mu);
        if (static_cast<int>(sweep.heap.size()) == k &&
            bounds[static_cast<size_t>(
                order[static_cast<size_t>(start)])] >
                static_cast<double>(sweep.heap.top().first)) {
          break;  // bounds ascend: every remaining block is prunable
        }
      }
      const int64_t end = std::min(start + block, n);
      pool->ParallelFor(end - start, [&](int64_t bi) {
        const int id = order[static_cast<size_t>(start + bi)];
        const double bound = bounds[static_cast<size_t>(id)];
        // Snapshot the current k-th best as the verifier threshold under
        // the same lock as the skip test. The snapshot may be stale by
        // verification time, but only on the safe side: the k-th best
        // only shrinks, so tau_b >= the final k-th distance. Hence any
        // candidate belonging to the final top k satisfies d <= tau_b and
        // is verified exactly; a clamped result (tau_b + 1) implies
        // d > tau_b >= every heap top from here on, so the insert test
        // below rejects it just as the unbounded sweep would. And a
        // not-yet-full heap at snapshot time stays not-smaller, so the
        // "insert unconditionally" branch only ever sees exact distances
        // (tau_b = INT_MAX delegates to the unbounded kernel).
        int tau_b = std::numeric_limits<int>::max();
        {
          MutexLock lock(sweep.mu);
          if (static_cast<int>(sweep.heap.size()) == k) {
            if (bound > static_cast<double>(sweep.heap.top().first)) {
              return;  // exact distance >= bound > current k-th best
            }
            tau_b = sweep.heap.top().first;
          }
        }
        const int d = BoundedTreeEditDistance(query_view, db_->ted_view(id),
                                              tau_b);
        TREESIM_DCHECK_LE(bound, static_cast<double>(d))
            << "unsound lower bound on tree " << id;
        const int64_t gap = d - static_cast<int64_t>(bound);
        TREESIM_HISTOGRAM_RECORD("search.knn.bound_gap", SmallValueBuckets(),
                                 gap);
        MutexLock lock(sweep.mu);
        ++sweep.calls;
        sweep.bound_gap_sum = CheckedAdd(sweep.bound_gap_sum, gap);
        if (static_cast<int>(sweep.heap.size()) < k) {
          sweep.heap.emplace(d, id);
        } else if (std::make_pair(d, id) < sweep.heap.top()) {
          sweep.heap.pop();
          sweep.heap.emplace(d, id);
        }
      });
    }
    MutexLock lock(sweep.mu);
    heap = std::move(sweep.heap);
    calls = sweep.calls;
    bound_gap_sum = sweep.bound_gap_sum;
  }
  result.stats.edit_distance_calls = calls;
  result.stats.refine_seconds = refine_timer.ElapsedSeconds();
  result.stats.candidates = result.stats.edit_distance_calls;
  TREESIM_HISTOGRAM_RECORD("search.knn.refine_micros",
                           LatencyBucketsMicros(),
                           refine_timer.ElapsedMicros());
  TREESIM_COUNTER_ADD("search.knn.refined", calls);
  TREESIM_HISTOGRAM_RECORD("search.knn.refined_per_query", CountBuckets(),
                           calls);

  result.neighbors.resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    result.neighbors[i] = {heap.top().second, heap.top().first};
    heap.pop();
  }
  result.stats.results = static_cast<int64_t>(result.neighbors.size());
  TREESIM_COUNTER_ADD("search.knn.results",
                      static_cast<int64_t>(result.neighbors.size()));

  StructuredLog& qlog = StructuredLog::Global();
  const int64_t total_micros =
      static_cast<int64_t>(result.stats.TotalSeconds() * 1e6);
  if (qlog.ShouldLog(total_micros)) {
    LogRecord rec;
    rec.Int("ts_micros", UnixMicros())
        .Str("event", "knn")
        .Int("query_id", qctx.query_id())
        .Str("filter", filter_name())
        .Int("k", k);
    AppendQueryStatsFields(result.stats, total_micros, rec);
    rec.Double("bound_gap_mean",
               calls > 0 ? static_cast<double>(bound_gap_sum) /
                               static_cast<double>(calls)
                         : 0.0);
    if (!result.neighbors.empty()) {
      rec.Int("kth_distance", result.neighbors.back().second);
    }
    qlog.Write(rec);
  }
  TREESIM_WINDOW_RECORD("search.knn.latency_window", total_micros);
  RecordFlight("knn", qctx.query_id(), k, result.stats, total_micros,
               BoundedCellsCounterValue() - bounded_cells_before);
  return result;
}

BatchKnnResult SimilaritySearch::BatchKnn(const std::vector<Tree>& queries,
                                          int k, ThreadPool* pool) {
  // The batch gets its own context; each member Knn() opens a nested one
  // (shadowing this id for its duration), so per-query telemetry keys to
  // the member query and the summary record below keys to the batch.
  const ScopedQueryContext qctx("batch_knn");
  const int64_t bounded_cells_before = BoundedCellsCounterValue();
  TREESIM_TRACE_SPAN("search.batch_knn");
  TREESIM_COUNTER_ADD("search.batch_knn.queries",
                      static_cast<int64_t>(queries.size()));
  BatchKnnResult out;
  out.per_query.reserve(queries.size());
  // Queries run in order — PrepareQuery may extend shared dictionaries, so
  // the per-query preparation must not interleave; each query's refinement
  // fans out over the pool and its stats merge when that fan-in joins.
  for (const Tree& query : queries) {
    out.per_query.push_back(Knn(query, k, pool));
    out.combined += out.per_query.back().stats;
  }

  // One summary record for the batch; the member queries logged themselves
  // individually above (subject to the slow-query threshold).
  StructuredLog& qlog = StructuredLog::Global();
  const int64_t total_micros =
      static_cast<int64_t>(out.combined.TotalSeconds() * 1e6);
  if (qlog.ShouldLog(total_micros)) {
    LogRecord rec;
    rec.Int("ts_micros", UnixMicros())
        .Str("event", "batch_knn")
        .Int("query_id", qctx.query_id())
        .Str("filter", filter_name())
        .Int("k", k)
        .Int("queries", static_cast<int64_t>(queries.size()));
    AppendQueryStatsFields(out.combined, total_micros, rec);
    qlog.Write(rec);
  }
  TREESIM_WINDOW_RECORD("search.batch_knn.latency_window", total_micros);
  RecordFlight("batch_knn", qctx.query_id(), k, out.combined, total_micros,
               BoundedCellsCounterValue() - bounded_cells_before);
  return out;
}

WeightedRangeResult SimilaritySearch::RangeWeighted(const Tree& query,
                                                    double tau,
                                                    const CostModel& costs) {
  const double c_min = costs.MinOperationCost();
  TREESIM_CHECK_GT(c_min, 0.0) << "MinOperationCost must be positive";
  const ScopedQueryContext qctx("range_weighted");
  const int64_t bounded_cells_before = BoundedCellsCounterValue();
  TREESIM_TRACE_SPAN("search.range_weighted");
  TREESIM_COUNTER_INC("search.range_weighted.queries");
  WeightedRangeResult result;
  result.stats.database_size = db_->size();

  // Filtering step: a tree within weighted distance tau needs at most
  // floor(tau / c_min) unit operations, so the unit-cost filters apply at
  // that scaled threshold.
  const double unit_tau = tau / c_min;
  std::vector<int> candidates;
  std::unique_ptr<FilterQueryContext> ctx;
  Stopwatch filter_timer;
  if (filter_ == nullptr) {
    candidates.resize(static_cast<size_t>(db_->size()));
    for (int id = 0; id < db_->size(); ++id) {
      candidates[static_cast<size_t>(id)] = id;
    }
  } else {
    ctx = filter_->PrepareQuery(query);
    std::optional<std::vector<int>> batch =
        filter_->TryRangeCandidates(*ctx, unit_tau);
    if (batch.has_value()) {
      candidates = std::move(*batch);
    } else {
      candidates.reserve(static_cast<size_t>(db_->size()));
      for (int id = 0; id < db_->size(); ++id) {
        if (filter_->MayQualify(*ctx, id, unit_tau)) candidates.push_back(id);
      }
    }
  }
  result.stats.filter_seconds = filter_timer.ElapsedSeconds();
  result.stats.candidates = static_cast<int64_t>(candidates.size());

  Stopwatch refine_timer;
  const TedTree query_view = TedTree::FromTree(query);
  result.matches.reserve(candidates.size());
  for (const int id : candidates) {
    // Bounded verification at the query's own threshold: exact (and
    // bit-identical to the unbounded kernel) whenever d <= tau, +inf
    // otherwise — which the match test rejects identically.
    const double d = BoundedTreeEditDistanceWeighted(
        query_view, db_->ted_view(id), tau, costs);
    ++result.stats.edit_distance_calls;
#ifndef NDEBUG
    // Scaled soundness: EDist_w >= c_min * EDist_unit >= c_min * LowerBound.
    // The epsilon absorbs floating-point rounding of the scaling. (A
    // clamped d is +inf, which trivially satisfies the check.)
    if (ctx != nullptr) {
      TREESIM_DCHECK_LE(c_min * filter_->LowerBound(*ctx, id), d + 1e-9)
          << "unsound scaled lower bound from filter " << filter_->name()
          << " on tree " << id;
    }
#endif
    if (d <= tau) result.matches.emplace_back(id, d);
  }
  result.stats.refine_seconds = refine_timer.ElapsedSeconds();
  std::sort(result.matches.begin(), result.matches.end(),
            [](const std::pair<int, double>& a,
               const std::pair<int, double>& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  result.stats.results = static_cast<int64_t>(result.matches.size());
  const int64_t total_micros =
      static_cast<int64_t>(result.stats.TotalSeconds() * 1e6);
  TREESIM_WINDOW_RECORD("search.range_weighted.latency_window", total_micros);
  RecordFlight("range_weighted", qctx.query_id(),
               static_cast<int64_t>(tau), result.stats, total_micros,
               BoundedCellsCounterValue() - bounded_cells_before);
  return result;
}

WeightedKnnResult SimilaritySearch::KnnWeighted(const Tree& query, int k,
                                                const CostModel& costs) {
  const double c_min = costs.MinOperationCost();
  TREESIM_CHECK_GT(c_min, 0.0) << "MinOperationCost must be positive";
  TREESIM_CHECK_GT(k, 0);
  const ScopedQueryContext qctx("knn_weighted");
  const int64_t bounded_cells_before = BoundedCellsCounterValue();
  TREESIM_TRACE_SPAN("search.knn_weighted");
  TREESIM_COUNTER_INC("search.knn_weighted.queries");
  WeightedKnnResult result;
  result.stats.database_size = db_->size();
  if (db_->size() == 0) return result;

  Stopwatch filter_timer;
  std::vector<double> bounds(static_cast<size_t>(db_->size()), 0.0);
  std::vector<int> order(static_cast<size_t>(db_->size()));
  for (int id = 0; id < db_->size(); ++id) {
    order[static_cast<size_t>(id)] = id;
  }
  if (filter_ != nullptr) {
    const std::unique_ptr<FilterQueryContext> ctx = filter_->PrepareQuery(query);
    for (int id = 0; id < db_->size(); ++id) {
      // Unit bound scaled into the weighted space.
      bounds[static_cast<size_t>(id)] = c_min * filter_->LowerBound(*ctx, id);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double ba = bounds[static_cast<size_t>(a)];
      const double bb = bounds[static_cast<size_t>(b)];
      if (ba != bb) return ba < bb;
      return a < b;
    });
  }
  result.stats.filter_seconds = filter_timer.ElapsedSeconds();

  Stopwatch refine_timer;
  const TedTree query_view = TedTree::FromTree(query);
  std::priority_queue<std::pair<double, int>> heap;
  for (const int id : order) {
    if (static_cast<int>(heap.size()) == k &&
        bounds[static_cast<size_t>(id)] > heap.top().first) {
      break;
    }
    // Same tightening threshold as the unit-cost sweep: the current k-th
    // best once the heap is full (ties at the k-th distance verify
    // exactly), +inf — i.e. the unbounded kernel — while it is filling.
    const double tau_b = static_cast<int>(heap.size()) == k
                             ? heap.top().first
                             : std::numeric_limits<double>::infinity();
    const double d = BoundedTreeEditDistanceWeighted(
        query_view, db_->ted_view(id), tau_b, costs);
    ++result.stats.edit_distance_calls;
    TREESIM_DCHECK_LE(bounds[static_cast<size_t>(id)], d + 1e-9)
        << "unsound scaled lower bound on tree " << id;
    if (static_cast<int>(heap.size()) < k) {
      heap.emplace(d, id);
    } else if (std::make_pair(d, id) < heap.top()) {
      heap.pop();
      heap.emplace(d, id);
    }
  }
  result.stats.refine_seconds = refine_timer.ElapsedSeconds();
  result.stats.candidates = result.stats.edit_distance_calls;

  result.neighbors.resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    result.neighbors[i] = {heap.top().second, heap.top().first};
    heap.pop();
  }
  result.stats.results = static_cast<int64_t>(result.neighbors.size());
  const int64_t total_micros =
      static_cast<int64_t>(result.stats.TotalSeconds() * 1e6);
  TREESIM_WINDOW_RECORD("search.knn_weighted.latency_window", total_micros);
  RecordFlight("knn_weighted", qctx.query_id(), k, result.stats,
               total_micros, BoundedCellsCounterValue() - bounded_cells_before);
  return result;
}

}  // namespace treesim
