#ifndef TREESIM_SEARCH_QUERY_STATS_H_
#define TREESIM_SEARCH_QUERY_STATS_H_

#include <cstdint>

#include "util/safe_math.h"

namespace treesim {

/// Per-query accounting, matching the measures reported in Section 5: the
/// fraction of the database whose exact edit distance had to be evaluated
/// ("% of accessed data" = true positives + false positives of the filter),
/// and the CPU split between filtering and refinement.
struct QueryStats {
  /// Database size the query ran against.
  int64_t database_size = 0;
  /// Trees that survived the filter; each costs one exact TED computation.
  int64_t candidates = 0;
  /// Trees in the final result.
  int64_t results = 0;
  /// Exact edit distance computations performed (== candidates for range
  /// queries; <= candidates for k-NN thanks to the early-break).
  int64_t edit_distance_calls = 0;
  /// Wall-clock seconds spent computing lower bounds (filter step).
  double filter_seconds = 0.0;
  /// Wall-clock seconds spent on exact distances (refinement step).
  double refine_seconds = 0.0;

  /// The paper's "% of accessed data" (in [0, 1]).
  double AccessedFraction() const {
    return database_size == 0
               ? 0.0
               : static_cast<double>(edit_distance_calls) /
                     static_cast<double>(database_size);
  }

  double TotalSeconds() const { return filter_seconds + refine_seconds; }

  /// Accumulates another query's stats (for averaging over query workloads).
  QueryStats& operator+=(const QueryStats& other) {
    database_size = CheckedAdd(database_size, other.database_size);
    candidates = CheckedAdd(candidates, other.candidates);
    results = CheckedAdd(results, other.results);
    edit_distance_calls =
        CheckedAdd(edit_distance_calls, other.edit_distance_calls);
    filter_seconds += other.filter_seconds;
    refine_seconds += other.refine_seconds;
    return *this;
  }
};

}  // namespace treesim

#endif  // TREESIM_SEARCH_QUERY_STATS_H_
