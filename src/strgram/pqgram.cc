#include "strgram/pqgram.h"

#include <algorithm>

#include "util/logging.h"
#include "util/safe_math.h"

namespace treesim {

PqGramProfile::PqGramProfile(const Tree& t, int p, int q) : p_(p), q_(q) {
  TREESIM_CHECK_GE(p, 1);
  TREESIM_CHECK_GE(q, 1);
  TREESIM_CHECK(!t.empty());

  // Stem register per node: (ancestor_{p-1}, ..., parent, node) with ε (the
  // * dummy) above the root.
  std::vector<LabelId> stem(static_cast<size_t>(p), kEpsilonLabel);
  std::vector<LabelId> gram(static_cast<size_t>(p + q));

  // One anchor per node: the leaf case registers a single all-dummy base;
  // an internal node with k children registers k + q - 1 sliding windows
  // over (q-1 dummies, children, q-1 dummies).
  auto emit = [&](const std::vector<LabelId>& base_window) {
    std::copy(stem.begin(), stem.end(), gram.begin());
    std::copy(base_window.begin(), base_window.end(),
              gram.begin() + static_cast<ptrdiff_t>(p_));
    grams_.push_back(gram);
  };

  // Depth-first traversal carrying the stem register. Recursion depth is
  // the tree depth; tolerable for the profile's intended inputs (database
  // records); matches the reference algorithm's structure.
  auto visit = [&](auto&& self, NodeId node) -> void {
    // Push this node onto the stem.
    const LabelId evicted = stem.front();
    stem.erase(stem.begin());
    stem.push_back(t.label(node));

    if (t.is_leaf(node)) {
      emit(std::vector<LabelId>(static_cast<size_t>(q_), kEpsilonLabel));
    } else {
      std::vector<LabelId> window(static_cast<size_t>(q_), kEpsilonLabel);
      for (NodeId c = t.first_child(node); c != kInvalidNode;
           c = t.next_sibling(c)) {
        window.erase(window.begin());
        window.push_back(t.label(c));
        emit(window);
      }
      for (int i = 0; i < q_ - 1; ++i) {
        window.erase(window.begin());
        window.push_back(kEpsilonLabel);
        emit(window);
      }
    }
    for (NodeId c = t.first_child(node); c != kInvalidNode;
         c = t.next_sibling(c)) {
      self(self, c);
    }

    // Pop this node off the stem.
    stem.pop_back();
    stem.insert(stem.begin(), evicted);
  };
  visit(visit, t.root());
  std::sort(grams_.begin(), grams_.end());
}

int PqGramProfile::SharedWith(const PqGramProfile& other) const {
  TREESIM_CHECK(p_ == other.p_ && q_ == other.q_)
      << "profiles extracted with different p/q";
  int shared = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < grams_.size() && j < other.grams_.size()) {
    if (grams_[i] == other.grams_[j]) {
      ++shared;
      ++i;
      ++j;
    } else if (grams_[i] < other.grams_[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return shared;
}

double PqGramProfile::DistanceTo(const PqGramProfile& other) const {
  const int shared = SharedWith(other);
  const int total = CheckedAdd(size(), other.size());
  if (total == 0) return 0.0;
  return 1.0 - 2.0 * static_cast<double>(shared) /
                   static_cast<double>(total);
}

}  // namespace treesim
