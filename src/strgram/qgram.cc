#include "strgram/qgram.h"

#include <algorithm>

#include "util/logging.h"
#include "util/safe_math.h"

namespace treesim {

QGramProfile::QGramProfile(const std::vector<LabelId>& sequence, int q)
    : q_(q), sequence_length_(static_cast<int>(sequence.size())) {
  TREESIM_CHECK_GE(q, 1);
  if (sequence_length_ < q) return;
  grams_.reserve(static_cast<size_t>(sequence_length_ - q + 1));
  for (int i = 0; i + q <= sequence_length_; ++i) {
    grams_.emplace_back(sequence.begin() + i, sequence.begin() + i + q);
  }
  std::sort(grams_.begin(), grams_.end());
}

int QGramProfile::SharedWith(const QGramProfile& other) const {
  TREESIM_CHECK_EQ(q_, other.q_);
  int shared = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < grams_.size() && j < other.grams_.size()) {
    if (grams_[i] == other.grams_[j]) {
      ++shared;
      ++i;
      ++j;
    } else if (grams_[i] < other.grams_[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return shared;
}

int64_t QGramProfile::L1Distance(const QGramProfile& other) const {
  const int shared = SharedWith(other);
  return CheckedSub(CheckedAdd<int64_t>(size(), other.size()),
                    CheckedMul<int64_t>(2, shared));
}

int QGramLowerBound(const QGramProfile& a, const QGramProfile& b) {
  const int q = a.q();
  const int max_len = std::max(a.sequence_length(), b.sequence_length());
  if (max_len < q) return 0;  // no gram evidence at all
  const int shared = a.SharedWith(b);
  const int deficit = CheckedSub(CheckedAdd(CheckedSub(max_len, q), 1), shared);
  if (deficit <= 0) return 0;
  return (deficit + q - 1) / q;
}

}  // namespace treesim
