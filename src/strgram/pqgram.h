#ifndef TREESIM_STRGRAM_PQGRAM_H_
#define TREESIM_STRGRAM_PQGRAM_H_

#include <cstdint>
#include <vector>

#include "tree/tree.h"

namespace treesim {

/// pq-gram profile of a tree [Augsten, Böhlen & Gamper, VLDB 2005] — an
/// EXTENSION beyond the reproduced paper, included because it is the other
/// contemporaneous gram-style tree sketch and makes a useful approximate
/// comparator in the ablation benches.
///
/// A pq-gram is a "stem" of p ancestors joined with a window of q
/// consecutive children, extracted from the tree extended with * (dummy)
/// nodes: p-1 dummies above the root, q-1 leading/trailing dummies around
/// every child list, and q dummy children under every leaf. The pq-gram
/// DISTANCE (normalized symmetric difference of the profiles) approximates
/// a fanout-weighted tree edit distance; unlike the binary branch distance
/// it is NOT a lower bound of the standard edit distance, so it cannot
/// drive an exact filter — it trades false negatives for speed.
class PqGramProfile {
 public:
  /// Extracts the profile with stem length `p` >= 1 and base `q` >= 1.
  PqGramProfile(const Tree& t, int p, int q);

  int p() const { return p_; }
  int q() const { return q_; }

  /// Number of pq-grams (with multiplicity).
  int size() const { return static_cast<int>(grams_.size()); }

  /// Multiset intersection size with `other` (same p, q required).
  int SharedWith(const PqGramProfile& other) const;

  /// The pq-gram distance: 1 - 2*shared / (|P1| + |P2|), in [0, 1].
  /// 0 for identical trees; 1 for trees sharing no pq-gram.
  double DistanceTo(const PqGramProfile& other) const;

 private:
  int p_;
  int q_;
  /// Each gram is the label sequence of its p stem + q base slots, with
  /// kEpsilonLabel standing in for the * dummies; sorted for merging.
  std::vector<std::vector<LabelId>> grams_;
};

}  // namespace treesim

#endif  // TREESIM_STRGRAM_PQGRAM_H_
