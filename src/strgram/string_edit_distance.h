#ifndef TREESIM_STRGRAM_STRING_EDIT_DISTANCE_H_
#define TREESIM_STRGRAM_STRING_EDIT_DISTANCE_H_

#include <vector>

#include "tree/label_dictionary.h"

namespace treesim {

/// Unit-cost string edit (Levenshtein) distance between two label
/// sequences. O(|a| * |b|) time, O(min) space.
int StringEditDistance(const std::vector<LabelId>& a,
                       const std::vector<LabelId>& b);

/// Banded variant: returns the exact distance when it is <= `limit`, and
/// any value > `limit` otherwise (Ukkonen's diagonal band, O(limit * min)
/// time). Useful for threshold tests without paying the full quadratic DP.
int StringEditDistanceBounded(const std::vector<LabelId>& a,
                              const std::vector<LabelId>& b, int limit);

}  // namespace treesim

#endif  // TREESIM_STRGRAM_STRING_EDIT_DISTANCE_H_
