#include "strgram/string_edit_distance.h"

#include <algorithm>

#include "util/logging.h"

namespace treesim {

int StringEditDistance(const std::vector<LabelId>& a,
                       const std::vector<LabelId>& b) {
  // Keep the shorter sequence in the inner dimension (row buffer).
  const std::vector<LabelId>& longer = a.size() >= b.size() ? a : b;
  const std::vector<LabelId>& shorter = a.size() >= b.size() ? b : a;
  const int n = static_cast<int>(shorter.size());
  std::vector<int> row(static_cast<size_t>(n) + 1);
  for (int j = 0; j <= n; ++j) row[static_cast<size_t>(j)] = j;
  for (size_t i = 1; i <= longer.size(); ++i) {
    int diagonal = row[0];  // row[i-1][0]
    row[0] = static_cast<int>(i);
    for (int j = 1; j <= n; ++j) {
      const int up = row[static_cast<size_t>(j)];
      const int subst =
          diagonal +
          (longer[i - 1] == shorter[static_cast<size_t>(j - 1)] ? 0 : 1);
      row[static_cast<size_t>(j)] =
          std::min({up + 1, row[static_cast<size_t>(j - 1)] + 1, subst});
      diagonal = up;
    }
  }
  return row[static_cast<size_t>(n)];
}

int StringEditDistanceBounded(const std::vector<LabelId>& a,
                              const std::vector<LabelId>& b, int limit) {
  TREESIM_CHECK_GE(limit, 0);
  const std::vector<LabelId>& longer = a.size() >= b.size() ? a : b;
  const std::vector<LabelId>& shorter = a.size() >= b.size() ? b : a;
  const int m = static_cast<int>(longer.size());
  const int n = static_cast<int>(shorter.size());
  if (m - n > limit) return limit + 1;
  if (n == 0) return m;  // m <= limit here; pure insertions

  // Ukkonen's band: only cells with |i - j| <= limit can stay <= limit.
  constexpr int kBig = 1 << 29;
  std::vector<int> row(static_cast<size_t>(n) + 1, kBig);
  for (int j = 0; j <= std::min(n, limit); ++j) {
    row[static_cast<size_t>(j)] = j;
  }
  for (int i = 1; i <= m; ++i) {
    const int lo = std::max(1, i - limit);
    const int hi = std::min(n, i + limit);
    if (lo > hi) return limit + 1;
    int diagonal = row[static_cast<size_t>(lo - 1)];  // row[i-1][lo-1]
    // Outside-band cell to the left of the window.
    row[static_cast<size_t>(lo - 1)] = (lo - 1 == 0) ? i : kBig;
    int best = kBig;
    for (int j = lo; j <= hi; ++j) {
      const int up = row[static_cast<size_t>(j)];
      const int subst =
          diagonal +
          (longer[static_cast<size_t>(i - 1)] ==
                   shorter[static_cast<size_t>(j - 1)]
               ? 0
               : 1);
      row[static_cast<size_t>(j)] = std::min(
          {up + 1, row[static_cast<size_t>(j - 1)] + 1, subst, kBig});
      diagonal = up;
      best = std::min(best, row[static_cast<size_t>(j)]);
    }
    if (hi < n) row[static_cast<size_t>(hi + 1)] = kBig;  // band edge
    if (best > limit) return limit + 1;  // the whole band overflowed
  }
  const int result = row[static_cast<size_t>(n)];
  return result > limit ? limit + 1 : result;
}

}  // namespace treesim
