#ifndef TREESIM_STRGRAM_QGRAM_H_
#define TREESIM_STRGRAM_QGRAM_H_

#include <cstdint>
#include <vector>

#include "tree/label_dictionary.h"

namespace treesim {

/// String q-grams over label sequences — the technique of Ukkonen [19] that
/// the binary branch embedding generalizes to trees (Section 1/3.4). A
/// profile is the sorted multiset of the |s| - q + 1 contiguous windows.
class QGramProfile {
 public:
  /// Builds the profile of `sequence` with window length `q` >= 1.
  /// Sequences shorter than q have an empty profile.
  QGramProfile(const std::vector<LabelId>& sequence, int q);

  int q() const { return q_; }
  int sequence_length() const { return sequence_length_; }

  /// Number of q-grams (|s| - q + 1, or 0).
  int size() const { return static_cast<int>(grams_.size()); }

  /// Number of q-grams shared with `other` (multiset intersection).
  int SharedWith(const QGramProfile& other) const;

  /// L1 distance of the two q-gram count vectors.
  int64_t L1Distance(const QGramProfile& other) const;

 private:
  int q_;
  int sequence_length_;
  /// Each gram packed as its label-id window, sorted lexicographically.
  std::vector<std::vector<LabelId>> grams_;
};

/// Ukkonen's count filter, rearranged as a lower bound: a string of length
/// n contains n - q + 1 q-grams and one edit operation destroys at most q
/// of them, so SED(s1, s2) = k implies
///   shared >= max(|s1|, |s2|) - q + 1 - k * q
/// (the paper's Section 1 recalls the same filter with a slightly different
/// constant; we use the directly provable form and property-test it), hence
///   SED >= ceil((max(|s1|,|s2|) - q + 1 - shared) / q),
/// clamped at 0. Also a lower bound of the TREE edit distance when the
/// sequences are the preorder (or postorder) traversals of the trees, since
/// a tree edit script induces a string edit script of equal length on the
/// traversal sequence.
int QGramLowerBound(const QGramProfile& a, const QGramProfile& b);

}  // namespace treesim

#endif  // TREESIM_STRGRAM_QGRAM_H_
