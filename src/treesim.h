#ifndef TREESIM_TREESIM_H_
#define TREESIM_TREESIM_H_

/// Umbrella header for the treesim library: similarity evaluation on
/// tree-structured data via the binary branch embedding of
/// Yang, Kalnis & Tung (SIGMOD 2005), with exact tree edit distance,
/// histogram filter baselines and a filter-and-refine search engine.

#include "core/binary_branch.h"    // IWYU pragma: export
#include "core/binary_tree.h"      // IWYU pragma: export
#include "core/branch_profile.h"   // IWYU pragma: export
#include "core/index_io.h"         // IWYU pragma: export
#include "core/inverted_file.h"    // IWYU pragma: export
#include "core/positional.h"       // IWYU pragma: export
#include "core/vptree.h"           // IWYU pragma: export
#include "datagen/dblp_generator.h"       // IWYU pragma: export
#include "datagen/edit_noise.h"           // IWYU pragma: export
#include "datagen/synthetic_generator.h"  // IWYU pragma: export
#include "filters/bibranch_filter.h"   // IWYU pragma: export
#include "filters/filter_index.h"      // IWYU pragma: export
#include "filters/histogram_filter.h"  // IWYU pragma: export
#include "filters/sequence_filter.h"   // IWYU pragma: export
#include "search/clustering.h"         // IWYU pragma: export
#include "search/pairwise.h"           // IWYU pragma: export
#include "search/query_stats.h"        // IWYU pragma: export
#include "search/similarity_join.h"    // IWYU pragma: export
#include "search/similarity_search.h"  // IWYU pragma: export
#include "search/tree_database.h"      // IWYU pragma: export
#include "strgram/pqgram.h"                 // IWYU pragma: export
#include "strgram/qgram.h"                  // IWYU pragma: export
#include "strgram/string_edit_distance.h"   // IWYU pragma: export
#include "ted/bounded_ted.h"           // IWYU pragma: export
#include "ted/cost_model.h"            // IWYU pragma: export
#include "ted/edit_mapping.h"          // IWYU pragma: export
#include "ted/edit_operation.h"        // IWYU pragma: export
#include "ted/edit_script_synthesis.h" // IWYU pragma: export
#include "ted/naive_ted.h"       // IWYU pragma: export
#include "ted/zhang_shasha.h"    // IWYU pragma: export
#include "tree/bracket.h"           // IWYU pragma: export
#include "tree/forest_io.h"         // IWYU pragma: export
#include "tree/label_dictionary.h"  // IWYU pragma: export
#include "tree/traversal.h"         // IWYU pragma: export
#include "tree/tree.h"              // IWYU pragma: export
#include "util/flags.h"     // IWYU pragma: export
#include "util/random.h"    // IWYU pragma: export
#include "util/safe_math.h" // IWYU pragma: export
#include "util/status.h"    // IWYU pragma: export
#include "util/stopwatch.h" // IWYU pragma: export
#include "util/sync.h"         // IWYU pragma: export
#include "util/thread_pool.h"  // IWYU pragma: export
#include "xml/xml_corpus.h" // IWYU pragma: export
#include "xml/xml_parser.h" // IWYU pragma: export

#endif  // TREESIM_TREESIM_H_
