#include "util/triage.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>

#include "util/build_info.h"
#include "util/flight_recorder.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

// ASYNC-SIGNAL-SAFETY CONTRACT — enforced by the `sigsafe` rule in
// tools/lint_treesim.py, which scans exactly this TU: no heap, no stdio,
// no locks, no growable containers, no stream objects. Everything below
// formats into fixed stack/static buffers and talks to the kernel through
// write()/open()/close()/clock_gettime()/getpid(). Failures are silent by
// design: a triage writer that can itself fault or deadlock is worse than
// no dump.

namespace treesim {
namespace {

constexpr int kMaxFlightRecords = 256;
constexpr int kMaxTraceEvents = 512;
constexpr int kMaxMetricViews = 512;
constexpr int kTracePerThread = 64;

char g_triage_dir[512] = ".";
char g_last_path[768] = "";
char g_fatal_message[1024] = "";
std::atomic<int> g_in_handler{0};
std::atomic<bool> g_installed{false};

// Scratch snapshot storage. Static (not stack) because the handler may run
// on a small alternate or nearly-exhausted stack; the re-entrancy gate in
// CrashHandler and the single-threaded public path make sharing safe
// enough for crash-time use.
FlightRecord g_records[kMaxFlightRecords];
TraceEvent g_events[kMaxTraceEvents];
CrashMetricView g_views[kMaxMetricViews];

// Warmed by InstallCrashHandler() so the handler never runs a lazy
// function-local-static constructor (whose guard may block).
FlightRecorder* g_flight = nullptr;

void WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = write(fd, data, size);
    if (n <= 0) return;  // silent: nothing sane to do mid-crash
    data += n;
    size -= static_cast<size_t>(n);
  }
}

void WriteStr(int fd, const char* s) {
  if (s == nullptr) return;
  WriteAll(fd, s, strlen(s));
}

/// Formats `v` in decimal into `buf` (at least 24 bytes); returns length.
int FormatInt(char* buf, int64_t v) {
  char tmp[24];
  int n = 0;
  uint64_t u;
  if (v < 0) {
    // Two's-complement-safe negation of INT64_MIN.
    u = static_cast<uint64_t>(~v) + 1;
  } else {
    u = static_cast<uint64_t>(v);
  }
  do {
    tmp[n++] = static_cast<char>('0' + (u % 10));
    u /= 10;
  } while (u != 0);
  int len = 0;
  if (v < 0) buf[len++] = '-';
  while (n > 0) buf[len++] = tmp[--n];
  buf[len] = '\0';
  return len;
}

void WriteInt(int fd, int64_t v) {
  char buf[26];
  WriteAll(fd, buf, static_cast<size_t>(FormatInt(buf, v)));
}

void WriteKeyInt(int fd, const char* key, int64_t v) {
  WriteStr(fd, key);
  WriteStr(fd, " ");
  WriteInt(fd, v);
  WriteStr(fd, "\n");
}

void WriteField(int fd, const char* key, int64_t v) {
  WriteStr(fd, " ");
  WriteStr(fd, key);
  WriteStr(fd, "=");
  WriteInt(fd, v);
}

int64_t NowUnixMicrosRaw() {
  struct timespec ts;
  if (clock_gettime(CLOCK_REALTIME, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

/// Appends `src` to `dst` (capacity `cap`, always NUL-terminated).
void AppendStr(char* dst, size_t cap, const char* src) {
  size_t at = strlen(dst);
  for (size_t i = 0; src[i] != '\0' && at + 1 < cap; ++i) dst[at++] = src[i];
  dst[at] = '\0';
}

void WriteDumpToFd(int fd, const char* reason) {
  WriteStr(fd, "TREESIM_TRIAGE 1\n");
  WriteStr(fd, "reason ");
  WriteStr(fd, reason);
  WriteStr(fd, "\n");
  WriteKeyInt(fd, "ts_unix_micros", NowUnixMicrosRaw());
  WriteKeyInt(fd, "pid", static_cast<int64_t>(getpid()));
  WriteStr(fd, "build_sha ");
  WriteStr(fd, build_info::kGitSha);
  WriteStr(fd, "\n");
  WriteKeyInt(fd, "build_dirty", build_info::kGitDirty ? 1 : 0);
  WriteStr(fd, "build_type ");
  WriteStr(fd, build_info::kBuildType);
  WriteStr(fd, "\n");
  WriteStr(fd, "compiler ");
  WriteStr(fd, build_info::kCompiler);
  WriteStr(fd, "\n");
  WriteKeyInt(fd, "metrics_enabled", kMetricsEnabled ? 1 : 0);
  if (g_fatal_message[0] != '\0') {
    WriteStr(fd, "fatal_message ");
    WriteStr(fd, g_fatal_message);
    WriteStr(fd, "\n");
  }

  WriteStr(fd, "SECTION metrics\n");
  const int views = CrashMetricViews(g_views, kMaxMetricViews);
  for (int i = 0; i < views; ++i) {
    const CrashMetricView& v = g_views[i];
    switch (v.kind) {
      case MetricKind::kCounter:
        if (v.counter == nullptr) break;
        WriteStr(fd, "counter ");
        WriteStr(fd, v.name);
        WriteStr(fd, " ");
        WriteInt(fd, v.counter->value());
        WriteStr(fd, "\n");
        break;
      case MetricKind::kGauge:
        if (v.gauge == nullptr) break;
        WriteStr(fd, "gauge ");
        WriteStr(fd, v.name);
        WriteStr(fd, " ");
        WriteInt(fd, v.gauge->value());
        WriteStr(fd, "\n");
        break;
      case MetricKind::kHistogram:
        if (v.histogram == nullptr) break;
        WriteStr(fd, "histogram ");
        WriteStr(fd, v.name);
        WriteStr(fd, " count ");
        WriteInt(fd, v.histogram->count());
        WriteStr(fd, " sum ");
        WriteInt(fd, v.histogram->sum());
        WriteStr(fd, "\n");
        break;
      case MetricKind::kWindow:
        break;  // windows are not crash-indexed (snapshot would allocate)
    }
  }

  WriteStr(fd, "SECTION flight_recorder\n");
  const FlightRecorder& flight =
      g_flight != nullptr ? *g_flight : FlightRecorder::Global();
  const int records = flight.CrashSnapshot(g_records, kMaxFlightRecords);
  for (int i = 0; i < records; ++i) {
    const FlightRecord& r = g_records[i];
    WriteStr(fd, "record");
    WriteField(fd, "query_id", r.query_id);
    WriteStr(fd, " op=");
    WriteStr(fd, r.op);
    WriteField(fd, "param", r.param);
    WriteField(fd, "db", r.database_size);
    WriteField(fd, "candidates", r.candidates);
    WriteField(fd, "refined", r.refined);
    WriteField(fd, "results", r.results);
    WriteField(fd, "filter_us", r.filter_micros);
    WriteField(fd, "refine_us", r.refine_micros);
    WriteField(fd, "total_us", r.total_micros);
    WriteField(fd, "bounded_cells", r.bounded_cells_delta);
    WriteField(fd, "slow", r.slow ? 1 : 0);
    WriteField(fd, "ts", r.ts_micros);
    WriteStr(fd, "\n");
  }

  WriteStr(fd, "SECTION trace_tail\n");
  const int events = TraceCrashTail(g_events, kMaxTraceEvents,
                                    kTracePerThread);
  for (int i = 0; i < events; ++i) {
    const TraceEvent& e = g_events[i];
    WriteStr(fd, "span");
    WriteField(fd, "thread", e.thread_index);
    WriteField(fd, "query_id", e.query_id);
    WriteField(fd, "depth", e.depth);
    WriteField(fd, "start_ns", e.start_ns);
    WriteField(fd, "dur_ns", e.duration_ns);
    WriteStr(fd, " name=");
    WriteStr(fd, e.name);
    WriteStr(fd, "\n");
  }
  WriteStr(fd, "END\n");
}

bool WriteDumpFile(const char* reason) {
  char path[768];
  path[0] = '\0';
  AppendStr(path, sizeof(path), g_triage_dir);
  AppendStr(path, sizeof(path), "/treesim_triage.");
  char num[26];
  FormatInt(num, NowUnixMicrosRaw() / 1000000);
  AppendStr(path, sizeof(path), num);
  AppendStr(path, sizeof(path), ".");
  FormatInt(num, static_cast<int64_t>(getpid()));
  AppendStr(path, sizeof(path), num);
  AppendStr(path, sizeof(path), ".txt");

  const int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  WriteDumpToFd(fd, reason);
  close(fd);
  memcpy(g_last_path, path, sizeof(path));
  return true;
}

const char* SignalName(int signo) {
  switch (signo) {
    case SIGABRT:
      return "SIGABRT";
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
    case SIGILL:
      return "SIGILL";
    default:
      return "signal";
  }
}

void CrashHandler(int signo) {
  // One shot: a fault inside the dump writer (or a second crashing
  // thread) must not recurse; fall straight through to the default
  // disposition so the process still dies with the right status.
  if (g_in_handler.exchange(1, std::memory_order_acq_rel) == 0) {
    WriteDumpFile(SignalName(signo));
  }
  signal(signo, SIG_DFL);
  raise(signo);
}

/// TREESIM_CHECK fatal hook: stash the diagnostic so the SIGABRT that
/// std::abort raises next dumps it. Newlines flatten to spaces to keep
/// the dump line-oriented.
void StashFatalMessage(const char* message) {
  size_t i = 0;
  for (; message[i] != '\0' && i + 1 < sizeof(g_fatal_message); ++i) {
    const char c = message[i];
    g_fatal_message[i] = (c == '\n' || c == '\r') ? ' ' : c;
  }
  g_fatal_message[i] = '\0';
}

}  // namespace

void InstallCrashHandler() {
  if (g_installed.exchange(true, std::memory_order_acq_rel)) return;
  // Warm every singleton the handler reads, so it never runs a lazy
  // initializer at crash time.
  g_flight = &FlightRecorder::Global();
  internal_logging::SetFatalHook(&StashFatalMessage);
  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_handler = &CrashHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  const int signals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL};
  for (const int signo : signals) {
    sigaction(signo, &action, nullptr);
  }
}

void SetTriageDir(const char* dir) {
  if (dir == nullptr || dir[0] == '\0') return;
  size_t i = 0;
  for (; dir[i] != '\0' && i + 1 < sizeof(g_triage_dir); ++i) {
    g_triage_dir[i] = dir[i];
  }
  g_triage_dir[i] = '\0';
}

bool WriteTriageDump(const char* reason) {
  return WriteDumpFile(reason == nullptr ? "requested" : reason);
}

const char* LastTriagePath() { return g_last_path; }

}  // namespace treesim
