#include "util/flight_recorder.h"

#if TREESIM_METRICS_ENABLED

#include <atomic>

#include "util/logging.h"

namespace treesim {

/// One ring slot. A seqlock whose payload is itself all-atomic: relaxed
/// atomics keep TSan quiet and make a mid-write read by the crash handler
/// merely stale, never undefined. seq == 0 is "never written"; the slot
/// holding ticket t (0-based) carries seq == 2*t + 2 when stable and
/// 2*t + 1 while the writer is inside.
struct FlightRecorder::Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<const char*> op{""};
  std::atomic<int64_t> query_id{0};
  std::atomic<int64_t> ts_micros{0};
  std::atomic<int64_t> param{0};
  std::atomic<int64_t> database_size{0};
  std::atomic<int64_t> candidates{0};
  std::atomic<int64_t> refined{0};
  std::atomic<int64_t> results{0};
  std::atomic<int64_t> filter_micros{0};
  std::atomic<int64_t> refine_micros{0};
  std::atomic<int64_t> total_micros{0};
  std::atomic<int64_t> bounded_cells_delta{0};
  std::atomic<int64_t> slow{0};
};

namespace {

constexpr int kDefaultCapacity = 128;
constexpr int kMaxCapacity = 4096;

// File-scope so the crash handler can reach the ring through the singleton
// without any constructor ordering concerns (all constant-initialized).
std::atomic<FlightRecorder::Slot*> g_slots{nullptr};
std::atomic<int> g_capacity{kDefaultCapacity};
std::atomic<int64_t> g_next{0};

/// Reads slot `s` expecting the stable even seq for `ticket`. Returns
/// false (and leaves `out` untouched beyond scratch) when the slot was
/// overwritten or mid-write.
bool ReadSlot(const FlightRecorder::Slot& s, int64_t ticket,
              FlightRecord* out) {
  const uint64_t expected = 2 * static_cast<uint64_t>(ticket) + 2;
  if (s.seq.load(std::memory_order_acquire) != expected) return false;
  out->op = s.op.load(std::memory_order_relaxed);
  out->query_id = s.query_id.load(std::memory_order_relaxed);
  out->ts_micros = s.ts_micros.load(std::memory_order_relaxed);
  out->param = s.param.load(std::memory_order_relaxed);
  out->database_size = s.database_size.load(std::memory_order_relaxed);
  out->candidates = s.candidates.load(std::memory_order_relaxed);
  out->refined = s.refined.load(std::memory_order_relaxed);
  out->results = s.results.load(std::memory_order_relaxed);
  out->filter_micros = s.filter_micros.load(std::memory_order_relaxed);
  out->refine_micros = s.refine_micros.load(std::memory_order_relaxed);
  out->total_micros = s.total_micros.load(std::memory_order_relaxed);
  out->bounded_cells_delta =
      s.bounded_cells_delta.load(std::memory_order_relaxed);
  out->slow = s.slow.load(std::memory_order_relaxed) != 0;
  std::atomic_thread_fence(std::memory_order_acquire);
  return s.seq.load(std::memory_order_relaxed) == expected;
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* const recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::Slot* FlightRecorder::EnsureSlots() {
  Slot* slots = g_slots.load(std::memory_order_acquire);
  if (slots != nullptr) return slots;
  const int cap = g_capacity.load(std::memory_order_relaxed);
  Slot* fresh = new Slot[static_cast<size_t>(cap)];
  Slot* expected = nullptr;
  if (g_slots.compare_exchange_strong(expected, fresh,
                                      std::memory_order_acq_rel)) {
    return fresh;
  }
  delete[] fresh;  // lost the allocation race; use the winner's ring
  return expected;
}

void FlightRecorder::Configure(int capacity) {
  int cap = capacity < 1 ? 1 : capacity;
  if (cap > kMaxCapacity) cap = kMaxCapacity;
  if (g_slots.load(std::memory_order_acquire) != nullptr) {
    TREESIM_CHECK(cap == g_capacity.load(std::memory_order_relaxed))
        << "flight recorder capacity is frozen after the first Record()";
    return;
  }
  g_capacity.store(cap, std::memory_order_relaxed);
}

void FlightRecorder::Record(const FlightRecord& rec) {
  Slot* slots = EnsureSlots();
  const int cap = g_capacity.load(std::memory_order_relaxed);
  const int64_t ticket = g_next.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots[static_cast<size_t>(ticket % cap)];
  // Seqlock writer: odd marker, release fence (payload may not become
  // visible before the marker), relaxed payload, even marker with release.
  s.seq.store(2 * static_cast<uint64_t>(ticket) + 1,
              std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.op.store(rec.op, std::memory_order_relaxed);
  s.query_id.store(rec.query_id, std::memory_order_relaxed);
  s.ts_micros.store(rec.ts_micros, std::memory_order_relaxed);
  s.param.store(rec.param, std::memory_order_relaxed);
  s.database_size.store(rec.database_size, std::memory_order_relaxed);
  s.candidates.store(rec.candidates, std::memory_order_relaxed);
  s.refined.store(rec.refined, std::memory_order_relaxed);
  s.results.store(rec.results, std::memory_order_relaxed);
  s.filter_micros.store(rec.filter_micros, std::memory_order_relaxed);
  s.refine_micros.store(rec.refine_micros, std::memory_order_relaxed);
  s.total_micros.store(rec.total_micros, std::memory_order_relaxed);
  s.bounded_cells_delta.store(rec.bounded_cells_delta,
                              std::memory_order_relaxed);
  s.slow.store(rec.slow ? 1 : 0, std::memory_order_relaxed);
  s.seq.store(2 * static_cast<uint64_t>(ticket) + 2,
              std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  const Slot* slots = g_slots.load(std::memory_order_acquire);
  if (slots == nullptr) return out;
  const int cap = g_capacity.load(std::memory_order_relaxed);
  const int64_t next = g_next.load(std::memory_order_acquire);
  const int64_t first = next > cap ? next - cap : 0;
  out.reserve(static_cast<size_t>(next - first));
  for (int64_t t = first; t < next; ++t) {
    FlightRecord rec;
    if (ReadSlot(slots[static_cast<size_t>(t % cap)], t, &rec)) {
      out.push_back(rec);
    }
  }
  return out;
}

int FlightRecorder::CrashSnapshot(FlightRecord* out, int max_out) const {
  const Slot* slots = g_slots.load(std::memory_order_acquire);
  if (slots == nullptr || out == nullptr || max_out <= 0) return 0;
  const int cap = g_capacity.load(std::memory_order_relaxed);
  const int64_t next = g_next.load(std::memory_order_acquire);
  const int64_t first = next > cap ? next - cap : 0;
  int n = 0;
  for (int64_t t = next - 1; t >= first && n < max_out; --t) {
    if (ReadSlot(slots[static_cast<size_t>(t % cap)], t, &out[n])) ++n;
  }
  return n;
}

int FlightRecorder::capacity() const {
  return g_capacity.load(std::memory_order_relaxed);
}

int64_t FlightRecorder::total_recorded() const {
  return g_next.load(std::memory_order_relaxed);
}

void FlightRecorder::ResetForTest() {
  Slot* slots = g_slots.exchange(nullptr, std::memory_order_acq_rel);
  g_next.store(0, std::memory_order_relaxed);
  g_capacity.store(kDefaultCapacity, std::memory_order_relaxed);
  delete[] slots;
}

}  // namespace treesim

#endif  // TREESIM_METRICS_ENABLED
