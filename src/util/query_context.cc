#include "util/query_context.h"

#if TREESIM_METRICS_ENABLED

#include <atomic>

namespace treesim {
namespace {

QueryContext& CurrentSlot() {
  thread_local QueryContext current;
  return current;
}

}  // namespace

const QueryContext& CurrentQueryContext() { return CurrentSlot(); }

int64_t AllocateQueryId() {
  static std::atomic<int64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

ScopedQueryContext::ScopedQueryContext(const char* tag,
                                       int64_t deadline_micros) {
  current_.query_id = AllocateQueryId();
  current_.deadline_micros = deadline_micros;
  current_.tag = tag;
  QueryContext& slot = CurrentSlot();
  saved_ = slot;
  slot = current_;
}

ScopedQueryContext::ScopedQueryContext(const QueryContext& ctx)
    : current_(ctx) {
  QueryContext& slot = CurrentSlot();
  saved_ = slot;
  slot = current_;
}

ScopedQueryContext::~ScopedQueryContext() { CurrentSlot() = saved_; }

}  // namespace treesim

#endif  // TREESIM_METRICS_ENABLED
