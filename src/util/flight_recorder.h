#ifndef TREESIM_UTIL_FLIGHT_RECORDER_H_
#define TREESIM_UTIL_FLIGHT_RECORDER_H_

#include <cstdint>
#include <vector>

#include "util/metrics.h"  // kMetricsEnabled

namespace treesim {

/// One completed query, as the flight recorder remembers it: the identity,
/// the funnel, and where the time went. Plain data; `op` is always a
/// string literal ("range", "knn", "batch_knn", "join", ...).
struct FlightRecord {
  int64_t query_id = 0;
  int64_t ts_micros = 0;     ///< completion time, UnixMicros()
  const char* op = "";       ///< operation tag (string literal)
  int64_t param = 0;         ///< tau (range/join) or k (knn)
  int64_t database_size = 0;
  int64_t candidates = 0;    ///< funnel: trees surviving the filter
  int64_t refined = 0;       ///< funnel: exact TED calls
  int64_t results = 0;       ///< funnel: matches / neighbors / pairs
  int64_t filter_micros = 0;
  int64_t refine_micros = 0;
  int64_t total_micros = 0;
  /// Delta of ted.bounded_cells_computed across this query. Approximate
  /// when queries overlap in one process (the counter is process-wide).
  int64_t bounded_cells_delta = 0;
  bool slow = false;         ///< StructuredLog::IsSlow(total_micros)
};

#if TREESIM_METRICS_ENABLED

/// An always-on, fixed-size, mutex-free ring of the last N completed query
/// records — the in-memory black box the crash handler dumps and
/// `treesim_cli --flight-recorder=N` prints.
///
/// Concurrency: each slot is a seqlock whose payload fields are themselves
/// relaxed atomics (so TSan sees no data race and a signal handler can
/// read mid-write without UB). A writer claims a ticket with one
/// fetch_add, marks the slot odd (seq = 2*ticket + 1, release), stores the
/// payload relaxed, then marks it even (seq = 2*ticket + 2, release).
/// Readers accept a slot only when they observe the same expected even seq
/// before AND after reading the payload; torn slots are skipped, never
/// returned. Recording is lock-free and allocation-free after the first
/// call; Snapshot() allocates, CrashSnapshot() does not.
class FlightRecorder {
 public:
  /// Opaque ring slot (layout in flight_recorder.cc).
  struct Slot;

  static FlightRecorder& Global();

  /// Sets the ring capacity (default 128, clamped to [1, 4096]). Must be
  /// called before the first Record(); once slots exist the capacity is
  /// frozen and a different value is a fatal error.
  void Configure(int capacity);

  /// Appends one completed-query record. Lock-free, signal-unsafe only in
  /// that it may allocate the slot array on the very first call.
  void Record(const FlightRecord& rec);

  /// The retained records, oldest first. Slots mid-write are skipped.
  std::vector<FlightRecord> Snapshot() const;

  /// Signal-safe variant: copies at most `max_out` newest-first records
  /// into caller storage without allocating or locking. Returns the count.
  int CrashSnapshot(FlightRecord* out, int max_out) const;

  int capacity() const;
  /// Total records ever written (>= capacity means the ring has wrapped).
  int64_t total_recorded() const;

  /// Drops all records and unfreezes capacity. Tests only.
  void ResetForTest();

 private:
  FlightRecorder() = default;
  Slot* EnsureSlots();
};

#else  // !TREESIM_METRICS_ENABLED

class FlightRecorder {
 public:
  static FlightRecorder& Global() {
    static FlightRecorder* const dummy = new FlightRecorder();
    return *dummy;
  }
  void Configure(int) {}
  void Record(const FlightRecord&) {}
  std::vector<FlightRecord> Snapshot() const { return {}; }
  int CrashSnapshot(FlightRecord*, int) const { return 0; }
  int capacity() const { return 0; }
  int64_t total_recorded() const { return 0; }
  void ResetForTest() {}

 private:
  FlightRecorder() = default;
};

#endif  // TREESIM_METRICS_ENABLED

}  // namespace treesim

#endif  // TREESIM_UTIL_FLIGHT_RECORDER_H_
