#ifndef TREESIM_UTIL_SYNC_H_
#define TREESIM_UTIL_SYNC_H_

#include <condition_variable>
#include <mutex>

/// Annotated synchronization primitives for the whole library.
///
/// Every class that owns shared mutable state wraps it in a treesim::Mutex
/// and annotates the guarded members with TREESIM_GUARDED_BY; Clang's
/// -Wthread-safety analysis (enabled by the TREESIM_THREAD_SAFETY CMake
/// option, -Werror in CI) then proves at compile time that no such member is
/// touched without its lock. Under GCC the attributes expand to nothing and
/// the wrappers cost exactly a std::mutex. Raw std::mutex / std::thread /
/// std::lock_guard are banned outside src/util/ by tools/lint_treesim.py so
/// the analysis cannot be bypassed by accident.

// clang-format off
#if defined(__clang__)
#define TREESIM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define TREESIM_THREAD_ANNOTATION_(x)  // no-op: GCC has no -Wthread-safety
#endif
// clang-format on

/// Declares a type to be a lockable capability ("mutex").
#define TREESIM_CAPABILITY(x) TREESIM_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define TREESIM_SCOPED_CAPABILITY TREESIM_THREAD_ANNOTATION_(scoped_lockable)

/// Member may only be read or written while holding `x`.
#define TREESIM_GUARDED_BY(x) TREESIM_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose POINTEE may only be accessed while holding `x`.
#define TREESIM_PT_GUARDED_BY(x) TREESIM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities to be held by the caller.
#define TREESIM_REQUIRES(...) \
  TREESIM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (and they were not held).
#define TREESIM_ACQUIRE(...) \
  TREESIM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define TREESIM_RELEASE(...) \
  TREESIM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability; returns `result` on success.
#define TREESIM_TRY_ACQUIRE(...) \
  TREESIM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define TREESIM_EXCLUDES(...) \
  TREESIM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Escape hatch for code the analysis cannot follow; use sparingly and
/// explain why in a comment.
#define TREESIM_NO_THREAD_SAFETY_ANALYSIS \
  TREESIM_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Global lock-ordering rank for a Mutex member. While holding a ranked
/// lock, only locks of strictly GREATER rank may be acquired; any two locks
/// ever held together must therefore have distinct ranks, and the ordering
/// they impose is acyclic by construction. Enforced whole-program by
/// tools/astcheck (which reads the rank from this declaration's source
/// line), not by -Wthread-safety. Current assignment, innermost first:
///   10  trace.cc TracerState::mu
///   20  ThreadPool::mu_
///   30  trace.cc ThreadBuffer::mu
///   40  MetricsRegistry::mu_
///   50  StructuredLog::mu_
/// Deliberately unranked because they take no Mutex at all: the flight
/// recorder (seqlock slots, util/flight_recorder.cc), the crash-dump
/// index arrays (CrashMetricViews / TraceCrashTail) and util/triage.cc —
/// those run on signal-handler read paths where locking is forbidden.
#define TREESIM_LOCK_RANK(level) \
  TREESIM_THREAD_ANNOTATION_(annotate("treesim::lock_rank=" #level))

namespace treesim {

/// A std::mutex with capability annotations. Lock/Unlock are spelled out
/// (rather than inheriting) so every acquisition site is analyzable.
class TREESIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TREESIM_ACQUIRE() { mu_.lock(); }
  void Unlock() TREESIM_RELEASE() { mu_.unlock(); }
  bool TryLock() TREESIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a treesim::Mutex — the only way library code should
/// acquire one (Lock/Unlock stay public for the rare hand-over-hand case).
class TREESIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TREESIM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() TREESIM_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with treesim::Mutex. Wait() requires the mutex
/// to be held; it is released while blocked and re-held on return, which is
/// exactly what the REQUIRES annotation expresses to the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) TREESIM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace treesim

#endif  // TREESIM_UTIL_SYNC_H_
