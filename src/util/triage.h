#ifndef TREESIM_UTIL_TRIAGE_H_
#define TREESIM_UTIL_TRIAGE_H_

/// Crash-time triage: an async-signal-safe fatal handler that preserves
/// the process's in-memory telemetry — metrics, flight-recorder records,
/// per-thread trace-ring tails, build provenance — as a line-oriented
/// text file the moment a TREESIM_CHECK fails or a fatal signal arrives.
/// Render with tools/triage_report.py.
///
/// The implementation TU (triage.cc) is held to strict async-signal-safety
/// by the `sigsafe` rule in tools/lint_treesim.py: no allocation, no
/// stdio, no locks, no std::string — only write()/open()/close(),
/// clock_gettime(), getpid(), sigaction()/signal()/raise(), and relaxed
/// atomic loads of pre-registered telemetry (see CrashMetricViews,
/// FlightRecorder::CrashSnapshot, TraceCrashTail).
///
/// Everything here works under -DTREESIM_METRICS=OFF too: the dump is
/// still written, with `metrics_enabled 0` and empty telemetry sections.

namespace treesim {

/// Installs the fatal-signal handlers (SIGABRT/SIGSEGV/SIGBUS/SIGFPE/
/// SIGILL) and the TREESIM_CHECK fatal hook, and warms the singletons the
/// handler must not lazily construct. Idempotent; call early in main().
void InstallCrashHandler();

/// Directory triage dumps are written into (copied into fixed storage;
/// default "."). The file name is treesim_triage.<unixsec>.<pid>.txt.
void SetTriageDir(const char* dir);

/// Writes a triage dump now (no crash required — the CLI's
/// --flight-recorder debugging path and tests use this). Async-signal-safe.
/// Returns false when the file could not be created.
bool WriteTriageDump(const char* reason);

/// Path of the most recently written dump ("" when none yet). Points at
/// fixed storage; valid for the process lifetime.
const char* LastTriagePath();

}  // namespace treesim

#endif  // TREESIM_UTIL_TRIAGE_H_
