#include "util/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "util/logging.h"
#include "util/query_context.h"
#include "util/safe_math.h"
#include "util/sync.h"

namespace treesim {
namespace {

/// Escapes a metric name for JSON output. Names are dotted identifiers by
/// convention, but the dump must stay well-formed for any registered name.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendInt64Array(std::ostringstream& os,
                      const std::vector<int64_t>& values) {
  os << '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ',';
    os << values[i];
  }
  os << ']';
}

}  // namespace

#if TREESIM_METRICS_ENABLED

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  TREESIM_CHECK(!bounds_.empty()) << "a histogram needs at least one bucket";
  TREESIM_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket bounds must ascend";
  TREESIM_CHECK(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                bounds_.end())
      << "histogram bucket bounds must be distinct";
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  exemplar_ids_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  exemplar_values_ =
      std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0);
    exemplar_ids_[i].store(0);
    exemplar_values_[i].store(0);
  }
}

void Histogram::Record(int64_t sample) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), sample) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  // Exemplar: remember which query last landed in this bucket, so the
  // Prometheus exposition can point an operator at a concrete --query-log
  // record. Only when a context is active — context-free recording (tests,
  // benches, startup) must leave exports byte-identical.
  const int64_t query_id = CurrentQueryContext().query_id;
  if (query_id != 0) {
    exemplar_values_[bucket].store(sample, std::memory_order_relaxed);
    exemplar_ids_[bucket].store(query_id, std::memory_order_relaxed);
  }
}

void Histogram::ResetForTest() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
    exemplar_ids_[i].store(0, std::memory_order_relaxed);
    exemplar_values_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

LatencyWindow::LatencyWindow(int capacity)
    : capacity_(capacity) {
  TREESIM_CHECK(capacity_ > 0) << "latency window capacity must be positive";
  samples_ = std::make_unique<std::atomic<int64_t>[]>(
      static_cast<size_t>(capacity_));
  sample_ids_ = std::make_unique<std::atomic<int64_t>[]>(
      static_cast<size_t>(capacity_));
  for (int i = 0; i < capacity_; ++i) {
    samples_[static_cast<size_t>(i)].store(0);
    sample_ids_[static_cast<size_t>(i)].store(0);
  }
}

void LatencyWindow::Record(int64_t sample) {
  const int64_t slot =
      head_.fetch_add(1, std::memory_order_relaxed) % capacity_;
  samples_[static_cast<size_t>(slot)].store(sample,
                                            std::memory_order_relaxed);
  sample_ids_[static_cast<size_t>(slot)].store(
      CurrentQueryContext().query_id, std::memory_order_relaxed);
}

std::vector<int64_t> LatencyWindow::RetainedSamples() const {
  const int64_t written = head_.load(std::memory_order_relaxed);
  const int n = written < capacity_ ? static_cast<int>(written) : capacity_;
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(samples_[static_cast<size_t>(i)].load(
        std::memory_order_relaxed));
  }
  return out;
}

void LatencyWindow::ResetForTest() {
  for (int i = 0; i < capacity_; ++i) {
    samples_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
    sample_ids_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

namespace {

// Signal-safe registration-order index of every counter/gauge/histogram,
// for the crash handler: fixed storage, entries published before the count
// (release/acquire), objects never freed. Appends happen under the
// registry mutex, so writes never race each other.
constexpr int kMaxCrashViews = 512;
CrashMetricView g_crash_views[kMaxCrashViews];
std::atomic<int> g_crash_view_count{0};

void AppendCrashView(const std::string& name, MetricKind kind,
                     const Counter* counter, const Gauge* gauge,
                     const Histogram* histogram) {
  const int i = g_crash_view_count.load(std::memory_order_relaxed);
  if (i >= kMaxCrashViews) return;  // overflow: later metrics just missing
  CrashMetricView& v = g_crash_views[i];
  const size_t n = std::min(name.size(), sizeof(v.name) - 1);
  name.copy(v.name, n);
  v.name[n] = '\0';
  v.kind = kind;
  v.counter = counter;
  v.gauge = gauge;
  v.histogram = histogram;
  g_crash_view_count.store(i + 1, std::memory_order_release);
}

}  // namespace

int CrashMetricViews(CrashMetricView* out, int max_out) {
  if (out == nullptr || max_out <= 0) return 0;
  int n = g_crash_view_count.load(std::memory_order_acquire);
  if (n > max_out) n = max_out;
  for (int i = 0; i < n; ++i) out[i] = g_crash_views[i];
  return n;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.counter == nullptr) {
    TREESIM_CHECK(e.gauge == nullptr && e.histogram == nullptr &&
                  e.window == nullptr)
        << "metric '" << name << "' already registered as a different kind";
    e.kind = MetricKind::kCounter;
    e.counter = std::make_unique<Counter>();
    AppendCrashView(name, MetricKind::kCounter, e.counter.get(), nullptr,
                    nullptr);
  }
  return *e.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge == nullptr) {
    TREESIM_CHECK(e.counter == nullptr && e.histogram == nullptr &&
                  e.window == nullptr)
        << "metric '" << name << "' already registered as a different kind";
    e.kind = MetricKind::kGauge;
    e.gauge = std::make_unique<Gauge>();
    AppendCrashView(name, MetricKind::kGauge, nullptr, e.gauge.get(),
                    nullptr);
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<int64_t>& bounds) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.histogram == nullptr) {
    TREESIM_CHECK(e.counter == nullptr && e.gauge == nullptr &&
                  e.window == nullptr)
        << "metric '" << name << "' already registered as a different kind";
    e.kind = MetricKind::kHistogram;
    e.histogram = std::make_unique<Histogram>(bounds);
    AppendCrashView(name, MetricKind::kHistogram, nullptr, nullptr,
                    e.histogram.get());
  } else {
    TREESIM_CHECK(e.histogram->bounds() == bounds)
        << "metric '" << name << "' re-registered with different buckets";
  }
  return *e.histogram;
}

LatencyWindow& MetricsRegistry::GetWindow(const std::string& name) {
  constexpr int kWindowCapacity = 512;
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.window == nullptr) {
    TREESIM_CHECK(e.counter == nullptr && e.gauge == nullptr &&
                  e.histogram == nullptr)
        << "metric '" << name << "' already registered as a different kind";
    e.kind = MetricKind::kWindow;
    e.window = std::make_unique<LatencyWindow>(kWindowCapacity);
  }
  return *e.window;
}

int MetricsRegistry::metric_count() const {
  MutexLock lock(mu_);
  return static_cast<int>(entries_.size());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    MutexLock lock(mu_);
    for (const auto& [name, entry] : entries_) {
      switch (entry.kind) {
        case MetricKind::kCounter:
          snap.counters[name] = entry.counter->value();
          break;
        case MetricKind::kGauge:
          snap.gauges[name] = entry.gauge->value();
          break;
        case MetricKind::kHistogram: {
          MetricsSnapshot::HistogramValue& h = snap.histograms[name];
          h.bounds = entry.histogram->bounds();
          h.bucket_counts.reserve(h.bounds.size() + 1);
          h.exemplar_ids.reserve(h.bounds.size() + 1);
          h.exemplar_values.reserve(h.bounds.size() + 1);
          for (int b = 0; b < entry.histogram->bucket_count(); ++b) {
            h.bucket_counts.push_back(entry.histogram->bucket_value(b));
            h.exemplar_ids.push_back(entry.histogram->exemplar_id(b));
            h.exemplar_values.push_back(entry.histogram->exemplar_value(b));
          }
          h.count = entry.histogram->count();
          h.sum = entry.histogram->sum();
          break;
        }
        case MetricKind::kWindow: {
          // A window renders as rolling nearest-rank percentile gauges of
          // the retained samples — the "current behavior" companions to
          // the since-start histograms.
          std::vector<int64_t> samples = entry.window->RetainedSamples();
          std::sort(samples.begin(), samples.end());
          const auto pct = [&samples](int p) -> int64_t {
            if (samples.empty()) return 0;
            const size_t rank =
                (samples.size() * static_cast<size_t>(p) + 99) / 100;
            return samples[rank == 0 ? 0 : rank - 1];
          };
          snap.gauges[name + ".p50"] = pct(50);
          snap.gauges[name + ".p95"] = pct(95);
          snap.gauges[name + ".p99"] = pct(99);
          break;
        }
      }
    }
  }
  // Fold the arithmetic-safety saturation counter (util/safe_math.h) into
  // the same vocabulary, so one dump answers "did anything saturate".
  snap.counters["safe_math.saturations"] =
      static_cast<int64_t>(SafeMathStats::saturations());
  return snap;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->ResetForTest();
        break;
      case MetricKind::kGauge:
        entry.gauge->ResetForTest();
        break;
      case MetricKind::kHistogram:
        entry.histogram->ResetForTest();
        break;
      case MetricKind::kWindow:
        entry.window->ResetForTest();
        break;
    }
  }
}

#else  // !TREESIM_METRICS_ENABLED

const std::vector<int64_t>& Histogram::bounds() const {
  static const std::vector<int64_t>* const kEmpty =
      new std::vector<int64_t>();
  return *kEmpty;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& /*name*/) {
  static Counter* const dummy = new Counter();
  return *dummy;
}

Gauge& MetricsRegistry::GetGauge(const std::string& /*name*/) {
  static Gauge* const dummy = new Gauge();
  return *dummy;
}

Histogram& MetricsRegistry::GetHistogram(
    const std::string& /*name*/, const std::vector<int64_t>& /*bounds*/) {
  static Histogram* const dummy = new Histogram(std::vector<int64_t>{});
  return *dummy;
}

LatencyWindow& MetricsRegistry::GetWindow(const std::string& /*name*/) {
  static LatencyWindow* const dummy = new LatencyWindow(0);
  return *dummy;
}

int MetricsRegistry::metric_count() const { return 0; }

MetricsSnapshot MetricsRegistry::Snapshot() const { return MetricsSnapshot{}; }

void MetricsRegistry::ResetForTest() {}

#endif  // TREESIM_METRICS_ENABLED

int64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::histogram(
    const std::string& name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

MetricsSnapshot MetricsSnapshot::DiffSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot diff;
  for (const auto& [name, value] : counters) {
    diff.counters[name] = value - earlier.counter(name);
  }
  diff.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    HistogramValue& out = diff.histograms[name];
    out = h;
    if (const HistogramValue* was = earlier.histogram(name);
        was != nullptr && was->bounds == h.bounds) {
      for (size_t b = 0; b < out.bucket_counts.size(); ++b) {
        out.bucket_counts[b] -= was->bucket_counts[b];
      }
      out.count -= was->count;
      out.sum -= was->sum;
    }
  }
  return diff;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << name << " = " << value << " (gauge)\n";
  }
  for (const auto& [name, h] : histograms) {
    os << name << ": count=" << h.count << " sum=" << h.sum
       << " mean=" << h.Mean() << "\n";
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (h.bucket_counts[b] == 0) continue;
      os << "  ";
      if (b < h.bounds.size()) {
        os << "le=" << h.bounds[b];
      } else {
        os << "le=+inf";
      }
      os << ": " << h.bucket_counts[b] << "\n";
    }
  }
  return os.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << JsonEscape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << JsonEscape(name) << "\":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << JsonEscape(name) << "\":{\"bounds\":";
    AppendInt64Array(os, h.bounds);
    os << ",\"counts\":";
    AppendInt64Array(os, h.bucket_counts);
    os << ",\"count\":" << h.count << ",\"sum\":" << h.sum;
    // Exemplars only when at least one bucket has one, so context-free
    // dumps (and their golden tests) are byte-identical to before.
    bool any_exemplar = false;
    for (const int64_t id : h.exemplar_ids) any_exemplar |= (id != 0);
    if (any_exemplar) {
      os << ",\"exemplar_ids\":";
      AppendInt64Array(os, h.exemplar_ids);
      os << ",\"exemplar_values\":";
      AppendInt64Array(os, h.exemplar_values);
    }
    os << '}';
  }
  os << "}}";
  return os.str();
}

namespace {

/// HELP text escaping per the exposition format: only backslash and
/// newline (label values additionally escape the double quote, see
/// PrometheusLabelEscape).
std::string PrometheusHelpEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendPrometheusHeader(std::ostringstream& os, const std::string& name,
                            const std::string& prom_name, const char* type) {
  os << "# HELP " << prom_name << " treesim metric "
     << PrometheusHelpEscape(name) << "\n";
  os << "# TYPE " << prom_name << ' ' << type << "\n";
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "treesim_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string PrometheusLabelEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    std::string prom = PrometheusMetricName(name);
    // Prometheus convention: monotonic counters end in _total.
    if (prom.size() < 6 || prom.compare(prom.size() - 6, 6, "_total") != 0) {
      prom += "_total";
    }
    AppendPrometheusHeader(os, name, prom, "counter");
    os << prom << ' ' << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string prom = PrometheusMetricName(name);
    AppendPrometheusHeader(os, name, prom, "gauge");
    os << prom << ' ' << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string prom = PrometheusMetricName(name);
    AppendPrometheusHeader(os, name, prom, "histogram");
    // Our buckets store per-bucket counts; the exposition format wants
    // cumulative counts per upper bound, closed by le="+Inf" == _count.
    int64_t cumulative = 0;
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      cumulative += h.bucket_counts[b];
      os << prom << "_bucket{le=\"";
      if (b < h.bounds.size()) {
        os << h.bounds[b];
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative;
      // OpenMetrics-style exemplar: the last in-context query that landed
      // in this bucket, joinable against --query-log / --trace by id.
      // Absent entirely for context-free histograms, so plain 0.0.4
      // consumers and the golden exposition tests see unchanged output.
      if (b < h.exemplar_ids.size() && h.exemplar_ids[b] != 0) {
        os << " # {query_id=\"" << h.exemplar_ids[b] << "\"} "
           << h.exemplar_values[b];
      }
      os << "\n";
    }
    os << prom << "_sum " << h.sum << "\n";
    os << prom << "_count " << h.count << "\n";
  }
  return os.str();
}

std::vector<int64_t> LatencyBucketsMicros() {
  std::vector<int64_t> bounds;
  bounds.reserve(24);
  for (int64_t b = 1; b <= (int64_t{1} << 23); b *= 2) bounds.push_back(b);
  return bounds;  // 1us .. ~8.4s, then overflow
}

std::vector<int64_t> CountBuckets() {
  std::vector<int64_t> bounds;
  bounds.reserve(21);
  bounds.push_back(0);
  for (int64_t b = 1; b <= (int64_t{1} << 20); b *= 2) bounds.push_back(b);
  return bounds;  // 0, 1 .. ~1M, then overflow
}

std::vector<int64_t> SmallValueBuckets() {
  std::vector<int64_t> bounds;
  bounds.reserve(32);
  for (int64_t b = 0; b < 32; ++b) bounds.push_back(b);
  return bounds;  // 0..31, then overflow
}

}  // namespace treesim
