#ifndef TREESIM_UTIL_STOPWATCH_H_
#define TREESIM_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace treesim {

/// Monotonic wall-clock stopwatch used by the query engine and benchmarks.
/// Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time since construction/Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace treesim

#endif  // TREESIM_UTIL_STOPWATCH_H_
