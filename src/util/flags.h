#ifndef TREESIM_UTIL_FLAGS_H_
#define TREESIM_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace treesim {

/// Tiny `--key=value` command-line parser for the experiment binaries and
/// examples (the library itself never parses flags). Unknown keys are kept
/// and can be rejected by the caller; bare tokens are positional arguments.
///
///   FlagParser flags(argc, argv);
///   int queries = flags.GetInt("queries", 25);
///   bool full = flags.GetBool("full", false);
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  /// True when `--key[=...]` was present on the command line.
  bool Has(const std::string& key) const;

  /// String value of `--key=value`, or `def` when absent.
  std::string GetString(const std::string& key, const std::string& def) const;

  /// Integer value of `--key=value`, or `def` when absent or unparsable.
  int64_t GetInt(const std::string& key, int64_t def) const;

  /// Real value of `--key=value`, or `def` when absent or unparsable.
  double GetDouble(const std::string& key, double def) const;

  /// Boolean flag: `--key`, `--key=true|false|1|0`. Absent -> `def`.
  bool GetBool(const std::string& key, bool def) const;

  /// Tokens that did not start with `--`.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys seen on the command line that are not in `known`; used by binaries
  /// to fail fast on typos.
  std::vector<std::string> UnknownKeys(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace treesim

#endif  // TREESIM_UTIL_FLAGS_H_
