#ifndef TREESIM_UTIL_THREAD_POOL_H_
#define TREESIM_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace treesim {

/// A fixed pool of worker threads with a shared FIFO queue — the one place
/// in the library that spawns threads. No work stealing, no growing: the
/// parallel layers (pairwise matrix, inverted-file build, batch search,
/// join) all reduce to ParallelFor over disjoint output slots, for which a
/// single queue plus a shared atomic index counter is both simpler and
/// provably deterministic. Guarded state is annotated for Clang's
/// -Wthread-safety analysis (see util/sync.h).
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). The pool never resizes.
  explicit ThreadPool(int threads);

  /// Drains already-scheduled work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues `fn` for execution by some worker. `fn` must not call
  /// ParallelFor on this pool (checked in debug builds; it would deadlock).
  void Schedule(std::function<void()> fn) TREESIM_EXCLUDES(mu_);

  /// Runs fn(0) .. fn(n-1), distributed over the workers, and returns when
  /// all n calls finished. Iterations are claimed dynamically (one shared
  /// atomic counter), so uneven per-index cost balances automatically; any
  /// schedule yields identical results as long as fn(i) writes only to
  /// slot i of the caller's output. The calling thread only waits — a pool
  /// of size N computes with exactly N threads. Must not be called from a
  /// worker of this same pool.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn)
      TREESIM_EXCLUDES(mu_);

  /// True when the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows 0 = "unknown").
  static int HardwareThreads();

 private:
  void WorkerLoop();

  Mutex mu_ TREESIM_LOCK_RANK(20);
  CondVar work_cv_;
  std::deque<std::function<void()>> queue_ TREESIM_GUARDED_BY(mu_);
  bool shutdown_ TREESIM_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // written once in the constructor
};

/// Resolves a user-facing `--threads` request against the actual work:
/// `requested` <= 0 means "use the hardware"; the result is clamped to
/// `items` (spawning more workers than work items is pure overhead — the
/// oversubscription bug the old pairwise code had) and is always >= 1.
int ClampThreads(int requested, int64_t items);

/// ParallelFor through an OPTIONAL pool: runs inline (deterministically, in
/// index order) when `pool` is null — callers expose a ThreadPool* default
/// of nullptr and stay sequential until one is supplied.
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& fn);

}  // namespace treesim

#endif  // TREESIM_UTIL_THREAD_POOL_H_
