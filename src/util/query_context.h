#ifndef TREESIM_UTIL_QUERY_CONTEXT_H_
#define TREESIM_UTIL_QUERY_CONTEXT_H_

#include <cstdint>

#include "util/metrics.h"  // kMetricsEnabled

namespace treesim {

/// The identity of the query a thread is currently working for. Carried in
/// a thread-local, captured by ThreadPool::Schedule at submission and
/// restored in the worker, so trace spans, structured-log records, metric
/// exemplars, and flight-recorder entries emitted anywhere in a query's
/// fan-out share one id — making --trace, --query-log, and Prometheus
/// output joinable.
///
/// query_id == 0 means "no context": telemetry that keys off the context
/// treats 0 as absent and emits nothing query-scoped.
struct QueryContext {
  int64_t query_id = 0;
  /// Absolute deadline in UnixMicros(), 0 = none. A slot for the future
  /// server's per-request deadlines; nothing enforces it yet.
  int64_t deadline_micros = 0;
  /// Operation tag ("range", "knn", ...). Must be a string literal or
  /// otherwise outlive every task holding the context.
  const char* tag = "";
};

#if TREESIM_METRICS_ENABLED

/// The calling thread's current context ({0,0,""} when none is active).
const QueryContext& CurrentQueryContext();

/// Next process-wide query id (monotonic, starts at 1; 0 is reserved for
/// "no context"). Ids are allocated on the *calling* thread, before any
/// pool fan-out, so the id→query mapping is deterministic for a fixed call
/// sequence regardless of pool size.
int64_t AllocateQueryId();

/// RAII save/restore of the thread-local context. Non-copyable; scopes
/// nest (an inner query — e.g. Knn inside BatchKnn — shadows the outer id
/// until it closes).
class ScopedQueryContext {
 public:
  /// Opens a fresh context: allocates the id on this thread.
  explicit ScopedQueryContext(const char* tag, int64_t deadline_micros = 0);
  /// Adopts an existing context (worker-thread restore path).
  explicit ScopedQueryContext(const QueryContext& ctx);
  ~ScopedQueryContext();

  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

  int64_t query_id() const { return current_.query_id; }
  const QueryContext& context() const { return current_; }

 private:
  QueryContext saved_;
  QueryContext current_;
};

#else  // !TREESIM_METRICS_ENABLED — zero-overhead stubs; ids stay 0.

inline const QueryContext& CurrentQueryContext() {
  static const QueryContext kNone;
  return kNone;
}

inline int64_t AllocateQueryId() { return 0; }

class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(const char*, int64_t = 0) {}
  explicit ScopedQueryContext(const QueryContext&) {}

  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

  int64_t query_id() const { return 0; }
  const QueryContext& context() const { return CurrentQueryContext(); }
};

#endif  // TREESIM_METRICS_ENABLED

}  // namespace treesim

#endif  // TREESIM_UTIL_QUERY_CONTEXT_H_
