#include "util/random.h"

#include <numeric>

#include "util/logging.h"

namespace treesim {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  TREESIM_CHECK_LE(k, n);
  // Partial Fisher–Yates: after i swaps the first i entries are a uniform
  // sample without replacement.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + UniformIndex(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace treesim
