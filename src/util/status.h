#ifndef TREESIM_UTIL_STATUS_H_
#define TREESIM_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace treesim {

/// Error category for a failed operation. The library is exception-free;
/// fallible operations return Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kUnimplemented = 5,
  kInternal = 6,
};

/// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-type result of a fallible operation: a code plus, for errors, a
/// diagnostic message. Cheap to copy in the OK case (empty message).
/// [[nodiscard]]: the compiler flags any call site that silently drops a
/// returned Status (the lint's "every Status consumed" rule).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Dereferencing a non-OK
/// StatusOr aborts the process (programming error), mirroring absl::StatusOr.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit, like absl::StatusOr).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from an error status; `status.ok()` must be false.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : rep_(std::move(status)) {
    TREESIM_CHECK(!std::get<Status>(rep_).ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  const T& value() const& {
    TREESIM_CHECK(ok()) << "StatusOr::value() on error: "
                        << std::get<Status>(rep_).ToString();
    return std::get<T>(rep_);
  }
  T& value() & {
    TREESIM_CHECK(ok()) << "StatusOr::value() on error: "
                        << std::get<Status>(rep_).ToString();
    return std::get<T>(rep_);
  }
  T&& value() && {
    TREESIM_CHECK(ok()) << "StatusOr::value() on error: "
                        << std::get<Status>(rep_).ToString();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

namespace internal_status {

/// Failure-message builder behind TREESIM_CHECK_OK; nullopt when `s` is OK.
inline std::optional<std::string> CheckOkFailure(const Status& s,
                                                 const char* expr) {
  if (s.ok()) return std::nullopt;
  std::string msg(expr);
  msg += " returned non-OK: ";
  msg += s.ToString();
  return msg;
}

}  // namespace internal_status

/// Aborts with the status message when `expr` (a Status expression) is not
/// OK. Supports streamed context like TREESIM_CHECK. The DCHECK variant is
/// compiled out (expression NOT evaluated) in release builds; it guards the
/// debug-mode invariant validators (`ValidateInvariants()`).
#define TREESIM_CHECK_OK(expr)                                             \
  while (const std::optional<std::string> treesim_check_ok_failure_ =      \
             ::treesim::internal_status::CheckOkFailure((expr), #expr))    \
  ::treesim::internal_logging::FatalMessage(                               \
      __FILE__, __LINE__, treesim_check_ok_failure_->c_str())

#ifndef NDEBUG
#define TREESIM_DCHECK_OK(expr) TREESIM_CHECK_OK(expr)
#else
#define TREESIM_DCHECK_OK(expr) \
  while (false) TREESIM_CHECK_OK(expr)
#endif

/// Propagates an error Status out of the enclosing function.
#define TREESIM_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::treesim::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assigns the value of a StatusOr expression to `lhs`, or propagates the
/// error out of the enclosing function.
#define TREESIM_ASSIGN_OR_RETURN(lhs, expr)      \
  TREESIM_ASSIGN_OR_RETURN_IMPL_(                \
      TREESIM_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define TREESIM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define TREESIM_STATUS_CONCAT_(a, b) TREESIM_STATUS_CONCAT_IMPL_(a, b)
#define TREESIM_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace treesim

#endif  // TREESIM_UTIL_STATUS_H_
