#include "util/trace.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>

#include "util/metrics.h"
#include "util/query_context.h"
#include "util/sync.h"

namespace treesim {

#if TREESIM_METRICS_ENABLED

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One thread's ring. The owning thread appends; Collect()/Clear() read and
/// reset from other threads — every access goes through the buffer's own
/// mutex. The lock is thread-private in the common case (uncontended
/// acquire), keeping span recording cheap without hand-rolled seqlocks; the
/// spans this library records wrap whole pipeline stages, not inner loops.
struct ThreadBuffer {
  Mutex mu TREESIM_LOCK_RANK(30);
  std::array<TraceEvent, Tracer::kRingCapacity> ring TREESIM_GUARDED_BY(mu);
  /// Total events ever written; ring slot = written % capacity.
  int64_t written TREESIM_GUARDED_BY(mu) = 0;
  int thread_index = 0;

  /// Returns true when the ring wrapped (an older event was overwritten),
  /// so the caller can bump the trace.dropped_events counter outside the
  /// lock (the registry mutex has rank 40 > this one's 30, but staying
  /// lock-free here keeps Append's critical section minimal).
  bool Append(const TraceEvent& event) {
    MutexLock lock(mu);
    const bool dropped = written >= Tracer::kRingCapacity;
    ring[static_cast<size_t>(written % Tracer::kRingCapacity)] = event;
    ++written;
    return dropped;
  }
};

struct TracerState {
  std::atomic<bool> enabled{false};
  std::atomic<int64_t> epoch_ns{0};
  Mutex mu TREESIM_LOCK_RANK(10);
  /// shared_ptr keeps buffers of exited threads alive for Collect().
  std::vector<std::shared_ptr<ThreadBuffer>> buffers TREESIM_GUARDED_BY(mu);
};

TracerState& State() {
  static TracerState* const state = new TracerState();
  return *state;
}

// Signal-safe shadow index of the registered ThreadBuffers for the crash
// handler: the registry's shared_ptrs are never removed, so a raw pointer
// appended here stays valid for the process lifetime. Entries are
// published before the count (release/acquire); appends happen under
// TracerState::mu.
constexpr int kMaxCrashBuffers = 256;
std::atomic<ThreadBuffer*> g_crash_buffers[kMaxCrashBuffers];
std::atomic<int> g_crash_buffer_count{0};

/// The calling thread's buffer, registered with the tracer on first use.
/// The thread_local shared_ptr plus the registry's copy give the buffer two
/// owners, so whichever goes away last (thread exit vs. trace export) wins.
ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TracerState& state = State();
    MutexLock lock(state.mu);
    b->thread_index = static_cast<int>(state.buffers.size());
    state.buffers.push_back(b);
    const int crash_index =
        g_crash_buffer_count.load(std::memory_order_relaxed);
    if (crash_index < kMaxCrashBuffers) {
      g_crash_buffers[crash_index].store(b.get(),
                                         std::memory_order_relaxed);
      g_crash_buffer_count.store(crash_index + 1,
                                 std::memory_order_release);
    }
    return b;
  }();
  return *buffer;
}

/// Current nesting depth of open spans on this thread (only the owning
/// thread touches it, no synchronization needed).
thread_local int open_span_depth = 0;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {
  State().epoch_ns.store(NowNanos(), std::memory_order_relaxed);
  State().enabled.store(true, std::memory_order_release);
}

void Tracer::Disable() {
  State().enabled.store(false, std::memory_order_release);
}

bool Tracer::enabled() const {
  return State().enabled.load(std::memory_order_acquire);
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TracerState& state = State();
    MutexLock lock(state.mu);
    buffers = state.buffers;
  }
  std::vector<TraceEvent> events;
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    MutexLock lock(buffer->mu);
    const int64_t kept =
        std::min<int64_t>(buffer->written, Tracer::kRingCapacity);
    const int64_t oldest = buffer->written - kept;
    for (int64_t i = oldest; i < buffer->written; ++i) {
      events.push_back(
          buffer->ring[static_cast<size_t>(i % Tracer::kRingCapacity)]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.thread_index < b.thread_index;
            });
  return events;
}

void Tracer::Clear() {
  TracerState& state = State();
  MutexLock lock(state.mu);
  for (const std::shared_ptr<ThreadBuffer>& buffer : state.buffers) {
    MutexLock buffer_lock(buffer->mu);
    buffer->written = 0;
  }
}

int64_t Tracer::dropped_events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TracerState& state = State();
    MutexLock lock(state.mu);
    buffers = state.buffers;
  }
  int64_t dropped = 0;
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    MutexLock lock(buffer->mu);
    if (buffer->written > Tracer::kRingCapacity) {
      dropped += buffer->written - Tracer::kRingCapacity;
    }
  }
  return dropped;
}

std::string Tracer::ExportChromeTracing() const {
  const std::vector<TraceEvent> events = Collect();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ',';
    first = false;
    // Complete ("X") events; chrome://tracing wants microseconds. Nanosecond
    // remainders are kept as fractions so short spans stay visible.
    os << "{\"name\":\"" << e.name << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
       << e.thread_index << ",\"ts\":" << (e.start_ns / 1000) << '.'
       << (e.start_ns % 1000) << ",\"dur\":" << (e.duration_ns / 1000) << '.'
       << (e.duration_ns % 1000);
    if (e.query_id != 0) {
      os << ",\"args\":{\"query_id\":" << e.query_id << '}';
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

// Deliberately lock- and allocation-free: reads the guarded ring/written
// fields without their mutex. Only the crash handler calls this, on a
// process that is already dying — a torn TraceEvent is acceptable there,
// a handler deadlocking on a mutex the crashed thread holds is not.
TREESIM_NO_THREAD_SAFETY_ANALYSIS
int TraceCrashTail(TraceEvent* out, int max_out, int per_thread) {
  if (out == nullptr || max_out <= 0 || per_thread <= 0) return 0;
  const int buffers = g_crash_buffer_count.load(std::memory_order_acquire);
  int n = 0;
  for (int i = 0; i < buffers && n < max_out; ++i) {
    const ThreadBuffer* b =
        g_crash_buffers[i].load(std::memory_order_relaxed);
    if (b == nullptr) continue;
    const int64_t written = b->written;
    if (written <= 0 || written > (int64_t{1} << 48)) continue;  // torn
    const int64_t kept = std::min<int64_t>(
        std::min<int64_t>(written, Tracer::kRingCapacity), per_thread);
    for (int64_t e = written - kept; e < written && n < max_out; ++e) {
      const TraceEvent& event =
          b->ring[static_cast<size_t>(e % Tracer::kRingCapacity)];
      if (event.name == nullptr) continue;
      out[n++] = event;
    }
  }
  return n;
}

TraceSpan::TraceSpan(const char* name)
    : name_(name),
      start_ns_(0),
      query_id_(0),
      recording_(Tracer::Global().enabled()) {
  if (!recording_) return;
  query_id_ = CurrentQueryContext().query_id;
  ++open_span_depth;
  // Clamped at 0 so a re-Enable() mid-span cannot yield negative timestamps
  // (which would break the %-based fraction rendering in the JSON export).
  start_ns_ = std::max<int64_t>(
      0, NowNanos() - State().epoch_ns.load(std::memory_order_relaxed));
}

TraceSpan::~TraceSpan() {
  if (!recording_) return;
  --open_span_depth;
  TraceEvent event;
  event.name = name_;
  event.depth = open_span_depth;
  event.start_ns = start_ns_;
  event.query_id = query_id_;
  event.duration_ns = std::max<int64_t>(
      0, NowNanos() - State().epoch_ns.load(std::memory_order_relaxed) -
             start_ns_);
  ThreadBuffer& buffer = LocalBuffer();
  event.thread_index = buffer.thread_index;
  if (buffer.Append(event)) {
    // Ring wraparound silently loses the oldest span; surface the loss in
    // the registry so --metrics output shows it (satellite of ISSUE 10).
    TREESIM_COUNTER_INC("trace.dropped_events");
  }
}

#else  // !TREESIM_METRICS_ENABLED

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {}
void Tracer::Disable() {}
bool Tracer::enabled() const { return false; }
std::vector<TraceEvent> Tracer::Collect() const { return {}; }
void Tracer::Clear() {}
int64_t Tracer::dropped_events() const { return 0; }
std::string Tracer::ExportChromeTracing() const {
  return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
}

#endif  // TREESIM_METRICS_ENABLED

}  // namespace treesim
