#ifndef TREESIM_UTIL_HOT_H_
#define TREESIM_UTIL_HOT_H_

/// Hot-path annotations for the perf static analysis (tools/astcheck
/// --checks=perf).
///
/// The analyzer derives the hot set from the call graph: every function
/// reachable from the Range/Knn/BatchKnn/Join/pairwise entry points and
/// from ParallelFor bodies. These macros seed and override that
/// derivation:
///
///   TREESIM_HOT   forces a function into the hot set even when the
///                 call-graph walk cannot prove reachability (callbacks,
///                 functions dispatched through tables, future kernels).
///   TREESIM_COLD  removes a function from the hot set even when it is
///                 reachable (debug-only validation, slow-query logging
///                 tails) — the analyzer neither checks its body nor
///                 traverses its callees on the hot walk.
///
/// Like TREESIM_LOCK_RANK, the analyzer reads the marker from the
/// declaration's source line (clang-14 does not serialize annotate-
/// attribute payloads into the JSON AST dump), so placement matters: the
/// macro must sit on the same source line as the function's name. Under
/// GCC both expand to nothing; under clang they also emit an annotate
/// attribute for future tooling.

// clang-format off
#if defined(__clang__)
#define TREESIM_HOT_ANNOTATION_(x) __attribute__((annotate(x)))
#else
#define TREESIM_HOT_ANNOTATION_(x)  // no-op outside clang
#endif
// clang-format on

#define TREESIM_HOT TREESIM_HOT_ANNOTATION_("treesim::hot")
#define TREESIM_COLD TREESIM_HOT_ANNOTATION_("treesim::cold")

#endif  // TREESIM_UTIL_HOT_H_
