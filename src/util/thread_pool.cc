#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/query_context.h"
#include "util/stopwatch.h"
#include "util/sync.h"
#include "util/trace.h"

namespace treesim {
namespace {

/// Identifies the pool (if any) the current thread is a worker of, so
/// ParallelFor can refuse to run on its own pool: the caller would wait for
/// helper tasks that sit behind it in the queue it is itself draining.
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  TREESIM_CHECK_GE(threads, 1) << "a thread pool needs at least one worker";
  threads_.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  TREESIM_CHECK(fn != nullptr);
  if constexpr (kMetricsEnabled) {
    // Query-context propagation: capture the submitting thread's context
    // and restore it around the task in the worker, so every span, log
    // record, metric exemplar, and flight record the task emits carries
    // the originating query id. The wrapper opens its own span because the
    // WorkerLoop's "threadpool.task" span starts before the restore runs.
    const QueryContext ctx = CurrentQueryContext();
    if (ctx.query_id != 0) {
      fn = [ctx, inner = std::move(fn)] {
        const ScopedQueryContext scope(ctx);
        TREESIM_TRACE_SPAN("threadpool.task_in_context");
        inner();
      };
    }
  }
  {
    MutexLock lock(mu_);
    TREESIM_CHECK(!shutdown_) << "Schedule() after the destructor began";
    queue_.push_back(std::move(fn));
    TREESIM_GAUGE_SET("threadpool.queue_depth",
                      static_cast<int64_t>(queue_.size()));
  }
  TREESIM_COUNTER_INC("threadpool.tasks_scheduled");
  work_cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  current_pool = this;
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !shutdown_) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      TREESIM_GAUGE_SET("threadpool.queue_depth",
                        static_cast<int64_t>(queue_.size()));
    }
    if constexpr (kMetricsEnabled) {
      TREESIM_TRACE_SPAN("threadpool.task");
      const Stopwatch task_timer;
      task();
      TREESIM_HISTOGRAM_RECORD("threadpool.task_micros",
                               LatencyBucketsMicros(),
                               task_timer.ElapsedMicros());
    } else {
      task();
    }
  }
}

bool ThreadPool::InWorkerThread() const { return current_pool == this; }

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  TREESIM_CHECK(!InWorkerThread())
      << "ParallelFor on the caller's own pool would deadlock";

  // Every state member is written before the tasks are scheduled and the
  // function does not return until `pending` drops to zero, so capturing
  // `state` and `fn` by reference in the tasks is safe.
  struct State {
    std::atomic<int64_t> next{0};
    Mutex mu;
    CondVar done_cv;
    int pending TREESIM_GUARDED_BY(mu) = 0;
  } state;

  const int tasks = static_cast<int>(
      std::min<int64_t>(static_cast<int64_t>(size()), n));
  {
    MutexLock lock(state.mu);
    state.pending = tasks;
  }
  for (int t = 0; t < tasks; ++t) {
    Schedule([&state, &fn, n] {
      while (true) {
        const int64_t i = state.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
      // Notify while still holding the lock: the caller destroys `state`
      // (a stack frame) as soon as it observes pending == 0, so signalling
      // after the unlock would race with that destruction.
      MutexLock lock(state.mu);
      if (--state.pending == 0) state.done_cv.NotifyOne();
    });
  }
  MutexLock lock(state.mu);
  while (state.pending > 0) state.done_cv.Wait(state.mu);
}

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ClampThreads(int requested, int64_t items) {
  int threads = requested > 0 ? requested : ThreadPool::HardwareThreads();
  threads = static_cast<int>(
      std::min<int64_t>(static_cast<int64_t>(threads), std::max<int64_t>(items, 1)));
  return std::max(threads, 1);
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& fn) {
  if (pool == nullptr) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->ParallelFor(n, fn);
}

}  // namespace treesim
