#include "util/flags.h"

#include <cstdlib>

namespace treesim {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      positional_.push_back(std::move(tok));
      continue;
    }
    tok = tok.substr(2);
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      values_[tok] = "";
    } else {
      values_[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
  }
}

bool FlagParser::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int64_t FlagParser::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : def;
}

double FlagParser::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : def;
}

bool FlagParser::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return def;
}

std::vector<std::string> FlagParser::UnknownKeys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == key) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(key);
  }
  return unknown;
}

}  // namespace treesim
