#ifndef TREESIM_UTIL_LOGGING_H_
#define TREESIM_UTIL_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

namespace treesim {
namespace internal_logging {

/// Observer of fatal TREESIM_CHECK failures, invoked with the full
/// diagnostic text just before the message is printed and the process
/// aborts. The crash-triage layer (util/triage.cc) installs one to copy
/// the text into its async-signal-safe buffer; the subsequent std::abort
/// then raises SIGABRT into the triage signal handler, which writes the
/// dump. The hook must not throw or return abnormally; it runs on the
/// failing thread with arbitrary locks possibly held, so it should only
/// stash data, never allocate or lock.
using FatalHook = void (*)(const char* message);

inline std::atomic<FatalHook>& FatalHookSlot() {
  static std::atomic<FatalHook> hook{nullptr};
  return hook;
}

/// Installs (or, with nullptr, removes) the process-wide fatal hook.
inline void SetFatalHook(FatalHook hook) {
  FatalHookSlot().store(hook, std::memory_order_release);
}

/// Accumulates a fatal diagnostic; aborts the process when destroyed.
/// Used only via the TREESIM_CHECK* macros below.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    const std::string message = stream_.str();
    if (const FatalHook hook =
            FatalHookSlot().load(std::memory_order_acquire)) {
      hook(message.c_str());
    }
    std::cerr << message << std::endl;
    std::abort();
  }

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Gives the streamed message chain type `void` so it can sit in the branch
/// of a ternary whose other arm is `void` (classic glog voidify trick;
/// `&` binds more loosely than `<<`).
class Voidify {
 public:
  void operator&(const FatalMessage&) {}
};

/// Streams `v` if it has an operator<<, a placeholder otherwise, so the
/// TREESIM_CHECK_* operand printers work with any operand type.
template <typename T>
void PrintOperand(std::ostream& os, const T& v) {
  if constexpr (requires(std::ostream& o, const T& x) { o << x; }) {
    os << v;
  } else {
    os << "<unprintable>";
  }
}

/// Evaluates the comparison once; on failure returns "expr (a vs. b)" with
/// both operand values rendered, on success returns nullopt. The optional
/// drives the `while` in TREESIM_CHECK_OP_ (the FatalMessage destructor is
/// noreturn, so the loop body runs at most once).
template <typename A, typename B, typename Compare>
std::optional<std::string> CheckOpFailure(const A& a, const B& b, Compare cmp,
                                          const char* expr) {
  if (cmp(a, b)) return std::nullopt;
  std::ostringstream os;
  os << expr << " (";
  PrintOperand(os, a);
  os << " vs. ";
  PrintOperand(os, b);
  os << ")";
  return os.str();
}

}  // namespace internal_logging
}  // namespace treesim

/// Aborts with a diagnostic when `condition` is false. Streams extra context:
///   TREESIM_CHECK(i < n) << "i=" << i;
#define TREESIM_CHECK(condition)                        \
  (condition) ? static_cast<void>(0)                    \
              : ::treesim::internal_logging::Voidify()& \
                    ::treesim::internal_logging::FatalMessage( \
                        __FILE__, __LINE__, #condition)

/// Binary comparison checks. On failure both operand VALUES are printed in
/// addition to the expression text:
///   TREESIM_CHECK_EQ(xs.size(), n) << "while merging";
///   -> CHECK failed at f.cc:12: xs.size() == n (3 vs. 4) while merging
/// Operands are evaluated exactly once.
#define TREESIM_CHECK_OP_(a, b, op)                                         \
  while (const std::optional<std::string> treesim_check_failure_ =          \
             ::treesim::internal_logging::CheckOpFailure(                   \
                 (a), (b),                                                  \
                 [](const auto& x_, const auto& y_) { return x_ op y_; },   \
                 #a " " #op " " #b))                                        \
  ::treesim::internal_logging::FatalMessage(__FILE__, __LINE__,             \
                                            treesim_check_failure_->c_str())

#define TREESIM_CHECK_EQ(a, b) TREESIM_CHECK_OP_(a, b, ==)
#define TREESIM_CHECK_NE(a, b) TREESIM_CHECK_OP_(a, b, !=)
#define TREESIM_CHECK_LT(a, b) TREESIM_CHECK_OP_(a, b, <)
#define TREESIM_CHECK_LE(a, b) TREESIM_CHECK_OP_(a, b, <=)
#define TREESIM_CHECK_GT(a, b) TREESIM_CHECK_OP_(a, b, >)
#define TREESIM_CHECK_GE(a, b) TREESIM_CHECK_OP_(a, b, >=)

/// Debug-only checks; conditions/operands are NOT evaluated in release
/// builds (NDEBUG) but stay syntactically checked and odr-used, so release
/// builds cannot rot them and operands never trigger -Wunused warnings.
#ifndef NDEBUG
#define TREESIM_DCHECK(condition) TREESIM_CHECK(condition)
#define TREESIM_DCHECK_EQ(a, b) TREESIM_CHECK_EQ(a, b)
#define TREESIM_DCHECK_NE(a, b) TREESIM_CHECK_NE(a, b)
#define TREESIM_DCHECK_LT(a, b) TREESIM_CHECK_LT(a, b)
#define TREESIM_DCHECK_LE(a, b) TREESIM_CHECK_LE(a, b)
#define TREESIM_DCHECK_GT(a, b) TREESIM_CHECK_GT(a, b)
#define TREESIM_DCHECK_GE(a, b) TREESIM_CHECK_GE(a, b)
#else
#define TREESIM_DCHECK(condition) TREESIM_CHECK(true || (condition))
#define TREESIM_DCHECK_EQ(a, b) \
  while (false) TREESIM_CHECK_EQ(a, b)
#define TREESIM_DCHECK_NE(a, b) \
  while (false) TREESIM_CHECK_NE(a, b)
#define TREESIM_DCHECK_LT(a, b) \
  while (false) TREESIM_CHECK_LT(a, b)
#define TREESIM_DCHECK_LE(a, b) \
  while (false) TREESIM_CHECK_LE(a, b)
#define TREESIM_DCHECK_GT(a, b) \
  while (false) TREESIM_CHECK_GT(a, b)
#define TREESIM_DCHECK_GE(a, b) \
  while (false) TREESIM_CHECK_GE(a, b)
#endif

#endif  // TREESIM_UTIL_LOGGING_H_
