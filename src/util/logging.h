#ifndef TREESIM_UTIL_LOGGING_H_
#define TREESIM_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace treesim {
namespace internal_logging {

/// Accumulates a fatal diagnostic; aborts the process when destroyed.
/// Used only via the TREESIM_CHECK* macros below.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Gives the streamed message chain type `void` so it can sit in the branch
/// of a ternary whose other arm is `void` (classic glog voidify trick;
/// `&` binds more loosely than `<<`).
class Voidify {
 public:
  void operator&(const FatalMessage&) {}
};

}  // namespace internal_logging
}  // namespace treesim

/// Aborts with a diagnostic when `condition` is false. Streams extra context:
///   TREESIM_CHECK(i < n) << "i=" << i;
#define TREESIM_CHECK(condition)                        \
  (condition) ? static_cast<void>(0)                    \
              : ::treesim::internal_logging::Voidify()& \
                    ::treesim::internal_logging::FatalMessage( \
                        __FILE__, __LINE__, #condition)

#define TREESIM_CHECK_EQ(a, b) TREESIM_CHECK((a) == (b))
#define TREESIM_CHECK_NE(a, b) TREESIM_CHECK((a) != (b))
#define TREESIM_CHECK_LT(a, b) TREESIM_CHECK((a) < (b))
#define TREESIM_CHECK_LE(a, b) TREESIM_CHECK((a) <= (b))
#define TREESIM_CHECK_GT(a, b) TREESIM_CHECK((a) > (b))
#define TREESIM_CHECK_GE(a, b) TREESIM_CHECK((a) >= (b))

/// Debug-only check; the condition is not evaluated in release builds.
#ifndef NDEBUG
#define TREESIM_DCHECK(condition) TREESIM_CHECK(condition)
#else
#define TREESIM_DCHECK(condition) TREESIM_CHECK(true || (condition))
#endif

#endif  // TREESIM_UTIL_LOGGING_H_
