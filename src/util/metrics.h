#ifndef TREESIM_UTIL_METRICS_H_
#define TREESIM_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.h"

/// Process-wide metrics registry — the one place every layer of the
/// filter-and-refine pipeline reports what it did. The paper's central
/// claim is empirical (candidate counts and per-stage costs stay small,
/// Section 5), so the engine must expose per-stage numbers, not just the
/// coarse per-query QueryStats totals: index build sizes, filter in/out
/// counts, the positional bound chosen per query, VP-tree probe costs,
/// stage latencies, thread-pool load, and arithmetic saturations all land
/// here under stable dotted names ("search.knn.refined", ...).
///
/// Design:
///   * Registration is Mutex-guarded and happens once per site (the
///     TREESIM_COUNTER_* macros below cache the returned reference in a
///     function-local static). Names must be compile-time string literals —
///     the macros enforce this — so the name set is a closed, greppable
///     vocabulary.
///   * The hot path after registration is a single relaxed atomic RMW (two
///     for histograms); no locks, no allocation.
///   * MetricsSnapshot is a consistent-enough copy (each value is read
///     atomically; cross-metric skew is acceptable for monitoring) with a
///     DiffSince() API so benches can attribute deltas to one stage.
///   * Building with -DTREESIM_METRICS=OFF defines
///     TREESIM_METRICS_ENABLED=0: the macros compile to nothing (operands
///     stay syntactically checked but unevaluated, like TREESIM_DCHECK in
///     release) and the registry degenerates to an empty stub, so the
///     library carries zero observability overhead. bench/metrics_overhead
///     is the guard that the stub stays empty.
///
/// tools/lint_treesim.py bans std::chrono outside src/util/ and bench/, so
/// ad-hoc timing cannot bypass this registry; time stages with
/// util/stopwatch.h and record the result into a histogram here, or wrap
/// the stage in a TREESIM_TRACE_SPAN (util/trace.h).

#ifndef TREESIM_METRICS_ENABLED
#define TREESIM_METRICS_ENABLED 1
#endif

namespace treesim {

/// True when the observability layer is compiled in (TREESIM_METRICS=ON).
inline constexpr bool kMetricsEnabled = TREESIM_METRICS_ENABLED != 0;

/// What a registered name refers to; re-registering a name as a different
/// kind is a fatal error (names are a global vocabulary).
enum class MetricKind { kCounter, kGauge, kHistogram, kWindow };

#if TREESIM_METRICS_ENABLED

/// A monotonic counter. Increment is one relaxed fetch_add.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<int64_t> value_{0};
};

/// A last-write-wins level (queue depth, dictionary size, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket histogram over int64 samples (latencies in microseconds,
/// candidate counts, bound gaps). Bucket i counts samples <= bounds[i]
/// (bounds ascending, fixed at registration); one extra overflow bucket
/// counts the rest. Record is a binary search over the immutable bounds
/// plus two relaxed fetch_adds.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Record(int64_t sample);

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Number of buckets including the overflow bucket (bounds().size() + 1).
  int bucket_count() const { return static_cast<int>(bounds_.size()) + 1; }
  int64_t bucket_value(int bucket) const {
    return buckets_[static_cast<size_t>(bucket)].load(
        std::memory_order_relaxed);
  }
  /// Total samples recorded.
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of all recorded samples (saturating is the caller's concern; stage
  /// latencies and candidate counts are far from the int64 range).
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Last query id (util/query_context.h) that recorded into `bucket`, 0
  /// when every sample in that bucket came from context-free code. Feeds
  /// the Prometheus exemplar annotations.
  int64_t exemplar_id(int bucket) const {
    return exemplar_ids_[static_cast<size_t>(bucket)].load(
        std::memory_order_relaxed);
  }
  /// The sample that query recorded (only meaningful when exemplar_id(b)
  /// is nonzero; id and value are stored with two relaxed stores, so a
  /// concurrent reader may pair them across writes — fine for exemplars).
  int64_t exemplar_value(int bucket) const {
    return exemplar_values_[static_cast<size_t>(bucket)].load(
        std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  void ResetForTest();
  std::vector<int64_t> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::unique_ptr<std::atomic<int64_t>[]> exemplar_ids_;
  std::unique_ptr<std::atomic<int64_t>[]> exemplar_values_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// A sliding window over the last `capacity` samples of a latency series,
/// aggregated at snapshot time into rolling p50/p95/p99 gauges (rendered
/// as `<name>.p50` etc. in every export format) — the live signals a
/// scrape sees, as opposed to the since-process-start histograms. Record
/// is two relaxed stores plus one relaxed fetch_add; the snapshot-side
/// sort touches at most `capacity` values.
class LatencyWindow {
 public:
  explicit LatencyWindow(int capacity);

  /// Records one sample, tagging it with the calling thread's current
  /// query id (0 when none).
  void Record(int64_t sample);

  int capacity() const { return capacity_; }
  int64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Copies the currently retained samples (unordered). Monitoring-grade
  /// consistency: concurrent writers may tear sample/slot pairing.
  std::vector<int64_t> RetainedSamples() const;

 private:
  friend class MetricsRegistry;
  void ResetForTest();
  int capacity_;
  std::unique_ptr<std::atomic<int64_t>[]> samples_;
  std::unique_ptr<std::atomic<int64_t>[]> sample_ids_;
  std::atomic<int64_t> head_{0};
};

#else  // !TREESIM_METRICS_ENABLED

/// Compile-out stubs: identical API, empty bodies, no storage beyond a
/// byte. Call sites that outlive the macros (tests, the CLI dump path)
/// keep compiling; the macros themselves expand to nothing.
class Counter {
 public:
  void Increment(int64_t = 1) {}
  int64_t value() const { return 0; }
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t value() const { return 0; }
};

class Histogram {
 public:
  explicit Histogram(const std::vector<int64_t>&) {}
  void Record(int64_t) {}
  const std::vector<int64_t>& bounds() const;
  int bucket_count() const { return 0; }
  int64_t bucket_value(int) const { return 0; }
  int64_t count() const { return 0; }
  int64_t sum() const { return 0; }
  int64_t exemplar_id(int) const { return 0; }
  int64_t exemplar_value(int) const { return 0; }
};

class LatencyWindow {
 public:
  explicit LatencyWindow(int) {}
  void Record(int64_t) {}
  int capacity() const { return 0; }
  int64_t total_recorded() const { return 0; }
  std::vector<int64_t> RetainedSamples() const { return {}; }
};

#endif  // TREESIM_METRICS_ENABLED

/// A point-in-time copy of every registered metric, plus the folded-in
/// SafeMathStats saturation counter ("safe_math.saturations"). Plain data:
/// copyable, diffable, renderable without touching the registry again.
struct MetricsSnapshot {
  struct HistogramValue {
    std::vector<int64_t> bounds;
    /// bucket_counts.size() == bounds.size() + 1 (last = overflow).
    std::vector<int64_t> bucket_counts;
    int64_t count = 0;
    int64_t sum = 0;
    /// Per-bucket exemplar query ids and the samples they recorded, same
    /// indexing as bucket_counts; empty (the default, and what hand-built
    /// snapshots have) or id 0 means "no exemplar for this bucket".
    std::vector<int64_t> exemplar_ids;
    std::vector<int64_t> exemplar_values;

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramValue> histograms;

  /// Value of a counter, 0 when the name was never registered.
  int64_t counter(const std::string& name) const;
  /// Value of a gauge, 0 when the name was never registered.
  int64_t gauge(const std::string& name) const;
  /// Histogram by name, nullptr when never registered.
  const HistogramValue* histogram(const std::string& name) const;

  /// Per-stage attribution: counters and histogram counts/sums/buckets
  /// become this-minus-earlier; gauges keep this snapshot's level (a level
  /// has no meaningful delta). Metrics registered only after `earlier` keep
  /// their full value.
  MetricsSnapshot DiffSince(const MetricsSnapshot& earlier) const;

  /// Human-readable dump, one metric per line, histograms with non-empty
  /// buckets expanded.
  std::string ToText() const;

  /// Machine-readable dump:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{name:{"bounds":[...],"counts":[...],
  ///                        "count":N,"sum":N}}}
  /// Stable key order (std::map), no external dependency.
  std::string ToJson() const;

  /// Prometheus text exposition (version 0.0.4) of the snapshot: dotted
  /// names sanitized through PrometheusMetricName(), one `# HELP` line
  /// carrying the original dotted name and one `# TYPE` line per metric,
  /// counters suffixed `_total`, histograms encoded as CUMULATIVE
  /// `_bucket{le="..."}` series (upper bounds from the registration-time
  /// bucket bounds, closed by `le="+Inf"`) plus `_sum` and `_count`.
  /// Scrape-ready via `treesim_cli <cmd> --metrics=prometheus`.
  std::string ToPrometheus() const;
};

/// Sanitizes a dotted metric name into the Prometheus name alphabet
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` and prefixes the `treesim_` namespace:
/// "search.knn.filter_micros" -> "treesim_search_knn_filter_micros".
/// Every character outside the alphabet becomes '_'.
std::string PrometheusMetricName(const std::string& name);

/// Escapes a label value or HELP text per the exposition format:
/// backslash, double quote and newline become \\, \" and \n.
std::string PrometheusLabelEscape(const std::string& value);

/// The process-wide registry. Get*() registers on first use and returns a
/// stable reference (metrics are never unregistered, so cached references
/// in function-local statics stay valid for the process lifetime).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Registers (first call) or finds (later calls) a counter. Fatal when
  /// `name` is already registered as a different kind.
  Counter& GetCounter(const std::string& name);

  /// Same contract for gauges.
  Gauge& GetGauge(const std::string& name);

  /// Same contract for histograms; later calls must pass identical bounds
  /// (the buckets are part of the metric's meaning).
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<int64_t>& bounds);

  /// Same contract for sliding latency windows (fixed 512-sample window).
  /// Snapshot() renders a window as three gauges: `<name>.p50`, `.p95`,
  /// `.p99` (0 until the first sample).
  LatencyWindow& GetWindow(const std::string& name);

  /// Number of registered metrics (0 under TREESIM_METRICS=OFF — the
  /// compile-out guard in bench/metrics_overhead asserts this).
  int metric_count() const;

  /// Copies every metric (plus "safe_math.saturations") into a snapshot.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric's value without unregistering anything
  /// (cached references must stay valid). Tests only — concurrent writers
  /// would make the zeroing torn.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

#if TREESIM_METRICS_ENABLED
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<LatencyWindow> window;
  };
  mutable Mutex mu_ TREESIM_LOCK_RANK(40);
  std::map<std::string, Entry> entries_ TREESIM_GUARDED_BY(mu_);
#endif
};

/// A signal-safe view of one registered metric for the crash handler
/// (util/triage.cc): the name is copied into fixed storage at registration
/// and the pointers are to registry-owned objects that are never freed, so
/// reading `counter->value()` etc. from a signal handler touches only
/// relaxed atomic loads. Windows are not indexed (their snapshot requires
/// allocation and sorting).
struct CrashMetricView {
  char name[64] = {0};
  MetricKind kind = MetricKind::kCounter;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

#if TREESIM_METRICS_ENABLED
/// Copies up to `max_out` registered-metric views (registration order)
/// into caller storage without allocating or locking. Safe to call from a
/// signal handler. Returns the count.
int CrashMetricViews(CrashMetricView* out, int max_out);
#else
inline int CrashMetricViews(CrashMetricView*, int) { return 0; }
#endif

/// Canonical bucket sets, so related metrics stay comparable.
/// Powers of two from 1us to ~8.4s plus overflow — stage latencies.
std::vector<int64_t> LatencyBucketsMicros();
/// Powers of two from 1 to ~1M plus overflow — candidate/list-length style
/// counts.
std::vector<int64_t> CountBuckets();
/// 0,1,2,...,31 plus overflow — small values like bound gaps and chosen
/// positional radii.
std::vector<int64_t> SmallValueBuckets();

}  // namespace treesim

// Instrumentation macros. `name` must be a string literal (enforced by the
// `name ""` concatenation); the metric reference is resolved once per call
// site and cached in a function-local static. Under TREESIM_METRICS=OFF
// everything expands to an unevaluated operand, so instrumented hot paths
// carry no code at all.
#if TREESIM_METRICS_ENABLED

#define TREESIM_COUNTER_ADD(name, delta)                            \
  do {                                                              \
    static ::treesim::Counter& treesim_metric_counter_ =            \
        ::treesim::MetricsRegistry::Global().GetCounter(name "");   \
    treesim_metric_counter_.Increment(delta);                       \
  } while (false)

#define TREESIM_COUNTER_INC(name) TREESIM_COUNTER_ADD(name, 1)

#define TREESIM_GAUGE_SET(name, value)                              \
  do {                                                              \
    static ::treesim::Gauge& treesim_metric_gauge_ =                \
        ::treesim::MetricsRegistry::Global().GetGauge(name "");     \
    treesim_metric_gauge_.Set(value);                               \
  } while (false)

#define TREESIM_HISTOGRAM_RECORD(name, bounds, sample)              \
  do {                                                              \
    static ::treesim::Histogram& treesim_metric_histogram_ =        \
        ::treesim::MetricsRegistry::Global().GetHistogram(name "",  \
                                                          (bounds)); \
    treesim_metric_histogram_.Record(sample);                       \
  } while (false)

#define TREESIM_WINDOW_RECORD(name, sample)                         \
  do {                                                              \
    static ::treesim::LatencyWindow& treesim_metric_window_ =       \
        ::treesim::MetricsRegistry::Global().GetWindow(name "");    \
    treesim_metric_window_.Record(sample);                          \
  } while (false)

#else  // !TREESIM_METRICS_ENABLED

// Operands stay compiled (no -Wunused rot, typos still fail the OFF build)
// but are never evaluated — the same trick release-mode TREESIM_DCHECK uses.
#define TREESIM_COUNTER_ADD(name, delta) \
  while (false) static_cast<void>(static_cast<int64_t>(delta))
#define TREESIM_COUNTER_INC(name) static_cast<void>(name "")
#define TREESIM_GAUGE_SET(name, value) \
  while (false) static_cast<void>(static_cast<int64_t>(value))
#define TREESIM_HISTOGRAM_RECORD(name, bounds, sample)              \
  while (false)                                                     \
  static_cast<void>(static_cast<int64_t>(sample) +                  \
                    static_cast<int64_t>((bounds).size()))
#define TREESIM_WINDOW_RECORD(name, sample) \
  while (false) static_cast<void>(static_cast<int64_t>(sample))

#endif  // TREESIM_METRICS_ENABLED

#endif  // TREESIM_UTIL_METRICS_H_
