#ifndef TREESIM_UTIL_RANDOM_H_
#define TREESIM_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace treesim {

/// Deterministic pseudo-random source used by generators, benchmarks and
/// property tests. All experiment binaries take an explicit seed so every
/// reported number is reproducible. Not thread-safe.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    TREESIM_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    TREESIM_DCHECK(n > 0);
    return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Sample from N(mean, stddev).
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Sample from N(mean, stddev), rounded to the nearest integer and clamped
  /// to [lo, hi]. The paper's generator draws fanout and tree size this way.
  int NormalInt(double mean, double stddev, int lo, int hi) {
    TREESIM_DCHECK(lo <= hi);
    const double x = Normal(mean, stddev);
    const int r = static_cast<int>(x + (x >= 0 ? 0.5 : -0.5));
    if (r < lo) return lo;
    if (r > hi) return hi;
    return r;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[UniformIndex(i)]);
    }
  }

  /// Draws `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Underlying engine, for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace treesim

#endif  // TREESIM_UTIL_RANDOM_H_
