#include "util/structured_log.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "util/status.h"
#include "util/sync.h"

namespace treesim {
namespace {

/// JSON string escaping for record values (keys are emitted verbatim —
/// they are compile-time identifiers by convention).
void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void LogRecord::AppendKey(const char* key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += key;
  body_ += "\":";
}

LogRecord& LogRecord::Str(const char* key, std::string_view value) {
  AppendKey(key);
  body_ += '"';
  AppendJsonEscaped(body_, value);
  body_ += '"';
  return *this;
}

LogRecord& LogRecord::Int(const char* key, int64_t value) {
  AppendKey(key);
  body_ += std::to_string(value);
  return *this;
}

LogRecord& LogRecord::Double(const char* key, double value) {
  AppendKey(key);
  if (!std::isfinite(value)) {
    body_ += "null";  // NaN/inf are not JSON; null keeps the line parseable
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    body_ += buf;
  }
  return *this;
}

LogRecord& LogRecord::Bool(const char* key, bool value) {
  AppendKey(key);
  body_ += value ? "true" : "false";
  return *this;
}

std::string LogRecord::ToJsonLine() const { return "{" + body_ + "}"; }

int64_t UnixMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

#if TREESIM_METRICS_ENABLED

StructuredLog& StructuredLog::Global() {
  static StructuredLog* const log = new StructuredLog();
  return *log;
}

Status StructuredLog::OpenFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open query log file " + path);
  }
  // The mutex guards only the pointer swap; the blocking fclose of a
  // replaced stream runs after the scope ends so writers are never queued
  // behind disk latency (astcheck: blocking-under-lock).
  std::FILE* replaced = nullptr;
  {
    MutexLock lock(mu_);
    replaced = file_;
    file_ = f;
    records_written_.store(0, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
  }
  if (replaced != nullptr) std::fclose(replaced);
  return Status::Ok();
}

void StructuredLog::Close() {
  enabled_.store(false, std::memory_order_relaxed);
  std::FILE* doomed = nullptr;
  {
    MutexLock lock(mu_);
    doomed = file_;
    file_ = nullptr;
  }
  if (doomed != nullptr) std::fclose(doomed);
}

void StructuredLog::Write(const LogRecord& record) {
  const std::string line = record.ToJsonLine();
  MutexLock lock(mu_);
  if (file_ == nullptr) return;  // raced with Close(); drop silently
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  // Flush per record: the log must survive the abort paths the engine's
  // TREESIM_CHECKs can take, and query volume (not line volume) dominates.
  std::fflush(file_);
  records_written_.fetch_add(1, std::memory_order_relaxed);
}

#else  // !TREESIM_METRICS_ENABLED

StructuredLog& StructuredLog::Global() {
  static StructuredLog* const log = new StructuredLog();
  return *log;
}

#endif  // TREESIM_METRICS_ENABLED

}  // namespace treesim
