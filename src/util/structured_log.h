#ifndef TREESIM_UTIL_STRUCTURED_LOG_H_
#define TREESIM_UTIL_STRUCTURED_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "util/status.h"
#include "util/sync.h"

/// Structured query logging — the per-query counterpart of the aggregate
/// metrics registry (util/metrics.h). Every search/join entry point emits
/// one JSON-lines record per query (query id, tau/k, candidate funnel,
/// stage timings, bound gap) into a process-wide sink; a slow-query
/// threshold turns the firehose into an incident log. The format is one
/// self-contained JSON object per line, so `jq`, `grep` and any log
/// shipper consume it without a schema registry.
///
/// Design mirrors util/metrics.h:
///   * One process-wide sink (StructuredLog::Global()), configured once by
///     the binary's entry point (`treesim_cli --query-log=FILE
///     --slow-query-ms=N`, bench --query-log=FILE); the library itself
///     never opens files behind the caller's back — logging is off until
///     OpenFile() succeeds.
///   * Emission is two phases: build a LogRecord (no lock, plain string
///     append) and Write() it (one Mutex-guarded fwrite + flush). Query
///     paths guard the whole block with ShouldLog(total_micros), so a
///     disabled sink costs one relaxed atomic load per query.
///   * Under -DTREESIM_METRICS=OFF the class degenerates to a stub:
///     enabled() is constantly false, OpenFile() reports the layer is
///     compiled out, Write() is a no-op — the query engines carry zero
///     logging code, same contract as the metrics macros.

#ifndef TREESIM_METRICS_ENABLED
#define TREESIM_METRICS_ENABLED 1
#endif

namespace treesim {

/// Incrementally built JSON object for one log line. Keys are appended in
/// call order; values are escaped/formatted on append, so ToJsonLine() is
/// a plain string move. Keys must be plain ASCII identifiers (they are
/// emitted verbatim); values are escaped.
class LogRecord {
 public:
  LogRecord& Str(const char* key, std::string_view value);
  LogRecord& Int(const char* key, int64_t value);
  LogRecord& Double(const char* key, double value);
  LogRecord& Bool(const char* key, bool value);

  /// The record as one JSON object, no trailing newline.
  std::string ToJsonLine() const;

 private:
  void AppendKey(const char* key);
  std::string body_;
};

/// Unix wall-clock time in microseconds (the one timestamp source outside
/// util/stopwatch.h; lives here because std::chrono is banned outside
/// src/util/ and bench/).
int64_t UnixMicros();

#if TREESIM_METRICS_ENABLED

/// Process-wide JSON-lines sink with a slow-query threshold.
class StructuredLog {
 public:
  static StructuredLog& Global();

  /// Opens (truncates) `path` and enables the sink. Fails when the file
  /// cannot be created; the sink stays disabled then.
  Status OpenFile(const std::string& path);

  /// Flushes and closes the sink; Write() becomes a no-op again.
  void Close();

  /// True once OpenFile() succeeded (and until Close()).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Only queries whose total latency reaches the threshold are logged;
  /// 0 (the default) logs every query.
  void set_slow_query_micros(int64_t micros) {
    slow_query_micros_.store(micros, std::memory_order_relaxed);
  }
  int64_t slow_query_micros() const {
    return slow_query_micros_.load(std::memory_order_relaxed);
  }

  /// The per-query gate: sink enabled AND the query is slow enough. The
  /// query paths build the record only when this is true.
  bool ShouldLog(int64_t total_micros) const {
    return enabled() && total_micros >= slow_query_micros();
  }

  /// True when `total_micros` reaches a nonzero threshold — the "slow"
  /// field of emitted records (false while the threshold is 0 and
  /// everything is being logged).
  bool IsSlow(int64_t total_micros) const {
    const int64_t threshold = slow_query_micros();
    return threshold > 0 && total_micros >= threshold;
  }

  /// Monotonic id shared by every logged record of this process.
  int64_t NextQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends the record as one line. Thread-safe; no-op while disabled.
  void Write(const LogRecord& record);

  /// Records written since the sink was opened (testing/monitoring).
  int64_t records_written() const {
    return records_written_.load(std::memory_order_relaxed);
  }

 private:
  StructuredLog() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> slow_query_micros_{0};
  std::atomic<int64_t> next_query_id_{0};
  std::atomic<int64_t> records_written_{0};
  mutable Mutex mu_ TREESIM_LOCK_RANK(50);
  std::FILE* file_ TREESIM_GUARDED_BY(mu_) = nullptr;
};

#else  // !TREESIM_METRICS_ENABLED

/// Compile-out stub: the API survives (the CLI and tests keep building)
/// but enabled() is constantly false, so every ShouldLog()-guarded block
/// in the query engines is dead code.
class StructuredLog {
 public:
  static StructuredLog& Global();

  Status OpenFile(const std::string&) {
    return Status::FailedPrecondition(
        "structured query logging is compiled out (TREESIM_METRICS=OFF)");
  }
  void Close() {}
  bool enabled() const { return false; }
  void set_slow_query_micros(int64_t) {}
  int64_t slow_query_micros() const { return 0; }
  bool ShouldLog(int64_t) const { return false; }
  bool IsSlow(int64_t) const { return false; }
  int64_t NextQueryId() { return 0; }
  void Write(const LogRecord&) {}
  int64_t records_written() const { return 0; }

 private:
  StructuredLog() = default;
};

#endif  // TREESIM_METRICS_ENABLED

}  // namespace treesim

#endif  // TREESIM_UTIL_STRUCTURED_LOG_H_
