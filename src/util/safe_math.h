#ifndef TREESIM_UTIL_SAFE_MATH_H_
#define TREESIM_UTIL_SAFE_MATH_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>

#include "util/logging.h"

/// Checked integer arithmetic for every distance/count accumulator in the
/// library. The soundness of filter-and-refine search rests on integer
/// values: BDist is an L1 sum over branch-vector counts, Theorem 3.2's
/// BDist <= [4(q-1)+1] * EDist makes pruning lossless, and the Zhang-Shasha
/// refinement fills O(n^2) cost matrices. A silent wraparound in any of
/// these can turn a lower bound into an over-estimate and make range/k-NN
/// queries drop true results. Policy:
///
///   * Debug builds (!NDEBUG): overflow is a fatal TREESIM_CHECK failure
///     with both operands printed.
///   * Release builds: the result saturates at the type's min/max and a
///     global atomic counter is bumped (SafeMathStats::saturations()), so
///     production keeps serving while monitoring can alarm. A saturated
///     distance stays an over-estimate of nothing: min-clamps keep lower
///     bounds sound (the true value is even larger), and the counter makes
///     the event observable instead of silent.
///
/// tools/analyze_treesim.py (pass B) bans unchecked `+=` / `*` on
/// count/distance-named accumulators and raw narrowing static_casts of them
/// in src/{core,strgram,ted,filters,search}; this header is the sanctioned
/// replacement.

/// Marks a function whose integer wraparound is INTENTIONAL (hash mixing,
/// PRNG state transitions) so clang's -fsanitize=integer CI job does not
/// flag it. Expands to nothing under GCC.
#if defined(__clang__)
#define TREESIM_NO_SANITIZE_INTEGER __attribute__((no_sanitize("integer")))
#else
#define TREESIM_NO_SANITIZE_INTEGER
#endif

namespace treesim {
namespace internal_safe_math {

inline std::atomic<uint64_t>& SaturationCounter() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

}  // namespace internal_safe_math

/// Observability hooks for the release-mode saturation path.
struct SafeMathStats {
  /// Number of checked operations that saturated since process start (or
  /// the last Reset). Always 0 in debug builds: overflow aborts there.
  static uint64_t saturations() {
    return internal_safe_math::SaturationCounter().load(
        std::memory_order_relaxed);
  }

  static void Reset() {
    internal_safe_math::SaturationCounter().store(0,
                                                  std::memory_order_relaxed);
  }
};

/// a + b, overflow-checked. Debug: fatal on overflow. Release: saturates
/// toward the overflow direction and bumps SafeMathStats.
template <typename T>
[[nodiscard]] inline T CheckedAdd(T a, T b) {
  static_assert(std::is_integral_v<T>, "CheckedAdd is integer-only");
  T out;
  if (!__builtin_add_overflow(a, b, &out)) return out;
#ifndef NDEBUG
  TREESIM_CHECK(false) << "CheckedAdd overflow: " << +a << " + " << +b;
#endif
  internal_safe_math::SaturationCounter().fetch_add(1,
                                                    std::memory_order_relaxed);
  return (b > T{0}) ? std::numeric_limits<T>::max()
                    : std::numeric_limits<T>::min();
}

/// a - b, overflow-checked (same policy as CheckedAdd).
template <typename T>
[[nodiscard]] inline T CheckedSub(T a, T b) {
  static_assert(std::is_integral_v<T>, "CheckedSub is integer-only");
  T out;
  if (!__builtin_sub_overflow(a, b, &out)) return out;
#ifndef NDEBUG
  TREESIM_CHECK(false) << "CheckedSub overflow: " << +a << " - " << +b;
#endif
  internal_safe_math::SaturationCounter().fetch_add(1,
                                                    std::memory_order_relaxed);
  return (b < T{0}) ? std::numeric_limits<T>::max()
                    : std::numeric_limits<T>::min();
}

/// a * b, overflow-checked (same policy as CheckedAdd).
template <typename T>
[[nodiscard]] inline T CheckedMul(T a, T b) {
  static_assert(std::is_integral_v<T>, "CheckedMul is integer-only");
  T out;
  if (!__builtin_mul_overflow(a, b, &out)) return out;
#ifndef NDEBUG
  TREESIM_CHECK(false) << "CheckedMul overflow: " << +a << " * " << +b;
#endif
  internal_safe_math::SaturationCounter().fetch_add(1,
                                                    std::memory_order_relaxed);
  const bool negative = (a < T{0}) != (b < T{0});
  return negative ? std::numeric_limits<T>::min()
                  : std::numeric_limits<T>::max();
}

/// Narrowing (or sign-changing) integer cast that proves the value fits.
/// Debug: fatal when `v` is not representable in `To`. Release: clamps to
/// To's range and bumps SafeMathStats.
template <typename To, typename From>
[[nodiscard]] inline To CheckedCast(From v) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "CheckedCast is integer-only");
  if (std::in_range<To>(v)) return static_cast<To>(v);
#ifndef NDEBUG
  TREESIM_CHECK(false) << "CheckedCast out of range: " << +v;
#endif
  internal_safe_math::SaturationCounter().fetch_add(1,
                                                    std::memory_order_relaxed);
  if (std::cmp_less(v, std::numeric_limits<To>::min())) {
    return std::numeric_limits<To>::min();
  }
  return std::numeric_limits<To>::max();
}

/// CheckedAdd for templated accumulation code that is instantiated with
/// both integer and floating-point cost types (the Zhang-Shasha kernel):
/// integers go through the checked path, floating point adds directly
/// (IEEE754 saturates to +-inf on its own, no UB involved).
template <typename T>
[[nodiscard]] inline T CheckedAddAny(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    return CheckedAdd(a, b);
  } else {
    return a + b;
  }
}

}  // namespace treesim

#endif  // TREESIM_UTIL_SAFE_MATH_H_
