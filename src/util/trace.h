#ifndef TREESIM_UTIL_TRACE_H_
#define TREESIM_UTIL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

/// Lightweight span tracing for per-query cost attribution. The metrics
/// registry (util/metrics.h) answers "how much, in total"; a trace answers
/// "where did THIS query's time go" — which stage, on which thread, nested
/// how. RTED-style adversarial inputs flip per-stage costs between queries,
/// so aggregate histograms alone cannot localize a slow query.
///
/// Usage:
///   Tracer::Global().Enable();
///   { TREESIM_TRACE_SPAN("knn.refine"); ... }         // RAII
///   std::string json = Tracer::Global().ExportChromeTracing();
///
/// Design:
///   * Recording is off by default; a disabled span costs one relaxed
///     atomic load.
///   * Each thread records into its own fixed-size ring buffer (no shared
///     write path, no allocation after the first span on a thread); the
///     newest kRingCapacity spans per thread survive, older ones are
///     dropped and counted.
///   * Buffers are registered with the global tracer under a mutex and
///     kept alive by shared_ptr, so spans recorded by threads that have
///     since exited (e.g. a destroyed ThreadPool) still appear in
///     Collect().
///   * Collect() merges all buffers into start-time order;
///     ExportChromeTracing() renders chrome://tracing / Perfetto "X"
///     (complete) events.
///   * Span names must be string literals (the macro enforces this): the
///     ring stores the pointer, never a copy.
///
/// Compile-out: under TREESIM_METRICS=OFF (TREESIM_METRICS_ENABLED=0, see
/// util/metrics.h) TREESIM_TRACE_SPAN expands to nothing and the tracer
/// degenerates to a stub that never records.

#ifndef TREESIM_METRICS_ENABLED
#define TREESIM_METRICS_ENABLED 1
#endif

namespace treesim {

/// One completed span, recorded at destruction of its TraceSpan.
struct TraceEvent {
  /// Span name; a string literal owned by the code, never freed.
  const char* name = nullptr;
  /// Dense tracer-assigned thread index (0, 1, ... in registration order).
  int thread_index = 0;
  /// Nesting depth within the thread at the time the span opened (0 = top
  /// level).
  int depth = 0;
  /// Start, nanoseconds since the tracer epoch (set at Enable()).
  int64_t start_ns = 0;
  /// Duration in nanoseconds.
  int64_t duration_ns = 0;
  /// Query id (util/query_context.h) active on the recording thread when
  /// the span opened, 0 when none — what makes a trace joinable against
  /// the structured query log and metric exemplars. Exported as
  /// `"args":{"query_id":N}` on the chrome://tracing event.
  int64_t query_id = 0;
};

class Tracer {
 public:
  /// Spans per thread kept in the ring; older spans are dropped (counted in
  /// dropped_events()).
  static constexpr int kRingCapacity = 4096;

  static Tracer& Global();

  /// Starts recording and resets the epoch. Does not clear prior events;
  /// call Clear() first for a fresh trace.
  void Enable();
  void Disable();
  bool enabled() const;

  /// All recorded events from every thread, ascending by (start_ns,
  /// thread_index). Safe to call while other threads record (their
  /// in-flight spans may be missed; completed ones are merged).
  std::vector<TraceEvent> Collect() const;

  /// Drops all recorded events and zeroes the drop counter. Buffers stay
  /// registered.
  void Clear();

  /// Events lost to ring wraparound since the last Clear().
  int64_t dropped_events() const;

  /// chrome://tracing (Trace Event Format) JSON: one "X" complete event per
  /// span, timestamps in microseconds relative to the tracer epoch. Load in
  /// chrome://tracing or https://ui.perfetto.dev.
  std::string ExportChromeTracing() const;
};

#if TREESIM_METRICS_ENABLED
/// Signal-safe trace tail for the crash handler (util/triage.cc): copies
/// at most `per_thread` newest events from each registered thread ring
/// (up to `max_out` total) into caller storage without locking or
/// allocating. The reads race the owning threads by design — a torn event
/// in a crash dump beats no trace at all. Returns the count. Never call
/// this on a live, healthy process; use Tracer::Collect().
int TraceCrashTail(TraceEvent* out, int max_out, int per_thread);
#else
inline int TraceCrashTail(TraceEvent*, int, int) { return 0; }
#endif

#if TREESIM_METRICS_ENABLED

/// RAII span: records one TraceEvent on the current thread's ring buffer
/// when destroyed, if the tracer was enabled when it was constructed.
/// `name` must be a string literal (the macro appends "" to enforce it).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  int64_t start_ns_;
  int64_t query_id_;
  bool recording_;
};

#define TREESIM_TRACE_CONCAT_INNER_(a, b) a##b
#define TREESIM_TRACE_CONCAT_(a, b) TREESIM_TRACE_CONCAT_INNER_(a, b)
#define TREESIM_TRACE_SPAN(name)                              \
  const ::treesim::TraceSpan TREESIM_TRACE_CONCAT_(           \
      treesim_trace_span_, __LINE__)(name "")

#else  // !TREESIM_METRICS_ENABLED

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
};

#define TREESIM_TRACE_SPAN(name) static_cast<void>(name "")

#endif  // TREESIM_METRICS_ENABLED

}  // namespace treesim

#endif  // TREESIM_UTIL_TRACE_H_
