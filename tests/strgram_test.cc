#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "strgram/qgram.h"
#include "strgram/string_edit_distance.h"
#include "test_util.h"
#include "ted/zhang_shasha.h"
#include "tree/traversal.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::RandomTree;

using Seq = std::vector<LabelId>;

TEST(StringEditDistanceTest, BasicCases) {
  EXPECT_EQ(StringEditDistance({}, {}), 0);
  EXPECT_EQ(StringEditDistance({1, 2, 3}, {1, 2, 3}), 0);
  EXPECT_EQ(StringEditDistance({1, 2, 3}, {}), 3);
  EXPECT_EQ(StringEditDistance({}, {1, 2}), 2);
  EXPECT_EQ(StringEditDistance({1, 2, 3}, {1, 9, 3}), 1);   // substitute
  EXPECT_EQ(StringEditDistance({1, 2, 3}, {1, 3}), 1);      // delete
  EXPECT_EQ(StringEditDistance({1, 3}, {1, 2, 3}), 1);      // insert
  EXPECT_EQ(StringEditDistance({1, 2, 3, 4}, {4, 3, 2, 1}), 4);
}

TEST(StringEditDistanceTest, ClassicWords) {
  // kitten -> sitting = 3, encoded as label ids.
  const Seq kitten = {11, 9, 20, 20, 5, 14};
  const Seq sitting = {19, 9, 20, 20, 9, 14, 7};
  EXPECT_EQ(StringEditDistance(kitten, sitting), 3);
}

TEST(StringEditDistanceTest, SymmetricAndTriangle) {
  Rng rng(701);
  for (int trial = 0; trial < 50; ++trial) {
    auto random_seq = [&](int max_len) {
      Seq s(static_cast<size_t>(rng.UniformInt(0, max_len)));
      for (LabelId& x : s) x = static_cast<LabelId>(rng.UniformInt(1, 4));
      return s;
    };
    const Seq a = random_seq(15);
    const Seq b = random_seq(15);
    const Seq c = random_seq(15);
    EXPECT_EQ(StringEditDistance(a, b), StringEditDistance(b, a));
    EXPECT_LE(StringEditDistance(a, b),
              StringEditDistance(a, c) + StringEditDistance(c, b));
    EXPECT_GE(StringEditDistance(a, b),
              std::abs(static_cast<int>(a.size()) -
                       static_cast<int>(b.size())));
  }
}

TEST(StringEditDistanceBoundedTest, AgreesWithFullWithinLimit) {
  Rng rng(709);
  for (int trial = 0; trial < 80; ++trial) {
    auto random_seq = [&](int max_len) {
      Seq s(static_cast<size_t>(rng.UniformInt(0, max_len)));
      for (LabelId& x : s) x = static_cast<LabelId>(rng.UniformInt(1, 3));
      return s;
    };
    const Seq a = random_seq(20);
    const Seq b = random_seq(20);
    const int exact = StringEditDistance(a, b);
    for (const int limit : {0, 1, 2, 4, 8, 30}) {
      const int banded = StringEditDistanceBounded(a, b, limit);
      if (exact <= limit) {
        EXPECT_EQ(banded, exact) << "limit=" << limit;
      } else {
        EXPECT_GT(banded, limit) << "limit=" << limit;
      }
    }
  }
}

TEST(StringEditDistanceBoundedTest, EmptyAndDegenerate) {
  EXPECT_EQ(StringEditDistanceBounded({}, {}, 0), 0);
  EXPECT_GT(StringEditDistanceBounded({1, 2, 3}, {}, 2), 2);
  EXPECT_EQ(StringEditDistanceBounded({1, 2, 3}, {}, 3), 3);
}

TEST(QGramProfileTest, CountsWindows) {
  const Seq s = {1, 2, 1, 2, 1};
  QGramProfile p(s, 2);
  EXPECT_EQ(p.size(), 4);  // (1,2) (2,1) (1,2) (2,1)
  EXPECT_EQ(p.sequence_length(), 5);
  QGramProfile q(s, 6);
  EXPECT_EQ(q.size(), 0);  // shorter than the window
}

TEST(QGramProfileTest, SharedIsMultisetIntersection) {
  const Seq a = {1, 2, 1, 2, 1};  // grams: 12 21 12 21
  const Seq b = {1, 2, 3};        // grams: 12 23
  QGramProfile pa(a, 2);
  QGramProfile pb(b, 2);
  EXPECT_EQ(pa.SharedWith(pb), 1);  // one copy of (1,2) matches
  EXPECT_EQ(pb.SharedWith(pa), 1);
  EXPECT_EQ(pa.L1Distance(pb), 4 + 2 - 2);
  EXPECT_EQ(pa.SharedWith(pa), 4);
}

TEST(QGramLowerBoundTest, SoundAgainstStringEditDistance) {
  Rng rng(719);
  for (const int q : {1, 2, 3}) {
    for (int trial = 0; trial < 60; ++trial) {
      auto random_seq = [&](int max_len) {
        Seq s(static_cast<size_t>(rng.UniformInt(0, max_len)));
        for (LabelId& x : s) x = static_cast<LabelId>(rng.UniformInt(1, 4));
        return s;
      };
      const Seq a = random_seq(25);
      const Seq b = random_seq(25);
      QGramProfile pa(a, q);
      QGramProfile pb(b, q);
      EXPECT_LE(QGramLowerBound(pa, pb), StringEditDistance(a, b))
          << "q=" << q;
    }
  }
}

TEST(QGramLowerBoundTest, IdenticalSequencesGiveZero) {
  const Seq s = {1, 2, 3, 4, 5};
  QGramProfile p(s, 2);
  EXPECT_EQ(QGramLowerBound(p, p), 0);
}

TEST(QGramLowerBoundTest, DisjointSequencesGiveStrongBound) {
  const Seq a = {1, 1, 1, 1, 1, 1};
  const Seq b = {2, 2, 2, 2, 2, 2};
  QGramProfile pa(a, 2);
  QGramProfile pb(b, 2);
  // Shared = 0: bound = ceil((6 - 2 + 1) / 2) = 3; true SED = 6.
  EXPECT_EQ(QGramLowerBound(pa, pb), 3);
}

TEST(TraversalSequenceTest, StringDistanceLowerBoundsTreeDistance) {
  // The Section 2.2 fact behind the Guha et al. filter: SED of the preorder
  // (or postorder) label sequences never exceeds the tree edit distance.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(727);
  for (int trial = 0; trial < 60; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 25), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 25), pool, dict, rng);
    Seq pre_a, pre_b, post_a, post_b;
    for (const NodeId n : PreorderSequence(a)) pre_a.push_back(a.label(n));
    for (const NodeId n : PreorderSequence(b)) pre_b.push_back(b.label(n));
    for (const NodeId n : PostorderSequence(a)) post_a.push_back(a.label(n));
    for (const NodeId n : PostorderSequence(b)) post_b.push_back(b.label(n));
    const int ted = TreeEditDistance(a, b);
    EXPECT_LE(StringEditDistance(pre_a, pre_b), ted);
    EXPECT_LE(StringEditDistance(post_a, post_b), ted);
  }
}

}  // namespace
}  // namespace treesim
