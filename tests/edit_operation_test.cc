#include "ted/edit_operation.h"

#include <memory>

#include "gtest/gtest.h"
#include "datagen/edit_noise.h"
#include "ted/zhang_shasha.h"
#include "test_util.h"
#include "tree/bracket.h"
#include "tree/traversal.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

// Finds the node at 1-based preorder position `pos`.
NodeId AtPreorder(const Tree& t, int pos) {
  return PreorderSequence(t)[static_cast<size_t>(pos - 1)];
}

TEST(EditOperationTest, RelabelChangesOneLabel) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b{c} d}", dict);
  const LabelId x = dict->Intern("x");
  StatusOr<Tree> r =
      ApplyEditOperation(t, EditOperation::MakeRelabel(AtPreorder(t, 2), x));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToBracket(*r), "a{x{c} d}");
  EXPECT_EQ(r->size(), t.size());
}

TEST(EditOperationTest, DeleteSplicesChildrenInPlace) {
  auto dict = std::make_shared<LabelDictionary>();
  // Paper Section 3.1: deleting the second b of T1 hands its children (c, d)
  // to a, between the first b and e.
  Tree t = MakeTree("a{b{c d} b{c d} e}", dict);
  StatusOr<Tree> r =
      ApplyEditOperation(t, EditOperation::MakeDelete(AtPreorder(t, 5)));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToBracket(*r), "a{b{c d} c d e}");
}

TEST(EditOperationTest, DeleteLeaf) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b c d}", dict);
  StatusOr<Tree> r =
      ApplyEditOperation(t, EditOperation::MakeDelete(AtPreorder(t, 3)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToBracket(*r), "a{b d}");
}

TEST(EditOperationTest, DeleteRootRejected) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b}", dict);
  StatusOr<Tree> r = ApplyEditOperation(t, EditOperation::MakeDelete(t.root()));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(EditOperationTest, InsertLeafAtPosition) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b c}", dict);
  const LabelId x = dict->Intern("x");
  // Insert before c, adopting nothing.
  StatusOr<Tree> r = ApplyEditOperation(
      t, EditOperation::MakeInsert(t.root(), x, /*child_begin=*/1,
                                   /*child_count=*/0));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToBracket(*r), "a{b x c}");
}

TEST(EditOperationTest, InsertAppendsAtEnd) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b c}", dict);
  const LabelId x = dict->Intern("x");
  StatusOr<Tree> r = ApplyEditOperation(
      t, EditOperation::MakeInsert(t.root(), x, 2, 0));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToBracket(*r), "a{b c x}");
}

TEST(EditOperationTest, InsertAdoptingConsecutiveChildren) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b c d e}", dict);
  const LabelId x = dict->Intern("x");
  // Adopt c, d (positions 1, 2).
  StatusOr<Tree> r = ApplyEditOperation(
      t, EditOperation::MakeInsert(t.root(), x, 1, 2));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToBracket(*r), "a{b x{c d} e}");
}

TEST(EditOperationTest, InsertAdoptingAllChildren) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b c}", dict);
  const LabelId x = dict->Intern("x");
  StatusOr<Tree> r = ApplyEditOperation(
      t, EditOperation::MakeInsert(t.root(), x, 0, 2));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToBracket(*r), "a{x{b c}}");
}

TEST(EditOperationTest, InsertUnderLeaf) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b}", dict);
  const LabelId x = dict->Intern("x");
  StatusOr<Tree> r = ApplyEditOperation(
      t, EditOperation::MakeInsert(AtPreorder(t, 2), x, 0, 0));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToBracket(*r), "a{b{x}}");
}

TEST(EditOperationTest, InsertBadRangeRejected) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b c}", dict);
  const LabelId x = dict->Intern("x");
  EXPECT_FALSE(
      ApplyEditOperation(t, EditOperation::MakeInsert(t.root(), x, 1, 2))
          .ok());
  EXPECT_FALSE(
      ApplyEditOperation(t, EditOperation::MakeInsert(t.root(), x, 3, 0))
          .ok());
  EXPECT_FALSE(
      ApplyEditOperation(t, EditOperation::MakeInsert(t.root(), x, -1, 0))
          .ok());
}

TEST(EditOperationTest, OutOfRangeNodeRejected) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b}", dict);
  EXPECT_FALSE(ApplyEditOperation(t, EditOperation::MakeDelete(99)).ok());
  EXPECT_FALSE(
      ApplyEditOperation(t, EditOperation::MakeRelabel(-1, 1)).ok());
}

TEST(EditOperationTest, DeleteThenInsertInverts) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b x{c d} e}", dict);
  StatusOr<Tree> del =
      ApplyEditOperation(t, EditOperation::MakeDelete(AtPreorder(t, 3)));
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(ToBracket(*del), "a{b c d e}");
  const LabelId x = *dict->Lookup("x");
  StatusOr<Tree> back = ApplyEditOperation(
      *del, EditOperation::MakeInsert(del->root(), x, 1, 2));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->StructurallyEquals(t));
}

TEST(EditScriptTest, AppliesInOrder) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b}", dict);
  const LabelId x = dict->Intern("x");
  const LabelId y = dict->Intern("y");
  // Script addresses nodes of successive trees: after the insert, preorder
  // ids shift.
  std::vector<EditOperation> script = {
      EditOperation::MakeInsert(t.root(), x, 0, 1),  // a{x{b}}
      EditOperation::MakeRelabel(0, y),              // root relabel: y{x{b}}
  };
  StatusOr<Tree> r = ApplyEditScript(t, script);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToBracket(*r), "y{x{b}}");
}

TEST(EditScriptTest, ScriptLengthBoundsEditDistance) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(67);
  for (int trial = 0; trial < 60; ++trial) {
    Tree t = RandomTree(rng.UniformInt(2, 30), pool, dict, rng);
    const int k = rng.UniformInt(0, 6);
    const NoisyTree noisy = ApplyRandomEdits(t, k, pool, rng);
    ASSERT_EQ(static_cast<int>(noisy.script.size()), k);
    EXPECT_LE(TreeEditDistance(t, noisy.tree), k)
        << ToBracket(t) << " -> " << ToBracket(noisy.tree);
  }
}

TEST(EditOperationTest, ToStringFormats) {
  auto dict = std::make_shared<LabelDictionary>();
  const LabelId x = dict->Intern("x");
  EXPECT_EQ(ToString(EditOperation::MakeRelabel(3, x), *dict),
            "relabel(3 -> 'x')");
  EXPECT_EQ(ToString(EditOperation::MakeDelete(2), *dict), "delete(2)");
  EXPECT_EQ(ToString(EditOperation::MakeInsert(0, x, 1, 2), *dict),
            "insert('x' under 0 adopting [1, 3))");
}

}  // namespace
}  // namespace treesim
