#include "search/pairwise.h"

#include <memory>

#include "gtest/gtest.h"
#include "datagen/dblp_generator.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

std::unique_ptr<TreeDatabase> SmallDb(int count, uint64_t seed) {
  auto dict = std::make_shared<LabelDictionary>();
  auto db = std::make_unique<TreeDatabase>(dict);
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    db->Add(RandomTree(rng.UniformInt(1, 18), pool, dict, rng));
  }
  return db;
}

TEST(PairwiseTest, MatchesDirectComputation) {
  auto db = SmallDb(20, 1801);
  const PairwiseDistances m = ComputePairwiseDistances(*db);
  EXPECT_EQ(m.size(), 20);
  for (int i = 0; i < db->size(); ++i) {
    EXPECT_EQ(m.At(i, i), 0);
    for (int j = 0; j < db->size(); ++j) {
      EXPECT_EQ(m.At(i, j), TreeEditDistance(db->tree(i), db->tree(j)));
      EXPECT_EQ(m.At(i, j), m.At(j, i));
    }
  }
}

TEST(PairwiseTest, ParallelEqualsSerial) {
  auto db = SmallDb(35, 1811);
  const PairwiseDistances serial = ComputePairwiseDistances(*db, 1);
  for (const int threads : {2, 4, 0 /* hardware default */}) {
    const PairwiseDistances parallel =
        ComputePairwiseDistances(*db, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (int i = 0; i < db->size(); ++i) {
      for (int j = 0; j < db->size(); ++j) {
        EXPECT_EQ(parallel.At(i, j), serial.At(i, j))
            << "threads=" << threads;
      }
    }
  }
}

TEST(PairwiseTest, MeanAgreesWithSampler) {
  auto dict = std::make_shared<LabelDictionary>();
  auto db = std::make_unique<TreeDatabase>(dict);
  DblpGenerator gen(DblpParams{}, dict, 1823);
  for (Tree& t : gen.Generate(60)) db->Add(std::move(t));
  const PairwiseDistances m = ComputePairwiseDistances(*db, 2);
  Rng rng(3);
  const double sampled = db->EstimateAverageDistance(rng, 1500);
  EXPECT_NEAR(m.Mean(), sampled, 0.5);
}

TEST(PairwiseTest, DegenerateSizes) {
  auto db0 = SmallDb(1, 1831);
  const PairwiseDistances one = ComputePairwiseDistances(*db0, 4);
  EXPECT_EQ(one.size(), 1);
  EXPECT_EQ(one.At(0, 0), 0);
  EXPECT_DOUBLE_EQ(one.Mean(), 0.0);

  auto db2 = SmallDb(2, 1833);
  const PairwiseDistances two = ComputePairwiseDistances(*db2, 4);
  EXPECT_EQ(two.At(0, 1), TreeEditDistance(db2->tree(0), db2->tree(1)));
  EXPECT_DOUBLE_EQ(two.Mean(), two.At(0, 1));
}

}  // namespace
}  // namespace treesim
