#include <memory>
#include <set>

#include "gtest/gtest.h"
#include "datagen/dblp_generator.h"
#include "datagen/synthetic_generator.h"
#include "search/tree_database.h"
#include "ted/zhang_shasha.h"
#include "test_util.h"
#include "tree/traversal.h"

namespace treesim {
namespace {

TEST(SyntheticParamsTest, ToStringMatchesPaperNotation) {
  SyntheticParams p;
  p.fanout_mean = 4;
  p.fanout_stddev = 0.5;
  p.size_mean = 50;
  p.size_stddev = 2;
  p.label_count = 8;
  p.decay = 0.05;
  EXPECT_EQ(p.ToString(), "N{4,0.5}N{50,2}L8D0.05");
}

TEST(SyntheticGeneratorTest, SeedTreesRespectSizeDistribution) {
  auto dict = std::make_shared<LabelDictionary>();
  SyntheticParams p;
  p.size_mean = 50;
  p.size_stddev = 2;
  SyntheticGenerator gen(p, dict, 11);
  double total = 0;
  for (int i = 0; i < 100; ++i) {
    Tree t = gen.GenerateSeedTree();
    EXPECT_GE(t.size(), 40);
    EXPECT_LE(t.size(), 60);
    total += t.size();
  }
  EXPECT_NEAR(total / 100.0, 50.0, 2.0);
}

TEST(SyntheticGeneratorTest, FanoutTracksMean) {
  auto dict = std::make_shared<LabelDictionary>();
  SyntheticParams p;
  p.fanout_mean = 4;
  p.fanout_stddev = 0.5;
  p.size_mean = 100;
  SyntheticGenerator gen(p, dict, 13);
  int64_t internal = 0;
  int64_t children = 0;
  for (int i = 0; i < 30; ++i) {
    Tree t = gen.GenerateSeedTree();
    for (NodeId n = 0; n < t.size(); ++n) {
      const int d = t.Degree(n);
      if (d > 0) {
        ++internal;
        children += d;
      }
    }
  }
  // Internal nodes have ~4 children (the frontier truncation can clip the
  // last node's brood, so allow slack).
  EXPECT_NEAR(static_cast<double>(children) / static_cast<double>(internal),
              4.0, 0.5);
}

TEST(SyntheticGeneratorTest, UsesExactlyTheLabelUniverse) {
  auto dict = std::make_shared<LabelDictionary>();
  SyntheticParams p;
  p.label_count = 8;
  SyntheticGenerator gen(p, dict, 17);
  std::set<std::string> seen;
  for (int i = 0; i < 20; ++i) {
    Tree t = gen.GenerateSeedTree();
    for (NodeId n = 0; n < t.size(); ++n) {
      seen.insert(std::string(t.LabelName(n)));
    }
  }
  EXPECT_LE(seen.size(), 8u);
  EXPECT_GE(seen.size(), 6u);  // overwhelmingly likely all 8 appear
}

TEST(SyntheticGeneratorTest, DeterministicGivenSeed) {
  auto d1 = std::make_shared<LabelDictionary>();
  auto d2 = std::make_shared<LabelDictionary>();
  SyntheticParams p;
  SyntheticGenerator g1(p, d1, 99);
  SyntheticGenerator g2(p, d2, 99);
  const std::vector<Tree> a = g1.GenerateDataset(10);
  const std::vector<Tree> b = g2.GenerateDataset(10);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].StructurallyEquals(b[i])) << i;
  }
}

TEST(SyntheticGeneratorTest, DatasetEvolutionKeepsTreesClose) {
  auto dict = std::make_shared<LabelDictionary>();
  SyntheticParams p;
  p.size_mean = 30;
  p.decay = 0.05;
  p.seed_count = 1;
  SyntheticGenerator gen(p, dict, 23);
  const std::vector<Tree> data = gen.GenerateDataset(20);
  ASSERT_EQ(data.size(), 20u);
  // With one seed and 5% decay, consecutive derivations stay within a small
  // edit distance of some earlier tree; spot-check overall cohesion.
  int64_t total = 0;
  int pairs = 0;
  for (size_t i = 1; i < data.size(); i += 3) {
    total += TreeEditDistance(data[0], data[i]);
    ++pairs;
  }
  EXPECT_LT(static_cast<double>(total) / pairs, 25.0);
}

TEST(SyntheticGeneratorTest, MutateAppliesBinomialEdits) {
  auto dict = std::make_shared<LabelDictionary>();
  SyntheticParams p;
  p.size_mean = 40;
  p.decay = 0.1;
  SyntheticGenerator gen(p, dict, 29);
  Tree seed = gen.GenerateSeedTree();
  int changed = 0;
  for (int i = 0; i < 30; ++i) {
    Tree m = gen.Mutate(seed);
    const int d = TreeEditDistance(seed, m);
    EXPECT_LE(d, 20);  // far below size: mutation is light
    if (d > 0) ++changed;
  }
  EXPECT_GT(changed, 20);  // at ~4 expected ops, rarely a no-op
}

TEST(DblpGeneratorTest, ShapeMatchesPaperStatistics) {
  auto dict = std::make_shared<LabelDictionary>();
  DblpGenerator gen(DblpParams{}, dict, 41);
  const std::vector<Tree> data = gen.Generate(500);
  double total_size = 0;
  double total_depth = 0;
  for (const Tree& t : data) {
    total_size += t.size();
    total_depth += TreeHeight(t);
    EXPECT_LE(TreeHeight(t), 3);  // shallow and bushy
    EXPECT_GE(t.size(), 6);       // the smallest type is the www stub
  }
  // Paper: avg 10.15 nodes, avg depth 2.902 on its DBLP sample.
  EXPECT_NEAR(total_size / 500.0, 10.15, 1.5);
  EXPECT_NEAR(total_depth / 500.0, 2.9, 0.15);
}

TEST(DblpGeneratorTest, RecordsAreWellFormedBibEntries) {
  auto dict = std::make_shared<LabelDictionary>();
  DblpGenerator gen(DblpParams{}, dict, 43);
  std::set<std::string> types_seen;
  for (int i = 0; i < 200; ++i) {
    Tree t = gen.Next();
    const std::string root(t.LabelName(t.root()));
    types_seen.insert(root);
    int authors = 0;
    int editors = 0;
    bool has_title = false;
    bool has_year = false;
    bool has_venue = false;
    bool has_url = false;
    for (const NodeId c : t.Children(t.root())) {
      const std::string f(t.LabelName(c));
      if (f == "author") ++authors;
      if (f == "editor") ++editors;
      if (f == "title") has_title = true;
      if (f == "year") has_year = true;
      if (f == "journal" || f == "booktitle") has_venue = true;
      if (f == "url") has_url = true;
      if (f == "journal") {
        EXPECT_EQ(root, "article");
      }
      if (f == "booktitle") {
        EXPECT_EQ(root, "inproceedings");
      }
      if (f == "editor") {
        EXPECT_EQ(root, "proceedings");
      }
    }
    EXPECT_TRUE(has_title);
    if (root == "article" || root == "inproceedings") {
      EXPECT_GE(authors, 1);
      EXPECT_LE(authors, 4);
      EXPECT_TRUE(has_year);
      EXPECT_TRUE(has_venue);
    } else if (root == "www") {
      EXPECT_EQ(authors, 1);
      EXPECT_TRUE(has_url);
    } else if (root == "proceedings") {
      EXPECT_EQ(editors, 2);
      EXPECT_TRUE(has_year);
    } else {
      ADD_FAILURE() << "unexpected record type " << root;
    }
  }
  // All four record types appear in a 200-record sample.
  EXPECT_EQ(types_seen.size(), 4u);
}

TEST(DblpGeneratorTest, AveragePairwiseDistanceNearPaper) {
  auto dict = std::make_shared<LabelDictionary>();
  DblpGenerator gen(DblpParams{}, dict, 47);
  TreeDatabase db(dict);
  for (Tree& t : gen.Generate(200)) db.Add(std::move(t));
  Rng rng(49);
  // Paper: average distance 5.031 among its DBLP records.
  EXPECT_NEAR(db.EstimateAverageDistance(rng, 400), 5.0, 1.5);
}

TEST(DblpGeneratorTest, DeterministicGivenSeed) {
  auto d1 = std::make_shared<LabelDictionary>();
  auto d2 = std::make_shared<LabelDictionary>();
  DblpGenerator g1(DblpParams{}, d1, 53);
  DblpGenerator g2(DblpParams{}, d2, 53);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(g1.Next().StructurallyEquals(g2.Next()));
  }
}

}  // namespace
}  // namespace treesim
