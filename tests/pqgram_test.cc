#include "strgram/pqgram.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"
#include "ted/zhang_shasha.h"
#include "tree/traversal.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

TEST(PqGramProfileTest, SingleNodeTree) {
  Tree t = MakeTree("a");
  PqGramProfile p(t, 2, 3);
  // One anchor (the root, a leaf): exactly one gram.
  EXPECT_EQ(p.size(), 1);
  EXPECT_DOUBLE_EQ(p.DistanceTo(p), 0.0);
}

TEST(PqGramProfileTest, GramCountFormula) {
  // leaves contribute 1 gram each; an internal node with k children
  // contributes k + q - 1.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(1001);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = RandomTree(rng.UniformInt(1, 40), pool, dict, rng);
    for (const int q : {1, 2, 3}) {
      PqGramProfile profile(t, 2, q);
      int expected = 0;
      for (NodeId n = 0; n < t.size(); ++n) {
        const int k = t.Degree(n);
        expected += (k == 0) ? 1 : k + q - 1;
      }
      EXPECT_EQ(profile.size(), expected) << "q=" << q;
    }
  }
}

TEST(PqGramProfileTest, IdenticalTreesHaveDistanceZero) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b{c} d{e f}}", dict);
  Tree b = MakeTree("a{b{c} d{e f}}", dict);
  PqGramProfile pa(a, 2, 3);
  PqGramProfile pb(b, 2, 3);
  EXPECT_DOUBLE_EQ(pa.DistanceTo(pb), 0.0);
}

TEST(PqGramProfileTest, DisjointTreesHaveDistanceOne) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b c}", dict);
  Tree b = MakeTree("x{y z}", dict);
  PqGramProfile pa(a, 2, 2);
  PqGramProfile pb(b, 2, 2);
  EXPECT_DOUBLE_EQ(pa.DistanceTo(pb), 1.0);
}

TEST(PqGramProfileTest, DistanceIsSymmetricAndBounded) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(1013);
  for (int trial = 0; trial < 25; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 25), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 25), pool, dict, rng);
    PqGramProfile pa(a, 2, 3);
    PqGramProfile pb(b, 2, 3);
    const double d = pa.DistanceTo(pb);
    EXPECT_DOUBLE_EQ(d, pb.DistanceTo(pa));
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(PqGramProfileTest, SensitiveToSiblingOrder) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("r{a b c d}", dict);
  Tree b = MakeTree("r{d c b a}", dict);
  PqGramProfile pa(a, 2, 2);
  PqGramProfile pb(b, 2, 2);
  EXPECT_GT(pa.DistanceTo(pb), 0.0);
}

TEST(PqGramProfileTest, SmallEditsGiveSmallDistance) {
  // pq-gram distance correlates with the edit distance: a one-relabel
  // neighbor is closer than an unrelated tree.
  auto dict = std::make_shared<LabelDictionary>();
  Tree base = MakeTree("a{b{c d} e{f g}}", dict);
  Tree near = MakeTree("a{b{c x} e{f g}}", dict);   // one leaf relabeled
  Tree far = MakeTree("p{q{r} s{t u v w}}", dict);  // disjoint
  PqGramProfile pb(base, 2, 3);
  PqGramProfile pn(near, 2, 3);
  PqGramProfile pf(far, 2, 3);
  EXPECT_LT(pb.DistanceTo(pn), pb.DistanceTo(pf));
}

TEST(PqGramProfileTest, NotALowerBoundOfEditDistance) {
  // Documented limitation: unlike BDist/5, the pq-gram distance can exceed
  // the normalized edit distance; verify the library does not accidentally
  // satisfy the bound everywhere (so nobody wires it into the exact
  // engine). Moving a large subtree is 1 edit operation away under the
  // paper's semantics but changes many pq-grams.
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("r{x{a b c d e f g h}}", dict);
  Tree b = MakeTree("r{a b c d e f g h}", dict);  // delete x: EDist = 1
  EXPECT_EQ(TreeEditDistance(a, b), 1);
  PqGramProfile pa(a, 3, 3);
  PqGramProfile pb(b, 3, 3);
  // Nearly every gram carries the x stem: the distance is large despite
  // EDist == 1.
  EXPECT_GT(pa.DistanceTo(pb), 0.5);
}

TEST(PqGramProfileDeathTest, MismatchedParametersAbort) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b}", dict);
  PqGramProfile p22(t, 2, 2);
  PqGramProfile p23(t, 2, 3);
  EXPECT_DEATH((void)p22.SharedWith(p23), "different p/q");
}

}  // namespace
}  // namespace treesim
