#include "util/flags.h"

#include <vector>

#include "gtest/gtest.h"

namespace treesim {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()),
                    const_cast<char**>(args.data()));
}

TEST(FlagParserTest, ParsesKeyValue) {
  FlagParser f = Parse({"--queries=25", "--tau=3.5", "--name=dblp"});
  EXPECT_EQ(f.GetInt("queries", 0), 25);
  EXPECT_DOUBLE_EQ(f.GetDouble("tau", 0.0), 3.5);
  EXPECT_EQ(f.GetString("name", ""), "dblp");
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  FlagParser f = Parse({});
  EXPECT_EQ(f.GetInt("queries", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("tau", 1.5), 1.5);
  EXPECT_EQ(f.GetString("name", "d"), "d");
  EXPECT_FALSE(f.GetBool("full", false));
  EXPECT_TRUE(f.GetBool("full", true));
}

TEST(FlagParserTest, BoolForms) {
  FlagParser f = Parse({"--a", "--b=true", "--c=false", "--d=1", "--e=0"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_TRUE(f.GetBool("b", false));
  EXPECT_FALSE(f.GetBool("c", true));
  EXPECT_TRUE(f.GetBool("d", false));
  EXPECT_FALSE(f.GetBool("e", true));
}

TEST(FlagParserTest, UnparsableFallsBackToDefault) {
  FlagParser f = Parse({"--n=abc", "--x=1.2.3"});
  EXPECT_EQ(f.GetInt("n", -1), -1);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", -2.0), -2.0);
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser f = Parse({"input.xml", "--k=5", "out.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.xml");
  EXPECT_EQ(f.positional()[1], "out.txt");
}

TEST(FlagParserTest, HasDetectsPresence) {
  FlagParser f = Parse({"--k=5", "--flag"});
  EXPECT_TRUE(f.Has("k"));
  EXPECT_TRUE(f.Has("flag"));
  EXPECT_FALSE(f.Has("absent"));
}

TEST(FlagParserTest, UnknownKeys) {
  FlagParser f = Parse({"--k=5", "--typo=1"});
  const std::vector<std::string> unknown = f.UnknownKeys({"k", "queries"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagParserTest, LastOccurrenceWins) {
  FlagParser f = Parse({"--k=5", "--k=9"});
  EXPECT_EQ(f.GetInt("k", 0), 9);
}

}  // namespace
}  // namespace treesim
