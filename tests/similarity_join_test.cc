#include "search/similarity_join.h"

#include <memory>
#include <set>

#include "gtest/gtest.h"
#include "datagen/synthetic_generator.h"
#include "filters/bibranch_filter.h"
#include "filters/histogram_filter.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

std::unique_ptr<TreeDatabase> RandomDb(
    const std::shared_ptr<LabelDictionary>& dict,
    const std::vector<LabelId>& pool, int count, int max_size, Rng& rng) {
  auto db = std::make_unique<TreeDatabase>(dict);
  for (int i = 0; i < count; ++i) {
    db->Add(RandomTree(rng.UniformInt(1, max_size), pool, dict, rng));
  }
  return db;
}

TEST(SimilarityJoinTest, SmallHandJoin) {
  auto dict = std::make_shared<LabelDictionary>();
  auto right = std::make_unique<TreeDatabase>(dict);
  right->Add(MakeTree("a{b c}", dict));    // 0
  right->Add(MakeTree("a{b d}", dict));    // 1: distance 1 from 0
  right->Add(MakeTree("x{y{z}}", dict));   // 2: far from both

  auto left = std::make_unique<TreeDatabase>(dict);
  left->Add(MakeTree("a{b c}", dict));     // == right 0

  SimilarityJoin join(right.get(), std::make_unique<BiBranchFilter>());
  const JoinResult r = join.Join(*left, 1);
  ASSERT_EQ(r.pairs.size(), 2u);
  EXPECT_EQ(r.pairs[0], std::make_tuple(0, 0, 0));
  EXPECT_EQ(r.pairs[1], std::make_tuple(0, 1, 1));
}

TEST(SimilarityJoinTest, FilteredMatchesUnfiltered) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(801);
  auto left = RandomDb(dict, pool, 25, 18, rng);
  auto right = RandomDb(dict, pool, 30, 18, rng);

  SimilarityJoin plain(right.get(), nullptr);
  SimilarityJoin filtered(right.get(), std::make_unique<BiBranchFilter>());
  SimilarityJoin histo(right.get(), std::make_unique<HistogramFilter>());
  for (const int tau : {0, 2, 5}) {
    const JoinResult expected = plain.Join(*left, tau);
    const JoinResult bb = filtered.Join(*left, tau);
    const JoinResult hi = histo.Join(*left, tau);
    EXPECT_EQ(bb.pairs, expected.pairs) << "tau=" << tau;
    EXPECT_EQ(hi.pairs, expected.pairs) << "tau=" << tau;
    EXPECT_LE(bb.stats.edit_distance_calls,
              expected.stats.edit_distance_calls);
  }
}

TEST(SimilarityJoinTest, SelfJoinEmitsEachPairOnce) {
  auto dict = std::make_shared<LabelDictionary>();
  SyntheticParams params;
  params.size_mean = 12;
  params.label_count = 5;
  params.seed_count = 3;
  SyntheticGenerator gen(params, dict, 811);
  auto db = std::make_unique<TreeDatabase>(dict);
  for (Tree& t : gen.GenerateDataset(25)) db->Add(std::move(t));

  SimilarityJoin join(db.get(), std::make_unique<BiBranchFilter>());
  const JoinResult r = join.SelfJoin(3);
  std::set<std::pair<int, int>> seen;
  for (const auto& [l, rr, d] : r.pairs) {
    EXPECT_LT(l, rr);  // strictly ordered: no self pairs, no duplicates
    EXPECT_LE(d, 3);
    EXPECT_TRUE(seen.emplace(l, rr).second);
  }
  // Clustered data must produce some joinable pairs.
  EXPECT_FALSE(r.pairs.empty());
}

TEST(SimilarityJoinTest, SelfJoinMatchesNestedLoop) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(821);
  auto db = RandomDb(dict, pool, 20, 14, rng);
  SimilarityJoin filtered(db.get(), std::make_unique<BiBranchFilter>());
  const JoinResult got = filtered.SelfJoin(4);

  std::vector<std::tuple<int, int, int>> expected;
  for (int i = 0; i < db->size(); ++i) {
    for (int j = i + 1; j < db->size(); ++j) {
      const int d = TreeEditDistance(db->tree(i), db->tree(j));
      if (d <= 4) expected.emplace_back(i, j, d);
    }
  }
  EXPECT_EQ(got.pairs, expected);
}

TEST(SimilarityJoinTest, StatsAccounting) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(823);
  auto left = RandomDb(dict, pool, 10, 10, rng);
  auto right = RandomDb(dict, pool, 15, 10, rng);
  SimilarityJoin join(right.get(), std::make_unique<BiBranchFilter>());
  const JoinResult r = join.Join(*left, 2);
  EXPECT_EQ(r.stats.database_size, 10 * 15);
  EXPECT_EQ(r.stats.edit_distance_calls, r.stats.candidates);
  EXPECT_EQ(r.stats.results, static_cast<int64_t>(r.pairs.size()));
  EXPECT_LE(r.stats.results, r.stats.candidates);
}

TEST(SimilarityJoinDeathTest, MismatchedDictionariesRejected) {
  auto dict1 = std::make_shared<LabelDictionary>();
  auto dict2 = std::make_shared<LabelDictionary>();
  auto right = std::make_unique<TreeDatabase>(dict1);
  right->Add(MakeTree("a", dict1));
  auto left = std::make_unique<TreeDatabase>(dict2);
  left->Add(MakeTree("a", dict2));
  SimilarityJoin join(right.get(), nullptr);
  EXPECT_DEATH((void)join.Join(*left, 1), "share one label dictionary");
}

}  // namespace
}  // namespace treesim
