// Robustness: the parsers must return error Statuses — never crash, hang or
// abort — on arbitrary malformed input (random bytes, truncations of valid
// documents, deeply nested input).
#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "tree/bracket.h"
#include "tree/forest_io.h"
#include "util/random.h"
#include "xml/xml_parser.h"

namespace treesim {
namespace {

std::string RandomBytes(Rng& rng, int max_len, const std::string& alphabet) {
  std::string s;
  const int len = rng.UniformInt(0, max_len);
  for (int i = 0; i < len; ++i) {
    s.push_back(alphabet[rng.UniformIndex(alphabet.size())]);
  }
  return s;
}

TEST(ParserRobustnessTest, BracketRandomInput) {
  Rng rng(1201);
  const std::string alphabet = "ab{} '\\\t\n\"<>&;#";
  int parsed = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    auto dict = std::make_shared<LabelDictionary>();
    const std::string input = RandomBytes(rng, 40, alphabet);
    StatusOr<Tree> t = ParseBracket(input, dict);
    if (t.ok()) {
      ++parsed;
      EXPECT_GE(t->size(), 1);
      // Anything that parses must round-trip.
      StatusOr<Tree> back = ParseBracket(ToBracket(*t), dict);
      ASSERT_TRUE(back.ok()) << input;
      EXPECT_TRUE(t->StructurallyEquals(*back)) << input;
    }
  }
  EXPECT_GT(parsed, 0);  // the fuzz alphabet does produce valid inputs
}

TEST(ParserRobustnessTest, XmlRandomInput) {
  Rng rng(1213);
  const std::string alphabet = "<>/ab =\"'&;![]-?x\n";
  for (int trial = 0; trial < 3000; ++trial) {
    auto dict = std::make_shared<LabelDictionary>();
    const std::string input = RandomBytes(rng, 60, alphabet);
    (void)ParseXml(input, dict);  // must not crash; Status either way
  }
}

TEST(ParserRobustnessTest, TruncationsOfValidXml) {
  const std::string valid =
      "<?xml version=\"1.0\"?><a x=\"1\"><!--c--><b>text &amp; "
      "more</b><![CDATA[raw]]><c/></a>";
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    auto dict = std::make_shared<LabelDictionary>();
    (void)ParseXml(valid.substr(0, cut), dict);  // must not crash
  }
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_TRUE(ParseXml(valid, dict).ok());
}

TEST(ParserRobustnessTest, TruncationsOfValidBracket) {
  const std::string valid = "a{'b c'{d e} f{g} 'h\\'i'}";
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    auto dict = std::make_shared<LabelDictionary>();
    (void)ParseBracket(valid.substr(0, cut), dict);  // must not crash
  }
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_TRUE(ParseBracket(valid, dict).ok());
}

TEST(ParserRobustnessTest, DeeplyNestedBracketHitsDepthLimit) {
  // 200k opening braces: must fail cleanly, not overflow the stack.
  std::string pathological;
  for (int i = 0; i < 200000; ++i) pathological += "a{";
  auto dict = std::make_shared<LabelDictionary>();
  StatusOr<Tree> t = ParseBracket(pathological, dict);
  EXPECT_FALSE(t.ok());
}

TEST(ParserRobustnessTest, DeeplyNestedXmlParses) {
  // The XML parser uses an explicit stack, so depth is bounded by memory.
  std::string deep;
  for (int i = 0; i < 50000; ++i) deep += "<a>";
  for (int i = 0; i < 50000; ++i) deep += "</a>";
  auto dict = std::make_shared<LabelDictionary>();
  StatusOr<Tree> t = ParseXml(deep, dict);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->size(), 50000);
}

TEST(ParserRobustnessTest, ForestRandomInput) {
  Rng rng(1217);
  const std::string alphabet = "ab{} '\n#";
  for (int trial = 0; trial < 1000; ++trial) {
    auto dict = std::make_shared<LabelDictionary>();
    (void)ForestFromString(RandomBytes(rng, 80, alphabet), dict);
  }
}

}  // namespace
}  // namespace treesim
