// Known-good: capacity is settled with reserve() BEFORE the element
// reference is taken, so the later push_back cannot reallocate and the
// reference stays valid. Must produce zero findings.
#include "perf_stub.h"

namespace fix_good_ref {

long FillFixed(std::vector<long>& rows) {
  rows.push_back(1);
  rows.reserve(16);
  long& head = rows.front();
  rows.push_back(7);  // within reserved capacity: no reallocation
  return head;
}

}  // namespace fix_good_ref
