// Known-good: the allocation-heavy helper would be flagged if it were hot
// (unreserved growth in a loop, reached from a hot entry point), but the
// TREESIM_COLD marker removes it from the hot set and stops traversal.
// Must produce zero findings.
#include "perf_stub.h"

namespace fix_cold {

unsigned long TREESIM_COLD ValidateSlow() {
  std::vector<int> scratch;
  for (int i = 0; i < 128; ++i) {
    scratch.push_back(i);
  }
  return scratch.size();
}

unsigned long Range(int n) {
  if (n < 0) return ValidateSlow();
  return static_cast<unsigned long>(n);
}

}  // namespace fix_cold
