// Known-bad: per-iteration heap allocation (operator new and make_unique)
// inside a loop of a hot entry point (`Join` is in the derived hot set by
// basename). Expected finding: alloc-in-hot-loop.
#include "perf_stub.h"

namespace fix_hotalloc {

int Join(int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    int* p = new int(i);
    total += *p;
    std::unique_ptr<int> q = std::make_unique<int>();
    total += (q.get() != nullptr) ? 1 : 0;
  }
  return total;
}

}  // namespace fix_hotalloc
