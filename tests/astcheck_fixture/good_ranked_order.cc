// Known-good: two mutexes with TREESIM_LOCK_RANK annotations, always
// acquired in strictly increasing rank order from every path. Must produce
// zero findings (and exercises the rank reader on the analyzer side).
#include "fixture_stub.h"

namespace fix_ranked {

class Pipeline {
 public:
  void Run() {
    treesim::MutexLock a(&low_);
    treesim::MutexLock b(&high_);
    ++work_;
  }

  void Drain() {
    treesim::MutexLock a(&low_);
    {
      treesim::MutexLock b(&high_);
      work_ = 0;
    }
  }

 private:
  treesim::Mutex low_ TREESIM_LOCK_RANK(10);
  treesim::Mutex high_ TREESIM_LOCK_RANK(20);
  long work_ = 0;
};

}  // namespace fix_ranked
