// Known-bad: three-lock deadlock cycle that no single function exhibits —
// each function nests only one pair, and the third edge exists only
// through the call graph (Third acquires g_1 while holding g_3).
// Expected finding: lock-order (cycle over g_1 -> g_2 -> g_3 -> g_1).
#include "fixture_stub.h"

namespace fix_trans {

treesim::Mutex g_1;
treesim::Mutex g_2;
treesim::Mutex g_3;

int g_state = 0;

void Third();

void Second() {
  treesim::MutexLock l2(&g_2);
  Third();
}

void First() {
  treesim::MutexLock l1(&g_1);
  Second();
}

void Third() {
  treesim::MutexLock l3(&g_3);
  {
    treesim::MutexLock l1(&g_1);
    ++g_state;
  }
}

}  // namespace fix_trans
