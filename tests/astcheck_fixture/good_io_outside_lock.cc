// Known-good: the swap-under-lock / close-outside-lock pattern — the mutex
// guards only the pointer swap, and the blocking fclose runs after the
// scope ends (mirrors the fixed StructuredLog::OpenFile/Close in
// src/util/structured_log.cc). Must produce zero findings.
#include "fixture_stub.h"

namespace fix_iofree {

class Sink {
 public:
  void Close() {
    void* doomed = nullptr;
    {
      treesim::MutexLock l(&mu_);
      doomed = file_;
      file_ = nullptr;
    }
    if (doomed != nullptr) {
      fclose(doomed);
    }
  }

 private:
  treesim::Mutex mu_;
  void* file_ = nullptr;
};

}  // namespace fix_iofree
