// Self-contained stand-ins for the standard containers and the hot-path
// annotation macros, shaped exactly like what the astcheck perf extractor
// keys on: growth/reserve method names, heavy type tokens (vector, string),
// std::function's call operator, and std::move / std::make_unique by name.
// No standard headers: the fixture TUs must parse in milliseconds and stay
// byte-stable so the selftest's cache assertions are meaningful.
#ifndef TREESIM_TESTS_ASTCHECK_FIXTURE_PERF_STUB_H_
#define TREESIM_TESTS_ASTCHECK_FIXTURE_PERF_STUB_H_

// The analyzer reads these markers from the definition's source line, so
// no-op object-like macros are enough here (src/util/hot.h emits annotate
// attributes under clang as well).
#define TREESIM_HOT
#define TREESIM_COLD

namespace std {

template <typename T>
class vector {
 public:
  vector();
  vector(unsigned long n, const T& value);
  void push_back(const T& v);
  void emplace_back(const T& v);
  void insert(const T* pos, const T& v);
  void reserve(unsigned long n);
  void resize(unsigned long n);
  unsigned long size() const;
  bool empty() const;
  void clear();
  T& operator[](unsigned long i);
  T& front();
  T& back();
  T* begin();
  T* data();
};

class string {
 public:
  string();
  string(const char* s);
  string(const string& other);
  void append(const char* s);
  void reserve(unsigned long n);
  unsigned long size() const;
};

template <typename T>
class unique_ptr {
 public:
  unique_ptr();
  explicit unique_ptr(T* p);
  T* get() const;
};

template <typename T>
unique_ptr<T> make_unique();

template <typename T>
T&& move(T& v);

template <typename Sig>
class function;

template <typename R, typename... Args>
class function<R(Args...)> {
 public:
  function();
  template <typename F>
  function(F f);  // NOLINT: implicit, like the real one
  template <typename F>
  function& operator=(F f);
  R operator()(Args... args) const;
};

}  // namespace std

namespace treesim_fix {

/// Vtable stand-in for the FilterIndex probe interface.
class Filter {
 public:
  virtual ~Filter();
  virtual bool MayQualify(int id) const;
  virtual double LowerBound(int id) const;
};

}  // namespace treesim_fix

#endif  // TREESIM_TESTS_ASTCHECK_FIXTURE_PERF_STUB_H_
