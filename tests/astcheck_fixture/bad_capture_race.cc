// Known-bad: a lambda handed to ThreadPool::ParallelFor mutates a local
// captured by reference with no MutexLock, no atomic, and no per-index
// slot — every worker races on `total`. Expected finding: capture-race.
#include "fixture_stub.h"

namespace fix_caprace {

long SumBroken(treesim::ThreadPool& pool) {
  long total = 0;
  pool.ParallelFor(100, [&total](long i) { total += i; });
  return total;
}

}  // namespace fix_caprace
