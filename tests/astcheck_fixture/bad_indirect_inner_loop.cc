// Known-bad: virtual dispatch in the INNER loop (nesting depth 2) of a hot
// entry point — the per-probe vcall the join engine amortizes per slot.
// Expected finding: indirect-call-in-inner-loop.
#include "perf_stub.h"

namespace fix_vcall {

int KnnWeighted(const treesim_fix::Filter& f, int n) {
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (f.MayQualify(j)) ++hits;
    }
  }
  return hits;
}

}  // namespace fix_vcall
