// Known-bad: scheduling pool work while holding a mutex. If the pool is
// saturated with tasks that need the same mutex this self-deadlocks, and
// even when it does not, it serializes the pool behind an unrelated lock.
// Expected finding: blocking-under-lock (thread-pool submission).
#include "fixture_stub.h"

namespace fix_submit {

class Rebuilder {
 public:
  void Kick(treesim::ThreadPool& pool) {
    treesim::MutexLock l(&mu_);
    ++epoch_;
    pool.Schedule([] {});
  }

 private:
  treesim::Mutex mu_;
  long epoch_ = 0;
};

}  // namespace fix_submit
