// Known-bad: fprintf while holding the logger mutex — stream I/O can block
// arbitrarily long (disk stall, full pipe) with every other thread queued
// behind the lock. Expected finding: blocking-under-lock (I/O).
#include "fixture_stub.h"

namespace fix_io {

class Logger {
 public:
  void Append(const char* message) {
    treesim::MutexLock l(&mu_);
    ++records_;
    fprintf(fixture_stream, "%s\n", message);
  }

 private:
  treesim::Mutex mu_;
  long records_ = 0;
};

}  // namespace fix_io
