// Known-bad-but-documented: I/O under the lock, deliberately, because the
// lock *is* the serialization point for the output stream (mirrors
// treesim::StructuredLog::Write in src/util/structured_log.cc). The
// finding fires but is allowlisted in fixture_suppressions.toml; the
// selftest asserts it lands in the suppressed bucket, not the kept one.
#include "fixture_stub.h"

namespace fix_suppressed {

class AuditLog {
 public:
  void Write(const char* event) {
    treesim::MutexLock l(&mu_);
    ++sequence_;
    fprintf(fixture_stream, "%ld %s\n", sequence_, event);
  }

 private:
  treesim::Mutex mu_;
  long sequence_ = 0;
};

}  // namespace fix_suppressed
