// Known-bad: classic AB/BA deadlock — two functions acquire the same two
// mutexes in opposite orders. Expected finding: lock-order (cycle).
#include "fixture_stub.h"

namespace fix_abba {

treesim::Mutex g_a;
treesim::Mutex g_b;

int g_shared = 0;

void FirstThenSecond() {
  treesim::MutexLock la(&g_a);
  {
    treesim::MutexLock lb(&g_b);
    ++g_shared;
  }
}

void SecondThenFirst() {
  treesim::MutexLock lb(&g_b);
  {
    treesim::MutexLock la(&g_a);
    --g_shared;
  }
}

}  // namespace fix_abba
