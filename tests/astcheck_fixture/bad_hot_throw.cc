// Known-bad: a throw-expression inside a hot entry point. Hot-path errors
// must stay Status-based (throwing defeats the filter-and-refine engine's
// noexcept fast paths). Expected finding: hot-throw.
#include "perf_stub.h"

namespace fix_throw {

int ComputePairwiseDistances(int n) {
  if (n < 0) throw 42;
  return n * 2;
}

}  // namespace fix_throw
