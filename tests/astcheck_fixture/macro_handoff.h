// Helper macro living in a DIFFERENT header than the TU that expands it.
// The lifetime selftest asserts the resulting use-after-move finding
// points at the second expansion site in bad_macro_lifetime.cc, not at
// this file: the extractor must take expansionLoc (where the code
// executes), never the spelling location inside the macro definition.
// Within ONE expansion every token shares the expansion offset, so the
// checker's strict ordering keeps a single FIX_HANDOFF silent.
#ifndef TREESIM_TESTS_ASTCHECK_FIXTURE_MACRO_HANDOFF_H_
#define TREESIM_TESTS_ASTCHECK_FIXTURE_MACRO_HANDOFF_H_

#define FIX_HANDOFF(slot, v) (slot) = std::move(v)

#endif  // TREESIM_TESTS_ASTCHECK_FIXTURE_MACRO_HANDOFF_H_
