// Known-bad: a vector grows inside a hot entry point's loop with no
// dominating reserve — the reallocation churn the perf pass exists to
// catch. Expected finding: alloc-in-hot-loop.
#include "perf_stub.h"

namespace fix_growth {

unsigned long Range(int n) {
  std::vector<int> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(i);
  }
  return ids.size();
}

}  // namespace fix_growth
