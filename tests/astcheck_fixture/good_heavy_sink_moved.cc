// Known-good: a by-value heavy parameter is fine when it is a sink — the
// body consumes it with std::move, so the caller pays one move, not a
// copy. Must produce zero findings.
#include "perf_stub.h"

namespace fix_sink {

struct Holder {
  std::vector<int> data;
};

void BatchKnn(std::vector<int> ids, Holder* out) {
  out->data = std::move(ids);
}

}  // namespace fix_sink
