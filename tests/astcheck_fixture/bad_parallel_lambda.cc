// Known-bad: the enclosing function is NOT an entry point, but its lambda
// is submitted through ThreadPool::ParallelFor, which seeds the lambda
// into the hot set; the unreserved growth in the lambda's loop must fire.
// Expected finding: alloc-in-hot-loop.
#include "fixture_stub.h"
#include "perf_stub.h"

namespace fix_parlam {

void FillAll(treesim::ThreadPool& pool, int n) {
  pool.ParallelFor(n, [](long) {
    std::vector<int> scratch;
    for (int j = 0; j < 8; ++j) {
      scratch.push_back(j);
    }
  });
}

}  // namespace fix_parlam
