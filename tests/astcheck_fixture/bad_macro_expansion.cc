// Known-bad: the growing push_back is spelled inside FIX_APPEND, a macro
// defined in macro_pushback.h — a different header. The selftest asserts
// the alloc-in-hot-loop finding lands HERE, on the expansion line below,
// proving the extractor attributes macro-expanded expressions to where the
// code executes rather than where the macro is defined.
#include "macro_pushback.h"
#include "perf_stub.h"

namespace fix_macro {

unsigned long Range(int n) {
  std::vector<int> ids;
  for (int i = 0; i < n; ++i) {
    FIX_APPEND(ids, i);  // selftest anchors the expected line here
  }
  return ids.size();
}

}  // namespace fix_macro
