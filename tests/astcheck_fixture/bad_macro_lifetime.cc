// Known-bad: FIX_HANDOFF (defined in macro_handoff.h — a different
// header) moves its argument. Expanding it twice on the same variable
// re-moves a moved-from container. The selftest asserts the use-after-move
// finding lands HERE, on the SECOND expansion line below, proving the
// extractor attributes macro-expanded moves to where the code executes;
// the first expansion alone stays silent because all of its tokens share
// one expansion offset and the checker orders sites strictly.
#include "macro_handoff.h"
#include "perf_stub.h"

namespace fix_macro_lt {

void PublishTwice(std::vector<int>& a_slot, std::vector<int>& b_slot) {
  std::vector<int> staged;
  staged.push_back(1);
  FIX_HANDOFF(a_slot, staged);
  FIX_HANDOFF(b_slot, staged);  // selftest anchors the expected line here
}

}  // namespace fix_macro_lt
