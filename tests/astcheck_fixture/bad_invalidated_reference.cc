// Known-bad: `first` aliases an element of a contiguous container, the
// container then grows (push_back may reallocate), and the stale
// reference is read afterwards. Expected finding: invalidated-reference.
#include "perf_stub.h"

namespace fix_invref {

long GrowAndRead(std::vector<long>& rows) {
  long& first = rows.front();
  rows.push_back(42);  // may reallocate: `first` now dangles
  return first;
}

}  // namespace fix_invref
