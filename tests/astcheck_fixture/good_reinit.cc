// Known-good: every move is followed by a reinitialization before the
// next use — clear() inside the loop recycles the container for the next
// iteration, and the assignment afterwards gives it a fresh value. Both
// the direct and the loop-carried use-after-move rules must stay silent.
// Must produce zero findings.
#include "perf_stub.h"

namespace fix_good_reinit {

void Recycle(std::vector<int>* out_slots, int n) {
  std::vector<int> acc;
  for (int i = 0; i < n; ++i) {
    acc.push_back(i);
    out_slots[i] = std::move(acc);
    acc.clear();  // recycled: next iteration starts from a known state
  }
  acc = std::vector<int>();  // reinit-by-assignment, then reuse
  acc.push_back(1);
}

}  // namespace fix_good_reinit
