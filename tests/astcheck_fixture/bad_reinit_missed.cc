// Known-bad: `acc` is declared outside the loop but moved from inside it
// and never reinitialized in the loop body — the second iteration appends
// to (and then moves) a moved-from container. The loop-carried rule flags
// the move site. Expected finding: use-after-move.
#include "perf_stub.h"

namespace fix_reinit_missed {

void FlushAll(std::vector<int>* out_slots, int n) {
  std::vector<int> acc;
  for (int i = 0; i < n; ++i) {
    acc.push_back(i);
    out_slots[i] = std::move(acc);  // next pass reuses the husk
  }
}

}  // namespace fix_reinit_missed
