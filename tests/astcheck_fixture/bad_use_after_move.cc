// Known-bad: `batch` is handed off with std::move and then grown again
// with no reinitialization in between; the second push_back operates on a
// moved-from container whose contents are unspecified.
// Expected finding: use-after-move.
#include "perf_stub.h"

namespace fix_uam {

void PublishBatch(std::vector<int>& out_slot) {
  std::vector<int> batch;
  batch.push_back(1);
  out_slot = std::move(batch);
  batch.push_back(2);  // moved-from: this element lands who-knows-where
}

}  // namespace fix_uam
