// Known-good: same shape as bad_growth_no_reserve.cc, but the growth is
// dominated by a reserve on the same receiver earlier in the function.
// Must produce zero findings.
#include "perf_stub.h"

namespace fix_reserved {

unsigned long Knn(int n) {
  std::vector<int> ids;
  ids.reserve(static_cast<unsigned long>(n));
  for (int i = 0; i < n; ++i) {
    ids.push_back(i);
  }
  return ids.size();
}

}  // namespace fix_reserved
