// Self-contained stand-ins for the treesim sync/pool primitives, shaped
// exactly like src/util/sync.h and src/util/thread_pool.h as far as the
// astcheck extractor is concerned (type names, method names, RAII form).
// No standard headers: the fixture TUs must parse in milliseconds and stay
// byte-stable so the selftest's cache assertions are meaningful.
#ifndef TREESIM_TESTS_ASTCHECK_FIXTURE_STUB_H_
#define TREESIM_TESTS_ASTCHECK_FIXTURE_STUB_H_

// The analyzer reads the rank from the declaration's source text, so the
// macro can be a no-op here (in src/util/sync.h it also emits an annotate
// attribute under clang).
#define TREESIM_LOCK_RANK(level)

extern "C" {
int fprintf(void* stream, const char* format, ...);
int fclose(void* stream);
int usleep(unsigned usec);
}
extern void* fixture_stream;

namespace std {
template <typename T>
class atomic {
 public:
  T fetch_add(T delta);
  void store(T value);
  T load() const;
};
}  // namespace std

namespace treesim {

class Mutex {
 public:
  void Lock();
  void Unlock();
  bool TryLock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();

 private:
  Mutex* mu_;
};

class CondVar {
 public:
  void Wait(Mutex* mu);
  void NotifyOne();
  void NotifyAll();
};

class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  template <typename Fn>
  void Schedule(Fn fn);
  template <typename Fn>
  void Submit(Fn fn);
  template <typename Fn>
  void ParallelFor(long n, Fn fn);
};

}  // namespace treesim

#endif  // TREESIM_TESTS_ASTCHECK_FIXTURE_STUB_H_
