// Known-bad: the function's basename is NOT a query entry point and no hot
// caller reaches it — only the TREESIM_HOT marker seeds it into the hot
// set (the same mechanism the real tree uses for virtual filter
// implementations). Expected finding: alloc-in-hot-loop.
#include "perf_stub.h"

namespace fix_hotmark {

unsigned long TREESIM_HOT AccumulateKeys(int n) {
  std::vector<int> keys;
  for (int i = 0; i < n; ++i) {
    keys.emplace_back(i);
  }
  return keys.size();
}

}  // namespace fix_hotmark
