// Known-bad: ThreadPool::Submit defers the lambda past the caller's
// return (unlike ParallelFor, which joins before returning), so the
// by-reference capture of a stack local outlives its frame. The capture
// only READS `pending` — this is a lifetime bug, not a data race, so
// escaping-capture must catch what capture-race cannot.
// Expected finding: escaping-capture.
#include "fixture_stub.h"

namespace fix_submit_escape {

void KickOff(treesim::ThreadPool& pool) {
  long pending = 3;
  pool.Submit([&pending]() -> long { return pending; });
}  // pending dies here; the task may not have run yet

}  // namespace fix_submit_escape
