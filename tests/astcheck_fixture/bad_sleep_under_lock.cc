// Known-bad: sleeping while holding a mutex — a condition-variable-free
// wait that holds every other thread hostage for the full sleep. The
// sanctioned pattern is treesim::CondVar::Wait, which releases the mutex.
// Expected finding: blocking-under-lock (wait).
#include "fixture_stub.h"

namespace fix_sleep {

class Poller {
 public:
  void AwaitReady() {
    treesim::MutexLock l(&mu_);
    while (!ready_) {
      usleep(1000);
    }
  }

 private:
  treesim::Mutex mu_;
  bool ready_ = false;
};

}  // namespace fix_sleep
