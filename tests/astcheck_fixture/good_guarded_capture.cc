// Known-good: a ParallelFor lambda that touches shared state only in the
// three sanctioned ways — per-index slot writes, an atomic counter, and a
// MutexLock-guarded accumulator. Must produce zero findings.
#include "fixture_stub.h"

namespace fix_guarded {

void Aggregate(treesim::ThreadPool& pool, double* out) {
  treesim::Mutex mu;
  long hits = 0;
  std::atomic<long> visited;
  pool.ParallelFor(64, [&mu, &hits, &visited, out](long i) {
    out[i] = static_cast<double>(i) * 2.0;
    visited.fetch_add(1);
    treesim::MutexLock l(&mu);
    ++hits;
  });
}

}  // namespace fix_guarded
