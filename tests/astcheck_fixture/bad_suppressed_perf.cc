// Known-bad-but-allowlisted: the growth fires alloc-in-hot-loop, and the
// matching fixture_suppressions.toml entry (with a mandatory reason) moves
// it to the suppressed bucket. Expected: zero kept findings, one
// suppressed alloc-in-hot-loop.
#include "perf_stub.h"

namespace fix_supperf {

unsigned long RangeWeighted(int n) {
  std::vector<double> weights;
  for (int i = 0; i < n; ++i) {
    weights.push_back(static_cast<double>(i) * 0.5);
  }
  return weights.size();
}

}  // namespace fix_supperf
