// Known-bad: a hot entry point takes a registry-heavy type (std::vector)
// by value and never moves it — every call deep-copies the container.
// Expected finding: heavy-copy.
#include "perf_stub.h"

namespace fix_heavyparam {

unsigned long SelfJoin(std::vector<int> ids) {
  unsigned long total = 0;
  for (unsigned long i = 0; i < ids.size(); ++i) {
    total += static_cast<unsigned long>(ids[i]);
  }
  return total;
}

}  // namespace fix_heavyparam
