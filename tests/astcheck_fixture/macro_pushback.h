// Helper macro living in a DIFFERENT header than the TU that expands it.
// The perf selftest asserts the resulting alloc-in-hot-loop finding points
// at the expansion site in bad_macro_expansion.cc, not at this file: the
// extractor must take expansionLoc (where the code executes), never the
// spelling location inside the macro definition.
#ifndef TREESIM_TESTS_ASTCHECK_FIXTURE_MACRO_PUSHBACK_H_
#define TREESIM_TESTS_ASTCHECK_FIXTURE_MACRO_PUSHBACK_H_

#define FIX_APPEND(vec, val) (vec).push_back(val)

#endif  // TREESIM_TESTS_ASTCHECK_FIXTURE_MACRO_PUSHBACK_H_
