// Known-bad: the lambda captures `cursor` by reference but is stored into
// `pending`, a std::function declared in an ENCLOSING scope — the capture
// dies at the inner brace while the callable lives on, so every later
// invocation reads a dangling reference.
// Expected finding: escaping-capture.
#include "perf_stub.h"

namespace fix_escape_store {

long InstallAndRun(std::function<long()>& out_slot) {
  std::function<long()> pending;
  {
    long cursor = 7;
    pending = [&cursor]() { return cursor; };
  }
  out_slot = pending;
  return out_slot();  // dangles: cursor is gone
}

}  // namespace fix_escape_store
