// Known-good: lambdas that outlive the frame (one returned, one deferred
// via ThreadPool::Submit) capture BY VALUE, so they own their state and
// nothing dangles. Must produce zero findings.
#include "fixture_stub.h"
#include "perf_stub.h"

namespace fix_good_cap {

std::function<long()> MakeCounter() {
  long seed = 5;
  return [seed]() { return seed; };
}

void KickSafe(treesim::ThreadPool& pool) {
  long base = 3;
  pool.Submit([base]() -> long { return base; });
}

}  // namespace fix_good_cap
