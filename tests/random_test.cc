#include "util/random.h"

#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace treesim {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(-3, 8);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 8);
  }
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIndexRespectsBounds) {
  Rng rng(7);
  std::set<size_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const size_t v = rng.UniformIndex(4);
    EXPECT_LT(v, 4u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit over 1000 draws
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, NormalIntClampsAndCenters) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.NormalInt(50.0, 2.0, 1, 1000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 1000);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 50.0, 0.5);
  // Tight clamp dominates.
  for (int i = 0; i < 100; ++i) {
    const int v = rng.NormalInt(50.0, 2.0, 60, 70);
    EXPECT_EQ(v, 60);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<size_t> s = rng.SampleWithoutReplacement(50, 10);
    ASSERT_EQ(s.size(), 10u);
    std::set<size_t> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 10u);
    for (const size_t x : s) EXPECT_LT(x, 50u);
  }
}

TEST(RngTest, SampleWholeRange) {
  Rng rng(7);
  std::vector<size_t> s = rng.SampleWithoutReplacement(5, 5);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace treesim
